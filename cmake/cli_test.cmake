# scpm_cli flag-handling contract, run via ctest:
#   cmake -DCLI=<path-to-scpm_cli> -P cli_test.cmake
#
# Unknown flags, flags missing their value, and missing positionals must
# all exit non-zero (2) with usage text on stderr — never be silently
# ignored. Flag parsing happens before any file IO, so the positional
# paths need not exist.

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to scpm_cli>")
endif()

function(expect_usage_error label)
  execute_process(
    COMMAND ${CLI} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 2)
    message(FATAL_ERROR "${label}: expected exit 2, got ${code}\n${err}")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "${label}: stderr lacks usage text:\n${err}")
  endif()
endfunction()

expect_usage_error("no arguments")
expect_usage_error("unknown flag" edges.txt attrs.txt --bogus 1)
execute_process(
  COMMAND ${CLI} edges.txt attrs.txt --bogus 1
  RESULT_VARIABLE code
  ERROR_VARIABLE err)
if(NOT err MATCHES "unknown flag: --bogus")
  message(FATAL_ERROR "unknown flag not named in the error:\n${err}")
endif()
expect_usage_error("flag missing value" edges.txt attrs.txt --gamma)
expect_usage_error("bad sink value" edges.txt attrs.txt --sink csv)
expect_usage_error("bad scope value" edges.txt attrs.txt --scope everything)
message(STATUS "scpm_cli flag contract ok")
