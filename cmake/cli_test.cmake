# CLI flag-handling contract, run via ctest:
#   cmake -DCLI=<path-to-scpm_cli> [-DSERVE_CLI=<path-to-scpm_serve_cli>] \
#         -P cli_test.cmake
#
# Unknown flags, flags missing their value, and missing positionals must
# all exit non-zero (2) with usage text on stderr — never be silently
# ignored. Flag parsing happens before any file IO, so the positional
# paths need not exist. `--help` must exit 0 and print the flag
# reference on stdout (docs/CLI.md is diffed against it by the
# docs_drift gate).

if(NOT DEFINED CLI)
  message(FATAL_ERROR "pass -DCLI=<path to scpm_cli>")
endif()

function(expect_usage_error binary label)
  execute_process(
    COMMAND ${binary} ${ARGN}
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 2)
    message(FATAL_ERROR "${label}: expected exit 2, got ${code}\n${err}")
  endif()
  if(NOT err MATCHES "usage:")
    message(FATAL_ERROR "${label}: stderr lacks usage text:\n${err}")
  endif()
endfunction()

function(expect_help binary label)
  execute_process(
    COMMAND ${binary} --help
    RESULT_VARIABLE code
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${label}: --help expected exit 0, got ${code}")
  endif()
  if(NOT out MATCHES "usage:")
    message(FATAL_ERROR "${label}: --help stdout lacks usage text:\n${out}")
  endif()
  if(NOT out MATCHES "Exit codes:")
    message(FATAL_ERROR "${label}: --help lacks the exit-code table:\n${out}")
  endif()
endfunction()

expect_usage_error(${CLI} "no arguments")
expect_usage_error(${CLI} "unknown flag" edges.txt attrs.txt --bogus 1)
execute_process(
  COMMAND ${CLI} edges.txt attrs.txt --bogus 1
  RESULT_VARIABLE code
  ERROR_VARIABLE err)
if(NOT err MATCHES "unknown flag: --bogus")
  message(FATAL_ERROR "unknown flag not named in the error:\n${err}")
endif()
expect_usage_error(${CLI} "flag missing value" edges.txt attrs.txt --gamma)
expect_usage_error(${CLI} "bad sink value" edges.txt attrs.txt --sink csv)
expect_usage_error(${CLI} "bad scope value" edges.txt attrs.txt
                   --scope everything)
expect_usage_error(${CLI} "bad ckpt-format value" edges.txt attrs.txt
                   --ckpt-format walrus)
expect_help(${CLI} "scpm_cli")
# --help wins no matter where it appears.
execute_process(
  COMMAND ${CLI} edges.txt attrs.txt --help
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "trailing --help: expected exit 0, got ${code}")
endif()

if(DEFINED SERVE_CLI)
  expect_usage_error(${SERVE_CLI} "serve: no arguments")
  expect_usage_error(${SERVE_CLI} "serve: unknown flag" edges.txt attrs.txt
                     --bogus 1)
  expect_usage_error(${SERVE_CLI} "serve: missing --socket" edges.txt
                     attrs.txt --threads 2)
  expect_usage_error(${SERVE_CLI} "serve: flag missing value" edges.txt
                     attrs.txt --socket)
  expect_usage_error(${SERVE_CLI} "serve: bad ckpt-format value" edges.txt
                     attrs.txt --socket /tmp/scpm-cli-test.sock
                     --ckpt-format walrus)
  expect_help(${SERVE_CLI} "scpm_serve_cli")
  # An uncreatable --state-dir must fail fast as a usage error, before
  # the graph loads or the socket binds (/dev/null can't parent a dir).
  expect_usage_error(${SERVE_CLI} "serve: uncreatable state dir" edges.txt
                     attrs.txt --socket /tmp/scpm-cli-test.sock
                     --state-dir /dev/null/state)
endif()

if(DEFINED DIST_CLI)
  expect_usage_error(${DIST_CLI} "dist: no arguments")
  expect_usage_error(${DIST_CLI} "dist: unknown flag" edges.txt attrs.txt
                     --bogus 1)
  expect_usage_error(${DIST_CLI} "dist: flag missing value" edges.txt
                     attrs.txt --gamma)
  expect_usage_error(${DIST_CLI} "dist: bad sink value" edges.txt attrs.txt
                     --sink csv)
  # Durability needs a truncatable output file: jsonl to a path only.
  expect_usage_error(${DIST_CLI} "dist: state dir without jsonl out"
                     edges.txt attrs.txt --state-dir /tmp/scpm-dist-state)
  expect_usage_error(${DIST_CLI} "dist: degenerate batch" edges.txt
                     attrs.txt --batch-evals 0)
  expect_usage_error(${DIST_CLI} "dist: bad ckpt-format value" edges.txt
                     attrs.txt --ckpt-format walrus)
  expect_help(${DIST_CLI} "scpm_dist_cli")
endif()

message(STATUS "cli flag contract ok")
