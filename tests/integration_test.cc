// End-to-end tests: SCPM on synthetic planted-topic datasets must recover
// the planted signal; IO round-trips feed the miner; the null model
// separates planted topics from popular filler attributes.

#include <algorithm>
#include <filesystem>
#include <set>

#include <gtest/gtest.h>

#include "core/naive.h"
#include "core/report.h"
#include "core/scpm.h"
#include "core/statistics.h"
#include "core/validation.h"
#include "datasets/synthetic.h"
#include "graph/io.h"
#include "nullmodel/expectation.h"

namespace scpm {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig c;
  c.num_vertices = 600;
  c.avg_degree = 4.0;
  c.num_communities = 10;
  c.community_min_size = 8;
  c.community_max_size = 12;
  c.community_density = 0.9;
  c.vocab_size = 60;
  c.attrs_per_vertex = 3;
  c.num_topics = 5;
  c.topic_size = 2;
  c.topic_affinity = 0.95;
  c.topic_noise = 0.01;
  c.seed = 7;
  return c;
}

ScpmOptions SmallOptions() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.6;
  o.quasi_clique.min_size = 5;
  o.min_support = 8;
  o.min_epsilon = 0.2;
  o.top_k = 3;
  return o;
}

TEST(IntegrationTest, RecoversPlantedTopics) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok()) << d.status();
  ScpmMiner miner(SmallOptions());
  Result<ScpmResult> result = miner.Mine(d->graph);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->attribute_sets.empty());

  // Every planted topic pair should be reported with high eps.
  std::set<AttributeSet> reported;
  for (const auto& s : result->attribute_sets) {
    reported.insert(s.attributes);
  }
  std::size_t recovered = 0;
  for (const AttributeSet& topic : d->topics) {
    if (reported.count(topic)) ++recovered;
  }
  EXPECT_GE(recovered, d->topics.size() - 1)
      << "planted topics should pass the eps threshold";

  // Patterns reported for a topic should overlap its planted communities.
  for (const auto& p : result->patterns) {
    EXPECT_GE(p.size(), 5u);
    EXPECT_GE(p.min_degree_ratio, 0.6 * (p.size() - 1 - 1e-9) / (p.size() - 1));
  }
}

TEST(IntegrationTest, ResultsValidateAgainstDefinition) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  ScpmOptions options = SmallOptions();
  Graph topology = d->graph.graph();
  MaxExpectationModel model(topology, options.quasi_clique);
  ScpmMiner miner(options, &model);
  Result<ScpmResult> result = miner.Mine(d->graph);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ValidateResult(d->graph, options, *result).ok())
      << ValidateResult(d->graph, options, *result);

  NaiveMiner naive(options, &model);
  Result<ScpmResult> naive_result = naive.Mine(d->graph);
  ASSERT_TRUE(naive_result.ok());
  EXPECT_TRUE(ValidateResult(d->graph, options, *naive_result).ok());
}

TEST(IntegrationTest, ValidatorCatchesCorruption) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  ScpmOptions options = SmallOptions();
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(d->graph);
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->attribute_sets.empty());

  ScpmResult corrupted = *result;
  corrupted.attribute_sets[0].support += 1;
  EXPECT_FALSE(ValidateResult(d->graph, options, corrupted).ok());

  if (!result->patterns.empty()) {
    ScpmResult bad_pattern = *result;
    bad_pattern.patterns[0].min_degree_ratio = 0.123456;
    EXPECT_FALSE(ValidateResult(d->graph, options, bad_pattern).ok());
  }
}

TEST(IntegrationTest, ParallelMatchesSequentialOnSynthetic) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  ScpmOptions sequential = SmallOptions();
  ScpmOptions parallel = SmallOptions();
  parallel.num_threads = 3;
  ScpmMiner a(sequential), b(parallel);
  Result<ScpmResult> ra = a.Mine(d->graph);
  Result<ScpmResult> rb = b.Mine(d->graph);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->attribute_sets.size(), rb->attribute_sets.size());
  for (std::size_t i = 0; i < ra->attribute_sets.size(); ++i) {
    EXPECT_EQ(ra->attribute_sets[i].attributes,
              rb->attribute_sets[i].attributes);
    EXPECT_EQ(ra->attribute_sets[i].covered, rb->attribute_sets[i].covered);
  }
}

TEST(IntegrationTest, TopicsBeatFillerOnEpsilon) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  ScpmOptions options = SmallOptions();
  options.min_epsilon = 0.0;  // Rank everything.
  options.collect_patterns = false;
  options.max_attribute_set_size = 1;
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(d->graph);
  ASSERT_TRUE(result.ok());

  // Average eps of topic attributes vs filler attributes.
  std::set<AttributeId> topic_attrs;
  for (const auto& topic : d->topics) {
    topic_attrs.insert(topic.begin(), topic.end());
  }
  double topic_eps = 0, filler_eps = 0;
  std::size_t topic_n = 0, filler_n = 0;
  for (const auto& s : result->attribute_sets) {
    if (topic_attrs.count(s.attributes[0])) {
      topic_eps += s.epsilon;
      ++topic_n;
    } else {
      filler_eps += s.epsilon;
      ++filler_n;
    }
  }
  ASSERT_GT(topic_n, 0u);
  ASSERT_GT(filler_n, 0u);
  EXPECT_GT(topic_eps / topic_n, 2.0 * (filler_eps / filler_n));
}

TEST(IntegrationTest, DeltaSeparatesBetterThanSupport) {
  // The paper's core qualitative claim (Tables 2-4): top-support sets are
  // generic, top-delta sets are the planted topics.
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  Graph topology = d->graph.graph();
  MaxExpectationModel model(topology, SmallOptions().quasi_clique);

  ScpmOptions options = SmallOptions();
  options.min_epsilon = 0.0;
  options.collect_patterns = false;
  ScpmMiner miner(options, &model);
  Result<ScpmResult> result = miner.Mine(d->graph);
  ASSERT_TRUE(result.ok());

  std::set<AttributeId> topic_attrs;
  for (const auto& topic : d->topics) {
    topic_attrs.insert(topic.begin(), topic.end());
  }
  auto is_topic_row = [&](const AttributeSetStats& s) {
    for (AttributeId a : s.attributes) {
      if (topic_attrs.count(a)) return true;
    }
    return false;
  };

  const auto by_support =
      RankAttributeSets(result->attribute_sets, AttributeSetOrder::kBySupport);
  const auto by_delta =
      RankAttributeSets(result->attribute_sets, AttributeSetOrder::kByDelta);
  const std::size_t top = std::min<std::size_t>(5, by_support.size());
  int support_topics = 0, delta_topics = 0;
  for (std::size_t i = 0; i < top; ++i) {
    support_topics += is_topic_row(by_support[i]) ? 1 : 0;
    delta_topics += is_topic_row(by_delta[i]) ? 1 : 0;
  }
  EXPECT_GE(delta_topics, support_topics);
  EXPECT_GT(delta_topics, 0);
}

TEST(IntegrationTest, SavedDatasetMinesIdentically) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  const auto dir = std::filesystem::temp_directory_path() /
                   ("scpm_integration_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string graph_path = (dir / "graph.txt").string();
  const std::string attr_path = (dir / "attrs.txt").string();
  ASSERT_TRUE(SaveAttributedGraph(d->graph, graph_path, attr_path).ok());
  Result<AttributedGraph> loaded = LoadAttributedGraph(graph_path, attr_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::filesystem::remove_all(dir);

  ScpmOptions options = SmallOptions();
  options.collect_patterns = false;
  ScpmMiner a(options), b(options);
  Result<ScpmResult> ra = a.Mine(d->graph);
  Result<ScpmResult> rb = b.Mine(*loaded);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->attribute_sets.size(), rb->attribute_sets.size());
  // Attribute ids may be permuted by IO; compare (support, eps) multisets.
  std::multiset<std::pair<std::size_t, double>> ka, kb;
  for (const auto& s : ra->attribute_sets) ka.insert({s.support, s.epsilon});
  for (const auto& s : rb->attribute_sets) kb.insert({s.support, s.epsilon});
  EXPECT_EQ(ka, kb);
}

TEST(IntegrationTest, BfsAndDfsScpmAgree) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  ScpmOptions dfs = SmallOptions();
  dfs.search_order = SearchOrder::kDfs;
  ScpmOptions bfs = SmallOptions();
  bfs.search_order = SearchOrder::kBfs;
  ScpmMiner ma(dfs), mb(bfs);
  Result<ScpmResult> ra = ma.Mine(d->graph);
  Result<ScpmResult> rb = mb.Mine(d->graph);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->attribute_sets.size(), rb->attribute_sets.size());
  for (std::size_t i = 0; i < ra->attribute_sets.size(); ++i) {
    EXPECT_EQ(ra->attribute_sets[i].attributes,
              rb->attribute_sets[i].attributes);
    EXPECT_DOUBLE_EQ(ra->attribute_sets[i].epsilon,
                     rb->attribute_sets[i].epsilon);
  }
}

TEST(IntegrationTest, SensitivitySummaryBehaves) {
  Result<SyntheticDataset> d = GenerateSynthetic(SmallConfig());
  ASSERT_TRUE(d.ok());
  ScpmOptions options = SmallOptions();
  options.min_epsilon = 0.0;
  options.collect_patterns = false;
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(d->graph);
  ASSERT_TRUE(result.ok());
  const OutputSummary summary = SummarizeOutput(result->attribute_sets);
  EXPECT_GT(summary.num_attribute_sets, 0u);
  EXPECT_GE(summary.avg_epsilon_top10, summary.avg_epsilon_global);
  EXPECT_GE(summary.avg_delta_top10, summary.avg_delta_global);
}

}  // namespace
}  // namespace scpm
