// Unit tests for src/util: Status, Result, Rng, sorted-vector set algebra.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include <atomic>

#include "util/fault.h"
#include "util/random.h"
#include "util/result.h"
#include "util/sorted_ops.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace scpm {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad gamma");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad gamma");
  EXPECT_EQ(s.ToString(), "invalid-argument: bad gamma");
}

TEST(StatusTest, FactoryCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    SCPM_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnIfErrorPassesOk) {
  auto wrapper = []() -> Status {
    SCPM_RETURN_IF_ERROR(Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------- Result

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto makes = []() -> Result<int> { return 7; };
  auto fails = []() -> Result<int> { return Status::Internal("x"); };
  auto wrapper = [&](bool fail) -> Status {
    int v = 0;
    if (fail) {
      SCPM_ASSIGN_OR_RETURN(v, fails());
    } else {
      SCPM_ASSIGN_OR_RETURN(v, makes());
    }
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(wrapper(false).ok());
  EXPECT_EQ(wrapper(true).code(), StatusCode::kInternal);
}

// --------------------------------------------------------------- Logging

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluate) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "message";
  };
  SCPM_LOG(Info) << count();     // Below threshold: not evaluated.
  SCPM_LOG(Error) << count();    // At threshold: evaluated.
  EXPECT_EQ(evaluations, 1);
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  SCPM_CHECK(1 + 1 == 2) << "never shown";
  SCPM_CHECK_EQ(4, 4);
  SCPM_CHECK_NE(4, 5);
  SCPM_CHECK_LT(4, 5);
  SCPM_CHECK_LE(5, 5);
  SCPM_CHECK_GT(5, 4);
  SCPM_CHECK_GE(5, 5);
}

TEST(LoggingDeathTest, CheckAbortsOnFalse) {
  EXPECT_DEATH(SCPM_CHECK(false) << "boom", "Check failed");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedOneIsAlwaysZero) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t x = rng.NextInt(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    saw_lo |= (x == -2);
    saw_hi |= (x == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(4);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // LLN sanity
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ZipfWithinSupportAndSkewed) {
  Rng rng(7);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t x = rng.NextZipf(10, 2.0);
    ASSERT_GE(x, 1u);
    ASSERT_LE(x, 10u);
    ++counts[x];
  }
  // Rank 1 should dominate rank 2, which dominates rank 5.
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[5]);
}

TEST(RngTest, SampleWithoutReplacementBasics) {
  Rng rng(8);
  const auto sample = rng.SampleWithoutReplacement(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  EXPECT_TRUE(IsStrictlySorted(sample));
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWholeUniverse) {
  Rng rng(9);
  const auto sample = rng.SampleWithoutReplacement(8, 8);
  ASSERT_EQ(sample.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleZero) {
  Rng rng(10);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

class RngSampleSweep : public ::testing::TestWithParam<int> {};

TEST_P(RngSampleSweep, SamplesAreDistinctSortedAndInRange) {
  Rng rng(GetParam());
  const std::uint32_t n = 50 + GetParam() * 13 % 100;
  const std::uint32_t k = n / 3;
  const auto sample = rng.SampleWithoutReplacement(n, k);
  EXPECT_EQ(sample.size(), k);
  EXPECT_TRUE(IsStrictlySorted(sample));
  for (auto v : sample) EXPECT_LT(v, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSampleSweep, ::testing::Range(0, 20));

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// ------------------------------------------------------------ sorted ops

using U32 = std::vector<std::uint32_t>;

TEST(SortedOpsTest, IsStrictlySorted) {
  EXPECT_TRUE(IsStrictlySorted(U32{}));
  EXPECT_TRUE(IsStrictlySorted(U32{5}));
  EXPECT_TRUE(IsStrictlySorted(U32{1, 2, 9}));
  EXPECT_FALSE(IsStrictlySorted(U32{1, 1}));
  EXPECT_FALSE(IsStrictlySorted(U32{2, 1}));
}

TEST(SortedOpsTest, IntersectBasics) {
  U32 out;
  SortedIntersect(U32{1, 3, 5, 7}, U32{2, 3, 5, 8}, &out);
  EXPECT_EQ(out, (U32{3, 5}));
  SortedIntersect(U32{}, U32{1}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(SortedOpsTest, IntersectGallopingPath) {
  U32 large;
  for (std::uint32_t i = 0; i < 4000; ++i) large.push_back(i * 2);
  U32 small{2, 1000, 3999, 4002, 7998};
  U32 out;
  SortedIntersect(small, large, &out);
  EXPECT_EQ(out, (U32{2, 1000, 4002, 7998}));
  U32 out2;
  SortedIntersect(large, small, &out2);
  EXPECT_EQ(out, out2);
}

TEST(SortedOpsTest, IntersectSizeMatchesIntersect) {
  U32 a{1, 4, 6, 9}, b{4, 5, 6, 10}, out;
  SortedIntersect(a, b, &out);
  EXPECT_EQ(SortedIntersectSize(a, b), out.size());
}

TEST(SortedOpsTest, UnionDifferenceSubset) {
  U32 out;
  SortedUnion(U32{1, 3}, U32{2, 3, 4}, &out);
  EXPECT_EQ(out, (U32{1, 2, 3, 4}));
  SortedDifference(U32{1, 2, 3, 4}, U32{2, 4}, &out);
  EXPECT_EQ(out, (U32{1, 3}));
  EXPECT_TRUE(SortedIsSubset(U32{2, 4}, U32{1, 2, 3, 4}));
  EXPECT_FALSE(SortedIsSubset(U32{2, 5}, U32{1, 2, 3, 4}));
  EXPECT_TRUE(SortedIsSubset(U32{}, U32{}));
}

TEST(SortedOpsTest, InsertEraseContains) {
  U32 v{2, 6};
  EXPECT_TRUE(SortedInsert(&v, 4u));
  EXPECT_FALSE(SortedInsert(&v, 4u));
  EXPECT_EQ(v, (U32{2, 4, 6}));
  EXPECT_TRUE(SortedContains(v, 4u));
  EXPECT_TRUE(SortedErase(&v, 4u));
  EXPECT_FALSE(SortedErase(&v, 4u));
  EXPECT_FALSE(SortedContains(v, 4u));
}

TEST(SortedOpsTest, SortUnique) {
  U32 v{5, 1, 5, 3, 1};
  SortUnique(&v);
  EXPECT_EQ(v, (U32{1, 3, 5}));
}

/// Property test: sorted ops agree with std::set algebra on random inputs.
class SortedOpsSweep : public ::testing::TestWithParam<int> {};

TEST_P(SortedOpsSweep, AgreesWithStdSet) {
  Rng rng(GetParam());
  U32 a, b;
  std::set<std::uint32_t> sa, sb;
  const int na = 1 + static_cast<int>(rng.NextBounded(60));
  const int nb = 1 + static_cast<int>(rng.NextBounded(60));
  for (int i = 0; i < na; ++i) sa.insert(rng.NextBounded(80));
  for (int i = 0; i < nb; ++i) sb.insert(rng.NextBounded(80));
  a.assign(sa.begin(), sa.end());
  b.assign(sb.begin(), sb.end());

  U32 got, want;
  SortedIntersect(a, b, &got);
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(want));
  EXPECT_EQ(got, want);
  EXPECT_EQ(SortedIntersectSize(a, b), want.size());

  want.clear();
  SortedUnion(a, b, &got);
  std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                 std::back_inserter(want));
  EXPECT_EQ(got, want);

  want.clear();
  SortedDifference(a, b, &got);
  std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                      std::back_inserter(want));
  EXPECT_EQ(got, want);

  EXPECT_EQ(SortedIsSubset(a, b),
            std::includes(sb.begin(), sb.end(), sa.begin(), sa.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortedOpsSweep, ::testing::Range(0, 30));

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

// ----------------------------------------------------------------- Timer

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  WallTimer timer;
  const double t1 = timer.ElapsedSeconds();
  const double t2 = timer.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  timer.Reset();
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// ------------------------------------------------------------ FaultInjector

// Configure() parses the same grammar SCPM_FAULT_SPEC uses, so these
// pin the env-spec contract: whitespace-tolerant, typed rejection.

TEST(FaultSpecTest, TrimsWhitespaceAroundTermsAndTokens) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  ASSERT_TRUE(fi.Configure("  journal-write = 1 ,\tcheckpoint-write=0 ").ok());
  EXPECT_TRUE(fi.armed());
  EXPECT_TRUE(fi.ShouldFail(fault::kCheckpointWrite));   // hit 0
  EXPECT_FALSE(fi.ShouldFail(fault::kJournalWrite));     // hit 0
  EXPECT_TRUE(fi.ShouldFail(fault::kJournalWrite));      // hit 1
  fi.Reset();
}

TEST(FaultSpecTest, MalformedTokensAreTypedErrorsNamingTheToken) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  const struct {
    const char* spec;
    const char* offending;
  } cases[] = {
      {"journal-write", "journal-write"},      // no '='
      {"=3", "'=3'"},                          // no point name
      {"   = 3 ", "'= 3'"},                    // whitespace-only point
      {"journal-write=", "journal-write="},    // empty count
      {"journal-write=x", "journal-write=x"},  // non-numeric count
      {"journal-write=1x", "journal-write=1x"},
      {"a=1,b=oops,c=2", "b=oops"},  // one bad term poisons the spec
  };
  for (const auto& c : cases) {
    const Status status = fi.Configure(c.spec);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.spec;
    EXPECT_NE(status.message().find(c.offending), std::string::npos)
        << "expected '" << c.offending << "' in: " << status.message();
    EXPECT_FALSE(fi.armed()) << c.spec;
  }
  fi.Reset();
}

TEST(FaultSpecTest, EmptyAndCommaOnlySpecsDisarmCleanly) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  ASSERT_TRUE(fi.Configure("journal-write=0").ok());
  EXPECT_TRUE(fi.armed());
  ASSERT_TRUE(fi.Configure("").ok());  // replaces previous arming
  EXPECT_FALSE(fi.armed());
  ASSERT_TRUE(fi.Configure(" , ,, ").ok());
  EXPECT_FALSE(fi.armed());
  fi.Reset();
}

TEST(FaultSpecTest, DynamicPointNamesScriptIndependently) {
  // Dist code consults per-worker points like "worker-kill:2" — arbitrary
  // names must script and count independently of their base name.
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  ASSERT_TRUE(fi.Configure("worker-kill:2=0").ok());
  EXPECT_FALSE(fi.ShouldFail(fault::kWorkerKill));
  EXPECT_FALSE(fi.ShouldFail("worker-kill:1"));
  EXPECT_TRUE(fi.ShouldFail("worker-kill:2"));
  EXPECT_FALSE(fi.ShouldFail("worker-kill:2"));  // scripted hits fire once
  fi.Reset();
}

}  // namespace
}  // namespace scpm
