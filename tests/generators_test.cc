// Unit tests for src/graph/generators.cc: distributional sanity of the
// random graph models and the planted-group machinery.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "util/random.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

TEST(ErdosRenyiTest, RejectsBadProbability) {
  Rng rng(1);
  EXPECT_FALSE(ErdosRenyi(10, -0.1, rng).ok());
  EXPECT_FALSE(ErdosRenyi(10, 1.1, rng).ok());
}

TEST(ErdosRenyiTest, ZeroAndOneProbability) {
  Rng rng(2);
  Result<Graph> empty = ErdosRenyi(20, 0.0, rng);
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->NumEdges(), 0u);
  Result<Graph> full = ErdosRenyi(20, 1.0, rng);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->NumEdges(), 190u);  // C(20,2)
}

TEST(ErdosRenyiTest, EdgeCountNearExpectation) {
  Rng rng(3);
  const VertexId n = 300;
  const double p = 0.05;
  Result<Graph> g = ErdosRenyi(n, p, rng);
  ASSERT_TRUE(g.ok());
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g->NumEdges()), expected,
              4.0 * std::sqrt(expected));  // ~4 sigma
}

TEST(ErdosRenyiTest, DeterministicPerSeed) {
  Rng a(7), b(7);
  Result<Graph> ga = ErdosRenyi(50, 0.1, a);
  Result<Graph> gb = ErdosRenyi(50, 0.1, b);
  ASSERT_TRUE(ga.ok());
  ASSERT_TRUE(gb.ok());
  EXPECT_EQ(ga->Edges(), gb->Edges());
}

TEST(BarabasiAlbertTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(BarabasiAlbert(5, 0, rng).ok());
  EXPECT_FALSE(BarabasiAlbert(3, 3, rng).ok());
}

TEST(BarabasiAlbertTest, EdgeCountFormula) {
  Rng rng(4);
  const VertexId n = 200;
  const std::uint32_t m = 3;
  Result<Graph> g = BarabasiAlbert(n, m, rng);
  ASSERT_TRUE(g.ok());
  // Seed clique C(m+1,2) plus m edges per additional vertex.
  EXPECT_EQ(g->NumEdges(), 6u + (n - m - 1) * m);
}

TEST(BarabasiAlbertTest, ProducesHubs) {
  Rng rng(5);
  Result<Graph> g = BarabasiAlbert(500, 2, rng);
  ASSERT_TRUE(g.ok());
  // Preferential attachment should concentrate degree well above the mean.
  EXPECT_GT(g->MaxDegree(), 4 * AverageDegree(*g));
}

TEST(PowerLawWeightsTest, AverageMatches) {
  const auto weights = PowerLawWeights(1000, 2.5, 6.0);
  const double mean =
      std::accumulate(weights.begin(), weights.end(), 0.0) / 1000.0;
  EXPECT_NEAR(mean, 6.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(weights.rbegin(), weights.rend()));
}

TEST(ChungLuTest, RejectsNegativeWeights) {
  Rng rng(1);
  EXPECT_FALSE(ChungLu({1.0, -2.0}, rng).ok());
}

TEST(ChungLuTest, EmptyWeights) {
  Rng rng(1);
  Result<Graph> g = ChungLu({}, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumVertices(), 0u);
}

TEST(ChungLuTest, AverageDegreeNearTarget) {
  Rng rng(6);
  Result<Graph> g = ChungLu(PowerLawWeights(2000, 2.8, 5.0), rng);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(AverageDegree(*g), 5.0, 1.0);
}

TEST(ChungLuTest, HighWeightVerticesGetHigherDegree) {
  Rng rng(7);
  std::vector<double> weights(500, 1.0);
  weights[0] = 100.0;
  Result<Graph> g = ChungLu(weights, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_GT(g->Degree(0), 10 * AverageDegree(*g) / 2);
}

TEST(WattsStrogatzTest, ValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(WattsStrogatz(10, 3, 0.1, rng).ok());  // odd k
  EXPECT_FALSE(WattsStrogatz(10, 0, 0.1, rng).ok());
  EXPECT_FALSE(WattsStrogatz(4, 4, 0.1, rng).ok());   // n <= k
  EXPECT_FALSE(WattsStrogatz(10, 4, 1.5, rng).ok());
}

TEST(WattsStrogatzTest, ZeroBetaIsRingLattice) {
  Rng rng(2);
  Result<Graph> g = WattsStrogatz(20, 4, 0.0, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 40u);  // n * k / 2
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g->Degree(v), 4u);
  // Ring lattice with k=4 has high clustering.
  EXPECT_GT(GlobalClusteringCoefficient(*g), 0.4);
}

TEST(WattsStrogatzTest, RewiringLowersClustering) {
  Rng rng(3);
  Result<Graph> lattice = WattsStrogatz(300, 6, 0.0, rng);
  Result<Graph> random = WattsStrogatz(300, 6, 1.0, rng);
  ASSERT_TRUE(lattice.ok());
  ASSERT_TRUE(random.ok());
  EXPECT_GT(GlobalClusteringCoefficient(*lattice),
            2.0 * GlobalClusteringCoefficient(*random));
}

TEST(PlantGroupsTest, FullDensityPlantsCliques) {
  Rng rng(8);
  std::vector<Edge> edges;
  const auto groups = PlantGroups(100, 5, 6, 6, 1.0, rng, &edges);
  ASSERT_EQ(groups.size(), 5u);
  Result<Graph> g = Graph::FromEdges(100, edges);
  ASSERT_TRUE(g.ok());
  for (const PlantedGroup& group : groups) {
    ASSERT_EQ(group.members.size(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
      for (std::size_t j = i + 1; j < 6; ++j) {
        EXPECT_TRUE(g->HasEdge(group.members[i], group.members[j]));
      }
    }
  }
}

TEST(PlantGroupsTest, SizesWithinRange) {
  Rng rng(9);
  std::vector<Edge> edges;
  const auto groups = PlantGroups(200, 20, 4, 9, 0.5, rng, &edges);
  for (const auto& group : groups) {
    EXPECT_GE(group.members.size(), 4u);
    EXPECT_LE(group.members.size(), 9u);
    EXPECT_TRUE(IsStrictlySorted(group.members));
  }
}

class PlantedDensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(PlantedDensitySweep, GroupDensityNearTarget) {
  const double density = GetParam();
  Rng rng(11);
  std::vector<Edge> edges;
  const auto groups = PlantGroups(400, 30, 12, 12, density, rng, &edges);
  Result<Graph> g = Graph::FromEdges(400, edges);
  ASSERT_TRUE(g.ok());
  double sum = 0;
  for (const auto& group : groups) sum += SubsetDensity(*g, group.members);
  EXPECT_NEAR(sum / static_cast<double>(groups.size()), density, 0.08);
}

INSTANTIATE_TEST_SUITE_P(Densities, PlantedDensitySweep,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace scpm
