// Tests for the core SCPM algorithm: the paper's running example verified
// exactly (Table 1), SCPM == Naive equivalence on random attributed
// graphs, Theorem 3/4/5 pruning soundness, top-k semantics, reporting.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "core/export.h"
#include "core/naive.h"
#include "core/pattern.h"
#include "core/report.h"
#include "core/scorp.h"
#include "core/scpm.h"
#include "core/statistics.h"
#include "datasets/paper_example.h"
#include "graph/generators.h"
#include "nullmodel/expectation.h"
#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/simd_ops.h"

namespace scpm {
namespace {

/// Paper parameters for Table 1: sigma_min=3, gamma=0.6, min_size=4,
/// eps_min=0.5.
ScpmOptions Table1Options() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.6;
  o.quasi_clique.min_size = 4;
  o.min_support = 3;
  o.min_epsilon = 0.5;
  o.top_k = 10;
  return o;
}

/// Maps internal vertex ids to the paper's 1-based labels.
VertexSet ToPaperIds(const VertexSet& vs) {
  VertexSet out;
  for (VertexId v : vs) out.push_back(PaperExampleLabel(v));
  return out;
}

TEST(PaperExampleTest, StructuralCorrelationValues) {
  const AttributedGraph g = PaperExampleGraph();
  ASSERT_EQ(g.NumVertices(), 11u);
  ASSERT_EQ(g.graph().NumEdges(), 19u);

  ScpmOptions options = Table1Options();
  options.min_epsilon = 0.0;  // Evaluate everything.
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok()) << result.status();

  std::map<AttributeSet, double> eps;
  std::map<AttributeSet, std::size_t> support;
  for (const AttributeSetStats& s : result->attribute_sets) {
    eps[s.attributes] = s.epsilon;
    support[s.attributes] = s.support;
  }
  const AttributeId a = g.FindAttribute("A");
  const AttributeId b = g.FindAttribute("B");
  const AttributeId c = g.FindAttribute("C");
  ASSERT_NE(a, kInvalidAttribute);

  // Paper §1: eps(A) = 0.82 (9/11), eps(C) = 0, eps({A,B}) = 1.
  EXPECT_EQ(support[{a}], 11u);
  EXPECT_NEAR(eps[{a}], 9.0 / 11.0, 1e-12);
  EXPECT_EQ(support[{c}], 3u);
  EXPECT_DOUBLE_EQ(eps[{c}], 0.0);
  AttributeSet ab{std::min(a, b), std::max(a, b)};
  EXPECT_EQ(support[ab], 6u);
  EXPECT_DOUBLE_EQ(eps[ab], 1.0);
  EXPECT_EQ(support[{b}], 6u);
  EXPECT_DOUBLE_EQ(eps[{b}], 1.0);
}

TEST(PaperExampleTest, Table1PatternsExactly) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmMiner miner(Table1Options());
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok()) << result.status();

  // Expected Table 1 rows as (attribute names, paper vertex ids, gamma).
  struct Row {
    std::string attrs;
    VertexSet vertices;
    double gamma;
  };
  const std::vector<Row> want = {
      {"A", {6, 7, 8, 9, 10, 11}, 0.60},
      {"A", {3, 4, 5, 6}, 1.0},
      {"A", {3, 4, 6, 7}, 2.0 / 3.0},
      {"A", {3, 5, 6, 7}, 2.0 / 3.0},
      {"A", {3, 6, 7, 8}, 2.0 / 3.0},
      {"B", {6, 7, 8, 9, 10, 11}, 0.60},
      {"AB", {6, 7, 8, 9, 10, 11}, 0.60},
  };

  std::set<std::pair<std::string, VertexSet>> got;
  std::map<std::pair<std::string, VertexSet>, double> got_gamma;
  for (const StructuralCorrelationPattern& p : result->patterns) {
    std::string attrs;
    for (AttributeId id : p.attributes) attrs += g.AttributeName(id);
    std::sort(attrs.begin(), attrs.end());
    auto key = std::make_pair(attrs, ToPaperIds(p.vertices));
    got.insert(key);
    got_gamma[key] = p.min_degree_ratio;
  }
  EXPECT_EQ(got.size(), want.size());
  for (const Row& row : want) {
    auto key = std::make_pair(row.attrs, row.vertices);
    EXPECT_TRUE(got.count(key)) << "missing pattern " << row.attrs;
    if (got.count(key)) {
      EXPECT_NEAR(got_gamma[key], row.gamma, 1e-9) << row.attrs;
    }
  }
}

TEST(PaperExampleTest, NaiveProducesSameTable) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmMiner scpm(Table1Options());
  NaiveMiner naive(Table1Options());
  Result<ScpmResult> a = scpm.Mine(g);
  Result<ScpmResult> b = naive.Mine(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->patterns.size(), b->patterns.size());
  for (std::size_t i = 0; i < a->patterns.size(); ++i) {
    EXPECT_EQ(a->patterns[i].attributes, b->patterns[i].attributes);
    EXPECT_EQ(a->patterns[i].vertices, b->patterns[i].vertices);
  }
}

// ------------------------------------------------- randomized equivalence

/// Random attributed graph: ER topology + random attribute incidence.
AttributedGraph RandomAttributed(int seed, VertexId n = 24,
                                 int num_attrs = 5, double edge_p = 0.3,
                                 double attr_p = 0.4) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextBool(edge_p)) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < n; ++v) {
    for (AttributeId a = 0; a < static_cast<AttributeId>(num_attrs); ++a) {
      if (rng.NextBool(attr_p)) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

void ExpectSameStats(const ScpmResult& a, const ScpmResult& b) {
  ASSERT_EQ(a.attribute_sets.size(), b.attribute_sets.size());
  std::map<AttributeSet, const AttributeSetStats*> index;
  for (const auto& s : b.attribute_sets) index[s.attributes] = &s;
  for (const auto& s : a.attribute_sets) {
    auto it = index.find(s.attributes);
    ASSERT_NE(it, index.end());
    EXPECT_EQ(s.support, it->second->support);
    EXPECT_EQ(s.covered, it->second->covered);
    EXPECT_DOUBLE_EQ(s.epsilon, it->second->epsilon);
  }
}

void ExpectSamePatternKeys(const ScpmResult& a, const ScpmResult& b) {
  // Per attribute set, the multiset of (size, ratio) keys must agree
  // (tie-breaking between equal-key quasi-cliques may differ).
  using Key = std::pair<std::size_t, double>;
  std::map<AttributeSet, std::multiset<Key>> ka, kb;
  for (const auto& p : a.patterns) {
    ka[p.attributes].insert({p.size(), p.min_degree_ratio});
  }
  for (const auto& p : b.patterns) {
    kb[p.attributes].insert({p.size(), p.min_degree_ratio});
  }
  EXPECT_EQ(ka, kb);
}

struct EquivParam {
  int seed;
  double gamma;
  std::uint32_t min_size;
  std::size_t min_support;
  double min_eps;
};

class ScpmNaiveEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(ScpmNaiveEquivalence, SameOutput) {
  const EquivParam param = GetParam();
  const AttributedGraph g = RandomAttributed(param.seed);
  ScpmOptions options;
  options.quasi_clique.gamma = param.gamma;
  options.quasi_clique.min_size = param.min_size;
  options.min_support = param.min_support;
  options.min_epsilon = param.min_eps;
  options.top_k = 4;

  ScpmMiner scpm(options);
  NaiveMiner naive(options);
  Result<ScpmResult> a = scpm.Mine(g);
  Result<ScpmResult> b = naive.Mine(g);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectSameStats(*a, *b);
  ExpectSamePatternKeys(*a, *b);
}

INSTANTIATE_TEST_SUITE_P(
    Random, ScpmNaiveEquivalence,
    ::testing::Values(EquivParam{0, 0.5, 3, 3, 0.0},
                      EquivParam{1, 0.5, 3, 5, 0.2},
                      EquivParam{2, 0.6, 4, 4, 0.0},
                      EquivParam{3, 0.6, 4, 6, 0.3},
                      EquivParam{4, 0.8, 3, 3, 0.5},
                      EquivParam{5, 1.0, 3, 4, 0.0},
                      EquivParam{6, 0.7, 4, 5, 0.1},
                      EquivParam{7, 0.5, 5, 6, 0.0},
                      EquivParam{8, 0.9, 3, 3, 0.2},
                      EquivParam{9, 0.6, 3, 8, 0.4}));

class ScpmPruningSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScpmPruningSweep, TheoremPruningPreservesOutput) {
  const AttributedGraph g = RandomAttributed(GetParam());
  ScpmOptions base;
  base.quasi_clique.gamma = 0.6;
  base.quasi_clique.min_size = 3;
  base.min_support = 4;
  base.min_epsilon = 0.25;
  base.top_k = 3;

  Graph topology = g.graph();
  MaxExpectationModel model(topology, base.quasi_clique);
  base.min_delta = 0.5;

  ScpmOptions no_pruning = base;
  no_pruning.use_vertex_pruning = false;
  no_pruning.use_epsilon_pruning = false;
  no_pruning.use_delta_pruning = false;

  ScpmMiner pruned(base, &model);
  ScpmMiner unpruned(no_pruning, &model);
  Result<ScpmResult> a = pruned.Mine(g);
  Result<ScpmResult> b = unpruned.Mine(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectSameStats(*a, *b);
  ExpectSamePatternKeys(*a, *b);
  // Pruning must not *increase* the number of evaluated attribute sets.
  EXPECT_LE(a->counters.attribute_sets_evaluated,
            b->counters.attribute_sets_evaluated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScpmPruningSweep, ::testing::Range(0, 10));

// ----------------------------------------------------------- other knobs

TEST(ScpmOptionsTest, Validation) {
  ScpmOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.min_support = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ScpmOptions{};
  o.min_epsilon = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = ScpmOptions{};
  o.min_delta = -1;
  EXPECT_FALSE(o.Validate().ok());
  o = ScpmOptions{};
  o.top_k = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ScpmOptions{};
  o.quasi_clique.gamma = 2.0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(ScpmTest, MinReportSizeHidesSingletons) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  options.min_report_size = 2;
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  for (const auto& s : result->attribute_sets) {
    EXPECT_GE(s.attributes.size(), 2u);
  }
  // {A,B} must still be found even though {A}, {B} are not reported.
  bool found_ab = false;
  for (const auto& s : result->attribute_sets) {
    found_ab |= s.attributes.size() == 2;
  }
  EXPECT_TRUE(found_ab);
}

TEST(ScpmTest, MaxAttributeSetSizeStopsEnumeration) {
  const AttributedGraph g = RandomAttributed(3);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.max_attribute_set_size = 1;
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  for (const auto& s : result->attribute_sets) {
    EXPECT_EQ(s.attributes.size(), 1u);
  }
}

TEST(ScpmTest, TopKLimitsPatternsPerAttributeSet) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  options.top_k = 2;
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  std::map<AttributeSet, int> counts;
  for (const auto& p : result->patterns) ++counts[p.attributes];
  for (const auto& [attrs, count] : counts) {
    EXPECT_LE(count, 2) << "attribute set size " << attrs.size();
  }
  // For {A} the top-2 must be the size-6 prism and the 4-clique.
  const AttributeId a = g.FindAttribute("A");
  std::vector<std::size_t> sizes;
  for (const auto& p : result->patterns) {
    if (p.attributes == AttributeSet{a}) sizes.push_back(p.size());
  }
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 6u);
  EXPECT_EQ(sizes[1], 4u);
}

TEST(ScpmTest, DeltaThresholdFilters) {
  const AttributedGraph g = PaperExampleGraph();
  Graph topology = g.graph();
  MaxExpectationModel model(topology, {.gamma = 0.6, .min_size = 4});
  ScpmOptions options = Table1Options();
  options.min_delta = 1e9;  // Impossible threshold.
  ScpmMiner miner(options, &model);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->attribute_sets.empty());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(ScpmTest, DeltaIsEpsilonOverExpected) {
  const AttributedGraph g = PaperExampleGraph();
  Graph topology = g.graph();
  MaxExpectationModel model(topology, {.gamma = 0.6, .min_size = 4});
  ScpmOptions options = Table1Options();
  ScpmMiner miner(options, &model);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  for (const auto& s : result->attribute_sets) {
    ASSERT_GT(s.expected_epsilon, 0.0);
    EXPECT_NEAR(s.delta, s.epsilon / s.expected_epsilon, 1e-9);
    EXPECT_NEAR(s.expected_epsilon, model.Expectation(s.support), 1e-12);
  }
}

TEST(ScpmTest, MinSupportAboveVertexCountYieldsEmptyResult) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  options.min_support = 100;  // > 11 vertices
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->attribute_sets.empty());
  EXPECT_EQ(result->counters.attribute_sets_evaluated, 0u);
}

TEST(ScpmTest, CollectPatternsOffYieldsStatsOnly) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  options.collect_patterns = false;
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->attribute_sets.empty());
  EXPECT_TRUE(result->patterns.empty());
}

TEST(ScpmTest, EmptyGraphYieldsEmptyResult) {
  AttributedGraphBuilder builder(0);
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());
  ScpmMiner miner(ScpmOptions{});
  Result<ScpmResult> result = miner.Mine(*g);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->attribute_sets.empty());
}

// ---------------------------------------------------------- parallelism

class ParallelScpmSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelScpmSweep, ParallelEqualsSequential) {
  const AttributedGraph g = RandomAttributed(GetParam());
  ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 3;
  options.min_support = 4;
  options.min_epsilon = 0.1;
  options.top_k = 3;

  Graph topology = g.graph();
  MaxExpectationModel model(topology, options.quasi_clique);

  ScpmOptions parallel = options;
  parallel.num_threads = 4;
  ScpmMiner sequential_miner(options, &model);
  ScpmMiner parallel_miner(parallel, &model);
  Result<ScpmResult> a = sequential_miner.Mine(g);
  Result<ScpmResult> b = parallel_miner.Mine(g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Deterministic merge: identical order, stats, and pattern keys.
  ASSERT_EQ(a->attribute_sets.size(), b->attribute_sets.size());
  for (std::size_t i = 0; i < a->attribute_sets.size(); ++i) {
    EXPECT_EQ(a->attribute_sets[i].attributes,
              b->attribute_sets[i].attributes);
    EXPECT_DOUBLE_EQ(a->attribute_sets[i].epsilon,
                     b->attribute_sets[i].epsilon);
    EXPECT_DOUBLE_EQ(a->attribute_sets[i].delta, b->attribute_sets[i].delta);
  }
  ExpectSamePatternKeys(*a, *b);
  EXPECT_EQ(a->counters.attribute_sets_evaluated,
            b->counters.attribute_sets_evaluated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelScpmSweep, ::testing::Range(0, 8));

/// Field-by-field equality of complete mining outputs, including the
/// global pattern order and every counter: the parallel engine promises
/// byte-identical output for any thread count.
void ExpectIdenticalResults(const ScpmResult& a, const ScpmResult& b) {
  ASSERT_EQ(a.attribute_sets.size(), b.attribute_sets.size());
  for (std::size_t i = 0; i < a.attribute_sets.size(); ++i) {
    const AttributeSetStats& x = a.attribute_sets[i];
    const AttributeSetStats& y = b.attribute_sets[i];
    EXPECT_EQ(x.attributes, y.attributes) << "row " << i;
    EXPECT_EQ(x.support, y.support);
    EXPECT_EQ(x.covered, y.covered);
    EXPECT_DOUBLE_EQ(x.epsilon, y.epsilon);
    EXPECT_DOUBLE_EQ(x.expected_epsilon, y.expected_epsilon);
    EXPECT_DOUBLE_EQ(x.delta, y.delta);
  }
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    const StructuralCorrelationPattern& x = a.patterns[i];
    const StructuralCorrelationPattern& y = b.patterns[i];
    EXPECT_EQ(x.attributes, y.attributes) << "pattern " << i;
    EXPECT_EQ(x.vertices, y.vertices) << "pattern " << i;
    EXPECT_DOUBLE_EQ(x.min_degree_ratio, y.min_degree_ratio);
    EXPECT_DOUBLE_EQ(x.edge_density, y.edge_density);
  }
  EXPECT_EQ(a.counters.attribute_sets_evaluated,
            b.counters.attribute_sets_evaluated);
  EXPECT_EQ(a.counters.attribute_sets_reported,
            b.counters.attribute_sets_reported);
  EXPECT_EQ(a.counters.attribute_sets_extended,
            b.counters.attribute_sets_extended);
  EXPECT_EQ(a.counters.coverage_candidates, b.counters.coverage_candidates);
  EXPECT_EQ(a.counters.evaluation_batches, b.counters.evaluation_batches);
  EXPECT_EQ(a.counters.intra_search_evaluations,
            b.counters.intra_search_evaluations);
  EXPECT_EQ(a.counters.intra_branch_tasks, b.counters.intra_branch_tasks);
  EXPECT_EQ(a.counters.bitmap_intersections, b.counters.bitmap_intersections);
  EXPECT_EQ(a.counters.galloping_intersections,
            b.counters.galloping_intersections);
  EXPECT_EQ(a.counters.chunked_intersections,
            b.counters.chunked_intersections);
  EXPECT_EQ(a.counters.dense_conversions, b.counters.dense_conversions);
  EXPECT_EQ(a.counters.chunked_conversions, b.counters.chunked_conversions);
}

void ExpectDeterministicAcrossThreadCounts(const AttributedGraph& g,
                                           ScpmOptions options,
                                           ExpectationModel* model) {
  options.num_threads = 1;
  ScpmMiner sequential(options, model);
  Result<ScpmResult> baseline = sequential.Mine(g);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  for (std::size_t threads : {2u, 8u}) {
    ScpmOptions parallel = options;
    parallel.num_threads = threads;
    ScpmMiner miner(parallel, model);
    Result<ScpmResult> result = miner.Mine(g);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectIdenticalResults(*baseline, *result);
  }
}

TEST(ParallelScpmTest, ByteIdenticalOnPaperExample) {
  const AttributedGraph g = PaperExampleGraph();
  ExpectDeterministicAcrossThreadCounts(g, Table1Options(), nullptr);
}

TEST(ParallelScpmTest, ByteIdenticalWithSimulationNullModel) {
  // The Monte-Carlo model estimates per-support values on first touch;
  // parallel runs touch supports in timing order, so the estimates (and
  // thus delta filtering) must be order-independent.
  const AttributedGraph g = RandomAttributed(11, /*n=*/28, /*num_attrs=*/5);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.1;
  options.min_delta = 0.5;
  options.top_k = 3;
  Graph topology = g.graph();
  SimExpectationModel model(topology, options.quasi_clique,
                            /*num_samples=*/6, /*seed=*/5);
  ExpectDeterministicAcrossThreadCounts(g, options, &model);
}

class ParallelDeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelDeterminismSweep, ByteIdenticalOnRandomGraphs) {
  const AttributedGraph g =
      RandomAttributed(GetParam(), /*n=*/32, /*num_attrs=*/6);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.1;
  options.top_k = 3;
  Graph topology = g.graph();
  MaxExpectationModel model(topology, options.quasi_clique);
  options.min_delta = 0.25;
  ExpectDeterministicAcrossThreadCounts(g, options, &model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismSweep,
                         ::testing::Range(0, 4));

/// Regression for the batched + intra-parallel path: with the intra
/// threshold forced low enough to trigger on these graphs, every
/// counter — including the MinerStats-derived coverage_candidates and
/// intra_branch_tasks, which are accumulated per branch task and merged
/// in key order, never via relaxed atomics — must be byte-identical
/// across num_threads in {1, 2, 8}.
TEST(ParallelScpmTest, IntraSearchCountersPinnedAcrossThreadCounts) {
  const AttributedGraph g =
      RandomAttributed(21, /*n=*/40, /*num_attrs=*/4, /*edge_p=*/0.3,
                       /*attr_p=*/0.6);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.05;
  options.top_k = 3;
  options.intra_search_min_universe = 8;  // force the intra path

  options.num_threads = 1;
  ScpmMiner baseline_miner(options);
  Result<ScpmResult> baseline = baseline_miner.Mine(g);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  // The point of the test: the decomposed searches actually ran.
  ASSERT_GT(baseline->counters.intra_search_evaluations, 0u);
  ASSERT_GT(baseline->counters.intra_branch_tasks, 0u);
  for (std::size_t threads : {2u, 8u}) {
    ScpmOptions parallel = options;
    parallel.num_threads = threads;
    ScpmMiner miner(parallel);
    Result<ScpmResult> result = miner.Mine(g);
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectIdenticalResults(*baseline, *result);
  }
}

/// Evaluation batching packs tasks differently but must never change
/// what is mined: everything except the task-packing counter itself is
/// identical across batch grains.
TEST(ParallelScpmTest, EvalBatchGrainDoesNotChangeOutput) {
  const AttributedGraph g = RandomAttributed(13, /*n=*/30, /*num_attrs=*/6);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.1;
  options.top_k = 3;
  options.num_threads = 4;

  options.eval_batch_grain = 0;  // one evaluation per task
  ScpmMiner unbatched_miner(options);
  Result<ScpmResult> unbatched = unbatched_miner.Mine(g);
  ASSERT_TRUE(unbatched.ok());
  for (std::size_t grain : {16u, 256u, 1u << 20}) {
    ScpmOptions batched = options;
    batched.eval_batch_grain = grain;
    ScpmMiner miner(batched);
    Result<ScpmResult> result = miner.Mine(g);
    ASSERT_TRUE(result.ok());
    ScpmResult normalized = std::move(result).value();
    EXPECT_LE(normalized.counters.evaluation_batches,
              unbatched->counters.evaluation_batches);
    normalized.counters.evaluation_batches =
        unbatched->counters.evaluation_batches;
    ExpectIdenticalResults(*unbatched, normalized);
  }
}

/// The hybrid sparse/dense representation must never change what is
/// mined: with the flag off (pure sorted-vector kernels) and on (dense
/// tidsets as bitmaps), output and every pre-existing counter are
/// byte-identical, for every thread count. The set-kernel counters
/// themselves are pinned across thread counts via
/// ExpectDeterministicAcrossThreadCounts (which compares all counters).
TEST(ParallelScpmTest, HybridSetsOnOffByteIdentical) {
  // Large enough that the 5% density rule genuinely promotes tidsets and
  // covered sets to bitmaps (universe 120, tidsets ~70 vertices).
  const AttributedGraph g = RandomAttributed(31, /*n=*/120, /*num_attrs=*/4,
                                             /*edge_p=*/0.08, /*attr_p=*/0.6);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 3;
  options.min_support = 4;
  options.min_epsilon = 0.05;
  options.top_k = 3;

  options.use_hybrid_sets = false;
  ScpmMiner plain_miner(options);
  Result<ScpmResult> plain = plain_miner.Mine(g);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(plain->counters.bitmap_intersections, 0u);
  EXPECT_EQ(plain->counters.galloping_intersections, 0u);
  EXPECT_EQ(plain->counters.dense_conversions, 0u);

  options.use_hybrid_sets = true;
  ScpmMiner hybrid_miner(options);
  Result<ScpmResult> hybrid = hybrid_miner.Mine(g);
  ASSERT_TRUE(hybrid.ok()) << hybrid.status();
  // The point of the test: the dense representation actually engaged.
  EXPECT_GT(hybrid->counters.dense_conversions, 0u);
  EXPECT_GT(hybrid->counters.bitmap_intersections, 0u);

  // Identical output modulo the set-kernel counters (zero when off).
  ScpmResult normalized = std::move(hybrid).value();
  normalized.counters.bitmap_intersections = 0;
  normalized.counters.galloping_intersections = 0;
  normalized.counters.chunked_intersections = 0;
  normalized.counters.dense_conversions = 0;
  normalized.counters.chunked_conversions = 0;
  ExpectIdenticalResults(*plain, normalized);

  // And both configurations are thread-count independent, including the
  // set-kernel counters of the hybrid run.
  for (bool hybrid_on : {false, true}) {
    ScpmOptions sweep = options;
    sweep.use_hybrid_sets = hybrid_on;
    ExpectDeterministicAcrossThreadCounts(g, sweep, nullptr);
  }
}

/// The SIMD dispatch path and the chunked-representation toggle are both
/// contractually unobservable: across {simd on/off} x {chunked on/off},
/// and for threads {1, 2, 8} within each cell, the full mining output —
/// including every counter — must be byte-identical. (SIMD is bit-exact;
/// on this graph's universe the chunked band never engages, so its
/// counters are zero in all four cells and the comparison is exact.)
TEST(ParallelScpmTest, SimdAndChunkedDispatchByteIdentical) {
  // Restore the process-global dispatch state even when an assertion
  // fires mid-loop, so a failure here cannot poison later tests.
  struct DispatchRestore {
    ~DispatchRestore() {
      SetSimdDispatch(true);
      HybridVertexSet::SetChunkedEnabled(true);
    }
  } restore;
  const AttributedGraph g = RandomAttributed(37, /*n=*/120, /*num_attrs=*/4,
                                             /*edge_p=*/0.08, /*attr_p=*/0.6);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 3;
  options.min_support = 4;
  options.min_epsilon = 0.05;
  options.top_k = 3;

  options.num_threads = 1;
  ScpmMiner baseline_miner(options);
  Result<ScpmResult> baseline = baseline_miner.Mine(g);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GT(baseline->counters.bitmap_intersections, 0u);

  for (bool simd_on : {false, true}) {
    for (bool chunked_on : {false, true}) {
      SetSimdDispatch(simd_on);
      HybridVertexSet::SetChunkedEnabled(chunked_on);
      for (std::size_t threads : {1u, 2u, 8u}) {
        ScpmOptions cell = options;
        cell.num_threads = threads;
        ScpmMiner miner(cell);
        Result<ScpmResult> result = miner.Mine(g);
        ASSERT_TRUE(result.ok()) << result.status();
        ExpectIdenticalResults(*baseline, *result);
      }
    }
  }
}

TEST(ScpmOptionsTest, RejectsAbsurdSpawnDepth) {
  ScpmOptions o;
  o.intra_search_spawn_depth = 17;
  EXPECT_FALSE(o.Validate().ok());
  o.intra_search_spawn_depth = 16;
  EXPECT_TRUE(o.Validate().ok());
}

TEST(ScpmOptionsTest, RejectsZeroThreads) {
  ScpmOptions o;
  o.num_threads = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(ScpmOptionsTest, RejectsAbsurdThreadCounts) {
  ScpmOptions o;
  // A negative CLI value wrapped through size_t must be a clean error,
  // not an allocation abort.
  o.num_threads = static_cast<std::size_t>(-1);
  EXPECT_FALSE(o.Validate().ok());
  o.num_threads = 1024;
  EXPECT_TRUE(o.Validate().ok());
  o.num_threads = 1025;
  EXPECT_FALSE(o.Validate().ok());
}

// ------------------------------------------------------- SCORP baseline

TEST(ScorpTest, ReportsCompletePatternSets) {
  const AttributedGraph g = PaperExampleGraph();
  ScorpMiner scorp(Table1Options());
  Result<ScpmResult> result = scorp.Mine(g);
  ASSERT_TRUE(result.ok()) << result.status();
  // SCORP with a top-k large enough equals SCPM here: 7 patterns.
  EXPECT_EQ(result->patterns.size(), 7u);
}

TEST(ScorpTest, IgnoresDeltaConfiguration) {
  ScpmOptions options = Table1Options();
  options.min_delta = 1e12;  // Would filter everything under SCPM.
  ScorpMiner scorp(options);
  EXPECT_DOUBLE_EQ(scorp.options().min_delta, 0.0);
  EXPECT_EQ(scorp.options().pattern_scope, PatternScope::kAllMaximal);
  const AttributedGraph g = PaperExampleGraph();
  Result<ScpmResult> result = scorp.Mine(g);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->patterns.empty());
}

class ScorpSweep : public ::testing::TestWithParam<int> {};

TEST_P(ScorpSweep, SupersetOfScpmTopK) {
  const AttributedGraph g = RandomAttributed(GetParam());
  ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 3;
  options.min_support = 4;
  options.min_epsilon = 0.2;
  options.top_k = 2;

  ScpmMiner scpm(options);
  ScorpMiner scorp(options);
  Result<ScpmResult> top = scpm.Mine(g);
  Result<ScpmResult> all = scorp.Mine(g);
  ASSERT_TRUE(top.ok());
  ASSERT_TRUE(all.ok());
  // Same attribute sets; SCORP reports at least as many patterns, and the
  // per-set top-k keys must be a prefix of SCORP's ranked pattern keys.
  ASSERT_EQ(top->attribute_sets.size(), all->attribute_sets.size());
  EXPECT_GE(all->patterns.size(), top->patterns.size());
  std::map<AttributeSet, std::vector<std::pair<std::size_t, double>>>
      top_keys, all_keys;
  for (const auto& p : top->patterns) {
    top_keys[p.attributes].push_back({p.size(), p.min_degree_ratio});
  }
  for (const auto& p : all->patterns) {
    all_keys[p.attributes].push_back({p.size(), p.min_degree_ratio});
  }
  for (auto& [attrs, keys] : top_keys) {
    auto it = all_keys.find(attrs);
    ASSERT_NE(it, all_keys.end());
    auto desc = [](const std::pair<std::size_t, double>& a,
                   const std::pair<std::size_t, double>& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second > b.second;
    };
    std::sort(keys.begin(), keys.end(), desc);
    std::sort(it->second.begin(), it->second.end(), desc);
    ASSERT_LE(keys.size(), it->second.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      EXPECT_EQ(keys[i], it->second[i]) << "attr set size " << attrs.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScorpSweep, ::testing::Range(0, 6));

// -------------------------------------------------------------- exports

TEST(ExportTest, AttributeSetsCsvShape) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmMiner miner(Table1Options());
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  ASSERT_TRUE(WriteAttributeSetsCsv(g, *result, os).ok());
  std::istringstream in(os.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "attributes,support,covered,epsilon,expected_epsilon,delta");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    ++rows;
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 5);
  }
  EXPECT_EQ(rows, result->attribute_sets.size());
}

TEST(ExportTest, PatternsCsvShape) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmMiner miner(Table1Options());
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  ASSERT_TRUE(WritePatternsCsv(g, *result, os).ok());
  std::istringstream in(os.str());
  std::string line;
  std::size_t rows = 0;
  std::getline(in, line);  // header
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, result->patterns.size());
}

TEST(ExportTest, CsvEscape) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(ExportTest, FileRoundTrip) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmMiner miner(Table1Options());
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  const auto path = std::filesystem::temp_directory_path() /
                    ("scpm_export_" + std::to_string(::getpid()) + ".csv");
  ASSERT_TRUE(WritePatternsCsv(g, *result, path.string()).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::filesystem::remove(path);
}

TEST(ExportTest, MissingDirectoryIsIoError) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmResult empty;
  EXPECT_EQ(WritePatternsCsv(g, empty, "/nonexistent/dir/x.csv").code(),
            StatusCode::kIoError);
}

// ----------------------------------------------------- sim-exp null model

TEST(ScpmTest, MinesWithSimulationNullModel) {
  const AttributedGraph g = PaperExampleGraph();
  Graph topology = g.graph();
  SimExpectationModel model(topology, {.gamma = 0.6, .min_size = 4},
                            /*num_samples=*/10, /*seed=*/3);
  ScpmOptions options = Table1Options();
  ScpmMiner miner(options, &model);
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  for (const auto& s : result->attribute_sets) {
    EXPECT_GE(s.expected_epsilon, 0.0);
    EXPECT_LE(s.expected_epsilon, 1.0);
  }
}

// -------------------------------------------------- ranking / statistics

TEST(PatternRankingTest, RankAttributeSetsOrders) {
  std::vector<AttributeSetStats> stats(3);
  stats[0].attributes = {0};
  stats[0].support = 10;
  stats[0].epsilon = 0.2;
  stats[0].delta = 5;
  stats[1].attributes = {1};
  stats[1].support = 30;
  stats[1].epsilon = 0.1;
  stats[1].delta = 50;
  stats[2].attributes = {2};
  stats[2].support = 20;
  stats[2].epsilon = 0.9;
  stats[2].delta = 1;

  auto by_support = RankAttributeSets(stats, AttributeSetOrder::kBySupport);
  EXPECT_EQ(by_support[0].support, 30u);
  auto by_eps = RankAttributeSets(stats, AttributeSetOrder::kByEpsilon);
  EXPECT_DOUBLE_EQ(by_eps[0].epsilon, 0.9);
  auto by_delta = RankAttributeSets(stats, AttributeSetOrder::kByDelta);
  EXPECT_DOUBLE_EQ(by_delta[0].delta, 50.0);
}

TEST(StatisticsTest, SummaryAverages) {
  std::vector<AttributeSetStats> stats(10);
  for (int i = 0; i < 10; ++i) {
    stats[i].epsilon = 0.1 * (i + 1);  // 0.1 .. 1.0
    stats[i].delta = 10.0 * (i + 1);   // 10 .. 100
  }
  const OutputSummary summary = SummarizeOutput(stats);
  EXPECT_EQ(summary.num_attribute_sets, 10u);
  EXPECT_NEAR(summary.avg_epsilon_global, 0.55, 1e-12);
  EXPECT_NEAR(summary.avg_epsilon_top10, 1.0, 1e-12);  // top 1 of 10
  EXPECT_NEAR(summary.avg_delta_global, 55.0, 1e-12);
  EXPECT_NEAR(summary.avg_delta_top10, 100.0, 1e-12);
}

TEST(StatisticsTest, EmptySummary) {
  const OutputSummary summary = SummarizeOutput({});
  EXPECT_EQ(summary.num_attribute_sets, 0u);
  EXPECT_DOUBLE_EQ(summary.avg_epsilon_global, 0.0);
}

TEST(ReportTest, PrintsTables) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmMiner miner(Table1Options());
  Result<ScpmResult> result = miner.Mine(g);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  PrintTopAttributeSets(os, g, result->attribute_sets, 5);
  EXPECT_NE(os.str().find("top by support"), std::string::npos);
  EXPECT_NE(os.str().find("{A}"), std::string::npos);
  std::ostringstream table;
  PrintPatternTable(table, g, *result);
  EXPECT_NE(table.str().find("gamma"), std::string::npos);
}

}  // namespace
}  // namespace scpm
