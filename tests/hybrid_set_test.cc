// Unit tests for util/hybrid_set: the VertexBitset word kernels and the
// HybridVertexSet representation switch must match the sorted-vector
// reference ops exactly at every density and skew — byte-identical
// miner output depends on it.

#include <algorithm>

#include <gtest/gtest.h>

#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

VertexSet RandomSet(Rng& rng, VertexId universe, double density) {
  const auto k = static_cast<std::uint32_t>(
      static_cast<double>(universe) * density);
  return rng.SampleWithoutReplacement(universe, std::min(k, universe));
}

TEST(VertexBitsetTest, SetTestCountRoundtrip) {
  VertexBitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  for (VertexId v : {0u, 63u, 64u, 65u, 129u}) bits.Set(v);
  EXPECT_EQ(bits.Count(), 5u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_FALSE(bits.Test(62));
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 4u);
  VertexSet out;
  bits.AppendTo(&out);
  EXPECT_EQ(out, (VertexSet{0, 64, 65, 129}));
}

TEST(VertexBitsetTest, FromSortedMatchesMembership) {
  Rng rng(3);
  const VertexSet v = RandomSet(rng, 500, 0.2);
  const VertexBitset bits = VertexBitset::FromSorted(v, 500);
  EXPECT_EQ(bits.Count(), v.size());
  for (VertexId x = 0; x < 500; ++x) {
    EXPECT_EQ(bits.Test(x), SortedContains(v, x)) << x;
  }
  VertexSet back;
  bits.AppendTo(&back);
  EXPECT_EQ(back, v);
}

TEST(VertexBitsetTest, AndAndNotMatchReference) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const VertexId universe = 64 + static_cast<VertexId>(rng.NextBounded(400));
    const VertexSet a = RandomSet(rng, universe, rng.NextDouble());
    const VertexSet b = RandomSet(rng, universe, rng.NextDouble());
    const VertexBitset ba = VertexBitset::FromSorted(a, universe);
    const VertexBitset bb = VertexBitset::FromSorted(b, universe);

    VertexSet want;
    SortedIntersect(a, b, &want);
    VertexBitset got(universe);
    EXPECT_EQ(VertexBitset::And(ba, bb, &got), want.size());
    EXPECT_EQ(VertexBitset::AndCount(ba, bb), want.size());
    VertexSet got_vec;
    got.AppendTo(&got_vec);
    EXPECT_EQ(got_vec, want);

    VertexSet want_diff;
    SortedDifference(a, b, &want_diff);
    VertexBitset diff(universe);
    EXPECT_EQ(VertexBitset::AndNot(ba, bb, &diff), want_diff.size());
    got_vec.clear();
    diff.AppendTo(&got_vec);
    EXPECT_EQ(got_vec, want_diff);
  }
}

TEST(VertexBitsetTest, AndAllowsAliasedOutput) {
  Rng rng(5);
  const VertexSet a = RandomSet(rng, 300, 0.3);
  const VertexSet b = RandomSet(rng, 300, 0.3);
  VertexSet want;
  SortedIntersect(a, b, &want);
  VertexBitset ba = VertexBitset::FromSorted(a, 300);
  const VertexBitset bb = VertexBitset::FromSorted(b, 300);
  EXPECT_EQ(VertexBitset::And(ba, bb, &ba), want.size());
  VertexSet got;
  ba.AppendTo(&got);
  EXPECT_EQ(got, want);
}

TEST(HybridVertexSetTest, DensityRule) {
  // Below one word the bitmap never engages.
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(63, 63));
  // At universe 64+ the 5% knee decides.
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(0, 1000));
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(49, 1000));
  EXPECT_TRUE(HybridVertexSet::ShouldBeDense(50, 1000));
  EXPECT_TRUE(HybridVertexSet::ShouldBeDense(1000, 1000));
  // Universe 0 = unknown: never dense (the hybrid-off escape hatch).
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(1000, 0));
}

TEST(HybridVertexSetTest, ViewBorrowsWithoutCopy) {
  const VertexSet v{2, 5, 9};
  HybridVertexSet set = HybridVertexSet::View(&v, 1000);
  EXPECT_TRUE(set.is_view());
  EXPECT_FALSE(set.dense());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(&set.sorted(), &v);  // genuinely borrowed
  // Sparse by the rule: Normalize leaves the borrow in place.
  set.Normalize(nullptr);
  EXPECT_TRUE(set.is_view());
}

TEST(HybridVertexSetTest, NormalizePromotesDenseViews) {
  Rng rng(17);
  const VertexSet v = RandomSet(rng, 200, 0.5);
  SetOpStats stats;
  HybridVertexSet set = HybridVertexSet::View(&v, 200);
  set.Normalize(&stats);
  EXPECT_TRUE(set.dense());
  EXPECT_FALSE(set.is_view());
  EXPECT_EQ(stats.dense_conversions, 1u);
  EXPECT_EQ(set.ToVector(), v);
  EXPECT_EQ(set.size(), v.size());
}

TEST(HybridVertexSetTest, FromVectorPicksRepresentation) {
  Rng rng(23);
  SetOpStats stats;
  const VertexSet sparse_src = RandomSet(rng, 10000, 0.01);
  HybridVertexSet sparse =
      HybridVertexSet::FromVector(sparse_src, 10000, &stats);
  EXPECT_FALSE(sparse.dense());
  EXPECT_EQ(stats.dense_conversions, 0u);

  const VertexSet dense_src = RandomSet(rng, 10000, 0.2);
  HybridVertexSet dense = HybridVertexSet::FromVector(dense_src, 10000, &stats);
  EXPECT_TRUE(dense.dense());
  EXPECT_EQ(stats.dense_conversions, 1u);
  EXPECT_EQ(dense.ToVector(), dense_src);
  for (VertexId x : dense_src) EXPECT_TRUE(dense.Contains(x));
}

TEST(HybridVertexSetTest, TakeVectorFromEveryRepresentation) {
  Rng rng(29);
  const VertexSet src = RandomSet(rng, 300, 0.4);
  HybridVertexSet view = HybridVertexSet::View(&src, 0);
  EXPECT_EQ(view.TakeVector(), src);

  HybridVertexSet owned = HybridVertexSet::FromVector(src, 0, nullptr);
  EXPECT_EQ(owned.TakeVector(), src);
  EXPECT_TRUE(owned.empty());  // consumed

  HybridVertexSet dense = HybridVertexSet::FromVector(src, 300, nullptr);
  ASSERT_TRUE(dense.dense());
  EXPECT_EQ(dense.TakeVector(), src);
}

/// The core contract: Intersect/IntersectSize match the sorted-vector
/// reference for every representation pairing, at every density x skew.
TEST(HybridVertexSetTest, IntersectionMatchesReferenceAcrossDensities) {
  Rng rng(41);
  const VertexId universe = 2048;
  const double densities[] = {0.002, 0.01, 0.04, 0.06, 0.3, 0.8};
  for (double da : densities) {
    for (double db : densities) {
      const VertexSet a = RandomSet(rng, universe, da);
      const VertexSet b = RandomSet(rng, universe, db);
      VertexSet want;
      SortedIntersect(a, b, &want);
      ASSERT_EQ(SortedIntersectSize(a, b), want.size());

      // All four representation pairings (hybrid x hybrid, and the
      // universe-0 sparse pin) must agree with the reference.
      struct Pairing {
        VertexId ua, ub;
      };
      for (const Pairing& p :
           {Pairing{universe, universe}, Pairing{universe, 0},
            Pairing{0, universe}, Pairing{0, 0}}) {
        SetOpStats stats;
        HybridVertexSet ha = HybridVertexSet::FromVector(a, p.ua, &stats);
        HybridVertexSet hb = HybridVertexSet::FromVector(b, p.ub, &stats);
        HybridVertexSet out;
        HybridVertexSet::Intersect(ha, hb, &out, &stats);
        EXPECT_EQ(out.ToVector(), want)
            << "da=" << da << " db=" << db << " ua=" << p.ua
            << " ub=" << p.ub;
        EXPECT_EQ(out.size(), want.size());
        EXPECT_EQ(HybridVertexSet::IntersectSize(ha, hb, &stats),
                  want.size());
        // The result representation follows the density rule.
        EXPECT_EQ(out.dense(),
                  HybridVertexSet::ShouldBeDense(out.size(), out.universe()));
      }
    }
  }
}

TEST(HybridVertexSetTest, IntersectionOfSkewedPairsGallops) {
  Rng rng(43);
  const VertexSet big = RandomSet(rng, 100000, 0.02);  // sparse, large
  const VertexSet small{5, 777, 40000, 99999};
  VertexSet want;
  SortedIntersect(big, small, &want);

  SetOpStats stats;
  const HybridVertexSet hb = HybridVertexSet::View(&big, 100000);
  const HybridVertexSet hs = HybridVertexSet::View(&small, 100000);
  HybridVertexSet out;
  HybridVertexSet::Intersect(hb, hs, &out, &stats);
  EXPECT_EQ(out.ToVector(), want);
  EXPECT_EQ(stats.galloping_intersections, 1u);
  EXPECT_EQ(stats.bitmap_intersections, 0u);
}

TEST(HybridVertexSetTest, KernelCountersAreDeterministic) {
  // The same op sequence must produce the same counters every time — the
  // miners rely on it for thread-count-independent totals.
  Rng rng(47);
  const VertexSet a = RandomSet(rng, 1024, 0.3);
  const VertexSet b = RandomSet(rng, 1024, 0.1);
  const VertexSet c = RandomSet(rng, 1024, 0.002);
  SetOpStats first, second;
  for (SetOpStats* stats : {&first, &second}) {
    HybridVertexSet ha = HybridVertexSet::FromVector(a, 1024, stats);
    HybridVertexSet hb = HybridVertexSet::FromVector(b, 1024, stats);
    HybridVertexSet hc = HybridVertexSet::FromVector(c, 1024, stats);
    HybridVertexSet out;
    HybridVertexSet::Intersect(ha, hb, &out, stats);  // dense x dense
    HybridVertexSet::Intersect(ha, hc, &out, stats);  // dense x sparse
    HybridVertexSet::Intersect(hb, hc, &out, stats);  // dense x sparse
  }
  EXPECT_EQ(first.bitmap_intersections, second.bitmap_intersections);
  EXPECT_EQ(first.galloping_intersections, second.galloping_intersections);
  EXPECT_EQ(first.dense_conversions, second.dense_conversions);
  EXPECT_EQ(first.bitmap_intersections, 3u);
  EXPECT_EQ(first.dense_conversions, 2u);  // a and b went dense

  SetOpStats merged;
  merged.MergeFrom(first);
  merged.MergeFrom(second);
  EXPECT_EQ(merged.bitmap_intersections, 6u);
  EXPECT_EQ(merged.dense_conversions, 4u);
}

TEST(HybridVertexSetTest, EmptyAndSelfIntersections) {
  const VertexSet empty;
  const VertexSet v{1, 2, 3};
  HybridVertexSet he = HybridVertexSet::View(&empty, 100);
  HybridVertexSet hv = HybridVertexSet::View(&v, 100);
  HybridVertexSet out;
  HybridVertexSet::Intersect(he, hv, &out, nullptr);
  EXPECT_TRUE(out.empty());
  HybridVertexSet::Intersect(hv, hv, &out, nullptr);
  EXPECT_EQ(out.ToVector(), v);
  EXPECT_EQ(HybridVertexSet::IntersectSize(he, he, nullptr), 0u);
}

TEST(HybridVertexSetTest, AppendToAppends) {
  Rng rng(53);
  const VertexSet v = RandomSet(rng, 256, 0.5);
  HybridVertexSet dense = HybridVertexSet::FromVector(v, 256, nullptr);
  ASSERT_TRUE(dense.dense());
  VertexSet out{7};
  dense.AppendTo(&out);
  ASSERT_EQ(out.size(), v.size() + 1);
  EXPECT_EQ(out.front(), 7u);
  EXPECT_TRUE(std::equal(v.begin(), v.end(), out.begin() + 1));
}

}  // namespace
}  // namespace scpm
