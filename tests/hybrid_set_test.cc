// Unit tests for util/hybrid_set: the VertexBitset word kernels and the
// HybridVertexSet representation switch must match the sorted-vector
// reference ops exactly at every density and skew — byte-identical
// miner output depends on it.

#include <algorithm>

#include <gtest/gtest.h>

#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

VertexSet RandomSet(Rng& rng, VertexId universe, double density) {
  const auto k = static_cast<std::uint32_t>(
      static_cast<double>(universe) * density);
  return rng.SampleWithoutReplacement(universe, std::min(k, universe));
}

TEST(VertexBitsetTest, SetTestCountRoundtrip) {
  VertexBitset bits(130);
  EXPECT_EQ(bits.Count(), 0u);
  for (VertexId v : {0u, 63u, 64u, 65u, 129u}) bits.Set(v);
  EXPECT_EQ(bits.Count(), 5u);
  EXPECT_TRUE(bits.Test(63));
  EXPECT_FALSE(bits.Test(62));
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 4u);
  VertexSet out;
  bits.AppendTo(&out);
  EXPECT_EQ(out, (VertexSet{0, 64, 65, 129}));
}

TEST(VertexBitsetTest, FromSortedMatchesMembership) {
  Rng rng(3);
  const VertexSet v = RandomSet(rng, 500, 0.2);
  const VertexBitset bits = VertexBitset::FromSorted(v, 500);
  EXPECT_EQ(bits.Count(), v.size());
  for (VertexId x = 0; x < 500; ++x) {
    EXPECT_EQ(bits.Test(x), SortedContains(v, x)) << x;
  }
  VertexSet back;
  bits.AppendTo(&back);
  EXPECT_EQ(back, v);
}

TEST(VertexBitsetTest, AndAndNotMatchReference) {
  Rng rng(11);
  for (int round = 0; round < 20; ++round) {
    const VertexId universe = 64 + static_cast<VertexId>(rng.NextBounded(400));
    const VertexSet a = RandomSet(rng, universe, rng.NextDouble());
    const VertexSet b = RandomSet(rng, universe, rng.NextDouble());
    const VertexBitset ba = VertexBitset::FromSorted(a, universe);
    const VertexBitset bb = VertexBitset::FromSorted(b, universe);

    VertexSet want;
    SortedIntersect(a, b, &want);
    VertexBitset got(universe);
    EXPECT_EQ(VertexBitset::And(ba, bb, &got), want.size());
    EXPECT_EQ(VertexBitset::AndCount(ba, bb), want.size());
    VertexSet got_vec;
    got.AppendTo(&got_vec);
    EXPECT_EQ(got_vec, want);

    VertexSet want_diff;
    SortedDifference(a, b, &want_diff);
    VertexBitset diff(universe);
    EXPECT_EQ(VertexBitset::AndNot(ba, bb, &diff), want_diff.size());
    got_vec.clear();
    diff.AppendTo(&got_vec);
    EXPECT_EQ(got_vec, want_diff);
  }
}

TEST(VertexBitsetTest, AndAllowsAliasedOutput) {
  Rng rng(5);
  const VertexSet a = RandomSet(rng, 300, 0.3);
  const VertexSet b = RandomSet(rng, 300, 0.3);
  VertexSet want;
  SortedIntersect(a, b, &want);
  VertexBitset ba = VertexBitset::FromSorted(a, 300);
  const VertexBitset bb = VertexBitset::FromSorted(b, 300);
  EXPECT_EQ(VertexBitset::And(ba, bb, &ba), want.size());
  VertexSet got;
  ba.AppendTo(&got);
  EXPECT_EQ(got, want);
}

TEST(HybridVertexSetTest, DensityRule) {
  // Below one word the bitmap never engages.
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(63, 63));
  // At universe 64+ the 5% knee decides.
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(0, 1000));
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(49, 1000));
  EXPECT_TRUE(HybridVertexSet::ShouldBeDense(50, 1000));
  EXPECT_TRUE(HybridVertexSet::ShouldBeDense(1000, 1000));
  // Universe 0 = unknown: never dense (the hybrid-off escape hatch).
  EXPECT_FALSE(HybridVertexSet::ShouldBeDense(1000, 0));
}

TEST(HybridVertexSetTest, ViewBorrowsWithoutCopy) {
  const VertexSet v{2, 5, 9};
  HybridVertexSet set = HybridVertexSet::View(&v, 1000);
  EXPECT_TRUE(set.is_view());
  EXPECT_FALSE(set.dense());
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(&set.sorted(), &v);  // genuinely borrowed
  // Sparse by the rule: Normalize leaves the borrow in place.
  set.Normalize(nullptr);
  EXPECT_TRUE(set.is_view());
}

TEST(HybridVertexSetTest, NormalizePromotesDenseViews) {
  Rng rng(17);
  const VertexSet v = RandomSet(rng, 200, 0.5);
  SetOpStats stats;
  HybridVertexSet set = HybridVertexSet::View(&v, 200);
  set.Normalize(&stats);
  EXPECT_TRUE(set.dense());
  EXPECT_FALSE(set.is_view());
  EXPECT_EQ(stats.dense_conversions, 1u);
  EXPECT_EQ(set.ToVector(), v);
  EXPECT_EQ(set.size(), v.size());
}

TEST(HybridVertexSetTest, FromVectorPicksRepresentation) {
  Rng rng(23);
  SetOpStats stats;
  const VertexSet sparse_src = RandomSet(rng, 10000, 0.01);
  HybridVertexSet sparse =
      HybridVertexSet::FromVector(sparse_src, 10000, &stats);
  EXPECT_FALSE(sparse.dense());
  EXPECT_EQ(stats.dense_conversions, 0u);

  const VertexSet dense_src = RandomSet(rng, 10000, 0.2);
  HybridVertexSet dense = HybridVertexSet::FromVector(dense_src, 10000, &stats);
  EXPECT_TRUE(dense.dense());
  EXPECT_EQ(stats.dense_conversions, 1u);
  EXPECT_EQ(dense.ToVector(), dense_src);
  for (VertexId x : dense_src) EXPECT_TRUE(dense.Contains(x));
}

TEST(HybridVertexSetTest, TakeVectorFromEveryRepresentation) {
  Rng rng(29);
  const VertexSet src = RandomSet(rng, 300, 0.4);
  HybridVertexSet view = HybridVertexSet::View(&src, 0);
  EXPECT_EQ(view.TakeVector(), src);

  HybridVertexSet owned = HybridVertexSet::FromVector(src, 0, nullptr);
  EXPECT_EQ(owned.TakeVector(), src);
  EXPECT_TRUE(owned.empty());  // consumed

  HybridVertexSet dense = HybridVertexSet::FromVector(src, 300, nullptr);
  ASSERT_TRUE(dense.dense());
  EXPECT_EQ(dense.TakeVector(), src);
}

/// The core contract: Intersect/IntersectSize match the sorted-vector
/// reference for every representation pairing, at every density x skew.
TEST(HybridVertexSetTest, IntersectionMatchesReferenceAcrossDensities) {
  Rng rng(41);
  const VertexId universe = 2048;
  const double densities[] = {0.002, 0.01, 0.04, 0.06, 0.3, 0.8};
  for (double da : densities) {
    for (double db : densities) {
      const VertexSet a = RandomSet(rng, universe, da);
      const VertexSet b = RandomSet(rng, universe, db);
      VertexSet want;
      SortedIntersect(a, b, &want);
      ASSERT_EQ(SortedIntersectSize(a, b), want.size());

      // All four representation pairings (hybrid x hybrid, and the
      // universe-0 sparse pin) must agree with the reference.
      struct Pairing {
        VertexId ua, ub;
      };
      for (const Pairing& p :
           {Pairing{universe, universe}, Pairing{universe, 0},
            Pairing{0, universe}, Pairing{0, 0}}) {
        SetOpStats stats;
        HybridVertexSet ha = HybridVertexSet::FromVector(a, p.ua, &stats);
        HybridVertexSet hb = HybridVertexSet::FromVector(b, p.ub, &stats);
        HybridVertexSet out;
        HybridVertexSet::Intersect(ha, hb, &out, &stats);
        EXPECT_EQ(out.ToVector(), want)
            << "da=" << da << " db=" << db << " ua=" << p.ua
            << " ub=" << p.ub;
        EXPECT_EQ(out.size(), want.size());
        EXPECT_EQ(HybridVertexSet::IntersectSize(ha, hb, &stats),
                  want.size());
        // The result representation follows the density rule.
        EXPECT_EQ(out.dense(),
                  HybridVertexSet::ShouldBeDense(out.size(), out.universe()));
      }
    }
  }
}

TEST(HybridVertexSetTest, IntersectionOfSkewedPairsGallops) {
  Rng rng(43);
  const VertexSet big = RandomSet(rng, 100000, 0.02);  // sparse, large
  const VertexSet small{5, 777, 40000, 99999};
  VertexSet want;
  SortedIntersect(big, small, &want);

  SetOpStats stats;
  const HybridVertexSet hb = HybridVertexSet::View(&big, 100000);
  const HybridVertexSet hs = HybridVertexSet::View(&small, 100000);
  HybridVertexSet out;
  HybridVertexSet::Intersect(hb, hs, &out, &stats);
  EXPECT_EQ(out.ToVector(), want);
  EXPECT_EQ(stats.galloping_intersections, 1u);
  EXPECT_EQ(stats.bitmap_intersections, 0u);
}

TEST(HybridVertexSetTest, KernelCountersAreDeterministic) {
  // The same op sequence must produce the same counters every time — the
  // miners rely on it for thread-count-independent totals.
  Rng rng(47);
  const VertexSet a = RandomSet(rng, 1024, 0.3);
  const VertexSet b = RandomSet(rng, 1024, 0.1);
  const VertexSet c = RandomSet(rng, 1024, 0.002);
  SetOpStats first, second;
  for (SetOpStats* stats : {&first, &second}) {
    HybridVertexSet ha = HybridVertexSet::FromVector(a, 1024, stats);
    HybridVertexSet hb = HybridVertexSet::FromVector(b, 1024, stats);
    HybridVertexSet hc = HybridVertexSet::FromVector(c, 1024, stats);
    HybridVertexSet out;
    HybridVertexSet::Intersect(ha, hb, &out, stats);  // dense x dense
    HybridVertexSet::Intersect(ha, hc, &out, stats);  // dense x sparse
    HybridVertexSet::Intersect(hb, hc, &out, stats);  // dense x sparse
  }
  EXPECT_EQ(first.bitmap_intersections, second.bitmap_intersections);
  EXPECT_EQ(first.galloping_intersections, second.galloping_intersections);
  EXPECT_EQ(first.dense_conversions, second.dense_conversions);
  EXPECT_EQ(first.bitmap_intersections, 3u);
  EXPECT_EQ(first.dense_conversions, 2u);  // a and b went dense

  SetOpStats merged;
  merged.MergeFrom(first);
  merged.MergeFrom(second);
  EXPECT_EQ(merged.bitmap_intersections, 6u);
  EXPECT_EQ(merged.dense_conversions, 4u);
}

TEST(HybridVertexSetTest, EmptyAndSelfIntersections) {
  const VertexSet empty;
  const VertexSet v{1, 2, 3};
  HybridVertexSet he = HybridVertexSet::View(&empty, 100);
  HybridVertexSet hv = HybridVertexSet::View(&v, 100);
  HybridVertexSet out;
  HybridVertexSet::Intersect(he, hv, &out, nullptr);
  EXPECT_TRUE(out.empty());
  HybridVertexSet::Intersect(hv, hv, &out, nullptr);
  EXPECT_EQ(out.ToVector(), v);
  EXPECT_EQ(HybridVertexSet::IntersectSize(he, he, nullptr), 0u);
}

// ----------------------------------------------------- ChunkedVertexSet

TEST(ChunkedVertexSetTest, FromSortedRoundtripMixedChunks) {
  // One bitmap chunk (>= kChunkDenseMin members), one sparse-array chunk,
  // and a straggler in a high chunk.
  Rng rng(61);
  VertexSet v;
  for (VertexId x :
       rng.SampleWithoutReplacement(40000, 700)) {  // chunk 0, dense
    v.push_back(x);
  }
  for (VertexId x : rng.SampleWithoutReplacement(5000, 30)) {  // chunk 1
    v.push_back(65536 + x);
  }
  v.push_back((7u << 16) + 12345);  // chunk 7, singleton
  SortUnique(&v);

  const ChunkedVertexSet c = ChunkedVertexSet::FromSorted(v);
  EXPECT_EQ(c.size(), v.size());
  ASSERT_EQ(c.chunks().size(), 3u);
  EXPECT_TRUE(c.chunks()[0].dense());
  EXPECT_FALSE(c.chunks()[1].dense());
  EXPECT_FALSE(c.chunks()[2].dense());

  VertexSet back;
  c.AppendTo(&back);
  EXPECT_EQ(back, v);
  for (VertexId x : v) EXPECT_TRUE(c.Test(x)) << x;
  EXPECT_FALSE(c.Test(3u << 16));
  EXPECT_FALSE(c.Test(65536 + 5001));
}

/// Chunk-wise And/AndCount/AndBits against the sorted-vector reference
/// across densities and overlap layouts — every in-chunk kernel pairing
/// (word-AND, probe, u16 merge) must agree exactly.
TEST(ChunkedVertexSetTest, AndMatchesReference) {
  Rng rng(67);
  const VertexId universe = 70000;  // 2 chunks, the 2nd partial
  for (double da : {0.001, 0.01, 0.03, 0.05, 0.2}) {
    for (double db : {0.001, 0.01, 0.03, 0.05, 0.2}) {
      const VertexSet a = rng.SampleWithoutReplacement(
          universe, static_cast<std::uint32_t>(universe * da));
      const VertexSet b = rng.SampleWithoutReplacement(
          universe, static_cast<std::uint32_t>(universe * db));
      VertexSet want;
      SortedIntersect(a, b, &want);

      const ChunkedVertexSet ca = ChunkedVertexSet::FromSorted(a);
      const ChunkedVertexSet cb = ChunkedVertexSet::FromSorted(b);
      ChunkedVertexSet out;
      EXPECT_EQ(ChunkedVertexSet::And(ca, cb, &out), want.size());
      VertexSet got;
      out.AppendTo(&got);
      EXPECT_EQ(got, want) << "da=" << da << " db=" << db;
      EXPECT_EQ(ChunkedVertexSet::AndCount(ca, cb), want.size());

      // Chunked x full-universe bitmap (the slice kernel).
      const VertexBitset bits_b = VertexBitset::FromSorted(b, universe);
      ChunkedVertexSet out2;
      EXPECT_EQ(ChunkedVertexSet::AndBits(ca, bits_b, &out2), want.size());
      got.clear();
      out2.AppendTo(&got);
      EXPECT_EQ(got, want) << "da=" << da << " db=" << db;
      EXPECT_EQ(ChunkedVertexSet::AndBitsCount(ca, bits_b), want.size());
    }
  }
}

TEST(ChunkedVertexSetTest, DisjointChunksIntersectEmpty) {
  Rng rng(71);
  VertexSet a, b;
  for (VertexId x : rng.SampleWithoutReplacement(60000, 800)) a.push_back(x);
  for (VertexId x : rng.SampleWithoutReplacement(60000, 800)) {
    b.push_back((2u << 16) + x);
  }
  const ChunkedVertexSet ca = ChunkedVertexSet::FromSorted(a);
  const ChunkedVertexSet cb = ChunkedVertexSet::FromSorted(b);
  ChunkedVertexSet out;
  EXPECT_EQ(ChunkedVertexSet::And(ca, cb, &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(out.chunks().size(), 0u);
  EXPECT_EQ(ChunkedVertexSet::AndCount(ca, cb), 0u);
}

// --------------------------------------------- three-way density rule

TEST(HybridVertexSetTest, ThreeWayDensityRule) {
  // Restore the chunked toggle even when an expectation fires after the
  // SetChunkedEnabled(false) block below.
  struct ChunkedRestore {
    ~ChunkedRestore() { HybridVertexSet::SetChunkedEnabled(true); }
  } restore;
  using Repr = HybridVertexSet::Repr;
  // Universe below one chunk: the chunked band never engages; the 5%
  // knee still decides dense.
  EXPECT_EQ(HybridVertexSet::PickRepresentation(49, 1000), Repr::kSparse);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(50, 1000), Repr::kDense);
  EXPECT_FALSE(HybridVertexSet::ShouldBeChunked(600, 65535));

  // Universe 70000: sparse below 0.5% (350), chunked in [350, 3500),
  // dense at >= 5% (3500).
  EXPECT_EQ(HybridVertexSet::PickRepresentation(349, 70000), Repr::kSparse);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(350, 70000), Repr::kChunked);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(3499, 70000), Repr::kChunked);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(3500, 70000), Repr::kDense);

  // Universe 0 = unknown: always sparse (the hybrid-off escape hatch).
  EXPECT_EQ(HybridVertexSet::PickRepresentation(100000, 0), Repr::kSparse);

  // The A/B toggle collapses the band back to sparse, deterministically.
  HybridVertexSet::SetChunkedEnabled(false);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(1000, 70000), Repr::kSparse);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(3500, 70000), Repr::kDense);
  HybridVertexSet::SetChunkedEnabled(true);
  EXPECT_EQ(HybridVertexSet::PickRepresentation(1000, 70000), Repr::kChunked);
}

/// The core contract extended to the third representation: every
/// representation pairing the rule can produce — sparse, chunked, and
/// dense on either side — matches the sorted-vector reference at every
/// density x universe, including universes below the chunk threshold.
TEST(HybridVertexSetTest, ThreeWayIntersectionMatchesReference) {
  Rng rng(73);
  const double densities[] = {0.001, 0.01, 0.03, 0.05, 0.2};
  for (VertexId universe : {50u, 64u, 1000u, 70000u}) {
    for (double da : densities) {
      for (double db : densities) {
        const auto ka = static_cast<std::uint32_t>(universe * da);
        const auto kb = static_cast<std::uint32_t>(universe * db);
        const VertexSet a = rng.SampleWithoutReplacement(universe, ka);
        const VertexSet b = rng.SampleWithoutReplacement(universe, kb);
        VertexSet want;
        SortedIntersect(a, b, &want);

        for (VertexId ua : {universe, 0u}) {
          for (VertexId ub : {universe, 0u}) {
            SetOpStats stats;
            HybridVertexSet ha = HybridVertexSet::FromVector(a, ua, &stats);
            HybridVertexSet hb = HybridVertexSet::FromVector(b, ub, &stats);
            EXPECT_EQ(ha.repr(),
                      HybridVertexSet::PickRepresentation(a.size(), ua));
            HybridVertexSet out;
            HybridVertexSet::Intersect(ha, hb, &out, &stats);
            EXPECT_EQ(out.ToVector(), want)
                << "universe=" << universe << " da=" << da << " db=" << db
                << " ua=" << ua << " ub=" << ub;
            EXPECT_EQ(out.size(), want.size());
            EXPECT_EQ(HybridVertexSet::IntersectSize(ha, hb, &stats),
                      want.size());
            // The result representation follows the three-way rule.
            EXPECT_EQ(out.repr(), HybridVertexSet::PickRepresentation(
                                      out.size(), out.universe()));
            // Membership agrees across representations.
            if (!want.empty()) {
              EXPECT_TRUE(out.Contains(want[want.size() / 2]));
            }
          }
        }
      }
    }
  }
}

TEST(HybridVertexSetTest, ChunkedIntersectionsAreCountedAndDeterministic) {
  Rng rng(79);
  const VertexId universe = 70000;
  const VertexSet a = rng.SampleWithoutReplacement(universe, 1000);
  const VertexSet b = rng.SampleWithoutReplacement(universe, 1000);
  const VertexSet c = rng.SampleWithoutReplacement(universe, 10000);
  const VertexSet d{5, 70000 - 1};
  SetOpStats first, second;
  for (SetOpStats* stats : {&first, &second}) {
    HybridVertexSet ha = HybridVertexSet::FromVector(a, universe, stats);
    HybridVertexSet hb = HybridVertexSet::FromVector(b, universe, stats);
    HybridVertexSet hc = HybridVertexSet::FromVector(c, universe, stats);
    HybridVertexSet hd = HybridVertexSet::FromVector(d, universe, stats);
    ASSERT_TRUE(ha.chunked());
    ASSERT_TRUE(hc.dense());
    ASSERT_TRUE(hd.sparse());
    HybridVertexSet out;
    HybridVertexSet::Intersect(ha, hb, &out, stats);  // chunked x chunked
    HybridVertexSet::Intersect(ha, hc, &out, stats);  // chunked x dense
    HybridVertexSet::Intersect(ha, hd, &out, stats);  // chunked x sparse
    EXPECT_EQ(HybridVertexSet::IntersectSize(ha, hb, stats),
              SortedIntersectSize(a, b));
  }
  EXPECT_EQ(first.chunked_intersections, 4u);
  EXPECT_EQ(first.chunked_conversions, 2u);  // a and b
  EXPECT_EQ(first.dense_conversions, 1u);    // c
  EXPECT_EQ(first.bitmap_intersections, 0u);
  EXPECT_EQ(first.chunked_intersections, second.chunked_intersections);
  EXPECT_EQ(first.chunked_conversions, second.chunked_conversions);

  SetOpStats merged;
  merged.MergeFrom(first);
  merged.MergeFrom(second);
  EXPECT_EQ(merged.chunked_intersections, 8u);
  EXPECT_EQ(merged.chunked_conversions, 4u);
}

TEST(HybridVertexSetTest, TakeVectorAndContainsFromChunked) {
  Rng rng(83);
  const VertexSet src = rng.SampleWithoutReplacement(70000, 1200);
  HybridVertexSet set = HybridVertexSet::FromVector(src, 70000, nullptr);
  ASSERT_TRUE(set.chunked());
  for (VertexId x : src) EXPECT_TRUE(set.Contains(x));
  EXPECT_EQ(set.ToVector(), src);
  EXPECT_EQ(set.TakeVector(), src);
  EXPECT_TRUE(set.empty());
}

TEST(HybridVertexSetTest, NormalizePromotesViewsIntoChunked) {
  Rng rng(89);
  const VertexSet v = rng.SampleWithoutReplacement(70000, 1000);
  SetOpStats stats;
  HybridVertexSet set = HybridVertexSet::View(&v, 70000);
  EXPECT_TRUE(set.sparse());
  set.Normalize(&stats);
  EXPECT_TRUE(set.chunked());
  EXPECT_FALSE(set.is_view());
  EXPECT_EQ(stats.chunked_conversions, 1u);
  EXPECT_EQ(stats.dense_conversions, 0u);
  EXPECT_EQ(set.ToVector(), v);
}

TEST(HybridVertexSetTest, AppendToAppends) {
  Rng rng(53);
  const VertexSet v = RandomSet(rng, 256, 0.5);
  HybridVertexSet dense = HybridVertexSet::FromVector(v, 256, nullptr);
  ASSERT_TRUE(dense.dense());
  VertexSet out{7};
  dense.AppendTo(&out);
  ASSERT_EQ(out.size(), v.size() + 1);
  EXPECT_EQ(out.front(), 7u);
  EXPECT_TRUE(std::equal(v.begin(), v.end(), out.begin() + 1));
}

}  // namespace
}  // namespace scpm
