// Query-server tests: byte-identity of server results against a direct
// ScpmMiner::Mine for thread counts {1, 2, 8} with the memo cold and
// hot, deterministic admission-control rejection at the configured queue
// depth, cancellation of queued and running queries, streaming sinks
// through the server, the wire protocol via HandleRequest, and
// memo-disabled operation. The concurrency tests run under TSan in CI.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/scpm.h"
#include "graph/attributed_graph.h"
#include "server/json.h"
#include "server/server.h"
#include "server/session.h"
#include "util/random.h"

namespace scpm {
namespace {

/// Paper parameters for Table 1 (see scpm_test.cc).
ScpmOptions Table1Options() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.6;
  o.quasi_clique.min_size = 4;
  o.min_support = 3;
  o.min_epsilon = 0.5;
  o.top_k = 10;
  return o;
}

/// Random attributed graph: ER topology + random attribute incidence
/// (same construction as engine_test.cc).
AttributedGraph RandomAttributed(int seed, VertexId n = 24,
                                 int num_attrs = 5, double edge_p = 0.3,
                                 double attr_p = 0.4) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_p) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttributeId id = builder.InternAttribute("a" + std::to_string(a));
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextDouble() < attr_p) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, id).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Rows and patterns only — what a memo-hot run must still reproduce
/// byte-identically (its work counters legitimately shrink).
void ExpectIdenticalRows(const ScpmResult& a, const ScpmResult& b) {
  ASSERT_EQ(a.attribute_sets.size(), b.attribute_sets.size());
  for (std::size_t i = 0; i < a.attribute_sets.size(); ++i) {
    const AttributeSetStats& x = a.attribute_sets[i];
    const AttributeSetStats& y = b.attribute_sets[i];
    EXPECT_EQ(x.attributes, y.attributes) << "row " << i;
    EXPECT_EQ(x.support, y.support);
    EXPECT_EQ(x.covered, y.covered);
    EXPECT_DOUBLE_EQ(x.epsilon, y.epsilon);
    EXPECT_DOUBLE_EQ(x.expected_epsilon, y.expected_epsilon);
    EXPECT_DOUBLE_EQ(x.delta, y.delta);
  }
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].attributes, b.patterns[i].attributes) << i;
    EXPECT_EQ(a.patterns[i].vertices, b.patterns[i].vertices) << i;
    EXPECT_DOUBLE_EQ(a.patterns[i].min_degree_ratio,
                     b.patterns[i].min_degree_ratio);
    EXPECT_DOUBLE_EQ(a.patterns[i].edge_density, b.patterns[i].edge_density);
  }
}

/// Full identity including every counter (memo-cold runs do all the
/// work, so even the work counters must match a direct Mine()).
void ExpectIdenticalResults(const ScpmResult& a, const ScpmResult& b) {
  ExpectIdenticalRows(a, b);
  EXPECT_EQ(a.counters.attribute_sets_evaluated,
            b.counters.attribute_sets_evaluated);
  EXPECT_EQ(a.counters.attribute_sets_reported,
            b.counters.attribute_sets_reported);
  EXPECT_EQ(a.counters.attribute_sets_extended,
            b.counters.attribute_sets_extended);
  EXPECT_EQ(a.counters.coverage_candidates, b.counters.coverage_candidates);
  EXPECT_EQ(a.counters.bitmap_intersections, b.counters.bitmap_intersections);
  EXPECT_EQ(a.counters.galloping_intersections,
            b.counters.galloping_intersections);
  EXPECT_EQ(a.counters.chunked_intersections,
            b.counters.chunked_intersections);
  EXPECT_EQ(a.counters.dense_conversions, b.counters.dense_conversions);
  EXPECT_EQ(a.counters.chunked_conversions, b.counters.chunked_conversions);
}

ScpmResult DirectMine(const AttributedGraph& graph,
                      const ScpmOptions& options) {
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(graph);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

QuerySpec AccumulateSpec(const ScpmOptions& options) {
  QuerySpec spec;
  spec.options = options;
  return spec;
}

std::shared_ptr<QuerySession> SubmitOk(ScpmServer* server, QuerySpec spec) {
  Result<std::shared_ptr<QuerySession>> session =
      server->Submit(std::move(spec));
  EXPECT_TRUE(session.ok()) << session.status();
  return std::move(session).value();
}

TEST(ServerTest, MatchesDirectMineMemoColdAndHotAcrossThreadCounts) {
  const AttributedGraph graph = RandomAttributed(42);
  const ScpmResult direct = DirectMine(graph, Table1Options());
  ASSERT_FALSE(direct.attribute_sets.empty());

  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ServerOptions options;
    options.threads = threads;
    options.max_concurrent = 2;
    ScpmServer server(&graph, options);
    server.Start();

    std::shared_ptr<QuerySession> cold =
        SubmitOk(&server, AccumulateSpec(Table1Options()));
    cold->WaitTerminal();
    ASSERT_EQ(cold->state(), QueryState::kDone);
    EXPECT_TRUE(cold->run().exhausted);
    // Cold: all evaluations did real work, so the full counter set
    // matches a direct Mine().
    ExpectIdenticalResults(cold->result(), direct);
    EXPECT_EQ(cold->run().memo_hits, 0u);
    EXPECT_EQ(cold->run().memo_misses,
              cold->result().counters.attribute_sets_evaluated);

    std::shared_ptr<QuerySession> hot =
        SubmitOk(&server, AccumulateSpec(Table1Options()));
    hot->WaitTerminal();
    ASSERT_EQ(hot->state(), QueryState::kDone);
    // Hot: rows and patterns are byte-identical, every evaluation was a
    // replay, and the deterministic lattice counters did not move.
    ExpectIdenticalRows(hot->result(), direct);
    EXPECT_EQ(hot->run().memo_hits,
              hot->result().counters.attribute_sets_evaluated);
    EXPECT_EQ(hot->run().memo_misses, 0u);
    EXPECT_EQ(hot->result().counters.attribute_sets_evaluated,
              direct.counters.attribute_sets_evaluated);
    EXPECT_EQ(hot->result().counters.attribute_sets_reported,
              direct.counters.attribute_sets_reported);
    EXPECT_EQ(hot->result().counters.coverage_candidates, 0u);
  }
}

TEST(ServerTest, ConcurrentQueriesStayIsolated) {
  const AttributedGraph graph = RandomAttributed(11);
  ScpmOptions loose = Table1Options();
  loose.min_support = 2;
  loose.min_epsilon = 0.3;
  ScpmOptions strict = Table1Options();
  strict.min_epsilon = 0.7;

  const ScpmResult direct_base = DirectMine(graph, Table1Options());
  const ScpmResult direct_loose = DirectMine(graph, loose);
  const ScpmResult direct_strict = DirectMine(graph, strict);

  ServerOptions options;
  options.threads = 4;
  options.max_concurrent = 3;
  ScpmServer server(&graph, options);
  server.Start();

  // Three different fingerprints mine concurrently over one pool; two
  // more repeat the first spec and may race it on the same memo keys.
  std::vector<std::shared_ptr<QuerySession>> sessions;
  sessions.push_back(SubmitOk(&server, AccumulateSpec(Table1Options())));
  sessions.push_back(SubmitOk(&server, AccumulateSpec(loose)));
  sessions.push_back(SubmitOk(&server, AccumulateSpec(strict)));
  sessions.push_back(SubmitOk(&server, AccumulateSpec(Table1Options())));
  sessions.push_back(SubmitOk(&server, AccumulateSpec(Table1Options())));
  for (const auto& session : sessions) session->WaitTerminal();
  for (const auto& session : sessions) {
    ASSERT_EQ(session->state(), QueryState::kDone);
  }

  ExpectIdenticalRows(sessions[0]->result(), direct_base);
  ExpectIdenticalRows(sessions[1]->result(), direct_loose);
  ExpectIdenticalRows(sessions[2]->result(), direct_strict);
  ExpectIdenticalRows(sessions[3]->result(), direct_base);
  ExpectIdenticalRows(sessions[4]->result(), direct_base);
  // Whatever the interleaving, every evaluation either hit or missed.
  for (const auto& session : sessions) {
    EXPECT_EQ(session->run().memo_hits + session->run().memo_misses,
              session->result().counters.attribute_sets_evaluated);
  }
}

TEST(ServerTest, AdmissionRejectsDeterministicallyAtQueueDepth) {
  const AttributedGraph graph = RandomAttributed(3);
  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.queue_depth = 2;
  ScpmServer server(&graph, options);
  // No Start() yet: the queue fills deterministically.

  std::shared_ptr<QuerySession> first =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  std::shared_ptr<QuerySession> second =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  Result<std::shared_ptr<QuerySession>> third =
      server.Submit(AccumulateSpec(Table1Options()));
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);

  server.Start();
  first->WaitTerminal();
  second->WaitTerminal();
  EXPECT_EQ(first->state(), QueryState::kDone);
  EXPECT_EQ(second->state(), QueryState::kDone);

  // The queue drained: admission works again.
  std::shared_ptr<QuerySession> fourth =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  fourth->WaitTerminal();
  EXPECT_EQ(fourth->state(), QueryState::kDone);
}

TEST(ServerTest, CancelQueuedQueryNeverRuns) {
  const AttributedGraph graph = RandomAttributed(3);
  ServerOptions options;
  options.max_concurrent = 1;
  ScpmServer server(&graph, options);

  std::shared_ptr<QuerySession> session =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  Result<QueryState> observed = server.Cancel(session->id());
  ASSERT_TRUE(observed.ok());
  EXPECT_EQ(*observed, QueryState::kQueued);
  EXPECT_EQ(session->state(), QueryState::kCancelled);
  EXPECT_EQ(session->error().code(), StatusCode::kCancelled);

  // The driver skips the cancelled session and serves the next one.
  server.Start();
  std::shared_ptr<QuerySession> live =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  live->WaitTerminal();
  EXPECT_EQ(live->state(), QueryState::kDone);
  EXPECT_EQ(session->state(), QueryState::kCancelled);
}

TEST(ServerTest, CancelRunningQueryCutsAndFreesTheSlot) {
  // A lattice big enough that the query cannot finish before the cancel
  // lands (hundreds of thousands of evaluations at these thresholds).
  const AttributedGraph graph = RandomAttributed(7, 80, 14, 0.3, 0.5);
  ScpmOptions heavy;
  heavy.quasi_clique.gamma = 0.5;
  heavy.quasi_clique.min_size = 3;
  heavy.min_support = 1;
  heavy.min_epsilon = 0.0;

  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  ScpmServer server(&graph, options);
  server.Start();

  std::shared_ptr<QuerySession> session =
      SubmitOk(&server, AccumulateSpec(heavy));
  while (session->state() == QueryState::kQueued) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(session->state(), QueryState::kRunning);
  server.Cancel(session->id());
  session->WaitTerminal();

  EXPECT_EQ(session->state(), QueryState::kCancelled);
  EXPECT_EQ(session->error().code(), StatusCode::kCancelled);
  EXPECT_FALSE(session->run().exhausted);

  // The driver slot is free again: a budgeted follow-up query runs to a
  // normal (budget-cut) completion instead of waiting behind a zombie.
  QuerySpec follow_up = AccumulateSpec(heavy);
  follow_up.budget.deadline_ms = 100;
  std::shared_ptr<QuerySession> after = SubmitOk(&server, std::move(follow_up));
  after->WaitTerminal();
  EXPECT_EQ(after->state(), QueryState::kDone);
  EXPECT_FALSE(after->run().exhausted);
}

TEST(ServerTest, JsonlAndTopKSinksThroughTheServer) {
  const AttributedGraph graph = RandomAttributed(42);
  const ScpmResult direct = DirectMine(graph, Table1Options());
  ServerOptions options;
  options.threads = 2;
  ScpmServer server(&graph, options);
  server.Start();

  const std::string path =
      ::testing::TempDir() + "/server_test_sink.jsonl";
  QuerySpec jsonl = AccumulateSpec(Table1Options());
  jsonl.sink = QuerySpec::Sink::kJsonl;
  jsonl.jsonl_path = path;
  std::shared_ptr<QuerySession> jsonl_session =
      SubmitOk(&server, std::move(jsonl));
  jsonl_session->WaitTerminal();
  ASSERT_EQ(jsonl_session->state(), QueryState::kDone);
  EXPECT_EQ(jsonl_session->run().emitted, direct.attribute_sets.size());

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    Result<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " line: " << line;
    ++lines;
  }
  EXPECT_EQ(lines, direct.attribute_sets.size());
  std::remove(path.c_str());

  QuerySpec topk = AccumulateSpec(Table1Options());
  topk.sink = QuerySpec::Sink::kTopK;
  topk.sink_k = 3;
  std::shared_ptr<QuerySession> topk_session =
      SubmitOk(&server, std::move(topk));
  topk_session->WaitTerminal();
  ASSERT_EQ(topk_session->state(), QueryState::kDone);
  // The top-k sink's global ranking equals the accumulated result's
  // pattern order, so its output is the direct result's prefix.
  const std::size_t expect =
      std::min<std::size_t>(3, direct.patterns.size());
  ASSERT_EQ(topk_session->top_patterns().size(), expect);
  for (std::size_t i = 0; i < expect; ++i) {
    EXPECT_EQ(topk_session->top_patterns()[i].attributes,
              direct.patterns[i].attributes);
    EXPECT_EQ(topk_session->top_patterns()[i].vertices,
              direct.patterns[i].vertices);
  }
}

TEST(ServerTest, WireProtocolRoundTrip) {
  const AttributedGraph graph = RandomAttributed(42);
  ServerOptions options;
  options.threads = 2;
  ScpmServer server(&graph, options);
  server.Start();

  // Malformed JSON and unknown ops are typed protocol errors.
  Result<JsonValue> bad = JsonValue::Parse(server.HandleRequest("{nope"));
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->BoolOr("ok", true));
  EXPECT_EQ(bad->StringOr("code", ""), "invalid-argument");
  Result<JsonValue> unknown =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"mystery\"}"));
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->BoolOr("ok", true));

  // Submit-and-wait returns the full terminal description.
  const std::string submit =
      "{\"op\":\"submit\",\"wait\":true,\"query\":{\"gamma\":0.6,"
      "\"min_size\":4,\"sigma_min\":3,\"eps_min\":0.5,\"top_k\":10}}";
  Result<JsonValue> first = JsonValue::Parse(server.HandleRequest(submit));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->BoolOr("ok", false));
  const JsonValue* query = first->Find("query");
  ASSERT_NE(query, nullptr);
  EXPECT_EQ(query->StringOr("state", ""), "done");
  EXPECT_TRUE(query->BoolOr("exhausted", false));
  EXPECT_GT(query->NumberOr("emitted", 0), 0.0);
  EXPECT_EQ(query->NumberOr("memo_hits", -1), 0.0);

  // The identical second query is memo-hot and byte-identical on the
  // wire (minus the work counters and timings).
  Result<JsonValue> second = JsonValue::Parse(server.HandleRequest(submit));
  ASSERT_TRUE(second.ok());
  const JsonValue* hot = second->Find("query");
  ASSERT_NE(hot, nullptr);
  EXPECT_GT(hot->NumberOr("memo_hits", 0), 0.0);
  EXPECT_EQ(hot->NumberOr("memo_misses", -1), 0.0);
  ASSERT_NE(query->Find("result"), nullptr);
  ASSERT_NE(hot->Find("result"), nullptr);
  EXPECT_EQ(query->Find("result")->Dump(), hot->Find("result")->Dump());

  // Status by id; cancel of an unknown id is typed not-found.
  const std::uint64_t id =
      static_cast<std::uint64_t>(first->NumberOr("id", 0));
  Result<JsonValue> status = JsonValue::Parse(server.HandleRequest(
      "{\"op\":\"status\",\"id\":" + std::to_string(id) + "}"));
  ASSERT_TRUE(status.ok());
  EXPECT_TRUE(status->BoolOr("ok", false));
  Result<JsonValue> missing = JsonValue::Parse(
      server.HandleRequest("{\"op\":\"cancel\",\"id\":999999}"));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->StringOr("code", ""), "not-found");

  // Stats aggregate the repeated query into a positive memo hit rate.
  Result<JsonValue> stats =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok());
  const JsonValue* memo = stats->Find("memo");
  ASSERT_NE(memo, nullptr);
  EXPECT_TRUE(memo->BoolOr("enabled", false));
  EXPECT_GT(memo->NumberOr("hit_rate", 0), 0.0);
  EXPECT_EQ(stats->NumberOr("submitted", 0), 2.0);

  // Shutdown stops admission with a typed error.
  Result<JsonValue> stop =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"shutdown\"}"));
  ASSERT_TRUE(stop.ok());
  EXPECT_TRUE(stop->BoolOr("ok", false));
  Result<JsonValue> late = JsonValue::Parse(server.HandleRequest(submit));
  ASSERT_TRUE(late.ok());
  EXPECT_FALSE(late->BoolOr("ok", true));
}

TEST(ServerTest, MemoDisabledStillMatchesDirectMine) {
  const AttributedGraph graph = RandomAttributed(42);
  const ScpmResult direct = DirectMine(graph, Table1Options());
  ServerOptions options;
  options.threads = 2;
  options.memo.max_bytes = 0;  // memo off entirely
  ScpmServer server(&graph, options);
  server.Start();

  for (int round = 0; round < 2; ++round) {
    std::shared_ptr<QuerySession> session =
        SubmitOk(&server, AccumulateSpec(Table1Options()));
    session->WaitTerminal();
    ASSERT_EQ(session->state(), QueryState::kDone);
    // No memo: both rounds do the full work and match on every counter.
    ExpectIdenticalResults(session->result(), direct);
    EXPECT_EQ(session->run().memo_hits, 0u);
    EXPECT_EQ(session->run().memo_misses, 0u);
  }
  Result<JsonValue> stats =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->Find("memo")->BoolOr("enabled", true));
}

TEST(ServerTest, ParseQuerySpecRejectsMalformedQueries) {
  EXPECT_FALSE(ParseQuerySpec(JsonValue(3.0)).ok());

  JsonValue unknown = JsonValue::MakeObject();
  unknown.Set("bogus_member", JsonValue(1.0));
  EXPECT_FALSE(ParseQuerySpec(unknown).ok());

  JsonValue wrong_type = JsonValue::MakeObject();
  wrong_type.Set("gamma", JsonValue("0.5"));
  EXPECT_FALSE(ParseQuerySpec(wrong_type).ok());

  JsonValue jsonl_no_out = JsonValue::MakeObject();
  jsonl_no_out.Set("sink", JsonValue("jsonl"));
  EXPECT_FALSE(ParseQuerySpec(jsonl_no_out).ok());

  JsonValue ok = JsonValue::MakeObject();
  ok.Set("gamma", JsonValue(0.6));
  ok.Set("sink", JsonValue("topk"));
  ok.Set("sink_k", JsonValue(7.0));
  Result<QuerySpec> spec = ParseQuerySpec(ok);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->sink, QuerySpec::Sink::kTopK);
  EXPECT_EQ(spec->sink_k, 7u);
  EXPECT_DOUBLE_EQ(spec->options.quasi_clique.gamma, 0.6);
}

}  // namespace
}  // namespace scpm
