// Tests for the checkpoint codecs (core/ckpt_codec.cc): binary v2
// round-trip fuzz over synthetic frontiers of varying density and shape,
// cross-format structural equality (a v1 text file and a v2 binary file
// of the same checkpoint parse to the same struct), re-encode
// byte-identity, format auto-detection, corruption robustness (every
// truncation and every single-bit flip of a binary snapshot must fail to
// parse — the FNV-1a payload checksum guarantees the latter), and the
// headline size win: binary is at least 3x smaller than text on a
// realistic budget-cut frontier.

#include <cstddef>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/ckpt_codec.h"
#include "core/engine.h"
#include "core/sink.h"
#include "graph/attributed_graph.h"
#include "util/random.h"

namespace scpm {
namespace {

/// Random sorted duplicate-free vertex set over [0, n) with expected
/// density `p` (the shape every real covered set has).
VertexSet RandomSet(Rng* rng, VertexId n, double p) {
  VertexSet out;
  for (VertexId v = 0; v < n; ++v) {
    if (rng->NextBool(p)) out.push_back(v);
  }
  return out;
}

/// Synthetic cold checkpoint exercising both phases and both set tables.
/// Sets are drawn from a small pool of prototypes plus per-set noise, so
/// the interner sees the mix of exact duplicates, shared prefixes, and
/// singletons a real frontier produces.
EngineCheckpoint RandomCheckpoint(std::uint64_t seed, VertexId n,
                                  double density) {
  Rng rng(seed);
  EngineCheckpoint cp;
  cp.num_vertices = n;
  cp.num_attributes = 1 + rng.NextBounded(40);
  cp.num_edges = rng.NextBounded(10000);
  cp.options_fingerprint = rng.Next();
  cp.valid = true;
  cp.in_roots_phase = rng.NextBool(0.5);

  std::vector<VertexSet> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(RandomSet(&rng, n, density));
  const auto draw = [&]() -> VertexSet {
    if (rng.NextBool(0.5)) return pool[rng.NextBounded(pool.size())];
    return RandomSet(&rng, n, density);
  };

  if (cp.in_roots_phase) {
    const std::size_t roots = rng.NextBounded(12);
    for (std::size_t i = 0; i < roots; ++i) {
      EngineCheckpoint::DoneRoot dr;
      dr.index = static_cast<std::uint32_t>(rng.NextBounded(1000));
      dr.attr = static_cast<AttributeId>(rng.NextBounded(1000));
      dr.covered = draw();
      cp.done_roots.push_back(std::move(dr));
    }
    const std::size_t batches = 1 + rng.NextBounded(6);
    for (std::size_t i = 0; i < batches; ++i) {
      EngineCheckpoint::PendingRootBatch batch;
      const std::size_t k = 1 + rng.NextBounded(8);
      for (std::size_t j = 0; j < k; ++j) {
        batch.indices.push_back(
            static_cast<std::uint32_t>(rng.NextBounded(1000)));
        batch.attrs.push_back(static_cast<AttributeId>(rng.NextBounded(1000)));
      }
      cp.root_batches.push_back(std::move(batch));
    }
  } else {
    const std::size_t classes = 1 + rng.NextBounded(8);
    for (std::size_t c = 0; c < classes; ++c) {
      EngineCheckpoint::PendingClass cls;
      const std::size_t depth = 1 + rng.NextBounded(4);
      for (std::size_t d = 0; d < depth; ++d) {
        cls.path.push_back(static_cast<std::uint32_t>(rng.NextBounded(50)));
      }
      const std::size_t members = 1 + rng.NextBounded(5);
      for (std::size_t m = 0; m < members; ++m) {
        EngineCheckpoint::Member member;
        const std::size_t attrs = 1 + rng.NextBounded(5);
        for (std::size_t a = 0; a < attrs; ++a) {
          member.items.push_back(
              static_cast<AttributeId>(rng.NextBounded(1000)));
        }
        member.covered = draw();
        cls.members.push_back(std::move(member));
      }
      cp.classes.push_back(std::move(cls));
    }
    const std::size_t expansions = rng.NextBounded(16);
    for (std::size_t e = 0; e < expansions; ++e) {
      EngineCheckpoint::PendingExpansion ex;
      ex.class_index =
          static_cast<std::uint32_t>(rng.NextBounded(cp.classes.size()));
      ex.sibling = static_cast<std::uint32_t>(
          rng.NextBounded(cp.classes[ex.class_index].members.size()));
      cp.expansions.push_back(ex);
    }
  }
  return cp;
}

/// Field-by-field equality over the serialized (cold) state.
void ExpectSameCheckpoint(const EngineCheckpoint& a,
                          const EngineCheckpoint& b) {
  EXPECT_EQ(a.num_vertices, b.num_vertices);
  EXPECT_EQ(a.num_attributes, b.num_attributes);
  EXPECT_EQ(a.num_edges, b.num_edges);
  EXPECT_EQ(a.options_fingerprint, b.options_fingerprint);
  EXPECT_EQ(a.in_roots_phase, b.in_roots_phase);
  EXPECT_EQ(a.valid, b.valid);
  ASSERT_EQ(a.done_roots.size(), b.done_roots.size());
  for (std::size_t i = 0; i < a.done_roots.size(); ++i) {
    EXPECT_EQ(a.done_roots[i].index, b.done_roots[i].index) << i;
    EXPECT_EQ(a.done_roots[i].attr, b.done_roots[i].attr) << i;
    EXPECT_EQ(a.done_roots[i].covered, b.done_roots[i].covered) << i;
  }
  ASSERT_EQ(a.root_batches.size(), b.root_batches.size());
  for (std::size_t i = 0; i < a.root_batches.size(); ++i) {
    EXPECT_EQ(a.root_batches[i].indices, b.root_batches[i].indices) << i;
    EXPECT_EQ(a.root_batches[i].attrs, b.root_batches[i].attrs) << i;
  }
  ASSERT_EQ(a.classes.size(), b.classes.size());
  for (std::size_t i = 0; i < a.classes.size(); ++i) {
    EXPECT_EQ(a.classes[i].path, b.classes[i].path) << i;
    ASSERT_EQ(a.classes[i].members.size(), b.classes[i].members.size()) << i;
    for (std::size_t m = 0; m < a.classes[i].members.size(); ++m) {
      EXPECT_EQ(a.classes[i].members[m].items, b.classes[i].members[m].items);
      EXPECT_EQ(a.classes[i].members[m].covered,
                b.classes[i].members[m].covered);
    }
  }
  ASSERT_EQ(a.expansions.size(), b.expansions.size());
  for (std::size_t i = 0; i < a.expansions.size(); ++i) {
    EXPECT_EQ(a.expansions[i].class_index, b.expansions[i].class_index) << i;
    EXPECT_EQ(a.expansions[i].sibling, b.expansions[i].sibling) << i;
  }
}

/// Random attributed graph (mirrors engine_test's helper).
AttributedGraph RandomAttributed(int seed, VertexId n, int num_attrs,
                                 double edge_p, double attr_p) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_p) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttributeId id = builder.InternAttribute("a" + std::to_string(a));
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextDouble() < attr_p) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, id).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// A real budget-cut checkpoint: run (then resume) the engine with a
/// small per-segment evaluation budget until a cut lands in the wanted
/// phase, and return the frontier it left behind.
EngineCheckpoint CutCheckpoint(const AttributedGraph& g,
                               std::uint64_t max_evaluations,
                               bool want_roots_phase) {
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.0;
  options.top_k = 2;
  options.eval_batch_grain = 0;  // one evaluation per task: cuts are fine
  EngineBudget budget;
  budget.max_evaluations = max_evaluations;
  EngineCheckpoint checkpoint;
  for (int segment = 0; segment < 10000; ++segment) {
    ScpmEngine engine(options, nullptr);
    engine.set_budget(budget);
    engine.set_frontier_wave(2);
    AccumulatingSink sink;
    Result<MiningRun> run = segment == 0
                                ? engine.Run(g, &sink)
                                : engine.Resume(g, checkpoint, &sink);
    EXPECT_TRUE(run.ok()) << run.status();
    EXPECT_FALSE(run->exhausted)
        << "lattice exhausted before a cut landed in the wanted phase";
    if (!run.ok() || run->exhausted) break;
    checkpoint = std::move(run->checkpoint);
    if (checkpoint.in_roots_phase == want_roots_phase) break;
  }
  EXPECT_EQ(checkpoint.in_roots_phase, want_roots_phase);
  return checkpoint;
}

// -------------------------------------------------- format plumbing

TEST(CkptCodecTest, FormatNamesParseAndPrint) {
  Result<CheckpointFormat> text = ParseCheckpointFormat("text");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, CheckpointFormat::kText);
  Result<CheckpointFormat> binary = ParseCheckpointFormat("binary");
  ASSERT_TRUE(binary.ok());
  EXPECT_EQ(*binary, CheckpointFormat::kBinary);
  EXPECT_FALSE(ParseCheckpointFormat("walrus").ok());
  EXPECT_FALSE(ParseCheckpointFormat("").ok());
  EXPECT_STREQ(CheckpointFormatName(CheckpointFormat::kText), "text");
  EXPECT_STREQ(CheckpointFormatName(CheckpointFormat::kBinary), "binary");
}

TEST(CkptCodecTest, LoadReportsDetectedFormat) {
  const EngineCheckpoint cp = RandomCheckpoint(7, 64, 0.3);
  for (CheckpointFormat format :
       {CheckpointFormat::kText, CheckpointFormat::kBinary}) {
    std::istringstream in(cp.Serialize(format));
    CheckpointFormat detected = CheckpointFormat::kText;
    Result<EngineCheckpoint> parsed = LoadCheckpoint(in, &detected);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(detected, format);
  }
}

// --------------------------------------------------- round-trip fuzz

/// Binary encode -> decode -> struct equality -> re-encode byte
/// identity, across seeds x set densities (sparse, mid, dense frontiers
/// stress the delta coder and the raw fallback differently).
TEST(CkptCodecTest, BinaryRoundTripFuzz) {
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    for (double density : {0.02, 0.3, 0.9}) {
      const EngineCheckpoint cp = RandomCheckpoint(seed, 96, density);
      const std::string bin = cp.Serialize(CheckpointFormat::kBinary);
      Result<EngineCheckpoint> parsed = EngineCheckpoint::Parse(bin);
      ASSERT_TRUE(parsed.ok())
          << "seed " << seed << " density " << density << ": "
          << parsed.status();
      ExpectSameCheckpoint(cp, *parsed);
      EXPECT_EQ(parsed->Serialize(CheckpointFormat::kBinary), bin)
          << "re-encode not byte-identical (seed " << seed << ")";
    }
  }
}

/// The same checkpoint written as v1 text and v2 binary parses to the
/// same struct, and a struct recovered from the v1 file re-encodes to
/// exactly the bytes the v2 writer produces — the codecs agree on the
/// model, only the encoding differs.
TEST(CkptCodecTest, TextAndBinaryAgreeStructurally) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const EngineCheckpoint cp = RandomCheckpoint(seed, 80, 0.25);
    const std::string text = cp.Serialize(CheckpointFormat::kText);
    const std::string bin = cp.Serialize(CheckpointFormat::kBinary);
    ASSERT_EQ(text.rfind("scpm-checkpoint", 0), 0u);
    ASSERT_EQ(bin.rfind("SCPB", 0), 0u);
    Result<EngineCheckpoint> from_text = EngineCheckpoint::Parse(text);
    Result<EngineCheckpoint> from_bin = EngineCheckpoint::Parse(bin);
    ASSERT_TRUE(from_text.ok()) << from_text.status();
    ASSERT_TRUE(from_bin.ok()) << from_bin.status();
    ExpectSameCheckpoint(*from_text, *from_bin);
    // The v1 reader's output is a full-fidelity model: encoding it with
    // the v2 writer gives the canonical binary bytes.
    EXPECT_EQ(from_text->Serialize(CheckpointFormat::kBinary), bin);
    EXPECT_EQ(from_bin->Serialize(CheckpointFormat::kText), text);
  }
}

/// Real engine frontiers (not synthetic ones) round-trip both ways and
/// resume to the same output as the text path — the engine-level
/// resume-equality suites run with binary as the default already, so
/// here it is enough to pin cross-format struct equality on a cut from
/// each phase.
TEST(CkptCodecTest, RealFrontiersRoundTripBothPhases) {
  const AttributedGraph g = RandomAttributed(11, 60, 8, 0.15, 0.5);
  for (const bool roots_phase : {true, false}) {
    const EngineCheckpoint cp = CutCheckpoint(g, 1, roots_phase);
    Result<EngineCheckpoint> from_text =
        EngineCheckpoint::Parse(cp.Serialize(CheckpointFormat::kText));
    Result<EngineCheckpoint> from_bin =
        EngineCheckpoint::Parse(cp.Serialize(CheckpointFormat::kBinary));
    ASSERT_TRUE(from_text.ok()) << from_text.status();
    ASSERT_TRUE(from_bin.ok()) << from_bin.status();
    ExpectSameCheckpoint(*from_text, *from_bin);
    ExpectSameCheckpoint(cp, *from_bin);
  }
}

// ----------------------------------------------------- corruption

/// Every strict prefix of a binary snapshot must fail to parse; the
/// length prefix makes short reads detectable, never silently partial.
TEST(CkptCodecTest, EveryTruncationFails) {
  const EngineCheckpoint cp = RandomCheckpoint(3, 48, 0.3);
  const std::string bin = cp.Serialize(CheckpointFormat::kBinary);
  ASSERT_GT(bin.size(), 8u);
  for (std::size_t len = 0; len < bin.size(); ++len) {
    EXPECT_FALSE(EngineCheckpoint::Parse(bin.substr(0, len)).ok())
        << "prefix of length " << len << " parsed";
  }
}

/// Every single-bit flip anywhere in a binary snapshot must fail to
/// parse: header flips break the magic/version/length, payload flips
/// break the FNV-1a checksum. No flip may parse to a different struct.
TEST(CkptCodecTest, EverySingleBitFlipFails) {
  const EngineCheckpoint cp = RandomCheckpoint(5, 48, 0.3);
  const std::string bin = cp.Serialize(CheckpointFormat::kBinary);
  for (std::size_t i = 0; i < bin.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupt = bin;
      corrupt[i] = static_cast<char>(corrupt[i] ^ (1 << bit));
      EXPECT_FALSE(EngineCheckpoint::Parse(corrupt).ok())
          << "flip at byte " << i << " bit " << bit << " parsed";
    }
  }
}

/// Stream reads stop exactly at the encoding's own boundary (text: the
/// "end" token, binary: the length prefix), leaving any trailer for the
/// caller — the journal and the dist result payload both append tokens
/// after an embedded checkpoint and depend on this.
TEST(CkptCodecTest, LoadLeavesTrailerUnread) {
  const EngineCheckpoint cp = RandomCheckpoint(9, 32, 0.3);
  for (CheckpointFormat format :
       {CheckpointFormat::kText, CheckpointFormat::kBinary}) {
    std::istringstream in(cp.Serialize(format) + "trailer 7\n");
    Result<EngineCheckpoint> parsed = EngineCheckpoint::Load(in);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    ExpectSameCheckpoint(cp, *parsed);
    std::string word;
    int value = 0;
    ASSERT_TRUE(static_cast<bool>(in >> word >> value));
    EXPECT_EQ(word, "trailer");
    EXPECT_EQ(value, 7);
  }
}

// ------------------------------------------------------- size win

/// The headline: on a realistic budget-cut frontier the interned binary
/// form is at least 3x smaller than the v1 text form (the CI bench
/// asserts the same bound on the citeseer-scale scenario).
TEST(CkptCodecTest, BinaryAtLeastThreeTimesSmallerThanText) {
  const AttributedGraph g = RandomAttributed(23, 150, 6, 0.08, 0.55);
  const EngineCheckpoint cp = CutCheckpoint(g, 1, /*want_roots_phase=*/false);
  const std::string text = cp.Serialize(CheckpointFormat::kText);
  const std::string bin = cp.Serialize(CheckpointFormat::kBinary);
  EXPECT_LE(bin.size() * 3, text.size())
      << "binary " << bin.size() << " bytes vs text " << text.size();
}

}  // namespace
}  // namespace scpm
