// Preemptive-scheduling and live-reload tests: byte-identity of sliced
// query results (rows, patterns, AND summed work counters) against a
// direct ScpmMiner::Mine for slice budgets {tiny, medium, unbounded}
// and thread counts {1, 2, 8}; the short-behind-long starvation
// regression; graph reload under both policies; memo epoch purge and
// re-warm; wire protocol versioning; the server default deadline; and
// the unified MiningRequest front door. These run under TSan in CI.
//
// Counter-identity runs disable the memo: a memo replays evaluations
// across segments of one sliced query, which legitimately shrinks the
// work counters (rows and patterns still match byte-for-byte).

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/request.h"
#include "core/scpm.h"
#include "graph/attributed_graph.h"
#include "graph/io.h"
#include "server/json.h"
#include "server/server.h"
#include "server/session.h"
#include "util/random.h"

namespace scpm {
namespace {

/// Paper parameters for Table 1 (see scpm_test.cc).
ScpmOptions Table1Options() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.6;
  o.quasi_clique.min_size = 4;
  o.min_support = 3;
  o.min_epsilon = 0.5;
  o.top_k = 10;
  return o;
}

/// Random attributed graph: ER topology + random attribute incidence
/// (same construction as engine_test.cc / server_test.cc).
AttributedGraph RandomAttributed(int seed, VertexId n = 24,
                                 int num_attrs = 5, double edge_p = 0.3,
                                 double attr_p = 0.4) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_p) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttributeId id = builder.InternAttribute("a" + std::to_string(a));
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextDouble() < attr_p) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, id).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::shared_ptr<const AttributedGraph> SharedGraph(AttributedGraph graph) {
  return std::make_shared<const AttributedGraph>(std::move(graph));
}

/// Rows and patterns only (memo-hot or cross-epoch comparisons).
void ExpectIdenticalRows(const ScpmResult& a, const ScpmResult& b) {
  ASSERT_EQ(a.attribute_sets.size(), b.attribute_sets.size());
  for (std::size_t i = 0; i < a.attribute_sets.size(); ++i) {
    const AttributeSetStats& x = a.attribute_sets[i];
    const AttributeSetStats& y = b.attribute_sets[i];
    EXPECT_EQ(x.attributes, y.attributes) << "row " << i;
    EXPECT_EQ(x.support, y.support);
    EXPECT_EQ(x.covered, y.covered);
    EXPECT_DOUBLE_EQ(x.epsilon, y.epsilon);
    EXPECT_DOUBLE_EQ(x.expected_epsilon, y.expected_epsilon);
    EXPECT_DOUBLE_EQ(x.delta, y.delta);
  }
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].attributes, b.patterns[i].attributes) << i;
    EXPECT_EQ(a.patterns[i].vertices, b.patterns[i].vertices) << i;
    EXPECT_DOUBLE_EQ(a.patterns[i].min_degree_ratio,
                     b.patterns[i].min_degree_ratio);
    EXPECT_DOUBLE_EQ(a.patterns[i].edge_density, b.patterns[i].edge_density);
  }
}

/// Full identity, every work counter included. The slicing pin: a run
/// cut into N hot-checkpoint segments must sum to exactly the uncut
/// run's counters.
void ExpectIdenticalResults(const ScpmResult& a, const ScpmResult& b) {
  ExpectIdenticalRows(a, b);
  EXPECT_EQ(a.counters.attribute_sets_evaluated,
            b.counters.attribute_sets_evaluated);
  EXPECT_EQ(a.counters.attribute_sets_reported,
            b.counters.attribute_sets_reported);
  EXPECT_EQ(a.counters.attribute_sets_extended,
            b.counters.attribute_sets_extended);
  EXPECT_EQ(a.counters.coverage_candidates, b.counters.coverage_candidates);
  EXPECT_EQ(a.counters.bitmap_intersections, b.counters.bitmap_intersections);
  EXPECT_EQ(a.counters.galloping_intersections,
            b.counters.galloping_intersections);
  EXPECT_EQ(a.counters.chunked_intersections,
            b.counters.chunked_intersections);
  EXPECT_EQ(a.counters.dense_conversions, b.counters.dense_conversions);
  EXPECT_EQ(a.counters.chunked_conversions, b.counters.chunked_conversions);
}

ScpmResult DirectMine(const AttributedGraph& graph,
                      const ScpmOptions& options) {
  ScpmMiner miner(options);
  Result<ScpmResult> result = miner.Mine(graph);
  EXPECT_TRUE(result.ok()) << result.status();
  return std::move(result).value();
}

QuerySpec AccumulateSpec(const ScpmOptions& options) {
  QuerySpec spec;
  spec.options = options;
  return spec;
}

std::shared_ptr<QuerySession> SubmitOk(ScpmServer* server, QuerySpec spec) {
  Result<std::shared_ptr<QuerySession>> session =
      server->Submit(std::move(spec));
  EXPECT_TRUE(session.ok()) << session.status();
  return std::move(session).value();
}

/// A lattice heavy enough (hundreds of thousands of evaluations) that a
/// query on it cannot finish within the test's patience.
AttributedGraph HeavyGraph() { return RandomAttributed(7, 80, 14, 0.3, 0.5); }

ScpmOptions HeavyOptions() {
  ScpmOptions heavy;
  heavy.quasi_clique.gamma = 0.5;
  heavy.quasi_clique.min_size = 3;
  heavy.min_support = 1;
  heavy.min_epsilon = 0.0;
  return heavy;
}

// ---------------------------------------------------------------------
// Tentpole pin #1: preemption never changes what a query returns.

TEST(PreemptTest, SlicedResultsAreByteIdenticalAcrossSliceAndThreadCounts) {
  const AttributedGraph graph = RandomAttributed(42);
  const ScpmResult direct = DirectMine(graph, Table1Options());
  ASSERT_FALSE(direct.attribute_sets.empty());

  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (const std::uint64_t slice_evals : {std::uint64_t{3},
                                            std::uint64_t{17},
                                            std::uint64_t{0}}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " slice_evals=" + std::to_string(slice_evals));
      ServerOptions options;
      options.threads = threads;
      options.max_concurrent = 2;
      options.memo.max_bytes = 0;  // counter identity needs the memo off
      options.slice_evals = slice_evals;
      ScpmServer server(SharedGraph(RandomAttributed(42)), options);
      server.Start();

      std::shared_ptr<QuerySession> session =
          SubmitOk(&server, AccumulateSpec(Table1Options()));
      session->WaitTerminal();
      ASSERT_EQ(session->state(), QueryState::kDone);
      EXPECT_TRUE(session->run().exhausted);
      if (slice_evals != 0 && slice_evals < 16) {
        EXPECT_GT(session->slices(), 1u);
      }
      ExpectIdenticalResults(session->result(), direct);
      EXPECT_EQ(session->run().emitted, direct.attribute_sets.size());
    }
  }
}

TEST(PreemptTest, WallClockSlicesPreserveByteIdentity) {
  const AttributedGraph graph = RandomAttributed(11);
  const ScpmResult direct = DirectMine(graph, Table1Options());

  ServerOptions options;
  options.threads = 2;
  options.memo.max_bytes = 0;
  options.slice_ms = 1;  // cut on wall clock instead of evaluations
  ScpmServer server(SharedGraph(RandomAttributed(11)), options);
  server.Start();

  std::shared_ptr<QuerySession> session =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  session->WaitTerminal();
  ASSERT_EQ(session->state(), QueryState::kDone);
  EXPECT_TRUE(session->run().exhausted);
  ExpectIdenticalResults(session->result(), direct);
}

TEST(PreemptTest, StalledSlicesEscalateUntilTheyMakeProgress) {
  // The progress guarantee behind any slice size: a wall-clock cut
  // discards in-flight entries whole, so an entry slower than the
  // slice would be retried identically forever if the budget never
  // grew. Regression for a livelock where a 25ms-sliced query spun
  // through hundreds of zero-progress slices on a graph whose root
  // batches each cost more than a slice; pre-escalation this test
  // never terminates. The graph is citeseer-shaped: a few hundred
  // milliseconds end to end, but skewed — single entries cost tens of
  // milliseconds, far beyond the 1ms slice.
  const AttributedGraph graph = RandomAttributed(7, 250, 20, 0.12, 0.2);
  const ScpmResult direct = DirectMine(graph, Table1Options());
  ASSERT_FALSE(direct.attribute_sets.empty());

  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.memo.max_bytes = 0;
  options.slice_ms = 1;  // far below single-entry cost on this graph
  ScpmServer server(SharedGraph(RandomAttributed(7, 250, 20, 0.12, 0.2)),
                    options);
  server.Start();

  std::shared_ptr<QuerySession> session =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  session->WaitTerminal();
  ASSERT_EQ(session->state(), QueryState::kDone);
  EXPECT_TRUE(session->run().exhausted);
  ExpectIdenticalResults(session->result(), direct);
}

TEST(PreemptTest, SlicedQueryStillHonorsItsOwnBudget) {
  // A cheap lattice with plenty of evaluations, so the query's own eval
  // budget — not the lattice end — is what stops it.
  const AttributedGraph graph = RandomAttributed(5, 40, 8, 0.3, 0.4);
  ScpmOptions loose = Table1Options();
  loose.min_support = 2;
  loose.min_epsilon = 0.0;
  const ScpmResult direct = DirectMine(graph, loose);
  ASSERT_GT(direct.counters.attribute_sets_evaluated, 60u);

  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.memo.max_bytes = 0;
  options.slice_evals = 10;
  ScpmServer server(SharedGraph(RandomAttributed(5, 40, 8, 0.3, 0.4)),
                    options);
  server.Start();

  QuerySpec spec = AccumulateSpec(loose);
  spec.budget.max_evaluations = 50;
  std::shared_ptr<QuerySession> session = SubmitOk(&server, std::move(spec));
  session->WaitTerminal();
  ASSERT_EQ(session->state(), QueryState::kDone);
  EXPECT_FALSE(session->run().exhausted);
  // Budgets cut at deterministic frontier-wave boundaries, so the spend
  // lands in [budget, budget + wave), never the whole lattice.
  EXPECT_GE(session->run().counters.attribute_sets_evaluated, 50u);
  EXPECT_LT(session->run().counters.attribute_sets_evaluated,
            direct.counters.attribute_sets_evaluated);
  EXPECT_GE(session->slices(), 2u);
}

// ---------------------------------------------------------------------
// Tentpole pin #2: a cheap query admitted behind a multi-second one
// completes within a couple of slices instead of waiting it out.

TEST(PreemptTest, ShortQueryIsNotStarvedBehindLongQuery) {
  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;  // one driver: the two queries MUST share it
  options.memo.max_bytes = 0;
  options.slice_ms = 20;  // wall-clock slices interrupt mid-wave
  ScpmServer server(SharedGraph(HeavyGraph()), options);
  server.Start();

  std::shared_ptr<QuerySession> long_query =
      SubmitOk(&server, AccumulateSpec(HeavyOptions()));
  QuerySpec short_spec = AccumulateSpec(HeavyOptions());
  short_spec.budget.deadline_ms = 10;  // "a 10ms query"
  std::shared_ptr<QuerySession> short_query =
      SubmitOk(&server, std::move(short_spec));

  short_query->WaitTerminal();
  EXPECT_EQ(short_query->state(), QueryState::kDone);
  EXPECT_LE(short_query->slices(), 2u);
  // The long query is still mining (it needs hundreds of thousands of
  // evaluations); without slicing the short query would still be queued
  // behind it at this point.
  EXPECT_FALSE(long_query->terminal());

  server.Cancel(long_query->id());
  long_query->WaitTerminal();
  EXPECT_EQ(long_query->state(), QueryState::kCancelled);
}

TEST(PreemptTest, PreemptedReEnqueuesDoNotConsumeAdmissionSlots) {
  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.queue_depth = 1;
  options.memo.max_bytes = 0;
  options.slice_ms = 10;
  ScpmServer server(SharedGraph(HeavyGraph()), options);
  server.Start();

  // The long query round-robins through the queue as a preempted item;
  // a fresh submit must still fit the depth-1 admission queue.
  std::shared_ptr<QuerySession> long_query =
      SubmitOk(&server, AccumulateSpec(HeavyOptions()));
  while (long_query->slices() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  QuerySpec short_spec = AccumulateSpec(HeavyOptions());
  short_spec.budget.deadline_ms = 10;
  std::shared_ptr<QuerySession> short_query =
      SubmitOk(&server, std::move(short_spec));
  short_query->WaitTerminal();
  EXPECT_EQ(short_query->state(), QueryState::kDone);

  server.Cancel(long_query->id());
  long_query->WaitTerminal();

  Result<JsonValue> stats =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->NumberOr("preemptions", 0), 0.0);
}

// ---------------------------------------------------------------------
// Tentpole pin #3: live reload.

TEST(PreemptTest, ReloadFinishOnOldGraphPinsInFlightQueries) {
  const AttributedGraph old_graph = RandomAttributed(42);
  const AttributedGraph new_graph = RandomAttributed(43);
  const ScpmResult direct_old = DirectMine(old_graph, Table1Options());
  const ScpmResult direct_new = DirectMine(new_graph, Table1Options());

  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.memo.max_bytes = 0;
  options.slice_evals = 2;  // many slices: the reload lands mid-query
  ScpmServer server(SharedGraph(RandomAttributed(42)), options);
  server.Start();
  EXPECT_EQ(server.epoch(), 1u);

  std::shared_ptr<QuerySession> pinned =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  while (pinned->slices() == 0 && !pinned->terminal()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(
      server.Reload(SharedGraph(RandomAttributed(43)),
                    ReloadPolicy::kFinishOnOldGraph).ok());
  EXPECT_EQ(server.epoch(), 2u);

  // The in-flight query finishes on the graph it pinned at first
  // schedule and is byte-identical to a direct mine of the OLD graph.
  pinned->WaitTerminal();
  ASSERT_EQ(pinned->state(), QueryState::kDone);
  EXPECT_EQ(pinned->pinned_epoch(), 1u);
  ExpectIdenticalResults(pinned->result(), direct_old);

  // A query submitted after the reload sees the new graph.
  std::shared_ptr<QuerySession> fresh =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  fresh->WaitTerminal();
  ASSERT_EQ(fresh->state(), QueryState::kDone);
  EXPECT_EQ(fresh->pinned_epoch(), 2u);
  ExpectIdenticalResults(fresh->result(), direct_new);
}

TEST(PreemptTest, ReloadCancelRunningCancelsOldEpochQueries) {
  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.memo.max_bytes = 0;
  options.slice_ms = 20;
  ScpmServer server(SharedGraph(HeavyGraph()), options);
  server.Start();

  std::shared_ptr<QuerySession> doomed =
      SubmitOk(&server, AccumulateSpec(HeavyOptions()));
  while (doomed->slices() == 0 && !doomed->terminal()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.Reload(SharedGraph(RandomAttributed(43)),
                            ReloadPolicy::kCancelRunning)
                  .ok());
  doomed->WaitTerminal();
  EXPECT_EQ(doomed->state(), QueryState::kCancelled);
  EXPECT_EQ(doomed->error().code(), StatusCode::kCancelled);

  // The server is healthy on the new graph.
  const ScpmResult direct_new =
      DirectMine(RandomAttributed(43), Table1Options());
  std::shared_ptr<QuerySession> fresh =
      SubmitOk(&server, AccumulateSpec(Table1Options()));
  fresh->WaitTerminal();
  ASSERT_EQ(fresh->state(), QueryState::kDone);
  ExpectIdenticalRows(fresh->result(), direct_new);
}

TEST(PreemptTest, ReloadPurgesMemoByEpochAndReWarms) {
  ServerOptions options;
  options.threads = 2;
  ScpmServer server(SharedGraph(RandomAttributed(42)), options);
  server.Start();

  auto run_one = [&server]() -> std::shared_ptr<QuerySession> {
    std::shared_ptr<QuerySession> s =
        SubmitOk(&server, AccumulateSpec(Table1Options()));
    s->WaitTerminal();
    EXPECT_EQ(s->state(), QueryState::kDone);
    return s;
  };

  std::shared_ptr<QuerySession> cold = run_one();
  EXPECT_EQ(cold->run().memo_hits, 0u);
  EXPECT_GT(cold->run().memo_misses, 0u);
  std::shared_ptr<QuerySession> hot = run_one();
  EXPECT_GT(hot->run().memo_hits, 0u);
  EXPECT_EQ(hot->run().memo_misses, 0u);

  // Same graph content, new epoch: every memo entry is stale by key.
  ASSERT_TRUE(server.Reload(SharedGraph(RandomAttributed(42)),
                            ReloadPolicy::kFinishOnOldGraph)
                  .ok());
  std::shared_ptr<QuerySession> purged = run_one();
  EXPECT_EQ(purged->run().memo_hits, 0u);
  EXPECT_GT(purged->run().memo_misses, 0u);
  // ... and the memo re-warms under the new epoch.
  std::shared_ptr<QuerySession> rewarmed = run_one();
  EXPECT_GT(rewarmed->run().memo_hits, 0u);
  EXPECT_EQ(rewarmed->run().memo_misses, 0u);
}

TEST(PreemptTest, ReloadWireVerbSwapsGraphFromFiles) {
  // Two tiny graphs on disk; the wire verb swaps to the second.
  const std::string edges_a = ::testing::TempDir() + "/preempt_a.edges";
  const std::string attrs_a = ::testing::TempDir() + "/preempt_a.attrs";
  const std::string edges_b = ::testing::TempDir() + "/preempt_b.edges";
  const std::string attrs_b = ::testing::TempDir() + "/preempt_b.attrs";
  {
    std::ofstream e(edges_a), a(attrs_a);
    e << "0 1\n1 2\n0 2\n";
    a << "0 red\n1 red\n2 red\n";
  }
  {
    std::ofstream e(edges_b), a(attrs_b);
    e << "0 1\n1 2\n2 3\n0 2\n1 3\n";
    a << "0 red\n1 red\n2 blue\n3 blue\n";
  }
  Result<AttributedGraph> loaded = LoadAttributedGraph(edges_a, attrs_a);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  ServerOptions options;
  ScpmServer server(SharedGraph(std::move(loaded).value()), options);
  server.Start();

  // No request paths and no server defaults: typed failure.
  Result<JsonValue> no_paths =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"reload\"}"));
  ASSERT_TRUE(no_paths.ok());
  EXPECT_FALSE(no_paths->BoolOr("ok", true));

  Result<JsonValue> swapped = JsonValue::Parse(server.HandleRequest(
      "{\"op\":\"reload\",\"edges\":\"" + edges_b + "\",\"attrs\":\"" +
      attrs_b + "\",\"policy\":\"cancel\"}"));
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(swapped->BoolOr("ok", false)) << swapped->Dump();
  EXPECT_EQ(swapped->NumberOr("epoch", 0), 2.0);
  const JsonValue* shape = swapped->Find("graph");
  ASSERT_NE(shape, nullptr);
  EXPECT_EQ(shape->NumberOr("vertices", 0), 4.0);

  // Server defaults (the CLI's argv paths) back the bare verb.
  server.set_reload_paths(edges_a, attrs_a);
  Result<JsonValue> defaulted =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"reload\"}"));
  ASSERT_TRUE(defaulted.ok());
  EXPECT_TRUE(defaulted->BoolOr("ok", false)) << defaulted->Dump();
  EXPECT_EQ(defaulted->NumberOr("epoch", 0), 3.0);

  Result<JsonValue> stats =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->NumberOr("epoch", 0), 3.0);
  EXPECT_EQ(stats->NumberOr("reloads", 0), 2.0);

  for (const std::string& p : {edges_a, attrs_a, edges_b, attrs_b}) {
    std::remove(p.c_str());
  }
}

// ---------------------------------------------------------------------
// Satellites: protocol versioning, default deadline, the unified
// request front door.

TEST(PreemptTest, WireProtocolVersionGate) {
  ServerOptions options;
  ScpmServer server(SharedGraph(RandomAttributed(42)), options);
  server.Start();

  // Absent "v" means v1; explicit v1 is accepted.
  Result<JsonValue> bare =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(bare.ok());
  EXPECT_TRUE(bare->BoolOr("ok", false));
  EXPECT_EQ(bare->NumberOr("protocol_version", 0), 1.0);
  Result<JsonValue> v1 =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\",\"v\":1}"));
  ASSERT_TRUE(v1.ok());
  EXPECT_TRUE(v1->BoolOr("ok", false));

  // Any other version is a typed kInvalidArgument before op dispatch.
  for (const std::string req :
       {std::string("{\"op\":\"stats\",\"v\":2}"),
        std::string("{\"op\":\"shutdown\",\"v\":0}"),
        std::string("{\"op\":\"stats\",\"v\":\"1\"}")}) {
    Result<JsonValue> r = JsonValue::Parse(server.HandleRequest(req));
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->BoolOr("ok", true)) << req;
    EXPECT_EQ(r->StringOr("code", ""), "invalid-argument") << req;
  }
  // The bad-version shutdown above must NOT have shut the server down.
  Result<JsonValue> alive =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(alive->BoolOr("ok", false));
}

TEST(PreemptTest, DefaultDeadlineAppliesOnlyWhenQueryHasNone) {
  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.memo.max_bytes = 0;
  options.default_deadline_ms = 100;
  ScpmServer server(SharedGraph(HeavyGraph()), options);
  server.Start();

  // No deadline in the spec: the server default cuts the heavy query.
  std::shared_ptr<QuerySession> defaulted =
      SubmitOk(&server, AccumulateSpec(HeavyOptions()));
  defaulted->WaitTerminal();
  ASSERT_EQ(defaulted->state(), QueryState::kDone);
  EXPECT_FALSE(defaulted->run().exhausted);

  // An explicit deadline wins over the server default.
  QuerySpec own = AccumulateSpec(HeavyOptions());
  own.budget.deadline_ms = 30;
  std::shared_ptr<QuerySession> explicit_deadline =
      SubmitOk(&server, std::move(own));
  explicit_deadline->WaitTerminal();
  ASSERT_EQ(explicit_deadline->state(), QueryState::kDone);
  EXPECT_FALSE(explicit_deadline->run().exhausted);

  Result<JsonValue> stats =
      JsonValue::Parse(server.HandleRequest("{\"op\":\"stats\"}"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->NumberOr("default_deadline_ms", 0), 100.0);
}

TEST(PreemptTest, ParseQuerySpecRejectsProcessGlobalToggles) {
  for (const char* key : {"simd", "chunked"}) {
    JsonValue query = JsonValue::MakeObject();
    query.Set(key, JsonValue(true));
    Result<QuerySpec> spec = ParseQuerySpec(query);
    ASSERT_FALSE(spec.ok()) << key;
    EXPECT_NE(spec.status().message().find("process-global"),
              std::string::npos)
        << spec.status();
  }
}

TEST(RequestTest, ValidateCatchesBadRequests) {
  MiningRequest jsonl_without_destination;
  jsonl_without_destination.sink = MiningRequest::Sink::kJsonl;
  EXPECT_FALSE(jsonl_without_destination.Validate().ok());

  MiningRequest zero_k;
  zero_k.sink = MiningRequest::Sink::kTopK;
  zero_k.sink_k = 0;
  EXPECT_FALSE(zero_k.Validate().ok());

  MiningRequest bad_options;
  bad_options.options.quasi_clique.gamma = 2.0;
  EXPECT_FALSE(bad_options.Validate().ok());

  EXPECT_TRUE(MiningRequest().Validate().ok());
}

TEST(RequestTest, ExecuteRequestMatchesLegacyFrontDoors) {
  const AttributedGraph graph = RandomAttributed(42);
  const ScpmResult direct = DirectMine(graph, Table1Options());

  // Accumulate through the unified front door == legacy Mine().
  MiningRequest accumulate;
  accumulate.options = Table1Options();
  Result<MiningResponse> mined = ExecuteRequest(graph, accumulate);
  ASSERT_TRUE(mined.ok()) << mined.status();
  EXPECT_TRUE(mined->run.exhausted);
  ExpectIdenticalResults(mined->result, direct);

  // The miner-level overload is the same path.
  ScpmMiner miner(Table1Options());
  Result<MiningResponse> via_miner = miner.Mine(graph, accumulate);
  ASSERT_TRUE(via_miner.ok()) << via_miner.status();
  ExpectIdenticalResults(via_miner->result, direct);

  // Top-k through the request == the direct result's pattern prefix.
  MiningRequest topk;
  topk.options = Table1Options();
  topk.sink = MiningRequest::Sink::kTopK;
  topk.sink_k = 3;
  Result<MiningResponse> top = ExecuteRequest(graph, topk);
  ASSERT_TRUE(top.ok()) << top.status();
  const std::size_t expect = std::min<std::size_t>(3, direct.patterns.size());
  ASSERT_EQ(top->top_patterns.size(), expect);
  for (std::size_t i = 0; i < expect; ++i) {
    EXPECT_EQ(top->top_patterns[i].attributes, direct.patterns[i].attributes);
    EXPECT_EQ(top->top_patterns[i].vertices, direct.patterns[i].vertices);
  }

  // JSONL to a borrowed stream: one parseable line per finalized set.
  std::ostringstream lines;
  MiningRequest jsonl;
  jsonl.options = Table1Options();
  jsonl.sink = MiningRequest::Sink::kJsonl;
  jsonl.jsonl_stream = &lines;
  Result<MiningResponse> streamed = ExecuteRequest(graph, jsonl);
  ASSERT_TRUE(streamed.ok()) << streamed.status();
  EXPECT_EQ(streamed->jsonl_lines, direct.attribute_sets.size());
  std::istringstream in(lines.str());
  std::string line;
  std::size_t parsed_lines = 0;
  while (std::getline(in, line)) {
    Result<JsonValue> parsed = JsonValue::Parse(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " line: " << line;
    ++parsed_lines;
  }
  EXPECT_EQ(parsed_lines, direct.attribute_sets.size());
}

}  // namespace
}  // namespace scpm
