// Unit tests for src/nullmodel: binomial helpers, the analytical max-exp
// bound (Theorem 2), and the simulation model.

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "nullmodel/binomial.h"
#include "nullmodel/expectation.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace scpm {
namespace {

// -------------------------------------------------------------- Binomial

TEST(BinomialTest, LogCoefficientSmallValues) {
  EXPECT_DOUBLE_EQ(LogBinomialCoefficient(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomialCoefficient(5, 5), 0.0);
  EXPECT_NEAR(LogBinomialCoefficient(5, 2), std::log(10.0), 1e-12);
  EXPECT_NEAR(LogBinomialCoefficient(10, 3), std::log(120.0), 1e-12);
}

TEST(BinomialTest, PmfSumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    double sum = 0;
    for (std::uint64_t k = 0; k <= 20; ++k) sum += BinomialPmf(20, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-12) << p;
  }
}

TEST(BinomialTest, PmfEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 10, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 9, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(10, 11, 0.5), 0.0);
}

TEST(BinomialTest, TailEdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 11, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialTailAtLeast(10, 3, 1.0), 1.0);
}

TEST(BinomialTest, TailMatchesDirectSum) {
  for (double p : {0.05, 0.3, 0.7}) {
    for (std::uint64_t z = 1; z <= 12; ++z) {
      double direct = 0;
      for (std::uint64_t k = z; k <= 12; ++k) {
        direct += BinomialPmf(12, k, p);
      }
      EXPECT_NEAR(BinomialTailAtLeast(12, z, p), direct, 1e-12)
          << "p=" << p << " z=" << z;
    }
  }
}

TEST(BinomialTest, TailMonotoneInP) {
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double tail = BinomialTailAtLeast(30, 8, p);
    EXPECT_GE(tail, prev - 1e-12);
    prev = tail;
  }
}

// --------------------------------------------------------------- max-exp

Graph TestGraph(int seed, VertexId n = 300, double avg_degree = 6.0) {
  Rng rng(seed);
  Result<Graph> g = ChungLu(PowerLawWeights(n, 2.5, avg_degree), rng);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(MaxExpTest, ZeroForDegenerateSupports) {
  Graph g = TestGraph(1);
  MaxExpectationModel model(g, {.gamma = 0.5, .min_size = 4});
  EXPECT_DOUBLE_EQ(model.Expectation(0), 0.0);
  EXPECT_DOUBLE_EQ(model.Expectation(1), 0.0);
}

TEST(MaxExpTest, MonotoneNonDecreasingInSupport) {
  Graph g = TestGraph(2);
  MaxExpectationModel model(g, {.gamma = 0.5, .min_size = 5});
  double prev = 0.0;
  for (std::size_t support = 2; support <= 300; support += 7) {
    const double e = model.Expectation(support);
    EXPECT_GE(e, prev - 1e-15) << support;
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

TEST(MaxExpTest, FullSupportBoundsDegreeFraction) {
  // With support == |V|, rho == 1 and the bound equals the fraction of
  // vertices with degree >= z.
  Graph g = TestGraph(3);
  const QuasiCliqueParams params{.gamma = 0.5, .min_size = 5};
  MaxExpectationModel model(g, params);
  const std::uint32_t z = params.RequiredDegree(params.min_size);
  std::size_t count = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (g.Degree(v) >= z) ++count;
  }
  EXPECT_NEAR(model.Expectation(g.NumVertices()),
              static_cast<double>(count) / g.NumVertices(), 1e-9);
}

TEST(MaxExpTest, TighterQuasiCliqueParamsLowerExpectation) {
  Graph g = TestGraph(4);
  MaxExpectationModel loose(g, {.gamma = 0.5, .min_size = 4});
  MaxExpectationModel tight(g, {.gamma = 0.8, .min_size = 8});
  for (std::size_t support : {50u, 100u, 200u}) {
    EXPECT_LE(tight.Expectation(support), loose.Expectation(support) + 1e-12);
  }
}

TEST(MaxExpTest, CachedValueStable) {
  Graph g = TestGraph(5);
  MaxExpectationModel model(g, {.gamma = 0.5, .min_size = 4});
  const double a = model.Expectation(77);
  const double b = model.Expectation(77);
  EXPECT_DOUBLE_EQ(a, b);
}

// --------------------------------------------------------------- sim-exp

TEST(SimExpTest, ZeroWhenGraphTooSparse) {
  // Empty graph: no quasi-clique can exist in any sample.
  Graph g(100);
  SimExpectationModel model(g, {.gamma = 0.5, .min_size = 4}, 5, 1);
  EXPECT_DOUBLE_EQ(model.Expectation(50), 0.0);
}

TEST(SimExpTest, OneOnCompleteGraphFullSample) {
  Rng rng(1);
  Result<Graph> g = ErdosRenyi(12, 1.0, rng);
  ASSERT_TRUE(g.ok());
  SimExpectationModel model(*g, {.gamma = 0.5, .min_size = 3}, 3, 2);
  EXPECT_DOUBLE_EQ(model.Expectation(12), 1.0);
}

TEST(SimExpTest, BoundedBelowByZeroAboveByOne) {
  Graph g = TestGraph(6, 150, 8.0);
  SimExpectationModel model(g, {.gamma = 0.5, .min_size = 3}, 10, 3);
  for (std::size_t support : {10u, 40u, 80u, 150u}) {
    const double e = model.Expectation(support);
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 1.0);
  }
}

TEST(SimExpTest, EstimateReportsStddev) {
  Graph g = TestGraph(7, 120, 8.0);
  SimExpectationModel model(g, {.gamma = 0.5, .min_size = 3}, 20, 4);
  const auto est = model.EstimateWithStddev(60);
  EXPECT_GE(est.stddev, 0.0);
  EXPECT_GE(est.mean, 0.0);
}

TEST(SimExpTest, EstimatesIndependentOfQueryOrder) {
  // Parallel SCPM first-touches supports in thread-timing order; each
  // support must draw from its own seed-derived stream so the estimate is
  // the same whatever was queried before it.
  Graph g = TestGraph(12, 120, 8.0);
  const QuasiCliqueParams params{.gamma = 0.5, .min_size = 3};
  SimExpectationModel forward(g, params, 8, 77);
  SimExpectationModel backward(g, params, 8, 77);
  const std::vector<std::size_t> supports = {10, 25, 40, 60, 90, 120};
  std::vector<double> a;
  for (std::size_t s : supports) a.push_back(forward.Expectation(s));
  std::vector<double> b(supports.size());
  for (std::size_t i = supports.size(); i-- > 0;) {
    b[i] = backward.Expectation(supports[i]);
  }
  for (std::size_t i = 0; i < supports.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i], b[i]) << "support " << supports[i];
  }
}

TEST(MaxExpTest, ThreadSafeConcurrentAccess) {
  Graph g = TestGraph(9);
  MaxExpectationModel model(g, {.gamma = 0.5, .min_size = 4});
  // Reference values computed single-threaded.
  std::vector<double> want;
  for (std::size_t s = 2; s < 100; s += 3) want.push_back(model.Expectation(s));

  MaxExpectationModel fresh(g, {.gamma = 0.5, .min_size = 4});
  std::vector<double> got(want.size());
  {
    ThreadPool pool(4);
    for (std::size_t i = 0; i < want.size(); ++i) {
      pool.Submit([&fresh, &got, i] { got[i] = fresh.Expectation(2 + 3 * i); });
    }
    pool.Wait();
  }
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << i;
  }
}

/// The paper's headline relationship (§2.1.3): the analytical bound
/// dominates the simulated expectation, hence delta_lb <= delta_sim.
class MaxDominatesSimSweep : public ::testing::TestWithParam<int> {};

TEST_P(MaxDominatesSimSweep, MaxExpIsUpperBound) {
  Graph g = TestGraph(GetParam(), 200, 7.0);
  const QuasiCliqueParams params{.gamma = 0.5, .min_size = 4};
  MaxExpectationModel max_model(g, params);
  SimExpectationModel sim_model(g, params, 15, GetParam() + 100);
  for (std::size_t support : {20u, 60u, 120u, 200u}) {
    const double sim = sim_model.Expectation(support);
    const double bound = max_model.Expectation(support);
    // Allow tiny Monte-Carlo slack.
    EXPECT_LE(sim, bound + 0.05) << "support " << support;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxDominatesSimSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace scpm
