// Unit tests for src/graph: CSR graph, induced subgraph, attributed graph,
// text IO, metrics.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "graph/attributed_graph.h"
#include "graph/dot.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "util/random.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

Graph MakeGraph(VertexId n, std::vector<Edge> edges) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

Graph Triangle() { return MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}}); }

Graph Path4() { return MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}}); }

// ----------------------------------------------------------------- Graph

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
}

TEST(GraphTest, IsolatedVertices) {
  Graph g(5);
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(GraphTest, BasicAdjacency) {
  Graph g = Triangle();
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(g.Degree(v), 2u);
}

TEST(GraphTest, DropsDuplicatesAndSelfLoops) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(2), 0u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  Result<Graph> g = Graph::FromEdges(2, {{0, 5}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kInvalidArgument);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = MakeGraph(5, {{4, 0}, {2, 0}, {0, 3}, {0, 1}});
  auto nbrs = g.Neighbors(0);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphTest, EdgesRoundTrip) {
  std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  Graph g = MakeGraph(4, edges);
  const auto out = g.Edges();
  EXPECT_EQ(out.size(), 4u);
  for (const Edge& e : out) EXPECT_LT(e.u, e.v);
}

TEST(GraphTest, DegreeHistogram) {
  Graph g = Path4();
  const auto hist = g.DegreeHistogram();
  ASSERT_EQ(hist.size(), 3u);  // degrees 0..2
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(GraphTest, BuilderAccumulates) {
  GraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  EXPECT_EQ(builder.NumRecordedEdges(), 2u);
  Result<Graph> g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 2u);
}

class GraphRandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(GraphRandomSweep, CsrInvariants) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(40, 0.15, rng);
  ASSERT_TRUE(g.ok());
  std::size_t degree_sum = 0;
  for (VertexId v = 0; v < g->NumVertices(); ++v) {
    auto nbrs = g->Neighbors(v);
    EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
    EXPECT_TRUE(std::adjacent_find(nbrs.begin(), nbrs.end()) == nbrs.end());
    for (VertexId u : nbrs) {
      EXPECT_NE(u, v);
      EXPECT_TRUE(g->HasEdge(v, u));
      EXPECT_TRUE(g->HasEdge(u, v));  // symmetry
    }
    degree_sum += nbrs.size();
  }
  EXPECT_EQ(degree_sum, 2 * g->NumEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphRandomSweep, ::testing::Range(0, 10));

// -------------------------------------------------------------- Subgraph

TEST(SubgraphTest, InducesEdgesWithinSubset) {
  // Square with a diagonal: 0-1-2-3-0 plus 0-2.
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}, {0, 2}});
  Result<InducedSubgraph> sub = InducedSubgraph::Create(g, {0, 1, 2});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumVertices(), 3u);
  EXPECT_EQ(sub->graph().NumEdges(), 3u);  // triangle 0-1-2
  EXPECT_EQ(sub->ToGlobal(VertexId{0}), 0u);
  EXPECT_EQ(sub->ToLocal(2), 2u);
  EXPECT_EQ(sub->ToLocal(3), kInvalidVertex);
}

TEST(SubgraphTest, EmptySubset) {
  Graph g = Triangle();
  Result<InducedSubgraph> sub = InducedSubgraph::Create(g, {});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumVertices(), 0u);
}

TEST(SubgraphTest, RejectsUnsortedInput) {
  Graph g = Triangle();
  EXPECT_FALSE(InducedSubgraph::Create(g, {2, 0}).ok());
  EXPECT_FALSE(InducedSubgraph::Create(g, {0, 0}).ok());
  EXPECT_FALSE(InducedSubgraph::Create(g, {0, 9}).ok());
}

TEST(SubgraphTest, MapsSetsBack) {
  Graph g = MakeGraph(6, {{1, 3}, {3, 5}});
  Result<InducedSubgraph> sub = InducedSubgraph::Create(g, {1, 3, 5});
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->ToGlobal(VertexSet{0, 2}), (VertexSet{1, 5}));
}

class SubgraphSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubgraphSweep, MatchesBruteForceInduction) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(30, 0.2, rng);
  ASSERT_TRUE(g.ok());
  const VertexSet subset = rng.SampleWithoutReplacement(30, 12);
  Result<InducedSubgraph> sub = InducedSubgraph::Create(*g, subset);
  ASSERT_TRUE(sub.ok());
  // Every pair in the subset must agree between parent and subgraph.
  for (std::size_t i = 0; i < subset.size(); ++i) {
    for (std::size_t j = i + 1; j < subset.size(); ++j) {
      EXPECT_EQ(g->HasEdge(subset[i], subset[j]),
                sub->graph().HasEdge(static_cast<VertexId>(i),
                                     static_cast<VertexId>(j)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubgraphSweep, ::testing::Range(0, 10));

// --------------------------------------------------- SubgraphWorkspace

/// CSR equality: same offsets partitioning and same neighbor lists.
void ExpectSameGraph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.NumVertices(), b.NumVertices());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    const auto na = a.Neighbors(v);
    const auto nb = b.Neighbors(v);
    ASSERT_EQ(VertexSet(na.begin(), na.end()), VertexSet(nb.begin(), nb.end()))
        << "vertex " << v;
  }
}

class SubgraphWorkspaceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubgraphWorkspaceSweep, MatchesCreateAcrossRecycledBuilds) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(60, 0.15, rng);
  ASSERT_TRUE(g.ok());
  SubgraphWorkspace workspace;
  // Repeated builds reuse recycled buffers; each must equal the
  // allocate-from-scratch path exactly.
  for (int round = 0; round < 6; ++round) {
    const VertexSet subset = rng.SampleWithoutReplacement(
        60, 5 + static_cast<std::uint32_t>(rng.NextBounded(40)));
    Result<InducedSubgraph> fresh = InducedSubgraph::Create(*g, subset);
    Result<InducedSubgraph> reused = workspace.Build(*g, subset);
    ASSERT_TRUE(fresh.ok());
    ASSERT_TRUE(reused.ok());
    EXPECT_EQ(fresh->global_ids(), reused->global_ids());
    ExpectSameGraph(fresh->graph(), reused->graph());
    workspace.Recycle(std::move(reused).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubgraphWorkspaceSweep,
                         ::testing::Range(0, 10));

TEST(SubgraphWorkspaceTest, ValidatesLikeCreate) {
  Graph g = Triangle();
  SubgraphWorkspace workspace;
  EXPECT_FALSE(workspace.Build(g, {2, 0}).ok());
  EXPECT_FALSE(workspace.Build(g, {0, 0}).ok());
  EXPECT_FALSE(workspace.Build(g, {0, 9}).ok());
  Result<InducedSubgraph> empty = workspace.Build(g, VertexSet{});
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->NumVertices(), 0u);
}

TEST(SubgraphWorkspaceTest, NestedBuildsBeforeRecycle) {
  // A workspace-built subgraph may itself be induced from (the miner does
  // this) before either is recycled.
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 4}});
  SubgraphWorkspace workspace;
  Result<InducedSubgraph> outer = workspace.Build(g, {0, 1, 2, 4});
  ASSERT_TRUE(outer.ok());
  Result<InducedSubgraph> inner = workspace.Build(outer->graph(), {0, 1, 3});
  ASSERT_TRUE(inner.ok());
  // Locals {0,1,3} of outer are globals {0,1,4}: edges 0-1, 0-4, 1-4.
  EXPECT_EQ(inner->graph().NumEdges(), 3u);
  workspace.Recycle(std::move(inner).value());
  EXPECT_TRUE(outer->graph().HasEdge(0, 1));  // outer unaffected
  workspace.Recycle(std::move(outer).value());
}

TEST(SubgraphWorkspaceTest, ServesMultipleParentGraphs) {
  Graph small = Triangle();
  Graph big = MakeGraph(8, {{0, 7}, {1, 6}, {2, 5}, {5, 6}, {6, 7}});
  SubgraphWorkspace workspace;
  Result<InducedSubgraph> a = workspace.Build(big, {5, 6, 7});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->graph().NumEdges(), 2u);
  workspace.Recycle(std::move(a).value());
  Result<InducedSubgraph> b = workspace.Build(small, {0, 1});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->graph().NumEdges(), 1u);
  workspace.Recycle(std::move(b).value());
}

/// The chunked fast path of Build(HybridVertexSet): a mid-density set
/// over a >= 2^16 universe stays in its roaring representation (no
/// vector materialization, no stamp pass) and must produce the identical
/// subgraph. 2000 of 70000 vertices (2.9%) lands in the chunked band and
/// splits across two chunks — the first dense (bitmap payload), the
/// second sparse (u16 payload) — so both in-chunk rank paths run.
TEST(SubgraphWorkspaceTest, ChunkedBuildMatchesVectorBuild) {
  Rng rng(7);
  const VertexId n = 70000;
  VertexSet members = rng.SampleWithoutReplacement(n, 2000);
  std::sort(members.begin(), members.end());
  std::vector<Edge> edges;
  for (int i = 0; i < 4000; ++i) {
    const VertexId u = members[rng.NextBounded(members.size())];
    const VertexId v = members[rng.NextBounded(members.size())];
    if (u != v) edges.push_back({std::min(u, v), std::max(u, v)});
    const VertexId w = static_cast<VertexId>(rng.NextBounded(n));
    if (w != u) edges.push_back({std::min(u, w), std::max(u, w)});
  }
  Result<Graph> g = Graph::FromEdges(n, std::move(edges));
  ASSERT_TRUE(g.ok());

  SetOpStats stats;
  HybridVertexSet set = HybridVertexSet::FromVector(members, n, &stats);
  ASSERT_TRUE(set.chunked());  // the point of the test
  ASSERT_TRUE(set.chunk_set().chunks().front().dense());
  ASSERT_FALSE(set.chunk_set().chunks().back().dense());

  SubgraphWorkspace workspace;
  Result<InducedSubgraph> chunked = workspace.Build(*g, std::move(set));
  ASSERT_TRUE(chunked.ok()) << chunked.status();
  Result<InducedSubgraph> plain = InducedSubgraph::Create(*g, members);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(chunked->global_ids(), plain->global_ids());
  ExpectSameGraph(chunked->graph(), plain->graph());
  workspace.Recycle(std::move(chunked).value());

  // Round 2 on recycled buffers, different member set.
  VertexSet other = rng.SampleWithoutReplacement(n, 1500);
  std::sort(other.begin(), other.end());
  HybridVertexSet set2 = HybridVertexSet::FromVector(other, n, &stats);
  ASSERT_TRUE(set2.chunked());
  Result<InducedSubgraph> again = workspace.Build(*g, std::move(set2));
  ASSERT_TRUE(again.ok());
  Result<InducedSubgraph> plain2 = InducedSubgraph::Create(*g, other);
  ASSERT_TRUE(plain2.ok());
  EXPECT_EQ(again->global_ids(), plain2->global_ids());
  ExpectSameGraph(again->graph(), plain2->graph());
}

TEST(SubgraphWorkspaceTest, ChunkedBuildValidatesVertexRange) {
  // Members live in [0, 70000) but the parent graph is smaller: the
  // chunked path must reject the build like the other paths do.
  Rng rng(11);
  VertexSet members = rng.SampleWithoutReplacement(70000, 1000);
  std::sort(members.begin(), members.end());
  SetOpStats stats;
  HybridVertexSet set = HybridVertexSet::FromVector(members, 70000, &stats);
  ASSERT_TRUE(set.chunked());
  Graph small(100);
  SubgraphWorkspace workspace;
  EXPECT_FALSE(workspace.Build(small, std::move(set)).ok());
}

// ------------------------------------------------------ AttributedGraph

AttributedGraph SmallAttributed() {
  AttributedGraphBuilder builder(4);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 3);
  EXPECT_TRUE(builder.AddVertexAttribute(0, "red").ok());
  EXPECT_TRUE(builder.AddVertexAttribute(1, "red").ok());
  EXPECT_TRUE(builder.AddVertexAttribute(1, "blue").ok());
  EXPECT_TRUE(builder.AddVertexAttribute(2, "blue").ok());
  EXPECT_TRUE(builder.AddVertexAttribute(3, "red").ok());
  EXPECT_TRUE(builder.AddVertexAttribute(3, "blue").ok());
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(AttributedGraphTest, InterningIsStable) {
  AttributedGraphBuilder builder(1);
  const AttributeId red = builder.InternAttribute("red");
  EXPECT_EQ(builder.InternAttribute("red"), red);
  EXPECT_NE(builder.InternAttribute("blue"), red);
}

TEST(AttributedGraphTest, AttributesAndInvertedIndex) {
  AttributedGraph g = SmallAttributed();
  EXPECT_EQ(g.NumAttributes(), 2u);
  const AttributeId red = g.FindAttribute("red");
  const AttributeId blue = g.FindAttribute("blue");
  ASSERT_NE(red, kInvalidAttribute);
  ASSERT_NE(blue, kInvalidAttribute);
  EXPECT_EQ(g.VerticesWith(red), (VertexSet{0, 1, 3}));
  EXPECT_EQ(g.VerticesWith(blue), (VertexSet{1, 2, 3}));
  EXPECT_TRUE(g.VertexHasAttribute(1, red));
  EXPECT_FALSE(g.VertexHasAttribute(2, red));
  EXPECT_EQ(g.FindAttribute("green"), kInvalidAttribute);
}

TEST(AttributedGraphTest, VerticesWithAll) {
  AttributedGraph g = SmallAttributed();
  const AttributeId red = g.FindAttribute("red");
  const AttributeId blue = g.FindAttribute("blue");
  AttributeSet both{std::min(red, blue), std::max(red, blue)};
  EXPECT_EQ(g.VerticesWithAll(both), (VertexSet{1, 3}));
  EXPECT_EQ(g.Support(both), 2u);
  EXPECT_EQ(g.VerticesWithAll({}), (VertexSet{0, 1, 2, 3}));
}

TEST(AttributedGraphTest, DuplicateAttributeCollapsed) {
  AttributedGraphBuilder builder(1);
  EXPECT_TRUE(builder.AddVertexAttribute(0, "x").ok());
  EXPECT_TRUE(builder.AddVertexAttribute(0, "x").ok());
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->Attributes(0).size(), 1u);
  EXPECT_EQ(g->NumAttributeOccurrences(), 1u);
}

TEST(AttributedGraphTest, RejectsBadVertex) {
  AttributedGraphBuilder builder(2);
  EXPECT_FALSE(builder.AddVertexAttribute(5, "x").ok());
  EXPECT_FALSE(builder.AddVertexAttribute(0, AttributeId{99}).ok());
}

TEST(AttributedGraphTest, FormatAttributeSet) {
  AttributedGraph g = SmallAttributed();
  const AttributeId red = g.FindAttribute("red");
  EXPECT_EQ(g.FormatAttributeSet({red}), "{red}");
  EXPECT_EQ(g.FormatAttributeSet({}), "{}");
}

// -------------------------------------------------------------------- IO

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("scpm_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {3, 4}, {0, 4}});
  ASSERT_TRUE(SaveEdgeList(g, Path("g.txt")).ok());
  Result<Graph> loaded = LoadEdgeList(Path("g.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), 5u);
  EXPECT_EQ(loaded->Edges(), g.Edges());
}

TEST_F(IoTest, AttributedRoundTrip) {
  AttributedGraph g = SmallAttributed();
  ASSERT_TRUE(
      SaveAttributedGraph(g, Path("g.txt"), Path("a.txt")).ok());
  Result<AttributedGraph> loaded =
      LoadAttributedGraph(Path("g.txt"), Path("a.txt"));
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumVertices(), g.NumVertices());
  EXPECT_EQ(loaded->NumAttributes(), g.NumAttributes());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    std::set<std::string> want, got;
    for (AttributeId a : g.Attributes(v)) want.insert(g.AttributeName(a));
    for (AttributeId a : loaded->Attributes(v)) {
      got.insert(loaded->AttributeName(a));
    }
    EXPECT_EQ(got, want) << "vertex " << v;
  }
}

TEST_F(IoTest, MissingFileIsIoError) {
  Result<Graph> g = LoadEdgeList(Path("nope.txt"));
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIoError);
}

TEST_F(IoTest, MalformedLineIsIoError) {
  {
    std::ofstream out(Path("bad.txt"));
    out << "0 1\nhello world\n";
  }
  EXPECT_FALSE(LoadEdgeList(Path("bad.txt")).ok());
}

TEST_F(IoTest, CommentsAndBlanksIgnored) {
  {
    std::ofstream out(Path("c.txt"));
    out << "# header\n\n0 1 # trailing\n 1 2 \n";
  }
  Result<Graph> g = LoadEdgeList(Path("c.txt"));
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 2u);
}

// ------------------------------------------------------------------- DOT

TEST(DotTest, BasicStructure) {
  Graph g = Triangle();
  DotOptions options;
  options.highlights = {{0, 1}};
  std::ostringstream os;
  ASSERT_TRUE(WriteDot(g, options, os).ok());
  const std::string out = os.str();
  EXPECT_NE(out.find("graph scpm {"), std::string::npos);
  EXPECT_NE(out.find("n0 -- n1"), std::string::npos);
  EXPECT_NE(out.find("fillcolor"), std::string::npos);
}

TEST(DotTest, LabelsAndIsolatedVertices) {
  Graph g = MakeGraph(3, {{0, 1}});
  DotOptions options;
  options.labels = {"a", "b", "c"};
  options.drop_isolated = true;
  std::ostringstream os;
  ASSERT_TRUE(WriteDot(g, options, os).ok());
  EXPECT_EQ(os.str().find("n2"), std::string::npos);  // isolated dropped
  EXPECT_NE(os.str().find("label=\"a\""), std::string::npos);
}

TEST(DotTest, ValidatesInput) {
  Graph g = Triangle();
  DotOptions bad_labels;
  bad_labels.labels = {"only-one"};
  std::ostringstream os;
  EXPECT_FALSE(WriteDot(g, bad_labels, os).ok());
  DotOptions bad_highlight;
  bad_highlight.highlights = {{2, 1}};
  EXPECT_FALSE(WriteDot(g, bad_highlight, os).ok());
  DotOptions oob;
  oob.highlights = {{9}};
  EXPECT_FALSE(WriteDot(g, oob, os).ok());
}

// --------------------------------------------------------------- Metrics

TEST(MetricsTest, DensityAndAverageDegree) {
  Graph g = Triangle();
  EXPECT_DOUBLE_EQ(EdgeDensity(g), 1.0);
  EXPECT_DOUBLE_EQ(AverageDegree(g), 2.0);
  Graph path = Path4();
  EXPECT_DOUBLE_EQ(EdgeDensity(path), 0.5);
}

TEST(MetricsTest, SubsetDensity) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {0, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(SubsetDensity(g, {0, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(SubsetDensity(g, {0, 1, 3}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(SubsetDensity(g, {0}), 0.0);
}

TEST(MetricsTest, ClusteringCoefficients) {
  Graph g = Triangle();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(g), 1.0);
  const auto local = LocalClusteringCoefficients(g);
  for (double c : local) EXPECT_DOUBLE_EQ(c, 1.0);
  Graph path = Path4();
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(path), 0.0);
}

TEST(MetricsTest, CoreNumbers) {
  // Triangle with a pendant: cores (2,2,2,1).
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  const auto core = CoreNumbers(g);
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
  EXPECT_EQ(KCore(g, 2), (VertexSet{0, 1, 2}));
  EXPECT_EQ(KCore(g, 3), VertexSet{});
}

class CoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoreSweep, KCoreHasMinDegreeK) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(60, 0.08, rng);
  ASSERT_TRUE(g.ok());
  for (std::uint32_t k = 1; k <= 4; ++k) {
    const VertexSet core = KCore(*g, k);
    for (VertexId v : core) {
      std::size_t deg_in_core = 0;
      for (VertexId u : g->Neighbors(v)) {
        deg_in_core += SortedContains(core, u) ? 1 : 0;
      }
      EXPECT_GE(deg_in_core, k) << "vertex " << v << " in " << k << "-core";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreSweep, ::testing::Range(0, 10));

TEST(MetricsTest, TriangleCount) {
  Graph g = Triangle();
  EXPECT_EQ(TriangleCount(g), 1u);
  // K4 has 4 triangles.
  Graph k4 = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(TriangleCount(k4), 4u);
  EXPECT_EQ(TriangleCount(Path4()), 0u);
}

/// Regression for the bitmap-row common-neighbor rewrite: the triangle
/// and clustering metrics must produce the exact integer counts (and
/// therefore bit-identical doubles) of a brute-force O(n^3) reference.
class MetricsRowSweep : public ::testing::TestWithParam<int> {};

TEST_P(MetricsRowSweep, BitmapRowsMatchBruteForce) {
  Rng rng(GetParam() + 50);
  Result<Graph> g = ErdosRenyi(90, 0.08 + 0.04 * (GetParam() % 3), rng);
  ASSERT_TRUE(g.ok());
  const VertexId n = g->NumVertices();
  auto adjacent = [&](VertexId u, VertexId v) {
    return SortedContains(VertexSet(g->Neighbors(u).begin(),
                                    g->Neighbors(u).end()),
                          v);
  };

  std::size_t triangles = 0;
  std::vector<std::size_t> local_twice_edges(n, 0);
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b = a + 1; b < n; ++b) {
      if (!adjacent(a, b)) continue;
      for (VertexId c = b + 1; c < n; ++c) {
        if (adjacent(a, c) && adjacent(b, c)) {
          ++triangles;
          local_twice_edges[a] += 2;
          local_twice_edges[b] += 2;
          local_twice_edges[c] += 2;
        }
      }
    }
  }
  EXPECT_EQ(TriangleCount(*g), triangles);

  std::size_t wedges = 0;
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g->Degree(v);
    wedges += d * (d - 1) / 2;
  }
  const double want_gcc =
      wedges == 0 ? 0.0
                  : static_cast<double>(3 * triangles) /
                        static_cast<double>(wedges);
  EXPECT_DOUBLE_EQ(GlobalClusteringCoefficient(*g), want_gcc);

  const std::vector<double> local = LocalClusteringCoefficients(*g);
  for (VertexId v = 0; v < n; ++v) {
    const std::size_t d = g->Degree(v);
    const double want =
        d < 2 ? 0.0
              : static_cast<double>(local_twice_edges[v]) /
                    (static_cast<double>(d) * static_cast<double>(d - 1));
    EXPECT_DOUBLE_EQ(local[v], want) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsRowSweep, ::testing::Range(0, 6));

TEST(MetricsTest, DegreeAssortativity) {
  // Star graph: hub degree n-1, leaves degree 1 -> strongly disassortative.
  Graph star = MakeGraph(6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}});
  EXPECT_LT(DegreeAssortativity(star), -0.9);
  // Regular graph (cycle): correlation undefined -> 0 by convention.
  Graph cycle = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_DOUBLE_EQ(DegreeAssortativity(cycle), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(Graph(3)), 0.0);
}

TEST(MetricsTest, BfsDistances) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}});
  const auto dist = BfsDistances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], 2u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(MetricsTest, DoubleSweepDiameter) {
  Graph path = Path4();
  EXPECT_EQ(DoubleSweepDiameterLowerBound(path, 1), 3u);  // exact on trees
  Graph g = Triangle();
  EXPECT_EQ(DoubleSweepDiameterLowerBound(g), 1u);
  EXPECT_EQ(DoubleSweepDiameterLowerBound(Graph(0)), 0u);
}

TEST(MetricsTest, ConnectedComponents) {
  Graph g = MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  const ComponentLabeling labeling = ConnectedComponents(g);
  EXPECT_EQ(labeling.num_components, 3u);
  EXPECT_EQ(labeling.label[0], labeling.label[1]);
  EXPECT_EQ(labeling.label[1], labeling.label[2]);
  EXPECT_EQ(labeling.label[3], labeling.label[4]);
  EXPECT_NE(labeling.label[0], labeling.label[3]);
  EXPECT_NE(labeling.label[3], labeling.label[5]);
  EXPECT_EQ(LargestComponentSize(g), 3u);
}

}  // namespace
}  // namespace scpm
