// Distributed mining tests: byte-identity of rows, patterns, and
// summed work counters against a single-process run for every worker
// count / batch shape, under injected worker kills, dropped
// heartbeats, and corrupted results; the inline fallback that
// guarantees termination when every worker is gone; typed lease
// events; coordinator SIGKILL recovery from a StateStore journal; and
// the query server's distributed routing. The seeded sweep honors
// SCPM_FAULT_SEED so CI can shake different kill schedules. These
// tests fork real processes and run under TSan in CI.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/request.h"
#include "core/scpm.h"
#include "dist/dist.h"
#include "graph/attributed_graph.h"
#include "server/json.h"
#include "server/server.h"
#include "server/session.h"
#include "util/fault.h"
#include "util/random.h"

namespace scpm {
namespace {

std::string TempDir(const std::string& tag) {
  std::string templ = "./dist_" + tag + "_XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const char* made = ::mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return made != nullptr ? made : templ;
}

/// Random attributed graph (same construction as engine_test.cc).
AttributedGraph RandomAttributed(int seed, VertexId n = 24, int num_attrs = 5,
                                 double edge_p = 0.3, double attr_p = 0.4) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_p) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttributeId id = builder.InternAttribute("a" + std::to_string(a));
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextDouble() < attr_p) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, id).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

MiningRequest JsonlRequest(const std::string& out_path) {
  MiningRequest request;
  request.options.quasi_clique.gamma = 0.6;
  request.options.quasi_clique.min_size = 4;
  request.options.min_support = 2;
  request.options.min_epsilon = 0.05;
  request.options.top_k = 5;
  request.sink = MiningRequest::Sink::kJsonl;
  request.jsonl_path = out_path;
  return request;
}

std::vector<std::string> SortedLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

void ExpectCountersEq(const ScpmCounters& a, const ScpmCounters& b) {
  EXPECT_EQ(a.attribute_sets_evaluated, b.attribute_sets_evaluated);
  EXPECT_EQ(a.attribute_sets_reported, b.attribute_sets_reported);
  EXPECT_EQ(a.attribute_sets_extended, b.attribute_sets_extended);
  EXPECT_EQ(a.coverage_candidates, b.coverage_candidates);
  EXPECT_EQ(a.evaluation_batches, b.evaluation_batches);
  EXPECT_EQ(a.intra_search_evaluations, b.intra_search_evaluations);
  EXPECT_EQ(a.intra_branch_tasks, b.intra_branch_tasks);
  EXPECT_EQ(a.bitmap_intersections, b.bitmap_intersections);
  EXPECT_EQ(a.galloping_intersections, b.galloping_intersections);
  EXPECT_EQ(a.chunked_intersections, b.chunked_intersections);
  EXPECT_EQ(a.dense_conversions, b.dense_conversions);
  EXPECT_EQ(a.chunked_conversions, b.chunked_conversions);
}

/// Single-process memo-less reference for `request`'s options, written
/// to `out_path`.
MiningRun Baseline(const AttributedGraph& graph, const std::string& out_path) {
  Result<MiningResponse> response =
      ExecuteRequest(graph, JsonlRequest(out_path));
  EXPECT_TRUE(response.ok()) << response.status();
  return response->run;
}

void Disarm() {
  ASSERT_TRUE(FaultInjector::Instance().Configure("").ok());
}

TEST(DistIdentity, MatchesSingleProcessAcrossWorkerAndBatchShapes) {
  Disarm();
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("identity");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");
  const std::vector<std::string> base_lines = SortedLines(dir + "/base.jsonl");
  ASSERT_GT(base_lines.size(), 0u);

  int variant = 0;
  for (std::size_t workers : {1, 2, 4}) {
    for (std::size_t batch_entries : {1, 3, 8}) {
      for (std::uint64_t batch_evals : {2, 64}) {
        const std::string out =
            dir + "/d" + std::to_string(variant++) + ".jsonl";
        MiningRequest request = JsonlRequest(out);
        dist::DistOptions dopts;
        dopts.workers = workers;
        dopts.batch_entries = batch_entries;
        dopts.batch_evals = batch_evals;
        dopts.worker_wave = 2;
        dist::DistStats stats;
        Result<MiningResponse> response =
            dist::Mine(graph, request, dopts, nullptr, &stats);
        ASSERT_TRUE(response.ok()) << response.status();
        EXPECT_TRUE(response->run.exhausted);
        EXPECT_EQ(response->run.emitted, base.emitted);
        EXPECT_EQ(response->run.patterns_emitted, base.patterns_emitted);
        ExpectCountersEq(response->run.counters, base.counters);
        EXPECT_EQ(SortedLines(out), base_lines)
            << "workers=" << workers << " batch_entries=" << batch_entries
            << " batch_evals=" << batch_evals;
        EXPECT_TRUE(stats.events.empty());
      }
    }
  }
}

/// The per-lease checkpoint-format negotiation: a coordinator pinned to
/// the v1 text encoding mines byte-identically to the binary default —
/// the format changes the frames, never the work or the output.
TEST(DistIdentity, TextCheckpointFormatMatchesBinary) {
  Disarm();
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("ckptfmt");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");
  const std::vector<std::string> base_lines = SortedLines(dir + "/base.jsonl");
  ASSERT_GT(base_lines.size(), 0u);

  for (CheckpointFormat format :
       {CheckpointFormat::kText, CheckpointFormat::kBinary}) {
    const std::string out = dir + "/fmt" +
                            std::to_string(static_cast<int>(format)) +
                            ".jsonl";
    MiningRequest request = JsonlRequest(out);
    dist::DistOptions dopts;
    dopts.workers = 2;
    dopts.batch_entries = 3;
    dopts.batch_evals = 2;  // many leases: lots of frames in each format
    dopts.worker_wave = 2;
    dopts.ckpt_format = format;
    dist::DistStats stats;
    Result<MiningResponse> response =
        dist::Mine(graph, request, dopts, nullptr, &stats);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->run.exhausted);
    EXPECT_EQ(response->run.emitted, base.emitted);
    ExpectCountersEq(response->run.counters, base.counters);
    EXPECT_EQ(SortedLines(out), base_lines);
    EXPECT_TRUE(stats.events.empty());
  }
}

TEST(DistFaults, WorkerKillIsRetriedOnSurvivorsIdentically) {
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("kill");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");

  // Worker 1 dies on its first lease; the batch re-leases elsewhere.
  ASSERT_TRUE(FaultInjector::Instance().Configure("worker-kill:1=0").ok());
  MiningRequest request = JsonlRequest(dir + "/dist.jsonl");
  dist::DistOptions dopts;
  dopts.workers = 3;
  dopts.batch_entries = 1;
  dopts.batch_evals = 4;
  dopts.backoff_ms = 1;
  dist::DistStats stats;
  Result<MiningResponse> response =
      dist::Mine(graph, request, dopts, nullptr, &stats);
  Disarm();
  ASSERT_TRUE(response.ok()) << response.status();
  ExpectCountersEq(response->run.counters, base.counters);
  EXPECT_EQ(SortedLines(dir + "/dist.jsonl"), SortedLines(dir + "/base.jsonl"));
  EXPECT_EQ(stats.worker_exits, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.workers[1].reassignments, 1u);
  EXPECT_GT(stats.workers[1].backoff_ms, 0u);
  ASSERT_EQ(stats.events.size(), 1u);
  // Every lease failure is typed: worker death is an I/O-class loss.
  EXPECT_EQ(stats.events[0].code, StatusCode::kIoError);
  EXPECT_NE(stats.events[0].detail.find("exited mid-lease"),
            std::string::npos);
}

TEST(DistFaults, DroppedHeartbeatRevokesTheLease) {
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("hb");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");

  // Worker 0 swallows its first heartbeat and oversleeps the lease —
  // the coordinator must revoke it on deadline, not wait forever.
  ASSERT_TRUE(FaultInjector::Instance().Configure("heartbeat-drop:0=0").ok());
  MiningRequest request = JsonlRequest(dir + "/dist.jsonl");
  dist::DistOptions dopts;
  dopts.workers = 2;
  dopts.batch_entries = 1;
  dopts.batch_evals = 2;
  dopts.worker_wave = 1;
  dopts.lease_ms = 100;
  dopts.backoff_ms = 1;
  dist::DistStats stats;
  Result<MiningResponse> response =
      dist::Mine(graph, request, dopts, nullptr, &stats);
  Disarm();
  ASSERT_TRUE(response.ok()) << response.status();
  ExpectCountersEq(response->run.counters, base.counters);
  EXPECT_EQ(SortedLines(dir + "/dist.jsonl"), SortedLines(dir + "/base.jsonl"));
  EXPECT_GE(stats.heartbeat_timeouts, 1u);
  EXPECT_GE(stats.workers[0].reassignments, 1u);
  ASSERT_GE(stats.events.size(), 1u);
  EXPECT_EQ(stats.events[0].code, StatusCode::kIoError);
}

TEST(DistFaults, CorruptResultFailsTheLeaseByChecksum) {
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("corrupt");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");

  ASSERT_TRUE(FaultInjector::Instance().Configure("result-corrupt:0=0").ok());
  MiningRequest request = JsonlRequest(dir + "/dist.jsonl");
  dist::DistOptions dopts;
  dopts.workers = 2;
  dopts.batch_entries = 1;
  dopts.batch_evals = 4;
  dopts.backoff_ms = 1;
  dist::DistStats stats;
  Result<MiningResponse> response =
      dist::Mine(graph, request, dopts, nullptr, &stats);
  Disarm();
  ASSERT_TRUE(response.ok()) << response.status();
  // The corrupted payload must be dropped whole (no partial merge):
  // totals still match the reference exactly.
  ExpectCountersEq(response->run.counters, base.counters);
  EXPECT_EQ(SortedLines(dir + "/dist.jsonl"), SortedLines(dir + "/base.jsonl"));
  EXPECT_EQ(stats.corrupt_results, 1u);
  ASSERT_GE(stats.events.size(), 1u);
  EXPECT_EQ(stats.events[0].code, StatusCode::kIoError);
  EXPECT_NE(stats.events[0].detail.find("checksum"), std::string::npos);
}

TEST(DistFaults, AllWorkersDeadFallsBackInlineAndTerminates) {
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("inline");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");

  // A bare point name fires in EVERY worker: the whole fleet dies on
  // its first lease, and the job must still terminate via the
  // coordinator's inline path.
  ASSERT_TRUE(FaultInjector::Instance().Configure("worker-kill=0").ok());
  MiningRequest request = JsonlRequest(dir + "/dist.jsonl");
  dist::DistOptions dopts;
  dopts.workers = 3;
  dopts.batch_entries = 2;
  dopts.batch_evals = 4;
  dopts.backoff_ms = 1;
  dist::DistStats stats;
  Result<MiningResponse> response =
      dist::Mine(graph, request, dopts, nullptr, &stats);
  Disarm();
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->run.exhausted);
  ExpectCountersEq(response->run.counters, base.counters);
  EXPECT_EQ(SortedLines(dir + "/dist.jsonl"), SortedLines(dir + "/base.jsonl"));
  EXPECT_EQ(stats.worker_exits, 3u);
  EXPECT_GE(stats.inline_fallbacks, 1u);
  EXPECT_EQ(stats.batches, 0u);  // no worker ever completed a lease
  for (const dist::DistEvent& event : stats.events) {
    EXPECT_EQ(event.code, StatusCode::kIoError);
    EXPECT_FALSE(event.detail.empty());
  }
}

TEST(DistFaults, ExhaustedRetriesFallBackInlinePerBatch) {
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("retries");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");

  // Worker 0 is the only worker and dies on its first lease; with zero
  // retries the batch goes straight inline while later batches keep
  // failing over — the job terminates regardless of max_retries.
  ASSERT_TRUE(FaultInjector::Instance().Configure("worker-kill:0=0").ok());
  MiningRequest request = JsonlRequest(dir + "/dist.jsonl");
  dist::DistOptions dopts;
  dopts.workers = 1;
  dopts.batch_entries = 2;
  dopts.batch_evals = 4;
  dopts.max_retries = 0;
  dopts.backoff_ms = 1;
  dist::DistStats stats;
  Result<MiningResponse> response =
      dist::Mine(graph, request, dopts, nullptr, &stats);
  Disarm();
  ASSERT_TRUE(response.ok()) << response.status();
  ExpectCountersEq(response->run.counters, base.counters);
  EXPECT_EQ(SortedLines(dir + "/dist.jsonl"), SortedLines(dir + "/base.jsonl"));
  EXPECT_GE(stats.inline_fallbacks, 1u);
}

TEST(DistBudget, BudgetedRequestsAreRejectedTyped) {
  Disarm();
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("budget");
  MiningRequest request = JsonlRequest(dir + "/out.jsonl");
  request.budget.max_evaluations = 5;
  dist::DistOptions dopts;
  Result<MiningResponse> response = dist::Mine(graph, request, dopts);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistOptionsValidate, RejectsDegenerateKnobs) {
  dist::DistOptions dopts;
  dopts.batch_evals = 0;
  EXPECT_EQ(dopts.Validate().code(), StatusCode::kInvalidArgument);
  dopts = dist::DistOptions();
  dopts.batch_entries = 0;
  EXPECT_EQ(dopts.Validate().code(), StatusCode::kInvalidArgument);
  dopts = dist::DistOptions();
  dopts.lease_ms = 0;
  EXPECT_EQ(dopts.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(DistRecovery, CoordinatorSigkillResumesByteIdentical) {
  Disarm();
  // Heavy enough that the job outlives the parent's kill window.
  const AttributedGraph graph = RandomAttributed(11, 40, 6, 0.3, 0.45);
  const std::string dir = TempDir("sigkill");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");
  const std::string out = dir + "/dist.jsonl";
  const std::string state = dir + "/state";

  dist::DistOptions dopts;
  dopts.workers = 2;
  dopts.batch_entries = 1;
  dopts.batch_evals = 2;
  dopts.state_dir = state;
  dopts.checkpoint_interval_ms = 1;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    MiningRequest request = JsonlRequest(out);
    (void)dist::Mine(graph, request, dopts);
    ::_exit(0);
  }
  // Kill the coordinator the moment its first durable snapshot lands
  // (or let it finish — recovery must cope with both).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool saw_checkpoint = false;
  while (std::chrono::steady_clock::now() < deadline) {
    std::ifstream probe(state + "/q1.ckpt");
    if (probe.good()) {
      saw_checkpoint = true;
      break;
    }
    int wstatus = 0;
    if (::waitpid(child, &wstatus, WNOHANG) == child) break;  // finished
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (saw_checkpoint) {
    ::kill(child, SIGKILL);
    int wstatus = 0;
    ::waitpid(child, &wstatus, 0);
  }

  MiningRequest request = JsonlRequest(out);
  dist::DistStats stats;
  Result<MiningResponse> response =
      dist::Mine(graph, request, dopts, nullptr, &stats);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->run.exhausted);
  // Rows, patterns, and summed counters must all be file-cumulative
  // byte-identical to the uninterrupted single-process reference.
  EXPECT_EQ(response->run.emitted, base.emitted);
  EXPECT_EQ(response->run.patterns_emitted, base.patterns_emitted);
  ExpectCountersEq(response->run.counters, base.counters);
  EXPECT_EQ(response->jsonl_lines, base.emitted);
  EXPECT_EQ(SortedLines(out), SortedLines(dir + "/base.jsonl"));
}

TEST(DistRecovery, ChangedOptionsRestartInsteadOfResuming) {
  Disarm();
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("rebind");
  const std::string state = dir + "/state";
  const std::string out = dir + "/dist.jsonl";
  dist::DistOptions dopts;
  dopts.workers = 1;
  dopts.state_dir = state;
  dopts.checkpoint_interval_ms = 1;
  {
    MiningRequest request = JsonlRequest(out);
    Result<MiningResponse> first = dist::Mine(graph, request, dopts);
    ASSERT_TRUE(first.ok()) << first.status();
  }
  // Different thresholds on the same state dir: the journal's admit
  // fingerprint no longer matches, so this must be a fresh run (and a
  // fresh epoch), never a resume of the old frontier.
  MiningRequest changed = JsonlRequest(out);
  changed.options.min_support = 3;
  dist::DistStats stats;
  Result<MiningResponse> second = dist::Mine(graph, changed, dopts, nullptr,
                                             &stats);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_FALSE(stats.recovered);
  Result<MiningResponse> reference = ExecuteRequest(graph, changed);
  ASSERT_TRUE(reference.ok());
  ExpectCountersEq(second->run.counters, reference->run.counters);
}

TEST(DistServer, BudgetlessQueriesRouteDistributed) {
  Disarm();
  auto graph =
      std::make_shared<const AttributedGraph>(RandomAttributed(3));
  const std::string dir = TempDir("server");
  const MiningRun base = Baseline(*graph, dir + "/base.jsonl");

  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.dist_workers = 2;
  ScpmServer server(graph, options);
  server.Start();

  QuerySpec spec;
  static_cast<MiningRequest&>(spec) = JsonlRequest(dir + "/dist.jsonl");
  Result<std::shared_ptr<QuerySession>> session = server.Submit(spec);
  ASSERT_TRUE(session.ok()) << session.status();
  (*session)->WaitTerminal();
  EXPECT_EQ((*session)->state(), QueryState::kDone);
  ExpectCountersEq((*session)->run().counters, base.counters);
  EXPECT_EQ(SortedLines(dir + "/dist.jsonl"), SortedLines(dir + "/base.jsonl"));

  // A budgeted query is NOT eligible: it runs sliced, and the dist
  // query count stays put.
  QuerySpec budgeted;
  static_cast<MiningRequest&>(budgeted) = JsonlRequest(dir + "/sliced.jsonl");
  budgeted.budget.max_evaluations = 3;
  Result<std::shared_ptr<QuerySession>> sliced = server.Submit(budgeted);
  ASSERT_TRUE(sliced.ok());
  (*sliced)->WaitTerminal();
  EXPECT_EQ((*sliced)->state(), QueryState::kDone);

  const JsonValue stats = server.Stats();
  const JsonValue* dist_stats = stats.Find("dist");
  ASSERT_NE(dist_stats, nullptr);
  EXPECT_EQ(dist_stats->NumberOr("queries", 0), 1.0);
  EXPECT_GE(dist_stats->NumberOr("batches", 0), 1.0);
  server.Shutdown();
}

TEST(DistFaultSweep, SeededKillSchedulesStayIdenticalAndTyped) {
  std::uint64_t seed = 424242;
  if (const char* env = std::getenv("SCPM_FAULT_SEED")) {
    seed = static_cast<std::uint64_t>(std::atoll(env));
  }
  const AttributedGraph graph = RandomAttributed(3);
  const std::string dir = TempDir("sweep");
  const MiningRun base = Baseline(graph, dir + "/base.jsonl");
  const std::vector<std::string> base_lines = SortedLines(dir + "/base.jsonl");

  Rng rng(seed);
  const char* points[] = {fault::kWorkerKill, fault::kHeartbeatDrop,
                          fault::kResultCorrupt};
  for (int round = 0; round < 4; ++round) {
    // One or two random faults aimed at random workers / hit indices.
    const std::size_t workers = 2 + (rng.Next() % 3);
    std::string spec;
    const int terms = 1 + static_cast<int>(rng.Next() % 2);
    for (int t = 0; t < terms; ++t) {
      if (t > 0) spec += ',';
      spec += points[rng.Next() % 3];
      spec += ':' + std::to_string(rng.Next() % workers);
      spec += '=' + std::to_string(rng.Next() % 2);
    }
    SCOPED_TRACE("seed=" + std::to_string(seed) + " spec=" + spec +
                 " workers=" + std::to_string(workers));
    ASSERT_TRUE(FaultInjector::Instance().Configure(spec).ok());
    const std::string out = dir + "/r" + std::to_string(round) + ".jsonl";
    MiningRequest request = JsonlRequest(out);
    dist::DistOptions dopts;
    dopts.workers = workers;
    dopts.batch_entries = 1 + (rng.Next() % 3);
    dopts.batch_evals = 2 + (rng.Next() % 8);
    dopts.lease_ms = 150;
    dopts.worker_wave = 1;
    dopts.backoff_ms = 1;
    dist::DistStats stats;
    Result<MiningResponse> response =
        dist::Mine(graph, request, dopts, nullptr, &stats);
    Disarm();
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_TRUE(response->run.exhausted);
    ExpectCountersEq(response->run.counters, base.counters);
    EXPECT_EQ(SortedLines(out), base_lines);
    for (const dist::DistEvent& event : stats.events) {
      EXPECT_NE(event.code, StatusCode::kOk);
      EXPECT_FALSE(event.detail.empty());
    }
  }
}

}  // namespace
}  // namespace scpm
