// Unit + property tests for src/qclique: definitions, the miner's three
// modes against brute force, BFS/DFS equivalence, pruning ablations.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph.h"
#include "qclique/bron_kerbosch.h"
#include "qclique/brute_force.h"
#include "qclique/candidate.h"
#include "qclique/miner.h"
#include "qclique/quasi_clique.h"
#include "util/random.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"

namespace scpm {
namespace {

Graph MakeGraph(VertexId n, std::vector<Edge> edges) {
  Result<Graph> g = Graph::FromEdges(n, std::move(edges));
  EXPECT_TRUE(g.ok()) << g.status();
  return std::move(g).value();
}

// ------------------------------------------------------------- Params

TEST(QuasiCliqueParamsTest, Validation) {
  QuasiCliqueParams p;
  EXPECT_TRUE(p.Validate().ok());
  p.gamma = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p.gamma = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p = QuasiCliqueParams{};
  p.min_size = 1;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(QuasiCliqueParamsTest, RequiredDegree) {
  QuasiCliqueParams p{.gamma = 0.6, .min_size = 4};
  EXPECT_EQ(p.RequiredDegree(1), 0u);
  EXPECT_EQ(p.RequiredDegree(4), 2u);   // ceil(0.6*3) = 2
  EXPECT_EQ(p.RequiredDegree(6), 3u);   // ceil(0.6*5) = 3
  QuasiCliqueParams clique{.gamma = 1.0, .min_size = 3};
  EXPECT_EQ(clique.RequiredDegree(5), 4u);
  QuasiCliqueParams half{.gamma = 0.5, .min_size = 2};
  EXPECT_EQ(half.RequiredDegree(5), 2u);  // ceil(0.5*4) = 2, exact integer
  EXPECT_EQ(half.RequiredDegree(4), 2u);  // ceil(1.5) = 2
}

TEST(QuasiCliqueParamsTest, MaxSizeForDegreeIsInverse) {
  for (double gamma : {0.3, 0.5, 0.6, 0.75, 1.0}) {
    QuasiCliqueParams p{.gamma = gamma, .min_size = 2};
    for (std::size_t degree = 0; degree <= 20; ++degree) {
      const std::size_t s = p.MaxSizeForDegree(degree);
      EXPECT_LE(p.RequiredDegree(s), degree) << gamma << " " << degree;
      EXPECT_GT(p.RequiredDegree(s + 1), degree) << gamma << " " << degree;
    }
  }
}

// ---------------------------------------------------------- Definitions

TEST(QuasiCliqueDefTest, CliqueIsQuasiClique) {
  Graph g = MakeGraph(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  QuasiCliqueParams p{.gamma = 1.0, .min_size = 4};
  EXPECT_TRUE(IsSatisfyingSet(g, {0, 1, 2, 3}, p));
  EXPECT_DOUBLE_EQ(MinDegreeRatio(g, {0, 1, 2, 3}), 1.0);
}

TEST(QuasiCliqueDefTest, PathFailsHighGamma) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {2, 3}});
  QuasiCliqueParams p{.gamma = 0.6, .min_size = 4};
  EXPECT_FALSE(IsSatisfyingSet(g, {0, 1, 2, 3}, p));  // endpoints deg 1 < 2
  QuasiCliqueParams loose{.gamma = 0.3, .min_size = 4};
  EXPECT_TRUE(IsSatisfyingSet(g, {0, 1, 2, 3}, loose));  // need deg 1
}

TEST(QuasiCliqueDefTest, SizeGate) {
  Graph g = MakeGraph(3, {{0, 1}, {1, 2}, {0, 2}});
  QuasiCliqueParams p{.gamma = 1.0, .min_size = 4};
  EXPECT_FALSE(IsSatisfyingSet(g, {0, 1, 2}, p));
  p.min_size = 3;
  EXPECT_TRUE(IsSatisfyingSet(g, {0, 1, 2}, p));
}

TEST(QuasiCliqueDefTest, MinDegreeRatioOfCycle) {
  Graph g = MakeGraph(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  EXPECT_DOUBLE_EQ(MinDegreeRatio(g, {0, 1, 2, 3, 4}), 0.5);  // 2/4
  EXPECT_DOUBLE_EQ(MinDegreeRatio(g, {0}), 0.0);
}

// ------------------------------------------------------------ BruteForce

TEST(BruteForceTest, TriangleWithPendant) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  QuasiCliqueParams p{.gamma = 1.0, .min_size = 3};
  Result<std::vector<VertexSet>> maximal =
      BruteForceMaximalQuasiCliques(g, p);
  ASSERT_TRUE(maximal.ok());
  ASSERT_EQ(maximal->size(), 1u);
  EXPECT_EQ(maximal->front(), (VertexSet{0, 1, 2}));
  Result<VertexSet> covered = BruteForceCoverage(g, p);
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(*covered, (VertexSet{0, 1, 2}));
}

TEST(BruteForceTest, RefusesLargeGraphs) {
  Graph g(40);
  QuasiCliqueParams p;
  EXPECT_FALSE(BruteForceSatisfyingSets(g, p).ok());
}

// ----------------------------------------------------------------- Miner

QuasiCliqueMinerOptions Opts(double gamma, std::uint32_t min_size,
                             SearchOrder order = SearchOrder::kDfs) {
  QuasiCliqueMinerOptions o;
  o.params.gamma = gamma;
  o.params.min_size = min_size;
  o.order = order;
  return o;
}

TEST(MinerTest, FindsPlantedClique) {
  Rng rng(1);
  std::vector<Edge> edges;
  // Sparse background + one 6-clique on {10..15}.
  Result<Graph> bg = ErdosRenyi(30, 0.03, rng);
  ASSERT_TRUE(bg.ok());
  edges = bg->Edges();
  for (VertexId u = 10; u <= 15; ++u) {
    for (VertexId v = u + 1; v <= 15; ++v) edges.push_back({u, v});
  }
  Graph g = MakeGraph(30, std::move(edges));
  QuasiCliqueMiner miner(Opts(1.0, 6));
  Result<std::vector<VertexSet>> cliques = miner.MineMaximal(g);
  ASSERT_TRUE(cliques.ok());
  ASSERT_GE(cliques->size(), 1u);
  bool found = false;
  for (const auto& q : *cliques) {
    found |= (q == VertexSet{10, 11, 12, 13, 14, 15});
  }
  EXPECT_TRUE(found);
}

TEST(MinerTest, EmptyAndTinyGraphs) {
  QuasiCliqueMiner miner(Opts(0.5, 3));
  Graph empty(0);
  EXPECT_TRUE(miner.MineMaximal(empty)->empty());
  Graph isolated(5);
  EXPECT_TRUE(miner.MineMaximal(isolated)->empty());
  EXPECT_TRUE(miner.MineCoverage(isolated)->empty());
}

TEST(MinerTest, TopKValidatesK) {
  QuasiCliqueMiner miner(Opts(0.5, 3));
  Graph g(3);
  EXPECT_FALSE(miner.MineTopK(g, 0).ok());
}

TEST(MinerTest, CandidateBudget) {
  Rng rng(3);
  Result<Graph> g = ErdosRenyi(40, 0.3, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions o = Opts(0.5, 3);
  o.max_candidates = 5;
  QuasiCliqueMiner miner(o);
  Result<std::vector<VertexSet>> r = miner.MineMaximal(*g);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

// ------------------------------------------- streaming maximality

/// Reference (buffered) maximality filter: canonical sort, then a
/// quadratic subset scan — the shape FilterMaximal had before the
/// streaming MaximalSetFilter replaced it. Ground truth for the fuzz.
std::vector<VertexSet> BufferedFilterMaximal(std::vector<VertexSet> sets) {
  std::sort(sets.begin(), sets.end(),
            [](const VertexSet& a, const VertexSet& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  std::vector<VertexSet> keep;
  for (VertexSet& q : sets) {
    bool dominated = false;
    for (const VertexSet& k : keep) {
      if (q == k || SortedIsSubset(q, k)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) keep.push_back(std::move(q));
  }
  return keep;
}

/// The incremental antichain equals the buffered filter for any offer
/// order: random sorted sets (with deliberate duplicates, subsets, and
/// supersets) offered in shuffled order must drain to the identical
/// canonical list.
TEST(MaximalSetFilterTest, MatchesBufferedFilterUnderFuzz) {
  for (int seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    std::vector<VertexSet> offers;
    const std::size_t n = 1 + rng.NextBounded(60);
    for (std::size_t i = 0; i < n; ++i) {
      VertexSet q;
      const std::uint32_t universe = 40;
      for (VertexId v = 0; v < universe; ++v) {
        if (rng.NextBool(0.15)) q.push_back(v);
      }
      if (q.empty()) q.push_back(static_cast<VertexId>(rng.NextBounded(40)));
      offers.push_back(q);
      // Seed relations the antichain must resolve: an exact duplicate,
      // a strict subset, and a strict superset of an earlier offer.
      if (rng.NextBool(0.3)) offers.push_back(q);
      if (q.size() > 1 && rng.NextBool(0.3)) {
        VertexSet sub(q.begin(), q.end() - 1);
        offers.push_back(std::move(sub));
      }
      if (rng.NextBool(0.3)) {
        VertexSet super = q;
        const VertexId extra = static_cast<VertexId>(40 + rng.NextBounded(8));
        super.push_back(extra);  // beyond the universe: still sorted
        offers.push_back(std::move(super));
      }
    }
    const std::vector<VertexSet> want = BufferedFilterMaximal(offers);
    rng.Shuffle(offers);
    MaximalSetFilter filter;
    for (const VertexSet& q : offers) filter.Offer(VertexSet(q));
    EXPECT_EQ(filter.size(), want.size()) << "seed " << seed;
    EXPECT_EQ(filter.TakeSorted(), want) << "seed " << seed;
  }
}

TEST(MaximalSetFilterTest, OfferReportsSurvival) {
  MaximalSetFilter filter;
  EXPECT_TRUE(filter.Offer({1, 2, 3}));
  EXPECT_FALSE(filter.Offer({1, 2}));      // dominated on arrival
  EXPECT_FALSE(filter.Offer({1, 2, 3}));   // duplicate
  EXPECT_TRUE(filter.Offer({1, 2, 3, 4}));  // evicts {1,2,3}
  EXPECT_EQ(filter.size(), 1u);
  EXPECT_EQ(filter.TakeSorted(), (std::vector<VertexSet>{{1, 2, 3, 4}}));
}

/// The emit-as-found bypass: every maximal set the filter would keep is
/// among the raw reports, so the streamed union equals the filtered
/// union — and the search itself does identical work (same candidate
/// count) with no result buffer at all.
TEST(MinerTest, MineMaximalIntoStreamsSameUnion) {
  for (int seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    Result<Graph> g = ErdosRenyi(26, 0.25, rng);
    ASSERT_TRUE(g.ok());
    QuasiCliqueMiner buffered(Opts(0.6, 3));
    Result<std::vector<VertexSet>> maximal = buffered.MineMaximal(*g);
    ASSERT_TRUE(maximal.ok());

    QuasiCliqueMiner streaming(Opts(0.6, 3));
    std::set<VertexId> streamed_union;
    std::uint64_t emitted = 0;
    ASSERT_TRUE(streaming
                    .MineMaximalInto(*g,
                                     [&](const VertexSet& q) {
                                       ++emitted;
                                       streamed_union.insert(q.begin(),
                                                             q.end());
                                     })
                    .ok());

    std::set<VertexId> maximal_union;
    for (const VertexSet& q : *maximal) {
      maximal_union.insert(q.begin(), q.end());
    }
    EXPECT_EQ(streamed_union, maximal_union) << "seed " << seed;
    // Raw reports are a superset of the maximal survivors.
    EXPECT_GE(emitted, maximal->size());
    EXPECT_EQ(streaming.stats().sets_reported, emitted);
    // Identical search work: streaming changes memory, not the walk.
    EXPECT_EQ(streaming.stats().candidates_processed,
              buffered.stats().candidates_processed);
  }
}

struct MinerSweepParam {
  int seed;
  double gamma;
  std::uint32_t min_size;
  double edge_p;
};

class MinerSweep : public ::testing::TestWithParam<MinerSweepParam> {
 protected:
  Graph RandomGraph() {
    Rng rng(GetParam().seed);
    Result<Graph> g = ErdosRenyi(13, GetParam().edge_p, rng);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
  QuasiCliqueParams Params() const {
    return {.gamma = GetParam().gamma, .min_size = GetParam().min_size};
  }
};

TEST_P(MinerSweep, MaximalMatchesBruteForce) {
  Graph g = RandomGraph();
  QuasiCliqueMinerOptions o;
  o.params = Params();
  QuasiCliqueMiner miner(o);
  Result<std::vector<VertexSet>> got = miner.MineMaximal(g);
  ASSERT_TRUE(got.ok());
  Result<std::vector<VertexSet>> want =
      BruteForceMaximalQuasiCliques(g, o.params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(MinerSweep, CoverageMatchesBruteForce) {
  Graph g = RandomGraph();
  QuasiCliqueMinerOptions o;
  o.params = Params();
  QuasiCliqueMiner miner(o);
  Result<VertexSet> got = miner.MineCoverage(g);
  ASSERT_TRUE(got.ok());
  Result<VertexSet> want = BruteForceCoverage(g, o.params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

TEST_P(MinerSweep, BfsAndDfsAgree) {
  Graph g = RandomGraph();
  QuasiCliqueMinerOptions dfs;
  dfs.params = Params();
  dfs.order = SearchOrder::kDfs;
  QuasiCliqueMinerOptions bfs = dfs;
  bfs.order = SearchOrder::kBfs;
  QuasiCliqueMiner dfs_miner(dfs), bfs_miner(bfs);
  EXPECT_EQ(*dfs_miner.MineMaximal(g), *bfs_miner.MineMaximal(g));
  EXPECT_EQ(*dfs_miner.MineCoverage(g), *bfs_miner.MineCoverage(g));
}

TEST_P(MinerSweep, AblationsPreserveOutput) {
  Graph g = RandomGraph();
  QuasiCliqueMinerOptions base;
  base.params = Params();
  QuasiCliqueMiner reference(base);
  const auto want = *reference.MineMaximal(g);

  for (int bit = 0; bit < 5; ++bit) {
    QuasiCliqueMinerOptions o = base;
    o.enable_vertex_reduction = bit != 0;
    o.enable_size_bound = bit != 1;
    o.enable_lookahead = bit != 2;
    o.enable_diameter_filter = bit != 3;
    o.enable_critical_vertex = bit != 4;
    QuasiCliqueMiner miner(o);
    Result<std::vector<VertexSet>> got = miner.MineMaximal(g);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, want) << "disabled flag #" << bit;
  }
}

TEST_P(MinerSweep, TopKIsPrefixOfRankedMaximal) {
  Graph g = RandomGraph();
  QuasiCliqueMinerOptions o;
  o.params = Params();
  QuasiCliqueMiner miner(o);
  const auto maximal = *miner.MineMaximal(g);
  // Rank all maximal sets by (size, min-degree ratio).
  std::vector<RankedQuasiClique> ranked;
  for (const auto& q : maximal) {
    ranked.push_back({q, MinDegreeRatio(g, q)});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const RankedQuasiClique& a, const RankedQuasiClique& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a.min_degree_ratio > b.min_degree_ratio;
            });
  for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
    Result<std::vector<RankedQuasiClique>> top = miner.MineTopK(g, k);
    ASSERT_TRUE(top.ok());
    const std::size_t expected = std::min(k, ranked.size());
    ASSERT_EQ(top->size(), expected) << "k=" << k;
    for (std::size_t i = 0; i < expected; ++i) {
      // Keys must match the ranked maximal list (sets may differ on ties).
      EXPECT_EQ((*top)[i].size(), ranked[i].size()) << "k=" << k;
      EXPECT_DOUBLE_EQ((*top)[i].min_degree_ratio,
                       ranked[i].min_degree_ratio)
          << "k=" << k;
      // And each reported set must genuinely satisfy the constraints.
      EXPECT_TRUE(IsSatisfyingSet(g, (*top)[i].vertices, o.params));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, MinerSweep,
    ::testing::Values(
        MinerSweepParam{0, 0.5, 3, 0.25}, MinerSweepParam{1, 0.5, 3, 0.35},
        MinerSweepParam{2, 0.6, 4, 0.30}, MinerSweepParam{3, 0.6, 4, 0.45},
        MinerSweepParam{4, 0.7, 3, 0.40}, MinerSweepParam{5, 0.8, 4, 0.50},
        MinerSweepParam{6, 1.0, 3, 0.40}, MinerSweepParam{7, 1.0, 4, 0.55},
        MinerSweepParam{8, 0.5, 5, 0.40}, MinerSweepParam{9, 0.9, 3, 0.45},
        MinerSweepParam{10, 0.5, 2, 0.20}, MinerSweepParam{11, 0.6, 5, 0.50},
        MinerSweepParam{12, 0.75, 4, 0.40},
        MinerSweepParam{13, 0.55, 3, 0.30},
        MinerSweepParam{14, 0.65, 4, 0.35},
        MinerSweepParam{15, 1.0, 5, 0.60}));

// Low-gamma sweep: diameter filter must auto-disable (gamma < 0.5).
class LowGammaSweep : public ::testing::TestWithParam<int> {};

TEST_P(LowGammaSweep, MatchesBruteForceWithoutDiameterAssumption) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(11, 0.2, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions o = Opts(0.34, 3);
  QuasiCliqueMiner miner(o);
  Result<std::vector<VertexSet>> got = miner.MineMaximal(*g);
  ASSERT_TRUE(got.ok());
  Result<std::vector<VertexSet>> want =
      BruteForceMaximalQuasiCliques(*g, o.params);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LowGammaSweep, ::testing::Range(0, 8));

TEST(MinerTest, StatsArePopulated) {
  Rng rng(5);
  Result<Graph> g = ErdosRenyi(20, 0.3, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMiner miner(Opts(0.6, 3));
  ASSERT_TRUE(miner.MineMaximal(*g).ok());
  EXPECT_GT(miner.stats().candidates_processed, 0u);
}

// --------------------------------------------------------- BronKerbosch

TEST(BronKerboschTest, TriangleWithPendant) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  Result<std::vector<VertexSet>> cliques = MaximalCliques(g, 2);
  ASSERT_TRUE(cliques.ok());
  ASSERT_EQ(cliques->size(), 2u);
  EXPECT_EQ((*cliques)[0], (VertexSet{0, 1, 2}));
  EXPECT_EQ((*cliques)[1], (VertexSet{2, 3}));
}

TEST(BronKerboschTest, MinSizeFilters) {
  Graph g = MakeGraph(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  Result<std::vector<VertexSet>> cliques = MaximalCliques(g, 3);
  ASSERT_TRUE(cliques.ok());
  ASSERT_EQ(cliques->size(), 1u);
}

TEST(BronKerboschTest, CliqueBudget) {
  Rng rng(12);
  Result<Graph> g = ErdosRenyi(30, 0.5, rng);
  ASSERT_TRUE(g.ok());
  Result<std::vector<VertexSet>> cliques = MaximalCliques(*g, 2, 3);
  EXPECT_FALSE(cliques.ok());
  EXPECT_EQ(cliques.status().code(), StatusCode::kOutOfRange);
}

class BronKerboschSweep : public ::testing::TestWithParam<int> {};

TEST_P(BronKerboschSweep, AgreesWithQuasiCliqueMinerAtGammaOne) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(16, 0.4, rng);
  ASSERT_TRUE(g.ok());
  for (std::uint32_t min_size : {2u, 3u, 4u}) {
    Result<std::vector<VertexSet>> bk = MaximalCliques(*g, min_size);
    ASSERT_TRUE(bk.ok());
    QuasiCliqueMiner miner(Opts(1.0, min_size));
    Result<std::vector<VertexSet>> qc = miner.MineMaximal(*g);
    ASSERT_TRUE(qc.ok());
    EXPECT_EQ(*bk, *qc) << "min_size=" << min_size;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BronKerboschSweep, ::testing::Range(0, 10));

TEST(MinerTest, LargeGraphScalarPathFindsPlantedCliques) {
  // Graphs above the bitset threshold (4096 vertices) take the scalar
  // degree-counting path in CandidateScratch; verify it end to end
  // against the independent Bron-Kerbosch implementation.
  Rng rng(77);
  const VertexId n = 5000;
  std::vector<Edge> edges;
  Result<Graph> bg = ErdosRenyi(n, 1.5 / n, rng);
  ASSERT_TRUE(bg.ok());
  edges = bg->Edges();
  const auto groups = PlantGroups(n, 6, 6, 6, 1.0, rng, &edges);
  Graph g = MakeGraph(n, std::move(edges));

  QuasiCliqueMiner miner(Opts(1.0, 6));
  Result<std::vector<VertexSet>> got = miner.MineMaximal(g);
  ASSERT_TRUE(got.ok());
  Result<std::vector<VertexSet>> want = MaximalCliques(g, 6);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(*got, *want);
  // Every planted 6-clique must be found (possibly inside a bigger one).
  for (const PlantedGroup& group : groups) {
    bool found = false;
    for (const VertexSet& q : *got) {
      if (SortedIsSubset(group.members, q)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
  // Coverage on the same graph agrees with the union of maximal cliques.
  Result<VertexSet> covered = miner.MineCoverage(g);
  ASSERT_TRUE(covered.ok());
  VertexSet union_of_cliques;
  for (const VertexSet& q : *want) {
    VertexSet tmp;
    SortedUnion(union_of_cliques, q, &tmp);
    union_of_cliques.swap(tmp);
  }
  EXPECT_EQ(*covered, union_of_cliques);
}

TEST(MinerTest, CriticalVertexJumpsReduceCandidates) {
  Rng rng(21);
  Result<Graph> g = ErdosRenyi(22, 0.35, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions with = Opts(0.6, 4);
  QuasiCliqueMinerOptions without = Opts(0.6, 4);
  without.enable_critical_vertex = false;
  QuasiCliqueMiner miner_with(with), miner_without(without);
  const auto want = *miner_without.MineMaximal(*g);
  const auto got = *miner_with.MineMaximal(*g);
  EXPECT_EQ(got, want);
  EXPECT_LE(miner_with.stats().candidates_processed,
            miner_without.stats().candidates_processed);
}

// ------------------------------------------- intra-search parallelism

/// Aggressive decomposition knobs so the tiny test graphs genuinely
/// exercise branch tasks, waves, and the primer hand-off.
QuasiCliqueMinerOptions IntraOpts(double gamma, std::uint32_t min_size) {
  QuasiCliqueMinerOptions o = Opts(gamma, min_size);
  o.spawn_depth = 6;
  o.min_spawn_ext = 3;
  o.coverage_wave = 3;
  o.coverage_primer_candidates = 40;
  return o;
}

void ExpectStatsEqual(const MinerStats& a, const MinerStats& b) {
  EXPECT_EQ(a.candidates_processed, b.candidates_processed);
  EXPECT_EQ(a.pruned_by_analysis, b.pruned_by_analysis);
  EXPECT_EQ(a.pruned_by_coverage, b.pruned_by_coverage);
  EXPECT_EQ(a.pruned_by_topk, b.pruned_by_topk);
  EXPECT_EQ(a.lookahead_hits, b.lookahead_hits);
  EXPECT_EQ(a.critical_vertex_jumps, b.critical_vertex_jumps);
  EXPECT_EQ(a.sets_reported, b.sets_reported);
  EXPECT_EQ(a.branch_tasks, b.branch_tasks);
}

/// Mines `graph` with the decomposed search inline, then on pools of 2
/// and 8 workers: output must equal the sequential search's, and stats
/// must be identical across all three execution shapes.
void ExpectIntraSearchMatchesSequential(const Graph& graph,
                                        QuasiCliqueMinerOptions intra,
                                        bool expect_decomposition = true) {
  QuasiCliqueMinerOptions sequential = intra;
  sequential.spawn_depth = 0;
  QuasiCliqueMiner reference(sequential);
  Result<std::vector<VertexSet>> want_maximal = reference.MineMaximal(graph);
  ASSERT_TRUE(want_maximal.ok()) << want_maximal.status();
  Result<VertexSet> want_coverage = reference.MineCoverage(graph);
  ASSERT_TRUE(want_coverage.ok());

  QuasiCliqueMiner inline_miner(intra);
  Result<std::vector<VertexSet>> got = inline_miner.MineMaximal(graph);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(*got, *want_maximal);
  const MinerStats inline_maximal_stats = inline_miner.stats();
  EXPECT_EQ(*inline_miner.MineCoverage(graph), *want_coverage);
  const MinerStats inline_coverage_stats = inline_miner.stats();
  if (expect_decomposition) {
    EXPECT_GT(inline_coverage_stats.branch_tasks, 0u);
  }

  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ParallelismBudget budget(2 * threads);
    QuasiCliqueMiner miner(intra);
    miner.set_parallel_context(&pool, &budget);
    Result<std::vector<VertexSet>> maximal = miner.MineMaximal(graph);
    ASSERT_TRUE(maximal.ok()) << maximal.status();
    EXPECT_EQ(*maximal, *want_maximal) << "threads=" << threads;
    ExpectStatsEqual(miner.stats(), inline_maximal_stats);
    Result<VertexSet> coverage = miner.MineCoverage(graph);
    ASSERT_TRUE(coverage.ok());
    EXPECT_EQ(*coverage, *want_coverage) << "threads=" << threads;
    ExpectStatsEqual(miner.stats(), inline_coverage_stats);
    // Every borrowed slot must have been returned.
    EXPECT_EQ(budget.available(), 2 * threads);
  }
}

class IntraSearchSweep : public ::testing::TestWithParam<int> {};

TEST_P(IntraSearchSweep, MatchesSequentialOnRandomGraphs) {
  Rng rng(GetParam());
  Result<Graph> g = ErdosRenyi(24, 0.25, rng);
  ASSERT_TRUE(g.ok());
  ExpectIntraSearchMatchesSequential(*g, IntraOpts(0.5, 3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntraSearchSweep, ::testing::Range(0, 4));

TEST(IntraSearchTest, AdversarialNearCliqueDeepRecursion) {
  // A dense near-clique drives the search deep: a 16-clique with a few
  // edges removed plus a sparse fringe, mined at high gamma, produces
  // long first-child chains and many critical-vertex jumps.
  std::vector<Edge> edges;
  for (VertexId u = 0; u < 16; ++u) {
    for (VertexId v = u + 1; v < 16; ++v) {
      if ((u + v) % 7 == 0) continue;  // punch holes
      edges.push_back({u, v});
    }
  }
  for (VertexId v = 16; v < 24; ++v) edges.push_back({v, v % 16});
  Graph g = MakeGraph(24, std::move(edges));
  ExpectIntraSearchMatchesSequential(g, IntraOpts(0.85, 5));
}

TEST(IntraSearchTest, MaximalDeepDecompositionFoldsIntoOneAccumulator) {
  // A deep decomposition of maximal mode: maximum spawn depth with a
  // minimal task-size floor splits off hundreds of branch tasks, whose
  // results now fold into one shared accumulator instead of one
  // TaskResult per task. Output and stats must still match the
  // sequential search exactly, inline and on pools.
  Rng rng(19);
  Result<Graph> g = ErdosRenyi(28, 0.35, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions deep = Opts(0.5, 3);
  deep.spawn_depth = 16;   // decompose at every level
  deep.min_spawn_ext = 2;  // ...and nearly every branch

  QuasiCliqueMinerOptions sequential = deep;
  sequential.spawn_depth = 0;
  QuasiCliqueMiner reference(sequential);
  Result<std::vector<VertexSet>> want = reference.MineMaximal(*g);
  ASSERT_TRUE(want.ok());

  QuasiCliqueMiner inline_miner(deep);
  Result<std::vector<VertexSet>> inline_got = inline_miner.MineMaximal(*g);
  ASSERT_TRUE(inline_got.ok());
  EXPECT_EQ(*inline_got, *want);
  const MinerStats inline_stats = inline_miner.stats();
  // Genuinely deep: hundreds of folded tasks on this graph.
  EXPECT_GT(inline_stats.branch_tasks, 100u);
  EXPECT_EQ(inline_stats.candidates_processed,
            reference.stats().candidates_processed);

  for (std::size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ParallelismBudget budget(2 * threads);
    QuasiCliqueMiner miner(deep);
    miner.set_parallel_context(&pool, &budget);
    Result<std::vector<VertexSet>> got = miner.MineMaximal(*g);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want) << "threads=" << threads;
    ExpectStatsEqual(miner.stats(), inline_stats);
    EXPECT_EQ(budget.available(), 2 * threads);
  }
}

TEST(IntraSearchTest, ZeroResultSearch) {
  // Max degree 2 can never satisfy min_size 6 at gamma 0.9: both phases
  // must agree on the empty answer without decomposition mishaps.
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 30; ++v) edges.push_back({v, v + 1});
  Graph g = MakeGraph(30, std::move(edges));
  QuasiCliqueMinerOptions o = IntraOpts(0.9, 6);
  o.coverage_primer_candidates = 1;  // decompose even the trivial search
  // Vertex reduction peels the whole graph, so no branch task ever runs;
  // what matters is that the empty answer and zeroed stats agree.
  ExpectIntraSearchMatchesSequential(g, o, /*expect_decomposition=*/false);
}

TEST(IntraSearchTest, PrimerFinishingSmallSearchSkipsDecomposition) {
  Rng rng(8);
  Result<Graph> g = ErdosRenyi(20, 0.25, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions o = IntraOpts(0.6, 3);
  o.coverage_primer_candidates = 1u << 20;  // larger than the search
  QuasiCliqueMiner sequential(Opts(0.6, 3));
  QuasiCliqueMiner miner(o);
  EXPECT_EQ(*miner.MineCoverage(*g), *sequential.MineCoverage(*g));
  // Only the primer task ran.
  EXPECT_EQ(miner.stats().branch_tasks, 1u);
  EXPECT_EQ(miner.stats().candidates_processed,
            sequential.stats().candidates_processed);
}

TEST(IntraSearchTest, CandidateBudgetStillEnforced) {
  Rng rng(3);
  Result<Graph> g = ErdosRenyi(40, 0.3, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions o = IntraOpts(0.5, 3);
  o.max_candidates = 5;
  ThreadPool pool(4);
  ParallelismBudget budget(8);
  QuasiCliqueMiner miner(o);
  miner.set_parallel_context(&pool, &budget);
  Result<std::vector<VertexSet>> r = miner.MineMaximal(*g);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  Result<VertexSet> c = miner.MineCoverage(*g);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kOutOfRange);
}

TEST(IntraSearchTest, CandidateBudgetCountsPrimerCandidates) {
  // The primer's candidates count against max_candidates together with
  // the decomposed phase's, exactly as in the one sequential search they
  // replace: a budget the primer passes but the whole search exceeds
  // must still error.
  Rng rng(3);
  Result<Graph> g = ErdosRenyi(40, 0.3, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions o = IntraOpts(0.5, 3);
  o.coverage_primer_candidates = 10;
  o.max_candidates = 50;
  QuasiCliqueMiner miner(o);
  Result<VertexSet> r = miner.MineCoverage(*g);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(IntraSearchTest, TopKIgnoresSpawnDepth) {
  Rng rng(5);
  Result<Graph> g = ErdosRenyi(24, 0.35, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMinerOptions o = IntraOpts(0.6, 3);
  QuasiCliqueMiner sequential(Opts(0.6, 3));
  QuasiCliqueMiner miner(o);
  Result<std::vector<RankedQuasiClique>> want = sequential.MineTopK(*g, 3);
  Result<std::vector<RankedQuasiClique>> got = miner.MineTopK(*g, 3);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->size(), want->size());
  for (std::size_t i = 0; i < want->size(); ++i) {
    EXPECT_EQ((*got)[i].vertices, (*want)[i].vertices);
  }
  EXPECT_EQ(miner.stats().branch_tasks, 0u);
}

TEST(MinerTest, CoveragePruningReducesWork) {
  Rng rng(6);
  Result<Graph> g = ErdosRenyi(24, 0.45, rng);
  ASSERT_TRUE(g.ok());
  QuasiCliqueMiner miner(Opts(0.5, 3));
  ASSERT_TRUE(miner.MineCoverage(*g).ok());
  const auto coverage_work = miner.stats().candidates_processed;
  ASSERT_TRUE(miner.MineMaximal(*g).ok());
  const auto full_work = miner.stats().candidates_processed;
  EXPECT_LT(coverage_work, full_work);
}

}  // namespace
}  // namespace scpm
