// Equivalence fuzz for the runtime-dispatched SIMD word kernels: every
// table (scalar, AVX2 when the build and CPU provide it) must be
// bit-exact against the scalar reference on every length and bit
// pattern — miner byte-identity across dispatch paths depends on it.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/simd_ops.h"

namespace scpm {
namespace {

std::vector<std::uint64_t> RandomWords(Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t& w : out) {
    w = rng.NextBounded(~std::uint64_t{0} - 1) |
        (rng.NextBounded(2) << 63);  // exercise the top bit too
  }
  return out;
}

/// Every table that is available in this process: scalar always, AVX2
/// when compiled in and supported by the CPU.
std::vector<const SimdOps*> AvailableTables() {
  std::vector<const SimdOps*> tables = {&ScalarSimdOps()};
  if (const SimdOps* avx2 = Avx2SimdOps()) tables.push_back(avx2);
  return tables;
}

// Word-array lengths covering the vector width boundaries (AVX2 handles
// 4 words per step) and the scalar tail.
const std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8, 9,
                                15, 16, 31, 33, 64, 100, 1000, 1027};

TEST(SimdOpsTest, AllTablesMatchScalarReference) {
  Rng rng(99);
  const SimdOps& scalar = ScalarSimdOps();
  for (const SimdOps* table : AvailableTables()) {
    SCOPED_TRACE(table->name);
    for (std::size_t n : kLengths) {
      for (int round = 0; round < 8; ++round) {
        const std::vector<std::uint64_t> a = RandomWords(rng, n);
        const std::vector<std::uint64_t> b = RandomWords(rng, n);
        std::vector<std::uint64_t> want(n, 0), got(n, 0);

        const std::size_t want_and =
            scalar.and_words(a.data(), b.data(), want.data(), n);
        const std::size_t got_and =
            table->and_words(a.data(), b.data(), got.data(), n);
        EXPECT_EQ(got_and, want_and) << "and_words n=" << n;
        EXPECT_EQ(got, want) << "and_words n=" << n;
        EXPECT_EQ(table->and_count_words(a.data(), b.data(), n), want_and)
            << "and_count_words n=" << n;

        const std::size_t want_andnot =
            scalar.andnot_words(a.data(), b.data(), want.data(), n);
        const std::size_t got_andnot =
            table->andnot_words(a.data(), b.data(), got.data(), n);
        EXPECT_EQ(got_andnot, want_andnot) << "andnot_words n=" << n;
        EXPECT_EQ(got, want) << "andnot_words n=" << n;

        EXPECT_EQ(table->popcount_words(a.data(), n),
                  scalar.popcount_words(a.data(), n))
            << "popcount_words n=" << n;
      }
    }
  }
}

TEST(SimdOpsTest, EdgePatterns) {
  for (const SimdOps* table : AvailableTables()) {
    SCOPED_TRACE(table->name);
    for (std::size_t n : {4u, 5u, 1024u}) {
      const std::vector<std::uint64_t> ones(n, ~std::uint64_t{0});
      const std::vector<std::uint64_t> zeros(n, 0);
      const std::vector<std::uint64_t> alt(n, 0xAAAAAAAAAAAAAAAAull);
      std::vector<std::uint64_t> out(n, 7);
      EXPECT_EQ(table->and_words(ones.data(), ones.data(), out.data(), n),
                n * 64);
      EXPECT_EQ(out, ones);
      EXPECT_EQ(table->and_words(ones.data(), zeros.data(), out.data(), n),
                0u);
      EXPECT_EQ(out, zeros);
      EXPECT_EQ(table->and_count_words(ones.data(), alt.data(), n), n * 32);
      EXPECT_EQ(table->andnot_words(ones.data(), alt.data(), out.data(), n),
                n * 32);
      EXPECT_EQ(table->popcount_words(alt.data(), n), n * 32);
    }
  }
}

TEST(SimdOpsTest, AndAllowsAliasedOutput) {
  Rng rng(7);
  for (const SimdOps* table : AvailableTables()) {
    SCOPED_TRACE(table->name);
    const std::vector<std::uint64_t> a = RandomWords(rng, 37);
    const std::vector<std::uint64_t> b = RandomWords(rng, 37);
    std::vector<std::uint64_t> want(37);
    const std::size_t want_count =
        ScalarSimdOps().and_words(a.data(), b.data(), want.data(), 37);
    std::vector<std::uint64_t> inout = a;
    EXPECT_EQ(table->and_words(inout.data(), b.data(), inout.data(), 37),
              want_count);
    EXPECT_EQ(inout, want);
  }
}

TEST(SimdOpsTest, DispatchToggleAndNaming) {
  // Active table is one of the known names.
  const std::string active = SimdDispatchName();
  EXPECT_TRUE(active == "scalar" || active == "avx2") << active;

  // Forcing scalar pins the scalar table; restoring re-resolves.
  SetSimdDispatch(false);
  EXPECT_STREQ(SimdDispatchName(), "scalar");
  SetSimdDispatch(true);
  EXPECT_EQ(SimdDispatchName(), active);

  // The AVX2 provider, when present, self-identifies.
  if (const SimdOps* avx2 = Avx2SimdOps()) {
    EXPECT_STREQ(avx2->name, "avx2");
  }
}

}  // namespace
}  // namespace scpm
