// Tests for the frontier-driven engine and its sinks: accumulating-sink
// byte-identity against the classic Mine() across thread counts and
// kernel toggles, budget cut + checkpoint + resume output-union equality
// (paper example and randomized synthetic graphs, both phases), deadline
// behavior, checkpoint (de)serialization robustness, and the streaming
// sinks' contracts.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/scpm.h"
#include "core/sink.h"
#include "datasets/paper_example.h"
#include "graph/attributed_graph.h"
#include "nullmodel/expectation.h"
#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/simd_ops.h"

namespace scpm {
namespace {

/// Paper parameters for Table 1 (see scpm_test.cc).
ScpmOptions Table1Options() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.6;
  o.quasi_clique.min_size = 4;
  o.min_support = 3;
  o.min_epsilon = 0.5;
  o.top_k = 10;
  return o;
}

/// Random attributed graph: ER topology + random attribute incidence.
AttributedGraph RandomAttributed(int seed, VertexId n = 24,
                                 int num_attrs = 5, double edge_p = 0.3,
                                 double attr_p = 0.4) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_p) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttributeId id = builder.InternAttribute("a" + std::to_string(a));
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextDouble() < attr_p) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, id).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Field-by-field equality of complete mining outputs including every
/// counter (mirrors scpm_test.cc's harness).
void ExpectIdenticalResults(const ScpmResult& a, const ScpmResult& b) {
  ASSERT_EQ(a.attribute_sets.size(), b.attribute_sets.size());
  for (std::size_t i = 0; i < a.attribute_sets.size(); ++i) {
    const AttributeSetStats& x = a.attribute_sets[i];
    const AttributeSetStats& y = b.attribute_sets[i];
    EXPECT_EQ(x.attributes, y.attributes) << "row " << i;
    EXPECT_EQ(x.support, y.support);
    EXPECT_EQ(x.covered, y.covered);
    EXPECT_DOUBLE_EQ(x.epsilon, y.epsilon);
    EXPECT_DOUBLE_EQ(x.expected_epsilon, y.expected_epsilon);
    EXPECT_DOUBLE_EQ(x.delta, y.delta);
  }
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].attributes, b.patterns[i].attributes) << i;
    EXPECT_EQ(a.patterns[i].vertices, b.patterns[i].vertices) << i;
    EXPECT_DOUBLE_EQ(a.patterns[i].min_degree_ratio,
                     b.patterns[i].min_degree_ratio);
    EXPECT_DOUBLE_EQ(a.patterns[i].edge_density, b.patterns[i].edge_density);
  }
  EXPECT_EQ(a.counters.attribute_sets_evaluated,
            b.counters.attribute_sets_evaluated);
  EXPECT_EQ(a.counters.attribute_sets_reported,
            b.counters.attribute_sets_reported);
  EXPECT_EQ(a.counters.attribute_sets_extended,
            b.counters.attribute_sets_extended);
  EXPECT_EQ(a.counters.coverage_candidates, b.counters.coverage_candidates);
  EXPECT_EQ(a.counters.evaluation_batches, b.counters.evaluation_batches);
  EXPECT_EQ(a.counters.intra_search_evaluations,
            b.counters.intra_search_evaluations);
  EXPECT_EQ(a.counters.intra_branch_tasks, b.counters.intra_branch_tasks);
  EXPECT_EQ(a.counters.bitmap_intersections, b.counters.bitmap_intersections);
  EXPECT_EQ(a.counters.galloping_intersections,
            b.counters.galloping_intersections);
  EXPECT_EQ(a.counters.chunked_intersections,
            b.counters.chunked_intersections);
  EXPECT_EQ(a.counters.dense_conversions, b.counters.dense_conversions);
  EXPECT_EQ(a.counters.chunked_conversions, b.counters.chunked_conversions);
}

/// Runs the engine with an AccumulatingSink; must exhaust.
ScpmResult EngineAccumulate(const AttributedGraph& g,
                            const ScpmOptions& options,
                            ExpectationModel* model = nullptr) {
  ScpmEngine engine(options, model);
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(g, &sink);
  EXPECT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->exhausted);
  ScpmResult result = sink.TakeResult();
  result.counters = run->counters;
  return result;
}

// ----------------------------------------- sink equivalence (satellite)

/// AccumulatingSink through the engine == legacy Mine(), byte for byte,
/// across threads {1, 2, 8} x {hybrid, chunked, simd} toggles. Each cell
/// is compared against that cell's own Mine() (counters differ between
/// kernel configurations by design), and every cell's rows/patterns are
/// compared against the global default baseline.
TEST(SinkEquivalenceTest, AccumulatingMatchesMineAcrossTogglesAndThreads) {
  struct DispatchRestore {
    ~DispatchRestore() {
      SetSimdDispatch(true);
      HybridVertexSet::SetChunkedEnabled(true);
    }
  } restore;
  const AttributedGraph g = RandomAttributed(31, /*n=*/120, /*num_attrs=*/4,
                                             /*edge_p=*/0.08, /*attr_p=*/0.6);
  ScpmOptions base;
  base.quasi_clique.gamma = 0.6;
  base.quasi_clique.min_size = 3;
  base.min_support = 4;
  base.min_epsilon = 0.05;
  base.top_k = 3;

  const ScpmResult global_baseline = EngineAccumulate(g, base);
  ASSERT_FALSE(global_baseline.attribute_sets.empty());

  for (bool hybrid : {true, false}) {
    for (bool chunked : {true, false}) {
      for (bool simd : {true, false}) {
        SetSimdDispatch(simd);
        HybridVertexSet::SetChunkedEnabled(chunked);
        ScpmOptions cell = base;
        cell.use_hybrid_sets = hybrid;
        cell.num_threads = 1;
        ScpmMiner legacy(cell);
        Result<ScpmResult> mined = legacy.Mine(g);
        ASSERT_TRUE(mined.ok()) << mined.status();
        for (std::size_t threads : {1u, 2u, 8u}) {
          ScpmOptions run_options = cell;
          run_options.num_threads = threads;
          const ScpmResult engine_result = EngineAccumulate(g, run_options);
          ExpectIdenticalResults(*mined, engine_result);
        }
        // Rows and patterns (not counters) also match the default cell.
        ASSERT_EQ(mined->attribute_sets.size(),
                  global_baseline.attribute_sets.size());
        ASSERT_EQ(mined->patterns.size(), global_baseline.patterns.size());
        for (std::size_t i = 0; i < mined->patterns.size(); ++i) {
          EXPECT_EQ(mined->patterns[i].vertices,
                    global_baseline.patterns[i].vertices);
        }
      }
    }
  }
}

// ---------------------------------------------- budget / cut / resume

/// Sorts a union of segment outputs into canonical order for comparison
/// against an uncut run.
void SortCanonical(ScpmResult* result) {
  std::sort(result->attribute_sets.begin(), result->attribute_sets.end(),
            [](const AttributeSetStats& a, const AttributeSetStats& b) {
              return a.attributes < b.attributes;
            });
  SortPatterns(&result->patterns);
}

/// Runs budget-cut segments (Run, then Resume until exhausted, each
/// segment round-tripping the checkpoint through its text serialization)
/// and returns the union of everything emitted plus the segment count.
std::pair<ScpmResult, int> RunSegmented(const AttributedGraph& g,
                                        const ScpmOptions& options,
                                        const EngineBudget& budget,
                                        std::size_t wave,
                                        ExpectationModel* model = nullptr) {
  ScpmResult united;
  int segments = 0;
  EngineCheckpoint checkpoint;
  bool exhausted = false;
  while (!exhausted) {
    ScpmEngine engine(options, model);
    engine.set_budget(budget);
    engine.set_frontier_wave(wave);
    AccumulatingSink sink;
    Result<MiningRun> run =
        segments == 0 ? engine.Run(g, &sink)
                      : engine.Resume(g, checkpoint, &sink);
    EXPECT_TRUE(run.ok()) << run.status();
    if (!run.ok()) break;
    ScpmResult segment = sink.TakeResult();
    EXPECT_EQ(segment.attribute_sets.size(), run->emitted);
    for (auto& s : segment.attribute_sets) {
      united.attribute_sets.push_back(std::move(s));
    }
    for (auto& p : segment.patterns) united.patterns.push_back(std::move(p));
    ++segments;
    exhausted = run->exhausted;
    if (!exhausted) {
      EXPECT_GT(run->frontier_entries, 0u);
      // Serialization round trip, exactly like a cross-process resume.
      Result<EngineCheckpoint> restored =
          EngineCheckpoint::Parse(run->checkpoint.Serialize());
      EXPECT_TRUE(restored.ok()) << restored.status();
      if (!restored.ok()) break;
      checkpoint = std::move(restored).value();
    }
    EXPECT_LT(segments, 10000) << "resume chain does not terminate";
    if (segments >= 10000) break;
  }
  SortCanonical(&united);
  return {std::move(united), segments};
}

void ExpectSameUnion(const ScpmResult& uncut_in, ScpmResult united) {
  ScpmResult uncut;
  uncut.attribute_sets = uncut_in.attribute_sets;
  uncut.patterns = uncut_in.patterns;
  SortCanonical(&uncut);
  // Exact multiset equality: same rows once each (no duplicates across
  // segments), same patterns.
  ASSERT_EQ(united.attribute_sets.size(), uncut.attribute_sets.size());
  for (std::size_t i = 0; i < uncut.attribute_sets.size(); ++i) {
    EXPECT_EQ(united.attribute_sets[i].attributes,
              uncut.attribute_sets[i].attributes);
    EXPECT_EQ(united.attribute_sets[i].support,
              uncut.attribute_sets[i].support);
    EXPECT_EQ(united.attribute_sets[i].covered,
              uncut.attribute_sets[i].covered);
    EXPECT_DOUBLE_EQ(united.attribute_sets[i].epsilon,
                     uncut.attribute_sets[i].epsilon);
  }
  ASSERT_EQ(united.patterns.size(), uncut.patterns.size());
  for (std::size_t i = 0; i < uncut.patterns.size(); ++i) {
    EXPECT_EQ(united.patterns[i].attributes, uncut.patterns[i].attributes);
    EXPECT_EQ(united.patterns[i].vertices, uncut.patterns[i].vertices);
  }
}

TEST(CheckpointResumeTest, EvalBudgetUnionEqualsUncutOnPaperExample) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  const ScpmResult uncut = EngineAccumulate(g, options);

  EngineBudget budget;
  budget.max_evaluations = 2;
  auto [united, segments] = RunSegmented(g, options, budget, /*wave=*/1);
  EXPECT_GE(segments, 2) << "budget never cut the run";
  ExpectSameUnion(uncut, std::move(united));
}

/// The roots phase checkpoints too: with one evaluation per batch and a
/// tiny wave, the cut lands while frequent singletons are still pending,
/// exercising the roots-phase serialization and the done-root carryover.
TEST(CheckpointResumeTest, RootsPhaseCheckpointRoundTrips) {
  const AttributedGraph g = RandomAttributed(5, /*n=*/40, /*num_attrs=*/8,
                                             /*edge_p=*/0.25, /*attr_p=*/0.5);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.0;
  options.top_k = 2;
  options.eval_batch_grain = 0;  // one singleton per root entry
  const ScpmResult uncut = EngineAccumulate(g, options);

  // First segment by hand so the roots-phase checkpoint can be asserted.
  ScpmEngine engine(options);
  EngineBudget budget;
  budget.max_evaluations = 1;
  engine.set_budget(budget);
  engine.set_frontier_wave(2);
  AccumulatingSink first_sink;
  Result<MiningRun> first = engine.Run(g, &first_sink);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_FALSE(first->exhausted);
  EXPECT_TRUE(first->checkpoint.in_roots_phase);
  EXPECT_FALSE(first->checkpoint.root_batches.empty());

  auto [united, segments] = RunSegmented(g, options, budget, /*wave=*/2);
  EXPECT_GT(segments, 2);
  ExpectSameUnion(uncut, std::move(united));
}

class ResumeSweep : public ::testing::TestWithParam<int> {};

TEST_P(ResumeSweep, UnionEqualsUncutOnRandomGraphs) {
  const AttributedGraph g =
      RandomAttributed(GetParam(), /*n=*/32, /*num_attrs=*/6);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.1;
  options.top_k = 3;
  Graph topology = g.graph();
  MaxExpectationModel model(topology, options.quasi_clique);
  options.min_delta = 0.25;
  const ScpmResult uncut = EngineAccumulate(g, options, &model);

  for (std::uint64_t max_evals : {1u, 3u, 7u}) {
    for (std::size_t threads : {1u, 4u}) {
      ScpmOptions cell = options;
      cell.num_threads = threads;
      EngineBudget budget;
      budget.max_evaluations = max_evals;
      auto [united, segments] =
          RunSegmented(g, cell, budget, /*wave=*/3, &model);
      EXPECT_GE(segments, 2) << "budget never cut the run";
      ExpectSameUnion(uncut, std::move(united));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResumeSweep, ::testing::Range(0, 4));

TEST(CheckpointResumeTest, PatternBudgetCutsAndResumes) {
  const AttributedGraph g = RandomAttributed(9, /*n=*/40, /*num_attrs=*/6,
                                             /*edge_p=*/0.3, /*attr_p=*/0.5);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.0;
  options.top_k = 3;
  const ScpmResult uncut = EngineAccumulate(g, options);
  ASSERT_GT(uncut.patterns.size(), 4u);

  EngineBudget budget;
  budget.max_patterns = 2;
  auto [united, segments] = RunSegmented(g, options, budget, /*wave=*/1);
  EXPECT_GE(segments, 2);
  ExpectSameUnion(uncut, std::move(united));
}

/// Perf knobs may change between a cut and its resume: hybrid storage is
/// not part of the checkpoint binding (the hybrid contract makes it
/// unobservable in output), so a run cut with hybrid sets on resumes
/// with them off — and the union still matches, as does a pure
/// hybrid-off chain.
TEST(CheckpointResumeTest, ResumeAcrossHybridToggle) {
  const AttributedGraph g = RandomAttributed(17, /*n=*/40, /*num_attrs=*/5,
                                             /*edge_p=*/0.3, /*attr_p=*/0.5);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.1;
  options.top_k = 3;
  const ScpmResult uncut = EngineAccumulate(g, options);

  ScpmOptions off = options;
  off.use_hybrid_sets = false;
  EngineBudget budget;
  budget.max_evaluations = 3;
  auto [united_off, segments_off] = RunSegmented(g, off, budget, /*wave=*/2);
  EXPECT_GE(segments_off, 2);
  ExpectSameUnion(uncut, std::move(united_off));

  // Cut with hybrid on, resume everything with hybrid off.
  ScpmEngine on_engine(options);
  on_engine.set_budget(budget);
  on_engine.set_frontier_wave(2);
  AccumulatingSink first_sink;
  Result<MiningRun> first = on_engine.Run(g, &first_sink);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_FALSE(first->exhausted);
  ScpmResult united = first_sink.TakeResult();
  ScpmEngine off_engine(off);
  AccumulatingSink rest_sink;
  Result<MiningRun> rest =
      off_engine.Resume(g, first->checkpoint, &rest_sink);
  ASSERT_TRUE(rest.ok()) << rest.status();
  ASSERT_TRUE(rest->exhausted);
  ScpmResult tail = rest_sink.TakeResult();
  for (auto& s : tail.attribute_sets) {
    united.attribute_sets.push_back(std::move(s));
  }
  for (auto& p : tail.patterns) united.patterns.push_back(std::move(p));
  SortCanonical(&united);
  ExpectSameUnion(uncut, std::move(united));
}

/// A deadline cut behaves like any other cut: whatever was emitted plus
/// a resume-to-exhaustion equals the uncut run. (Whether the deadline
/// actually fires depends on machine speed; the union property must hold
/// either way.)
TEST(CheckpointResumeTest, DeadlineCutResumesToSameUnion) {
  const AttributedGraph g = RandomAttributed(13, /*n=*/60, /*num_attrs=*/6,
                                             /*edge_p=*/0.25, /*attr_p=*/0.5);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.0;
  options.top_k = 3;
  options.num_threads = 2;
  const ScpmResult uncut = EngineAccumulate(g, options);

  ScpmEngine engine(options);
  EngineBudget budget;
  budget.deadline_ms = 1;
  engine.set_budget(budget);
  AccumulatingSink sink;
  Result<MiningRun> first = engine.Run(g, &sink);
  ASSERT_TRUE(first.ok()) << first.status();
  ScpmResult united = sink.TakeResult();
  EngineCheckpoint checkpoint = first->checkpoint;
  bool exhausted = first->exhausted;
  int guard = 0;
  while (!exhausted && guard++ < 1000) {
    ScpmEngine next(options);  // no budget: finish in one segment
    AccumulatingSink seg_sink;
    Result<MiningRun> run = next.Resume(g, checkpoint, &seg_sink);
    ASSERT_TRUE(run.ok()) << run.status();
    ScpmResult segment = seg_sink.TakeResult();
    for (auto& s : segment.attribute_sets) {
      united.attribute_sets.push_back(std::move(s));
    }
    for (auto& p : segment.patterns) united.patterns.push_back(std::move(p));
    checkpoint = run->checkpoint;
    exhausted = run->exhausted;
  }
  SortCanonical(&united);
  ExpectSameUnion(uncut, std::move(united));
}

// ------------------------------------------------ checkpoint validation

TEST(CheckpointTest, SerializationRoundTripsExactly) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  ScpmEngine engine(options);
  EngineBudget budget;
  budget.max_evaluations = 2;
  engine.set_budget(budget);
  engine.set_frontier_wave(1);
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->exhausted);
  const std::string text = run->checkpoint.Serialize();
  Result<EngineCheckpoint> parsed = EngineCheckpoint::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Serialize(), text);
}

TEST(CheckpointTest, RejectsGarbageAndTruncation) {
  EXPECT_FALSE(EngineCheckpoint::Parse("").ok());
  EXPECT_FALSE(EngineCheckpoint::Parse("not a checkpoint").ok());
  EXPECT_FALSE(EngineCheckpoint::Parse("scpm-checkpoint 99\n").ok());

  const AttributedGraph g = PaperExampleGraph();
  ScpmEngine engine(Table1Options());
  EngineBudget budget;
  budget.max_evaluations = 2;
  engine.set_budget(budget);
  engine.set_frontier_wave(1);
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->exhausted);
  const std::string text = run->checkpoint.Serialize();
  // Every truncation of a valid checkpoint must fail to parse cleanly.
  for (std::size_t cut : {std::size_t{1}, text.size() / 2, text.size() - 2}) {
    EXPECT_FALSE(EngineCheckpoint::Parse(text.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(CheckpointTest, ResumeRejectsMalformedCoveredSets) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  ScpmEngine engine(options);
  EngineBudget budget;
  budget.max_evaluations = 2;
  engine.set_budget(budget);
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->exhausted);
  ASSERT_FALSE(run->checkpoint.classes.empty());
  ASSERT_FALSE(run->checkpoint.classes[0].members.empty());

  EngineCheckpoint out_of_range = run->checkpoint;
  out_of_range.classes[0].members[0].covered = {99999};  // 11-vertex graph
  AccumulatingSink s1;
  EXPECT_FALSE(ScpmEngine(options).Resume(g, out_of_range, &s1).ok());

  EngineCheckpoint unsorted = run->checkpoint;
  unsorted.classes[0].members[0].covered = {5, 3};
  AccumulatingSink s2;
  EXPECT_FALSE(ScpmEngine(options).Resume(g, unsorted, &s2).ok());
}

TEST(CheckpointTest, ResumeRejectsWrongGraphOrOptions) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmOptions options = Table1Options();
  ScpmEngine engine(options);
  EngineBudget budget;
  budget.max_evaluations = 2;
  engine.set_budget(budget);
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(run->exhausted);

  // Different graph.
  const AttributedGraph other = RandomAttributed(1);
  ScpmEngine same_options(options);
  AccumulatingSink s1;
  EXPECT_FALSE(same_options.Resume(other, run->checkpoint, &s1).ok());

  // Different thresholds.
  ScpmOptions changed = options;
  changed.min_epsilon = 0.25;
  ScpmEngine different(changed);
  AccumulatingSink s2;
  EXPECT_FALSE(different.Resume(g, run->checkpoint, &s2).ok());

  // Perf knobs are not part of the fingerprint.
  ScpmOptions perf = options;
  perf.num_threads = 4;
  perf.eval_batch_grain = 7;
  ScpmEngine perf_engine(perf);
  AccumulatingSink s3;
  EXPECT_TRUE(perf_engine.Resume(g, run->checkpoint, &s3).ok());
}

// ------------------------------------------------------- sink contracts

AttributeSetOutput MakeOutput(AttributeSet attrs, std::size_t support,
                              std::vector<VertexSet> pattern_sets) {
  AttributeSetOutput out;
  out.stats.attributes = attrs;
  out.stats.support = support;
  out.stats.covered = support;
  out.stats.epsilon = 1.0;
  for (VertexSet& v : pattern_sets) {
    StructuralCorrelationPattern p;
    p.attributes = attrs;
    p.vertices = std::move(v);
    p.min_degree_ratio = 0.5;
    p.edge_density = 0.5;
    out.patterns.push_back(std::move(p));
  }
  return out;
}

TEST(SinkTest, TopKPatternSinkKeepsGlobalBest) {
  TopKPatternSink sink(2);
  EXPECT_TRUE(sink.Emit({0}, MakeOutput({0}, 3, {{1, 2, 3}})).ok());
  EXPECT_TRUE(
      sink.Emit({1}, MakeOutput({1}, 5, {{1, 2, 3, 4, 5}, {2, 3}})).ok());
  EXPECT_TRUE(sink.Emit({2}, MakeOutput({2}, 4, {{1, 2, 3, 4}})).ok());
  EXPECT_EQ(sink.sets_seen(), 3u);
  const auto best = sink.best();
  ASSERT_EQ(best.size(), 2u);  // bounded at k
  EXPECT_EQ(best[0].vertices.size(), 5u);
  EXPECT_EQ(best[1].vertices.size(), 4u);
}

TEST(SinkTest, CallbackSinkForwardsAndPropagatesErrors) {
  std::vector<std::size_t> supports;
  CallbackSink ok_sink([&](const SinkKey&, const AttributeSetOutput& out) {
    supports.push_back(out.stats.support);
    return Status::OK();
  });
  EXPECT_TRUE(ok_sink.Emit({0}, MakeOutput({0}, 7, {})).ok());
  EXPECT_EQ(supports, (std::vector<std::size_t>{7}));

  const AttributedGraph g = PaperExampleGraph();
  ScpmEngine engine(Table1Options());
  CallbackSink failing([](const SinkKey&, const AttributeSetOutput&) {
    return Status::Internal("sink says no");
  });
  Result<MiningRun> run = engine.Run(g, &failing);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

TEST(SinkTest, JsonlSinkStreamsOneLinePerSet) {
  const AttributedGraph g = PaperExampleGraph();
  std::ostringstream out;
  JsonlSink sink(&out, &g);
  ScpmEngine engine(Table1Options());
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->exhausted);
  EXPECT_EQ(sink.lines_written(), run->emitted);

  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"attributes\""), std::string::npos);
    EXPECT_NE(line.find("\"patterns\""), std::string::npos);
  }
  EXPECT_EQ(count, run->emitted);
  // The Table-1 run reports exactly {A}, {B}, {A,B}.
  EXPECT_EQ(count, 3u);
}

/// With one worker the streaming emission order IS the sequential
/// enumeration order (keys ascending).
TEST(SinkTest, SingleThreadStreamingEmitsInSequentialOrder) {
  const AttributedGraph g = RandomAttributed(3, /*n=*/30, /*num_attrs=*/5);
  ScpmOptions options;
  options.quasi_clique.gamma = 0.5;
  options.quasi_clique.min_size = 3;
  options.min_support = 3;
  options.min_epsilon = 0.0;
  options.top_k = 2;
  std::vector<SinkKey> keys;
  CallbackSink sink([&](const SinkKey& key, const AttributeSetOutput&) {
    keys.push_back(key);
    return Status::OK();
  });
  ScpmEngine engine(options);
  // Wave size 1 pins the traversal to pure depth-first order.
  engine.set_frontier_wave(1);
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok()) << run.status();
  ASSERT_GT(keys.size(), 3u);
  // Keys are unique; the accumulating path sorts them into the canonical
  // order, and the engine never emits the same key twice.
  std::set<SinkKey> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
}

TEST(SinkTest, ProgressHookObservesWaves) {
  const AttributedGraph g = PaperExampleGraph();
  ScpmEngine engine(Table1Options());
  engine.set_frontier_wave(1);
  std::vector<EngineProgress> snapshots;
  engine.set_progress(
      [&](const EngineProgress& p) { snapshots.push_back(p); });
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(g, &sink);
  ASSERT_TRUE(run.ok());
  ASSERT_FALSE(snapshots.empty());
  EXPECT_EQ(snapshots.back().evaluations,
            run->counters.attribute_sets_evaluated);
  EXPECT_EQ(snapshots.back().emitted, run->emitted);
}

}  // namespace
}  // namespace scpm
