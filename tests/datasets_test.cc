// Tests for src/datasets: the Figure-1 reconstruction's structural
// invariants and the synthetic planted-topic generator.

#include <gtest/gtest.h>

#include "datasets/paper_example.h"
#include "datasets/synthetic.h"
#include "graph/metrics.h"
#include "qclique/quasi_clique.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

// ------------------------------------------------------------- Figure 1

TEST(PaperExampleTest, AttributeTableMatchesFigure1a) {
  const AttributedGraph g = PaperExampleGraph();
  const struct {
    VertexId paper_id;
    std::string attrs;
  } want[] = {
      {1, "AC"},  {2, "A"},  {3, "ACD"}, {4, "AD"},  {5, "AE"},  {6, "ABC"},
      {7, "ABE"}, {8, "AB"}, {9, "AB"},  {10, "ABD"}, {11, "AB"},
  };
  for (const auto& row : want) {
    std::string got;
    for (AttributeId a : g.Attributes(row.paper_id - 1)) {
      got += g.AttributeName(a);
    }
    std::sort(got.begin(), got.end());
    std::string expected = row.attrs;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "paper vertex " << row.paper_id;
  }
  EXPECT_EQ(g.NumAttributes(), 5u);  // A..E
}

TEST(PaperExampleTest, Figure1cCliqueAndFigure1dQuasiClique) {
  const AttributedGraph g = PaperExampleGraph();
  // Figure 1(c): {3,4,5,6} is a 1-quasi-clique of size 4 (a clique).
  const VertexSet clique{2, 3, 4, 5};  // paper ids 3,4,5,6
  EXPECT_TRUE(
      IsSatisfyingSet(g.graph(), clique, {.gamma = 1.0, .min_size = 4}));
  // Figure 1(d): {6..11} is a 0.6-quasi-clique of size 6.
  const VertexSet prism{5, 6, 7, 8, 9, 10};  // paper ids 6..11
  EXPECT_TRUE(
      IsSatisfyingSet(g.graph(), prism, {.gamma = 0.6, .min_size = 6}));
  EXPECT_DOUBLE_EQ(MinDegreeRatio(g.graph(), prism), 0.6);
  EXPECT_DOUBLE_EQ(SubsetDensity(g.graph(), prism), 0.6);
}

TEST(PaperExampleTest, SupportValues) {
  const AttributedGraph g = PaperExampleGraph();
  EXPECT_EQ(g.VerticesWith(g.FindAttribute("A")).size(), 11u);
  EXPECT_EQ(g.VerticesWith(g.FindAttribute("B")).size(), 6u);
  EXPECT_EQ(g.VerticesWith(g.FindAttribute("C")).size(), 3u);
  EXPECT_EQ(g.VerticesWith(g.FindAttribute("D")).size(), 3u);
  EXPECT_EQ(g.VerticesWith(g.FindAttribute("E")).size(), 2u);
}

// ------------------------------------------------------------- Synthetic

TEST(SyntheticTest, ValidatesConfig) {
  SyntheticConfig c;
  c.num_vertices = 5;
  c.community_max_size = 10;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
  c = SyntheticConfig{};
  c.powerlaw_exponent = 1.5;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
  c = SyntheticConfig{};
  c.num_topics = 0;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticConfig c;
  c.num_vertices = 300;
  c.num_communities = 6;
  Result<SyntheticDataset> a = GenerateSynthetic(c);
  Result<SyntheticDataset> b = GenerateSynthetic(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->graph.graph().NumEdges(), b->graph.graph().NumEdges());
  EXPECT_EQ(a->graph.NumAttributeOccurrences(),
            b->graph.NumAttributeOccurrences());
}

TEST(SyntheticTest, GroundTruthShapes) {
  SyntheticConfig c;
  c.num_vertices = 500;
  c.num_communities = 10;
  c.num_topics = 4;
  Result<SyntheticDataset> d = GenerateSynthetic(c);
  ASSERT_TRUE(d.ok()) << d.status();
  EXPECT_EQ(d->communities.size(), 10u);
  EXPECT_EQ(d->topics.size(), 4u);
  EXPECT_EQ(d->community_topic.size(), 10u);
  for (std::size_t t : d->community_topic) EXPECT_LT(t, 4u);
  for (const AttributeSet& topic : d->topics) {
    EXPECT_EQ(topic.size(), c.topic_size);
    for (AttributeId a : topic) {
      EXPECT_LT(a, d->graph.NumAttributes());
    }
  }
}

TEST(SyntheticTest, CommunitiesAreDense) {
  SyntheticConfig c;
  c.num_vertices = 800;
  c.num_communities = 12;
  c.community_density = 0.9;
  Result<SyntheticDataset> d = GenerateSynthetic(c);
  ASSERT_TRUE(d.ok());
  double avg_density = 0;
  for (const PlantedGroup& community : d->communities) {
    avg_density += SubsetDensity(d->graph.graph(), community.members);
  }
  avg_density /= static_cast<double>(d->communities.size());
  // Planted density plus background edges.
  EXPECT_GT(avg_density, 0.75);
  // The global graph stays sparse.
  EXPECT_LT(EdgeDensity(d->graph.graph()), 0.05);
}

TEST(SyntheticTest, TopicAttributesConcentrateInCommunities) {
  SyntheticConfig c;
  c.num_vertices = 1000;
  c.num_communities = 8;
  c.topic_affinity = 0.95;
  c.topic_noise = 0.005;
  Result<SyntheticDataset> d = GenerateSynthetic(c);
  ASSERT_TRUE(d.ok());
  // Members should carry their community's topic attributes far more often
  // than random vertices do.
  std::size_t member_hits = 0, member_total = 0;
  for (std::size_t i = 0; i < d->communities.size(); ++i) {
    const AttributeSet& topic = d->topics[d->community_topic[i]];
    for (VertexId v : d->communities[i].members) {
      for (AttributeId a : topic) {
        ++member_total;
        member_hits += d->graph.VertexHasAttribute(v, a) ? 1 : 0;
      }
    }
  }
  const double member_rate =
      static_cast<double>(member_hits) / static_cast<double>(member_total);
  EXPECT_GT(member_rate, 0.85);

  std::size_t noise_hits = 0, noise_total = 0;
  const AttributeSet& topic0 = d->topics[0];
  for (VertexId v = 0; v < d->graph.NumVertices(); ++v) {
    for (AttributeId a : topic0) {
      ++noise_total;
      noise_hits += d->graph.VertexHasAttribute(v, a) ? 1 : 0;
    }
  }
  const double global_rate =
      static_cast<double>(noise_hits) / static_cast<double>(noise_total);
  EXPECT_LT(global_rate, 0.2);
  EXPECT_GT(member_rate, 3 * global_rate);
}

TEST(SyntheticTest, PresetsScale) {
  for (auto maker : {DblpLikeConfig, LastFmLikeConfig, CiteSeerLikeConfig,
                     SmallDblpConfig}) {
    SyntheticConfig half = maker(0.5);
    SyntheticConfig full = maker(1.0);
    EXPECT_LT(half.num_vertices, full.num_vertices);
    EXPECT_TRUE(GenerateSynthetic(half).ok());
  }
}

TEST(SyntheticTest, PresetDegreeShapes) {
  Result<SyntheticDataset> dblp = GenerateSynthetic(DblpLikeConfig(0.3));
  Result<SyntheticDataset> lastfm = GenerateSynthetic(LastFmLikeConfig(0.3));
  ASSERT_TRUE(dblp.ok());
  ASSERT_TRUE(lastfm.ok());
  // LastFm-like is sparser than DBLP-like, as in the paper's crawls.
  EXPECT_LT(AverageDegree(lastfm->graph.graph()) /
                (1.0 + AverageDegree(dblp->graph.graph())),
            1.0);
}

}  // namespace
}  // namespace scpm
