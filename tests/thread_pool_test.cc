// Tests for the work-stealing thread pool: recursive fork/join from
// inside tasks (the old Submit-and-Wait deadlock case), Wait semantics
// under contention, group reuse, and worker identity.

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "util/cancel.h"

#include <gtest/gtest.h>

#include "util/thread_pool.h"

namespace scpm {
namespace {

TEST(ThreadPoolSpawnTest, GroupedTasksAllRun) {
  ThreadPool pool(4);
  ThreadPool::TaskGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.Spawn(&group, [&counter] { counter.fetch_add(1); });
  }
  pool.WaitFor(&group);
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolSpawnTest, WaitForOnlyWaitsForItsGroup) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup fast, slow;
  std::atomic<bool> release{false};
  std::atomic<int> fast_done{0};
  pool.Spawn(&slow, [&release] {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 10; ++i) {
    pool.Spawn(&fast, [&fast_done] { fast_done.fetch_add(1); });
  }
  pool.WaitFor(&fast);  // Must not require the slow group to finish.
  EXPECT_EQ(fast_done.load(), 10);
  release.store(true);
  pool.WaitFor(&slow);
}

// The case the pre-work-stealing pool documented as forbidden: a task that
// submits children to the same pool and blocks on them. With one worker
// this deadlocks unless the waiting task helps execute its children.
TEST(ThreadPoolSpawnTest, RecursiveWaitOnSingleWorkerDoesNotDeadlock) {
  ThreadPool pool(1);
  ThreadPool::TaskGroup outer;
  std::atomic<int> leaves{0};
  pool.Spawn(&outer, [&] {
    ThreadPool::TaskGroup inner;
    for (int i = 0; i < 8; ++i) {
      pool.Spawn(&inner, [&leaves] { leaves.fetch_add(1); });
    }
    pool.WaitFor(&inner);
  });
  pool.WaitFor(&outer);
  EXPECT_EQ(leaves.load(), 8);
}

/// Recursive fork/join over a binary tree, returning the leaf count
/// through per-node accumulators; exercises nested WaitFor at every level.
int CountLeaves(ThreadPool& pool, int depth) {
  if (depth == 0) return 1;
  int left = 0, right = 0;
  ThreadPool::TaskGroup children;
  pool.Spawn(&children,
             [&pool, &left, depth] { left = CountLeaves(pool, depth - 1); });
  pool.Spawn(&children,
             [&pool, &right, depth] { right = CountLeaves(pool, depth - 1); });
  pool.WaitFor(&children);
  return left + right;
}

class ThreadPoolRecursionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolRecursionSweep, NestedForkJoinComputesTreeSize) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  int total = 0;
  ThreadPool::TaskGroup root;
  pool.Spawn(&root, [&pool, &total] { total = CountLeaves(pool, 7); });
  pool.WaitFor(&root);
  EXPECT_EQ(total, 128);
}

INSTANTIATE_TEST_SUITE_P(Workers, ThreadPoolRecursionSweep,
                         ::testing::Values(1, 2, 3, 8));

TEST(ThreadPoolSpawnTest, GroupIsReusableAfterDraining) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Spawn(&group, [&counter] { counter.fetch_add(1); });
    }
    pool.WaitFor(&group);
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolSpawnTest, WaitCoversGroupedAndUngroupedTasks) {
  ThreadPool pool(3);
  ThreadPool::TaskGroup group;
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.Spawn(&group, [&counter] { counter.fetch_add(1); });
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolSpawnTest, TasksSpawnedDuringShutdownStillDrain) {
  std::atomic<int> counter{0};
  {
    // Declared before the pool: the pool destructor drains tasks that
    // still spawn into (and complete against) this group.
    ThreadPool::TaskGroup group;
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Spawn(&group, [&pool, &group, &counter] {
        counter.fetch_add(1);
        pool.Spawn(&group, [&counter] { counter.fetch_add(1); });
      });
    }
    // Destructor must drain both generations before joining.
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPoolDeadlineTest, WaitForUntilDrainsFastGroups) {
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    pool.Spawn(&group, [&ran] { ran.fetch_add(1); });
  }
  EXPECT_TRUE(pool.WaitForUntil(
      &group, std::chrono::steady_clock::now() + std::chrono::seconds(30)));
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPoolDeadlineTest, WaitForUntilTimesOutAndTokenUnblocks) {
  // The drain-with-budget protocol of the frontier engine: a bounded
  // wait times out on a stuck group, the caller latches the cancel token
  // the tasks poll, and the plain WaitFor then drains promptly.
  ThreadPool pool(2);
  ThreadPool::TaskGroup group;
  CancelToken token;
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    pool.Spawn(&group, [&token, &finished] {
      std::uint32_t tick = 0;
      while (!token.ShouldStop(&tick)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      finished.fetch_add(1);
    });
  }
  EXPECT_FALSE(pool.WaitForUntil(
      &group,
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20)));
  token.RequestCancel();
  pool.WaitFor(&group);
  EXPECT_EQ(finished.load(), 4);
}

TEST(ThreadPoolIdentityTest, WorkerIndexInsideAndOutside) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.current_worker_index(), -1);
  std::atomic<int> bad{0};
  ThreadPool::TaskGroup group;
  for (int i = 0; i < 60; ++i) {
    pool.Spawn(&group, [&pool, &bad] {
      const int index = pool.current_worker_index();
      if (index < 0 || index >= 3) bad.fetch_add(1);
    });
  }
  pool.WaitFor(&group);
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(pool.current_worker_index(), -1);
}

TEST(ThreadPoolIdentityTest, ForeignPoolIsNotMistakenForOwn) {
  ThreadPool a(2), b(2);
  std::atomic<int> bad{0};
  ThreadPool::TaskGroup group;
  a.Spawn(&group, [&b, &bad] {
    if (b.current_worker_index() != -1) bad.fetch_add(1);
  });
  a.WaitFor(&group);
  EXPECT_EQ(bad.load(), 0);
}

// ------------------------------------------------- parallelism budget

TEST(ParallelismBudgetTest, BorrowAndReturn) {
  ParallelismBudget budget(2);
  EXPECT_EQ(budget.available(), 2u);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_EQ(budget.available(), 0u);
  budget.Release();
  EXPECT_TRUE(budget.TryAcquire());
  budget.Release();
  budget.Release();
  EXPECT_EQ(budget.available(), 2u);
}

TEST(ParallelismBudgetTest, ZeroSlotBudgetNeverGrants) {
  ParallelismBudget budget(0);
  EXPECT_FALSE(budget.TryAcquire());
}

// A budget shared by concurrent pool tasks: the number of simultaneous
// holders can never exceed the slot count, failed acquires run inline,
// and every borrowed slot comes back (the miner's borrowing pattern).
TEST(ParallelismBudgetTest, SharedAcrossPoolTasksBoundsConcurrency) {
  ThreadPool pool(4);
  ParallelismBudget budget(3);
  std::atomic<int> holders{0};
  std::atomic<int> max_holders{0};
  std::atomic<int> borrowed{0};
  std::atomic<int> inline_runs{0};
  ThreadPool::TaskGroup group;
  for (int i = 0; i < 300; ++i) {
    pool.Spawn(&group, [&] {
      if (!budget.TryAcquire()) {
        inline_runs.fetch_add(1);
        return;
      }
      borrowed.fetch_add(1);
      const int now = holders.fetch_add(1) + 1;
      int seen = max_holders.load();
      while (now > seen && !max_holders.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::yield();
      holders.fetch_sub(1);
      budget.Release();
    });
  }
  pool.WaitFor(&group);
  EXPECT_LE(max_holders.load(), 3);
  EXPECT_EQ(borrowed.load() + inline_runs.load(), 300);
  EXPECT_GT(borrowed.load(), 0);
  EXPECT_EQ(budget.available(), 3u);
}

// Heavy mixed load: external waits racing helping waits, uneven task
// sizes so stealing actually rebalances.
TEST(ThreadPoolStressTest, ContendedForkJoin) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  ThreadPool::TaskGroup top;
  for (int i = 0; i < 16; ++i) {
    pool.Spawn(&top, [&pool, &sum, i] {
      ThreadPool::TaskGroup nested;
      const int fanout = 1 + (i % 7);
      for (int j = 0; j < fanout; ++j) {
        pool.Spawn(&nested, [&sum, j] {
          long local = 0;
          for (int k = 0; k <= j * 1000; ++k) local += k % 13;
          sum.fetch_add(local + 1);
        });
      }
      pool.WaitFor(&nested);
    });
  }
  pool.WaitFor(&top);
  pool.Wait();
  long expected = 0;
  for (int i = 0; i < 16; ++i) {
    const int fanout = 1 + (i % 7);
    for (int j = 0; j < fanout; ++j) {
      long local = 0;
      for (int k = 0; k <= j * 1000; ++k) local += k % 13;
      expected += local + 1;
    }
  }
  EXPECT_EQ(sum.load(), expected);
}

}  // namespace
}  // namespace scpm
