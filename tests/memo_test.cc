// MemoCache isolation tests: exact LRU eviction order, recency refresh,
// same-key refresh accounting, oversized-entry rejection, epoch
// invalidation, a disabled (zero-budget) cache, BoundView fingerprint
// isolation, and hit/miss counter determinism under concurrent lookups
// (run under TSan in CI).

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "server/memo.h"

namespace scpm {
namespace {

/// An evaluation whose byte footprint is controlled by its covered-set
/// capacity; the `tag` makes values distinguishable in assertions.
std::shared_ptr<const EvalMemo::Evaluation> MakeEval(std::size_t covered,
                                                     VertexId tag = 0) {
  auto eval = std::make_shared<EvalMemo::Evaluation>();
  eval->covered.reserve(covered);
  for (std::size_t i = 0; i < covered; ++i) {
    eval->covered.push_back(tag + static_cast<VertexId>(i));
  }
  eval->extendable = true;
  return eval;
}

/// A cache holding exactly `capacity` such evaluations in one shard.
MemoCacheOptions OneShardHolding(std::size_t capacity, std::size_t covered) {
  MemoCacheOptions options;
  options.num_shards = 1;
  options.max_bytes =
      capacity * MemoCache::EvaluationBytes(*MakeEval(covered)) +
      MemoCache::EvaluationBytes(*MakeEval(covered)) / 2;
  return options;
}

TEST(MemoCacheTest, LruEvictsColdestFirst) {
  MemoCache cache(OneShardHolding(2, 8));
  cache.Insert(1, 7, {1}, MakeEval(8, 100));
  cache.Insert(1, 7, {2}, MakeEval(8, 200));
  cache.Insert(1, 7, {3}, MakeEval(8, 300));  // evicts {1}, the coldest

  EXPECT_EQ(cache.Lookup(1, 7, {1}), nullptr);
  ASSERT_NE(cache.Lookup(1, 7, {2}), nullptr);
  ASSERT_NE(cache.Lookup(1, 7, {3}), nullptr);
  EXPECT_EQ(cache.Lookup(1, 7, {3})->covered.front(), 300u);

  const MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.insertions, 3u);
}

TEST(MemoCacheTest, LookupRefreshesRecency) {
  MemoCache cache(OneShardHolding(2, 8));
  cache.Insert(1, 7, {1}, MakeEval(8));
  cache.Insert(1, 7, {2}, MakeEval(8));
  ASSERT_NE(cache.Lookup(1, 7, {1}), nullptr);  // {1} is now the hottest
  cache.Insert(1, 7, {3}, MakeEval(8));         // evicts {2}, not {1}

  EXPECT_NE(cache.Lookup(1, 7, {1}), nullptr);
  EXPECT_EQ(cache.Lookup(1, 7, {2}), nullptr);
  EXPECT_NE(cache.Lookup(1, 7, {3}), nullptr);
}

TEST(MemoCacheTest, SameKeyInsertRefreshesWithoutDoubleCounting) {
  MemoCache cache(OneShardHolding(2, 8));
  cache.Insert(1, 7, {1}, MakeEval(8, 10));
  cache.Insert(1, 7, {2}, MakeEval(8, 20));
  const std::uint64_t bytes_before = cache.stats().bytes;

  // Re-inserting {1} must refresh recency (so {2} is now coldest) and
  // keep byte/entry accounting unchanged.
  cache.Insert(1, 7, {1}, MakeEval(8, 11));
  EXPECT_EQ(cache.stats().bytes, bytes_before);
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().insertions, 2u);

  cache.Insert(1, 7, {3}, MakeEval(8, 30));  // evicts {2}
  EXPECT_NE(cache.Lookup(1, 7, {1}), nullptr);
  EXPECT_EQ(cache.Lookup(1, 7, {2}), nullptr);
}

TEST(MemoCacheTest, OversizedEntryIsNotCached) {
  MemoCache cache(OneShardHolding(2, 8));
  cache.Insert(1, 7, {1}, MakeEval(4096));  // larger than the shard budget
  EXPECT_EQ(cache.Lookup(1, 7, {1}), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(MemoCacheTest, ZeroBudgetDisablesCaching) {
  MemoCacheOptions options;
  options.max_bytes = 0;
  MemoCache cache(options);
  cache.Insert(1, 7, {1}, MakeEval(2));
  EXPECT_EQ(cache.Lookup(1, 7, {1}), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(MemoCacheTest, EpochChangeInvalidatesAndPurges) {
  MemoCacheOptions options;  // defaults: plenty of room
  MemoCache cache(options);
  cache.Insert(1, 7, {1}, MakeEval(4));
  cache.Insert(1, 7, {2}, MakeEval(4));
  ASSERT_EQ(cache.stats().entries, 2u);

  cache.BeginEpoch(2);
  // Old-epoch keys are gone (and would not match anyway — the epoch is
  // part of the key); the purge counts as evictions.
  EXPECT_EQ(cache.Lookup(1, 7, {1}), nullptr);
  EXPECT_EQ(cache.Lookup(2, 7, {1}), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().bytes, 0u);

  cache.Insert(2, 7, {1}, MakeEval(4));
  EXPECT_NE(cache.Lookup(2, 7, {1}), nullptr);
}

TEST(MemoCacheTest, BoundViewsIsolateFingerprintsAndEpochs) {
  MemoCacheOptions options;
  MemoCache cache(options);
  MemoCache::BoundView gamma_a = cache.Bind(1, 0xAAAA);
  MemoCache::BoundView gamma_b = cache.Bind(1, 0xBBBB);
  MemoCache::BoundView next_epoch = cache.Bind(2, 0xAAAA);

  gamma_a.Insert({1, 2}, MakeEval(4, 42));
  ASSERT_NE(gamma_a.Lookup({1, 2}), nullptr);
  EXPECT_EQ(gamma_a.Lookup({1, 2})->covered.front(), 42u);
  // A different options fingerprint or epoch never sees the entry.
  EXPECT_EQ(gamma_b.Lookup({1, 2}), nullptr);
  EXPECT_EQ(next_epoch.Lookup({1, 2}), nullptr);
}

TEST(MemoCacheTest, ConcurrentLookupCountersAreExact) {
  MemoCacheOptions options;
  options.num_shards = 4;
  MemoCache cache(options);
  constexpr std::uint64_t kKeys = 64;
  constexpr std::uint64_t kThreads = 8;
  constexpr std::uint64_t kRounds = 50;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    cache.Insert(1, 7, {static_cast<AttributeId>(k)}, MakeEval(4));
  }

  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (std::uint64_t r = 0; r < kRounds; ++r) {
        for (std::uint64_t k = 0; k < kKeys; ++k) {
          ASSERT_NE(cache.Lookup(1, 7, {static_cast<AttributeId>(k)}),
                    nullptr);
          // Probing a key that was never inserted is a miss every time.
          ASSERT_EQ(cache.Lookup(1, 7, {static_cast<AttributeId>(k + kKeys)}),
                    nullptr);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Every lookup outcome was predetermined, so the counters are exact
  // for ANY interleaving.
  const MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, kThreads * kRounds * kKeys);
  EXPECT_EQ(stats.misses, kThreads * kRounds * kKeys);
  EXPECT_EQ(stats.entries, kKeys);
}

TEST(MemoCacheTest, ConcurrentSameKeyInsertsKeepOneEntry) {
  MemoCacheOptions options;
  MemoCache cache(options);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache] {
      for (int r = 0; r < 100; ++r) {
        cache.Insert(1, 7, {5}, MakeEval(4, 99));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const MemoCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);  // the rest were same-key refreshes
  ASSERT_NE(cache.Lookup(1, 7, {5}), nullptr);
  EXPECT_EQ(cache.Lookup(1, 7, {5})->covered.front(), 99u);
}

}  // namespace
}  // namespace scpm
