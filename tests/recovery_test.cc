// Durability and crash-recovery tests: the deterministic fault
// injector, the StateStore journal/checkpoint discipline (atomic
// replace, torn-tail tolerance, stale-epoch discard), periodic engine
// auto-checkpointing, and end-to-end recovery — a query interrupted
// mid-run (simulated crash state, clean drain, and a real fork +
// SIGKILL) resumes on a fresh server and produces output byte-identical
// to an uninterrupted run. The seeded fault sweep runs the whole
// workflow under probabilistic-but-reproducible failures and asserts
// every failure lands in a typed error and a recoverable state. These
// tests run under TSan in CI.

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/request.h"
#include "core/scpm.h"
#include "graph/attributed_graph.h"
#include "server/journal.h"
#include "server/server.h"
#include "server/session.h"
#include "util/fault.h"
#include "util/random.h"

namespace scpm {
namespace {

/// Fresh scratch directory under the test's working directory.
std::string TempDir(const std::string& tag) {
  std::string templ = "./recovery_" + tag + "_XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  const char* made = ::mkdtemp(buf.data());
  EXPECT_NE(made, nullptr);
  return made != nullptr ? made : templ;
}

/// Random attributed graph (same construction as engine_test.cc).
AttributedGraph RandomAttributed(int seed, VertexId n = 24, int num_attrs = 5,
                                 double edge_p = 0.3, double attr_p = 0.4) {
  Rng rng(seed);
  AttributedGraphBuilder builder(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.NextDouble() < edge_p) builder.AddEdge(u, v);
    }
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttributeId id = builder.InternAttribute("a" + std::to_string(a));
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextDouble() < attr_p) {
        EXPECT_TRUE(builder.AddVertexAttribute(v, id).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// A query spec heavy enough to be sliced and snapshotted a few times.
QuerySpec JsonlSpec(const std::string& out_path) {
  QuerySpec spec;
  spec.options.quasi_clique.gamma = 0.6;
  spec.options.quasi_clique.min_size = 4;
  spec.options.min_support = 2;
  spec.options.min_epsilon = 0.05;
  spec.options.top_k = 5;
  spec.sink = QuerySpec::Sink::kJsonl;
  spec.jsonl_path = out_path;
  return spec;
}

std::vector<std::string> SortedLines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  std::sort(lines.begin(), lines.end());
  return lines;
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

ServerOptions DurableOptions(const std::string& state_dir) {
  ServerOptions options;
  options.threads = 2;
  options.max_concurrent = 1;
  options.state_dir = state_dir;
  options.checkpoint_interval_ms = 1;  // snapshot eagerly in tests
  options.slice_evals = 3;             // many short slices
  return options;
}

// ---------------------------------------------------------------------------
// FaultInjector

TEST(FaultInjector, ScriptedNthHitFiresExactlyOnce) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  ASSERT_TRUE(fi.Configure("checkpoint-write=1").ok());
  EXPECT_TRUE(fi.armed());
  EXPECT_FALSE(fi.ShouldFail(fault::kCheckpointWrite));  // hit 0
  EXPECT_FALSE(fi.ShouldFail(fault::kJournalWrite));     // other point
  EXPECT_TRUE(fi.ShouldFail(fault::kCheckpointWrite));   // hit 1 fires
  EXPECT_FALSE(fi.ShouldFail(fault::kCheckpointWrite));  // fired once only
  EXPECT_EQ(fi.injected(), 1u);
  fi.Reset();
  EXPECT_FALSE(fi.armed());
  EXPECT_FALSE(fi.ShouldFail(fault::kCheckpointWrite));
}

TEST(FaultInjector, MalformedSpecLeavesDisarmed) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  EXPECT_EQ(fi.Configure("not a spec").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(fi.armed());
  EXPECT_EQ(fi.Configure("point=").code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(fi.armed());
  fi.Reset();
}

TEST(FaultInjector, SeededModeIsDeterministic) {
  FaultInjector& fi = FaultInjector::Instance();
  const auto draw = [&fi](std::uint64_t seed) {
    fi.Reset();
    fi.Seed(seed, 300);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(fi.ShouldFail(fault::kJournalWrite));
    }
    return outcomes;
  };
  const std::vector<bool> a = draw(42);
  const std::vector<bool> b = draw(42);
  const std::vector<bool> c = draw(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide over 64 draws
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  EXPECT_GT(std::count(a.begin(), a.end(), false), 0);
  fi.Reset();
}

// ---------------------------------------------------------------------------
// StateStore

TEST(StateStore, JournalRoundTripAndTerminalFiltering) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("journal");
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(dir + "/state");
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->AppendServer(1, 24, 80, 5).ok());
  JsonValue q1 = QuerySpecToJson(JsonlSpec("/tmp/out1.jsonl"));
  JsonValue q2 = QuerySpecToJson(QuerySpec{});
  EXPECT_TRUE((*store)->AppendAdmit(1, 1, q1).ok());
  EXPECT_TRUE((*store)->AppendAdmit(2, 1, q2).ok());
  EXPECT_TRUE((*store)->AppendProgress(1, 7, 7).ok());
  EXPECT_TRUE((*store)->AppendTerminal(2, "done").ok());

  const RecoveryScan scan = (*store)->Scan();
  EXPECT_EQ(scan.epoch, 1u);
  EXPECT_EQ(scan.vertices, 24u);
  EXPECT_EQ(scan.edges, 80u);
  EXPECT_EQ(scan.attributes, 5u);
  EXPECT_EQ(scan.max_id, 2u);
  ASSERT_EQ(scan.queries.size(), 1u);  // 2 is terminal
  EXPECT_EQ(scan.queries[0].id, 1u);
  EXPECT_FALSE(scan.queries[0].has_checkpoint);
  EXPECT_TRUE(scan.warnings.empty()) << scan.warnings[0];
  // The admit spec round-trips through ParseQuerySpec.
  Result<QuerySpec> reparsed = ParseQuerySpec(scan.queries[0].query);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->jsonl_path, "/tmp/out1.jsonl");
  EXPECT_EQ(reparsed->options.min_support, 2u);

  const JournalStats stats = (*store)->stats();
  EXPECT_EQ(stats.appends, 5u);
  EXPECT_EQ(stats.fsyncs, 5u);
  EXPECT_EQ(stats.io_errors, 0u);
}

TEST(StateStore, CheckpointMetaRidesAtomicallyWithSnapshot) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("ckptmeta");
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(dir + "/state");
  ASSERT_TRUE(store.ok());

  // A real checkpoint from a budget-cut run.
  AttributedGraph graph = RandomAttributed(3);
  MiningRequest request = JsonlSpec(dir + "/out.jsonl");
  request.budget.max_evaluations = 4;
  Result<MiningResponse> cut = ExecuteRequest(graph, request);
  ASSERT_TRUE(cut.ok());
  ASSERT_FALSE(cut->run.exhausted);

  EXPECT_TRUE((*store)->AppendServer(1, 24, 80, 5).ok());
  EXPECT_TRUE(
      (*store)->AppendAdmit(1, 1, QuerySpecToJson(JsonlSpec(dir + "/o"))).ok());
  ASSERT_TRUE(
      (*store)->WriteCheckpoint(1, cut->run.checkpoint, 7, 21, 7).ok());

  RecoveryScan scan = (*store)->Scan();
  ASSERT_EQ(scan.queries.size(), 1u);
  EXPECT_TRUE(scan.queries[0].has_checkpoint);
  EXPECT_EQ(scan.queries[0].emitted, 7u);
  EXPECT_EQ(scan.queries[0].patterns_emitted, 21u);
  EXPECT_EQ(scan.queries[0].jsonl_lines, 7u);

  // An injected I/O failure must leave the previous checkpoint intact:
  // same counters, same snapshot, typed error, io_errors counted.
  ASSERT_TRUE(FaultInjector::Instance().Configure("checkpoint-write=0").ok());
  const Status failed =
      (*store)->WriteCheckpoint(1, cut->run.checkpoint, 999, 999, 999);
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  FaultInjector::Instance().Reset();
  scan = (*store)->Scan();
  ASSERT_EQ(scan.queries.size(), 1u);
  EXPECT_TRUE(scan.queries[0].has_checkpoint);
  EXPECT_EQ(scan.queries[0].emitted, 7u);
  EXPECT_EQ((*store)->stats().io_errors, 1u);

  // A torn checkpoint file (truncated mid-snapshot at the final path,
  // as if the filesystem lost the rename's durability) degrades to
  // "re-run from scratch" with a warning, never an error.
  std::ofstream torn(dir + "/state/q1.ckpt", std::ios::trunc);
  torn << "scpm-query-meta 1 7 21 7\nscpm-checkpoint";  // cut mid-header
  torn.close();
  scan = (*store)->Scan();
  ASSERT_EQ(scan.queries.size(), 1u);
  EXPECT_FALSE(scan.queries[0].has_checkpoint);
  EXPECT_EQ(scan.queries[0].emitted, 0u);
  ASSERT_FALSE(scan.warnings.empty());
  EXPECT_NE(scan.warnings.back().find("re-run from scratch"),
            std::string::npos);
}

TEST(StateStore, BitFlippedBinarySnapshotWarnsAndRerunsFromScratch) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("bitflip");
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(dir + "/state");
  ASSERT_TRUE(store.ok());

  AttributedGraph graph = RandomAttributed(3);
  MiningRequest request = JsonlSpec(dir + "/out.jsonl");
  request.budget.max_evaluations = 4;
  Result<MiningResponse> cut = ExecuteRequest(graph, request);
  ASSERT_TRUE(cut.ok());
  ASSERT_FALSE(cut->run.exhausted);

  EXPECT_TRUE((*store)->AppendServer(1, 24, 80, 5).ok());
  EXPECT_TRUE(
      (*store)->AppendAdmit(1, 1, QuerySpecToJson(JsonlSpec(dir + "/o"))).ok());
  ASSERT_TRUE(
      (*store)->WriteCheckpoint(1, cut->run.checkpoint, 7, 21, 7).ok());

  // The snapshot after the meta line is the binary v2 form.
  const std::string path = dir + "/state/q1.ckpt";
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  const std::size_t magic = bytes.find("SCPB");
  ASSERT_NE(magic, std::string::npos) << "snapshot is not binary";

  // Flip one bit at several depths of the binary region: the payload
  // checksum must turn each into a typed "re-run from scratch" warning,
  // never a silently different frontier and never a Scan failure.
  const std::size_t offsets[] = {magic + 6, (magic + bytes.size()) / 2,
                                 bytes.size() - 1};
  for (const std::size_t offset : offsets) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x10);
    {
      std::ofstream out(path, std::ios::trunc | std::ios::binary);
      out << corrupt;
    }
    const RecoveryScan scan = (*store)->Scan();
    ASSERT_EQ(scan.queries.size(), 1u);
    EXPECT_FALSE(scan.queries[0].has_checkpoint)
        << "flip at offset " << offset << " went undetected";
    EXPECT_EQ(scan.queries[0].emitted, 0u);
    ASSERT_FALSE(scan.warnings.empty());
    EXPECT_NE(scan.warnings.back().find("re-run from scratch"),
              std::string::npos);
  }

  // The pristine bytes still scan fine afterwards (the corruption above
  // was in the copy, not the codec).
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << bytes;
  }
  const RecoveryScan scan = (*store)->Scan();
  ASSERT_EQ(scan.queries.size(), 1u);
  EXPECT_TRUE(scan.queries[0].has_checkpoint);
  EXPECT_EQ(scan.queries[0].emitted, 7u);
}

TEST(StateStore, InjectedJournalFailureIsTypedAndCounted) {
  FaultInjector& fi = FaultInjector::Instance();
  fi.Reset();
  const std::string dir = TempDir("jfail");
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(dir + "/state");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(fi.Configure("journal-write=1").ok());
  EXPECT_TRUE((*store)->AppendServer(1, 1, 1, 1).ok());
  const Status failed = (*store)->AppendTerminal(1, "done");
  EXPECT_EQ(failed.code(), StatusCode::kIoError);
  EXPECT_TRUE((*store)->AppendTerminal(1, "done").ok());  // next one lands
  fi.Reset();
  EXPECT_EQ((*store)->stats().io_errors, 1u);
}

TEST(StateStore, TornTailAndMidFileGarbageTolerated) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("torn");
  {
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    EXPECT_TRUE((*store)->AppendServer(1, 24, 80, 5).ok());
    EXPECT_TRUE(
        (*store)
            ->AppendAdmit(1, 1, QuerySpecToJson(JsonlSpec(dir + "/o")))
            .ok());
  }
  // Mid-file garbage (a corrupted but complete line) and a torn tail (a
  // crash mid-append): both are warnings, neither loses the admit.
  {
    std::ofstream out(dir + "/state/journal.jsonl", std::ios::app);
    out << "%% corrupted line %%\n";
    out << "{\"t\":\"admit\",\"id\":2,\"epoch\":1,\"query\":{}}\n";
    out << "{\"t\":\"terminal\",\"id\":2,\"sta";  // torn: no newline, cut
  }
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(dir + "/state");
  ASSERT_TRUE(store.ok());
  const RecoveryScan scan = (*store)->Scan();
  EXPECT_EQ(scan.queries.size(), 2u);
  ASSERT_EQ(scan.warnings.size(), 2u);
  EXPECT_NE(scan.warnings[0].find("unparseable"), std::string::npos);
  EXPECT_NE(scan.warnings[1].find("torn record"), std::string::npos);
}

TEST(StateStore, StaleEpochQueriesDiscarded) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("epoch");
  Result<std::unique_ptr<StateStore>> store = StateStore::Open(dir + "/state");
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->AppendServer(1, 24, 80, 5).ok());
  EXPECT_TRUE(
      (*store)->AppendAdmit(1, 1, QuerySpecToJson(QuerySpec{})).ok());
  // A reload bumped the epoch; query 1 pinned the old graph.
  EXPECT_TRUE((*store)->AppendServer(2, 30, 90, 6).ok());
  EXPECT_TRUE(
      (*store)->AppendAdmit(2, 2, QuerySpecToJson(QuerySpec{})).ok());
  const RecoveryScan scan = (*store)->Scan();
  EXPECT_EQ(scan.epoch, 2u);
  ASSERT_EQ(scan.queries.size(), 1u);
  EXPECT_EQ(scan.queries[0].id, 2u);
  ASSERT_EQ(scan.warnings.size(), 1u);
  EXPECT_NE(scan.warnings[0].find("discarded as stale"), std::string::npos);
}

TEST(StateStore, OpenFailsTypedOnUnusablePath) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("openfail");
  { std::ofstream file(dir + "/blocker"); }
  Result<std::unique_ptr<StateStore>> store =
      StateStore::Open(dir + "/blocker/state");
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Engine periodic checkpoint observer

TEST(PeriodicCheckpoint, ObserverFiresBetweenWavesWithColdSnapshots) {
  FaultInjector::Instance().Reset();
  AttributedGraph graph = RandomAttributed(11, 40, 6, 0.3, 0.45);
  MiningRequest request;
  request.options.quasi_clique.gamma = 0.6;
  request.options.quasi_clique.min_size = 4;
  request.options.min_support = 2;
  request.options.min_epsilon = 0.01;
  request.checkpoint_interval_ms = 1;
  std::uint64_t fired = 0;
  std::string last_snapshot;
  std::uint64_t last_emitted = 0;
  request.on_checkpoint = [&](const EngineCheckpoint& cp,
                              const EngineProgress& progress) {
    ++fired;
    last_snapshot = cp.Serialize();
    last_emitted = progress.emitted;
  };
  Result<MiningResponse> response = ExecuteRequest(graph, request);
  ASSERT_TRUE(response.ok());
  ASSERT_GE(fired, 1u) << "graph too small for a 1ms interval";
  // Snapshots are cold (serializable) and re-loadable.
  std::istringstream in(last_snapshot);
  Result<EngineCheckpoint> loaded = EngineCheckpoint::Load(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices, graph.NumVertices());
  EXPECT_LE(last_emitted, response->run.emitted);
}

TEST(PeriodicCheckpoint, IntervalZeroRequiresNoCallbackAndDisables) {
  FaultInjector::Instance().Reset();
  MiningRequest request;
  request.checkpoint_interval_ms = 5;
  EXPECT_EQ(request.Validate().code(), StatusCode::kInvalidArgument);
  request.checkpoint_interval_ms = 0;
  EXPECT_TRUE(request.Validate().ok());
}

// ---------------------------------------------------------------------------
// Server crash recovery

/// The uninterrupted baseline for JsonlSpec on `graph`.
std::vector<std::string> BaselineJsonl(const AttributedGraph& graph,
                                       const std::string& scratch) {
  const std::string path = scratch + "/baseline.jsonl";
  MiningRequest request = JsonlSpec(path);
  Result<MiningResponse> response = ExecuteRequest(graph, request);
  EXPECT_TRUE(response.ok());
  return SortedLines(path);
}

TEST(ServerRecovery, ResumesInterruptedJsonlByteIdentical) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("resume");
  auto graph = std::make_shared<const AttributedGraph>(
      RandomAttributed(11, 40, 6, 0.3, 0.45));
  const std::vector<std::string> expected = BaselineJsonl(*graph, dir);
  ASSERT_GT(expected.size(), 4u);

  // Simulate the state a crashed server leaves behind: a journal with
  // the admit, a checkpoint from partway through, and an output file
  // holding the lines counted by the snapshot meta plus one trailing
  // line written after it (which recovery must truncate away and
  // re-emit via the resume).
  const std::string out = dir + "/out.jsonl";
  QuerySpec spec = JsonlSpec(out);
  {
    MiningRequest partial = spec;
    partial.budget.max_evaluations = 6;
    Result<MiningResponse> cut = ExecuteRequest(*graph, partial);
    ASSERT_TRUE(cut.ok());
    ASSERT_FALSE(cut->run.exhausted);
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)
                    ->AppendServer(
                        1, static_cast<std::uint64_t>(graph->NumVertices()),
                        graph->graph().NumEdges(), graph->NumAttributes())
                    .ok());
    ASSERT_TRUE((*store)->AppendAdmit(1, 1, QuerySpecToJson(spec)).ok());
    ASSERT_TRUE((*store)
                    ->WriteCheckpoint(1, cut->run.checkpoint,
                                      cut->run.emitted,
                                      cut->run.patterns_emitted,
                                      cut->jsonl_lines)
                    .ok());
    std::ofstream trailing(out, std::ios::app);
    trailing << "{\"written\":\"after the snapshot\"}\n";
  }

  ScpmServer server(graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  EXPECT_EQ(server.recovered_queries(), 1u);
  EXPECT_TRUE(server.recovery_warnings().empty())
      << server.recovery_warnings()[0];
  server.Start();
  std::shared_ptr<QuerySession> session = server.Find(1);
  ASSERT_NE(session, nullptr);
  session->WaitTerminal();
  EXPECT_EQ(session->state(), QueryState::kDone);
  EXPECT_TRUE(session->run().exhausted);
  server.Shutdown();

  EXPECT_EQ(SortedLines(out), expected);
  // Reported emission totals are file-cumulative across the crash.
  EXPECT_EQ(session->run().emitted, expected.size());
}

/// Snapshots written in the v1 text format (an old server, or
/// --ckpt-format text) recover under a default (binary-writing) server:
/// the reader auto-detects per file, so mixed-format state dirs work.
TEST(ServerRecovery, TextFormatSnapshotRecoversUnderBinaryDefault) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("textv1");
  auto graph = std::make_shared<const AttributedGraph>(
      RandomAttributed(11, 40, 6, 0.3, 0.45));
  const std::vector<std::string> expected = BaselineJsonl(*graph, dir);
  ASSERT_GT(expected.size(), 4u);

  const std::string out = dir + "/out.jsonl";
  QuerySpec spec = JsonlSpec(out);
  {
    MiningRequest partial = spec;
    partial.budget.max_evaluations = 6;
    Result<MiningResponse> cut = ExecuteRequest(*graph, partial);
    ASSERT_TRUE(cut.ok());
    ASSERT_FALSE(cut->run.exhausted);
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    (*store)->set_checkpoint_format(CheckpointFormat::kText);
    ASSERT_TRUE((*store)
                    ->AppendServer(
                        1, static_cast<std::uint64_t>(graph->NumVertices()),
                        graph->graph().NumEdges(), graph->NumAttributes())
                    .ok());
    ASSERT_TRUE((*store)->AppendAdmit(1, 1, QuerySpecToJson(spec)).ok());
    ASSERT_TRUE((*store)
                    ->WriteCheckpoint(1, cut->run.checkpoint,
                                      cut->run.emitted,
                                      cut->run.patterns_emitted,
                                      cut->jsonl_lines)
                    .ok());
    // Prove the file on disk really is the v1 text form.
    std::ifstream ckpt(dir + "/state/q1.ckpt");
    std::ostringstream buf;
    buf << ckpt.rdbuf();
    EXPECT_NE(buf.str().find("scpm-checkpoint"), std::string::npos);
    EXPECT_EQ(buf.str().find("SCPB"), std::string::npos);
  }

  // Default options write binary, but the reader must not care.
  ScpmServer server(graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  EXPECT_EQ(server.recovered_queries(), 1u);
  EXPECT_TRUE(server.recovery_warnings().empty())
      << server.recovery_warnings()[0];
  server.Start();
  std::shared_ptr<QuerySession> session = server.Find(1);
  ASSERT_NE(session, nullptr);
  session->WaitTerminal();
  EXPECT_EQ(session->state(), QueryState::kDone);
  EXPECT_TRUE(session->run().exhausted);
  server.Shutdown();

  EXPECT_EQ(SortedLines(out), expected);
}

TEST(ServerRecovery, AccumulateReRunsFromScratchByteIdentical) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("scratch");
  auto graph = std::make_shared<const AttributedGraph>(RandomAttributed(5));
  QuerySpec spec;
  spec.options.quasi_clique.gamma = 0.6;
  spec.options.quasi_clique.min_size = 4;
  spec.options.min_support = 3;
  spec.options.min_epsilon = 0.5;
  spec.options.top_k = 10;

  Result<MiningResponse> direct = ExecuteRequest(*graph, spec);
  ASSERT_TRUE(direct.ok());

  {
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)
                    ->AppendServer(
                        1, static_cast<std::uint64_t>(graph->NumVertices()),
                        graph->graph().NumEdges(), graph->NumAttributes())
                    .ok());
    ASSERT_TRUE((*store)->AppendAdmit(1, 1, QuerySpecToJson(spec)).ok());
  }
  ScpmServer server(graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  EXPECT_EQ(server.recovered_queries(), 1u);
  server.Start();
  std::shared_ptr<QuerySession> session = server.Find(1);
  ASSERT_NE(session, nullptr);
  session->WaitTerminal();
  ASSERT_EQ(session->state(), QueryState::kDone);
  server.Shutdown();

  const ScpmResult& a = direct->result;
  const ScpmResult& b = session->result();
  ASSERT_EQ(a.attribute_sets.size(), b.attribute_sets.size());
  for (std::size_t i = 0; i < a.attribute_sets.size(); ++i) {
    EXPECT_EQ(a.attribute_sets[i].attributes, b.attribute_sets[i].attributes);
    EXPECT_EQ(a.attribute_sets[i].support, b.attribute_sets[i].support);
    EXPECT_EQ(a.attribute_sets[i].covered, b.attribute_sets[i].covered);
  }
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].vertices, b.patterns[i].vertices);
    EXPECT_EQ(a.patterns[i].attributes, b.patterns[i].attributes);
  }
}

TEST(ServerRecovery, ChangedGraphShapeDiscardsEverything) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("shape");
  auto old_graph = std::make_shared<const AttributedGraph>(RandomAttributed(5));
  {
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(
        (*store)
            ->AppendServer(3,
                           static_cast<std::uint64_t>(old_graph->NumVertices()),
                           old_graph->graph().NumEdges(),
                           old_graph->NumAttributes())
            .ok());
    ASSERT_TRUE(
        (*store)->AppendAdmit(9, 3, QuerySpecToJson(QuerySpec{})).ok());
  }
  auto new_graph = std::make_shared<const AttributedGraph>(
      RandomAttributed(6, 30, 6, 0.25, 0.4));
  ScpmServer server(new_graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  EXPECT_EQ(server.recovered_queries(), 0u);
  ASSERT_FALSE(server.recovery_warnings().empty());
  EXPECT_NE(server.recovery_warnings().back().find("shape changed"),
            std::string::npos);
  EXPECT_EQ(server.epoch(), 4u);  // moved past the stale epoch
  // The discarded query's id is still burned: new submissions go above.
  server.Start();
  Result<std::shared_ptr<QuerySession>> fresh = server.Submit(QuerySpec{});
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT((*fresh)->id(), 9u);
}

TEST(ServerRecovery, InvalidJournaledSpecWarnsTypedAndSkips) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("invalid");
  auto graph = std::make_shared<const AttributedGraph>(RandomAttributed(5));
  // Journal an admit whose JSON is perfectly well-formed but whose
  // decoded QuerySpec fails Validate(): gamma outside (0, 1]. A crashed
  // server could leave this behind only through a bug or a hand-edited
  // journal — replay must not enqueue it, and must say why.
  QuerySpec bad;
  bad.options.quasi_clique.gamma = 1.5;
  {
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)
                    ->AppendServer(
                        1, static_cast<std::uint64_t>(graph->NumVertices()),
                        graph->graph().NumEdges(), graph->NumAttributes())
                    .ok());
    ASSERT_TRUE((*store)->AppendAdmit(7, 1, QuerySpecToJson(bad)).ok());
  }
  ScpmServer server(graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  EXPECT_EQ(server.recovered_queries(), 0u);
  ASSERT_EQ(server.recovery_warnings().size(), 1u);
  const std::string& warning = server.recovery_warnings()[0];
  EXPECT_NE(warning.find("query 7"), std::string::npos) << warning;
  // Typed: the warning carries the rejecting status code.
  EXPECT_NE(warning.find("invalid-argument"), std::string::npos) << warning;
  EXPECT_NE(warning.find("skipped"), std::string::npos) << warning;
  // The skipped admit must not wedge the server: it starts, serves, and
  // a fresh submission lands above the burned id.
  server.Start();
  Result<std::shared_ptr<QuerySession>> fresh = server.Submit(QuerySpec{});
  ASSERT_TRUE(fresh.ok());
  EXPECT_GT((*fresh)->id(), 7u);
  (*fresh)->WaitTerminal();
  EXPECT_EQ((*fresh)->state(), QueryState::kDone);
  server.Shutdown();
}

TEST(ServerRecovery, DrainSuspendsPersistsAndRecovers) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("drain");
  auto graph = std::make_shared<const AttributedGraph>(
      RandomAttributed(11, 40, 6, 0.3, 0.45));
  const std::vector<std::string> expected = BaselineJsonl(*graph, dir);
  const std::string out = dir + "/out.jsonl";

  std::uint64_t id = 0;
  {
    ScpmServer server(graph, DurableOptions(dir + "/state"));
    ASSERT_TRUE(server.Recover().ok());
    server.Start();
    Result<std::shared_ptr<QuerySession>> submitted =
        server.Submit(JsonlSpec(out));
    ASSERT_TRUE(submitted.ok());
    id = (*submitted)->id();
    // Let it run at least one slice, then drain mid-flight.
    while ((*submitted)->slices() == 0 && !(*submitted)->terminal()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    server.Drain();
    // Admissions are closed with a typed, non-retryable code.
    Result<std::shared_ptr<QuerySession>> rejected =
        server.Submit(JsonlSpec(out));
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kInternal);
  }

  ScpmServer server(graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  // Either the query finished before the drain latched it (then the
  // terminal record exists and nothing recovers) or it was suspended
  // and now resumes; both must end in the byte-identical file.
  if (server.recovered_queries() > 0) {
    server.Start();
    std::shared_ptr<QuerySession> session = server.Find(id);
    ASSERT_NE(session, nullptr);
    session->WaitTerminal();
    EXPECT_EQ(session->state(), QueryState::kDone);
    server.Shutdown();
  }
  EXPECT_EQ(SortedLines(out), expected);
}

TEST(ServerRecovery, StatsReportDurabilityCounters) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("stats");
  auto graph = std::make_shared<const AttributedGraph>(RandomAttributed(5));
  ScpmServer server(graph, DurableOptions(dir + "/state"));
  ASSERT_TRUE(server.Recover().ok());
  server.Start();
  Result<std::shared_ptr<QuerySession>> submitted =
      server.Submit(JsonlSpec(dir + "/out.jsonl"));
  ASSERT_TRUE(submitted.ok());
  (*submitted)->WaitTerminal();
  const JsonValue stats = server.Stats();
  EXPECT_GE(stats.NumberOr("uptime_ms", -1.0), 0.0);
  EXPECT_EQ(stats.NumberOr("recovered_queries", -1.0), 0.0);
  const JsonValue* durability = stats.Find("durability");
  ASSERT_NE(durability, nullptr);
  EXPECT_TRUE(durability->BoolOr("enabled", false));
  EXPECT_GE(durability->NumberOr("journal_appends", 0.0), 2.0);
  EXPECT_GE(durability->NumberOr("journal_fsyncs", 0.0), 2.0);
  EXPECT_EQ(durability->NumberOr("io_errors", -1.0), 0.0);
}

// ---------------------------------------------------------------------------
// Fork + SIGKILL end-to-end

/// Child half of the e2e test: a durable server mining one long jsonl
/// query, killed from outside. Communicates only through the state dir.
void RunCrashChildServer(const std::shared_ptr<const AttributedGraph>& graph,
                         const std::string& state_dir,
                         const std::string& out) {
  ServerOptions options = DurableOptions(state_dir);
  ScpmServer server(graph, options);
  if (!server.Recover().ok()) _exit(3);
  server.Start();
  std::shared_ptr<QuerySession> session = server.Find(1);
  if (session == nullptr) {
    Result<std::shared_ptr<QuerySession>> submitted =
        server.Submit(JsonlSpec(out));
    if (!submitted.ok()) _exit(4);
    session = *submitted;
  }
  session->WaitTerminal();
  server.Shutdown();
  _exit(0);
}

TEST(CrashRecoveryE2E, SigkillMidQueryThenByteIdenticalRecovery) {
  FaultInjector::Instance().Reset();
  const std::string dir = TempDir("sigkill");
  const std::string state_dir = dir + "/state";
  const std::string out = dir + "/out.jsonl";
  auto graph = std::make_shared<const AttributedGraph>(
      RandomAttributed(17, 52, 6, 0.3, 0.45));

  // Two incarnations killed mid-run: the second one is killed while
  // *recovering* from the first kill, which is the nastiest window
  // (its poll sees the first incarnation's leftover checkpoint, so the
  // kill lands anywhere between startup and mid-resume).
  int kills = 0;
  for (int incarnation = 0; incarnation < 2; ++incarnation) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      RunCrashChildServer(graph, state_dir, out);  // never returns
    }
    // Wait for fresh durable progress, then SIGKILL — no warning, no
    // drain, exactly what a crash looks like.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    bool progressed = false;
    while (std::chrono::steady_clock::now() < deadline) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) break;  // finished early
      if (FileExists(state_dir + "/q1.ckpt")) {
        progressed = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (progressed) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid);
      ASSERT_TRUE(WIFSIGNALED(status));
      ++kills;
    }
    if (incarnation == 0 && !progressed) {
      // The child exhausted the query before the first snapshot — the
      // graph is too small for this machine; nothing left to crash.
      break;
    }
  }
  EXPECT_GE(kills, 1) << "query finished before the first snapshot; "
                         "nothing was ever crashed";

  // Final incarnation, in-process: recover and run to completion.
  ScpmServer server(graph, DurableOptions(state_dir));
  ASSERT_TRUE(server.Recover().ok());
  server.Start();
  std::shared_ptr<QuerySession> session = server.Find(1);
  if (session != nullptr) {
    session->WaitTerminal();
    EXPECT_EQ(session->state(), QueryState::kDone);
  }
  server.Shutdown();

  EXPECT_EQ(SortedLines(out), BaselineJsonl(*graph, dir));
}

// ---------------------------------------------------------------------------
// Seeded fault sweep

TEST(FaultSweep, SeededFailuresAlwaysLandTypedAndRecoverable) {
  std::vector<std::uint64_t> seeds = {1, 7, 20260808};
  if (const char* env = std::getenv("SCPM_FAULT_SEED")) {
    seeds = {std::strtoull(env, nullptr, 10)};
  }
  auto graph = std::make_shared<const AttributedGraph>(
      RandomAttributed(11, 40, 6, 0.3, 0.45));
  std::uint64_t total_hits = 0;
  for (const std::uint64_t seed : seeds) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = TempDir("sweep" + std::to_string(seed));
    FaultInjector::Instance().Seed(seed, 200);

    // Incarnation 1: mine under fire, then drain (snapshots may fail).
    {
      ScpmServer server(graph, DurableOptions(dir + "/state"));
      ASSERT_TRUE(server.Recover().ok());
      server.Start();
      Result<std::shared_ptr<QuerySession>> submitted =
          server.Submit(JsonlSpec(dir + "/out.jsonl"));
      if (submitted.ok()) {
        while (!(*submitted)->terminal() && (*submitted)->slices() < 3) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      server.Drain();
    }
    // Incarnation 2: recovery itself runs under the same fault seed and
    // must still come up; queries either finish or fail typed.
    {
      ScpmServer server(graph, DurableOptions(dir + "/state"));
      ASSERT_TRUE(server.Recover().ok());
      server.Start();
      std::shared_ptr<QuerySession> session = server.Find(1);
      if (session != nullptr) {
        session->WaitTerminal();
        const QueryState state = session->state();
        EXPECT_TRUE(state == QueryState::kDone ||
                    state == QueryState::kFailed);
        if (state == QueryState::kFailed) {
          EXPECT_FALSE(session->error().ok());
          EXPECT_FALSE(session->error().message().empty());
        }
      }
      server.Shutdown();
    }
    total_hits += FaultInjector::Instance().hits();
    FaultInjector::Instance().Reset();
    // The state dir stays scannable whatever the faults did to it.
    Result<std::unique_ptr<StateStore>> store =
        StateStore::Open(dir + "/state");
    ASSERT_TRUE(store.ok());
    (void)(*store)->Scan();
  }
  EXPECT_GT(total_hits, 0u);  // the sweep actually exercised fault points
}

}  // namespace
}  // namespace scpm
