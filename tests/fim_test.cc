// Unit tests for src/fim: Eclat against a brute-force itemset enumerator.

#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "fim/apriori.h"
#include "fim/eclat.h"
#include "graph/attributed_graph.h"
#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/simd_ops.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

/// Attributed graph with no edges; attributes are all that matters here.
AttributedGraph MakeTransactions(
    VertexId n, const std::vector<std::vector<std::string>>& rows) {
  AttributedGraphBuilder builder(n);
  for (VertexId v = 0; v < rows.size(); ++v) {
    for (const std::string& name : rows[v]) {
      EXPECT_TRUE(builder.AddVertexAttribute(v, name).ok());
    }
  }
  Result<AttributedGraph> g = builder.Build();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// All frequent itemsets by explicit subset enumeration over attributes.
std::map<AttributeSet, VertexSet> BruteForceItemsets(
    const AttributedGraph& graph, std::size_t min_support,
    std::size_t max_size) {
  std::map<AttributeSet, VertexSet> out;
  const std::size_t a = graph.NumAttributes();
  EXPECT_LE(a, 16u);
  for (std::uint32_t mask = 1; mask < (1u << a); ++mask) {
    AttributeSet items;
    for (AttributeId i = 0; i < a; ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    if (items.size() > max_size) continue;
    const VertexSet tidset = graph.VerticesWithAll(items);
    if (tidset.size() >= min_support) out.emplace(items, tidset);
  }
  return out;
}

TEST(EclatOptionsTest, Validation) {
  EclatOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.min_support = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = EclatOptions{};
  o.min_itemset_size = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = EclatOptions{};
  o.min_itemset_size = 3;
  o.max_itemset_size = 2;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(EclatTest, ClassicExample) {
  AttributedGraph g = MakeTransactions(5, {{"a", "b", "c"},
                                           {"a", "b"},
                                           {"a", "c"},
                                           {"b", "c"},
                                           {"a", "b", "c"}});
  EclatOptions options;
  options.min_support = 3;
  Eclat eclat(options);
  Result<std::vector<FrequentItemset>> sets = eclat.MineAll(g);
  ASSERT_TRUE(sets.ok());
  // Supports: a=4, b=4, c=4, ab=3, ac=3, bc=3, abc=2 (infrequent).
  EXPECT_EQ(sets->size(), 6u);
  for (const FrequentItemset& s : *sets) {
    EXPECT_GE(s.support(), 3u);
    EXPECT_LE(s.items.size(), 2u);
  }
}

TEST(EclatTest, TidsetsAreExactlyInducedVertexSets) {
  AttributedGraph g = MakeTransactions(
      4, {{"x", "y"}, {"x"}, {"x", "y", "z"}, {"y", "z"}});
  Eclat eclat(EclatOptions{});
  Result<std::vector<FrequentItemset>> sets = eclat.MineAll(g);
  ASSERT_TRUE(sets.ok());
  for (const FrequentItemset& s : *sets) {
    EXPECT_EQ(s.tidset, g.VerticesWithAll(s.items));
  }
}

TEST(EclatTest, MinItemsetSizeFiltersReporting) {
  AttributedGraph g = MakeTransactions(3, {{"a", "b"}, {"a", "b"}, {"a"}});
  EclatOptions options;
  options.min_support = 2;
  options.min_itemset_size = 2;
  Eclat eclat(options);
  Result<std::vector<FrequentItemset>> sets = eclat.MineAll(g);
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 1u);
  EXPECT_EQ(sets->front().items.size(), 2u);
}

TEST(EclatTest, VisitorEarlyStop) {
  AttributedGraph g = MakeTransactions(3, {{"a", "b", "c"},
                                           {"a", "b", "c"},
                                           {"a", "b", "c"}});
  Eclat eclat(EclatOptions{});
  int visits = 0;
  ASSERT_TRUE(eclat
                  .Mine(g,
                        [&](const AttributeSet&, const VertexSet&) {
                          return ++visits < 3;
                        })
                  .ok());
  EXPECT_EQ(visits, 3);
}

TEST(EclatTest, EmptyGraph) {
  AttributedGraph g = MakeTransactions(0, {});
  Eclat eclat(EclatOptions{});
  Result<std::vector<FrequentItemset>> sets = eclat.MineAll(g);
  ASSERT_TRUE(sets.ok());
  EXPECT_TRUE(sets->empty());
}

struct SweepParam {
  int seed;
  std::size_t min_support;
};

class EclatSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EclatSweep, MatchesBruteForce) {
  const auto [seed, min_support] = GetParam();
  Rng rng(seed);
  // Random transaction database: 30 vertices, 10 attributes.
  AttributedGraphBuilder builder(30);
  std::vector<AttributeId> attrs;
  for (int a = 0; a < 10; ++a) {
    attrs.push_back(builder.InternAttribute("a" + std::to_string(a)));
  }
  for (VertexId v = 0; v < 30; ++v) {
    for (AttributeId a : attrs) {
      if (rng.NextBool(0.35)) {
        ASSERT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());

  EclatOptions options;
  options.min_support = min_support;
  Eclat eclat(options);
  Result<std::vector<FrequentItemset>> got = eclat.MineAll(*g);
  ASSERT_TRUE(got.ok());

  const auto want = BruteForceItemsets(*g, min_support, 16);
  EXPECT_EQ(got->size(), want.size());
  for (const FrequentItemset& s : *got) {
    auto it = want.find(s.items);
    ASSERT_NE(it, want.end());
    EXPECT_EQ(s.tidset, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, EclatSweep,
    ::testing::Values(SweepParam{0, 3}, SweepParam{1, 3}, SweepParam{2, 5},
                      SweepParam{3, 5}, SweepParam{4, 8}, SweepParam{5, 8},
                      SweepParam{6, 12}, SweepParam{7, 1}, SweepParam{8, 2},
                      SweepParam{9, 15}));

// ---------------------------------------------------------------- Apriori

TEST(AprioriTest, ClassicExample) {
  AttributedGraph g = MakeTransactions(5, {{"a", "b", "c"},
                                           {"a", "b"},
                                           {"a", "c"},
                                           {"b", "c"},
                                           {"a", "b", "c"}});
  EclatOptions options;
  options.min_support = 3;
  Apriori apriori(options);
  Result<std::vector<FrequentItemset>> sets = apriori.MineAll(g);
  ASSERT_TRUE(sets.ok());
  EXPECT_EQ(sets->size(), 6u);
}

TEST(AprioriTest, RespectsSizeWindow) {
  AttributedGraph g = MakeTransactions(
      4, {{"a", "b", "c"}, {"a", "b", "c"}, {"a", "b", "c"}, {"a"}});
  EclatOptions options;
  options.min_support = 2;
  options.min_itemset_size = 2;
  options.max_itemset_size = 2;
  Apriori apriori(options);
  Result<std::vector<FrequentItemset>> sets = apriori.MineAll(g);
  ASSERT_TRUE(sets.ok());
  for (const auto& s : *sets) EXPECT_EQ(s.items.size(), 2u);
  EXPECT_EQ(sets->size(), 3u);  // ab, ac, bc
}

class AprioriEclatSweep : public ::testing::TestWithParam<int> {};

TEST_P(AprioriEclatSweep, AgreesWithEclat) {
  Rng rng(GetParam());
  AttributedGraphBuilder builder(25);
  for (int a = 0; a < 9; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < 25; ++v) {
    for (AttributeId a = 0; a < 9; ++a) {
      if (rng.NextBool(0.4)) {
        ASSERT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());

  EclatOptions options;
  options.min_support = 3 + GetParam() % 4;
  Result<std::vector<FrequentItemset>> a = Apriori(options).MineAll(*g);
  Result<std::vector<FrequentItemset>> b = Eclat(options).MineAll(*g);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  std::map<AttributeSet, VertexSet> eclat_index;
  for (const auto& s : *b) eclat_index[s.items] = s.tidset;
  for (const auto& s : *a) {
    auto it = eclat_index.find(s.items);
    ASSERT_NE(it, eclat_index.end());
    EXPECT_EQ(s.tidset, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriEclatSweep, ::testing::Range(0, 12));

/// Hybrid tidset storage (dense bitmaps past the 5% knee) must mine the
/// exact same itemsets, in the same DFS order, as the pure sorted-vector
/// configuration — and its kernel counters must be reproducible.
class EclatHybridSweep : public ::testing::TestWithParam<int> {};

TEST_P(EclatHybridSweep, HybridOnOffProduceIdenticalItemsets) {
  Rng rng(GetParam());
  // 200 vertices: attribute tidsets (~p * 200) sit well above the dense
  // threshold (200 / 20 = 10), so roots and early intersections go
  // through the bitmap kernels.
  AttributedGraphBuilder builder(200);
  for (int a = 0; a < 8; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < 200; ++v) {
    for (AttributeId a = 0; a < 8; ++a) {
      if (rng.NextBool(0.2 + 0.1 * static_cast<double>(a % 3))) {
        ASSERT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());

  EclatOptions options;
  options.min_support = 5 + GetParam();
  options.use_hybrid_tidsets = false;
  SetOpStats plain_stats;
  Eclat plain(options);
  plain.set_stats(&plain_stats);
  Result<std::vector<FrequentItemset>> want = plain.MineAll(*g);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(plain_stats.dense_conversions, 0u);
  EXPECT_EQ(plain_stats.bitmap_intersections, 0u);

  options.use_hybrid_tidsets = true;
  SetOpStats hybrid_stats;
  Eclat hybrid(options);
  hybrid.set_stats(&hybrid_stats);
  Result<std::vector<FrequentItemset>> got = hybrid.MineAll(*g);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(hybrid_stats.dense_conversions, 0u);
  EXPECT_GT(hybrid_stats.bitmap_intersections, 0u);

  // Same DFS emission order, same itemsets, same tidsets.
  ASSERT_EQ(got->size(), want->size());
  for (std::size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].items, (*want)[i].items) << "row " << i;
    EXPECT_EQ((*got)[i].tidset, (*want)[i].tidset) << "row " << i;
  }

  // Kernel counters are a pure function of the input: a re-run agrees.
  SetOpStats again;
  hybrid.set_stats(&again);
  ASSERT_TRUE(hybrid.MineAll(*g).ok());
  EXPECT_EQ(again.bitmap_intersections, hybrid_stats.bitmap_intersections);
  EXPECT_EQ(again.galloping_intersections,
            hybrid_stats.galloping_intersections);
  EXPECT_EQ(again.dense_conversions, hybrid_stats.dense_conversions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EclatHybridSweep, ::testing::Range(0, 4));

/// Apriori's candidate tidset intersections go through the same hybrid
/// kernels as Eclat's: on/off must produce identical itemsets with the
/// kernels demonstrably engaged.
class AprioriHybridSweep : public ::testing::TestWithParam<int> {};

TEST_P(AprioriHybridSweep, HybridOnOffProduceIdenticalItemsets) {
  Rng rng(GetParam() + 100);
  AttributedGraphBuilder builder(200);
  for (int a = 0; a < 7; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < 200; ++v) {
    for (AttributeId a = 0; a < 7; ++a) {
      if (rng.NextBool(0.25 + 0.1 * static_cast<double>(a % 2))) {
        ASSERT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());

  AprioriOptions options;
  options.min_support = 5 + GetParam();
  options.use_hybrid_tidsets = false;
  SetOpStats plain_stats;
  Apriori plain(options);
  plain.set_stats(&plain_stats);
  Result<std::vector<FrequentItemset>> want = plain.MineAll(*g);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(plain_stats.dense_conversions, 0u);
  EXPECT_EQ(plain_stats.bitmap_intersections, 0u);

  options.use_hybrid_tidsets = true;
  SetOpStats hybrid_stats;
  Apriori hybrid(options);
  hybrid.set_stats(&hybrid_stats);
  Result<std::vector<FrequentItemset>> got = hybrid.MineAll(*g);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(hybrid_stats.dense_conversions, 0u);
  EXPECT_GT(hybrid_stats.bitmap_intersections, 0u);

  ASSERT_EQ(got->size(), want->size());
  for (std::size_t i = 0; i < got->size(); ++i) {
    EXPECT_EQ((*got)[i].items, (*want)[i].items) << "row " << i;
    EXPECT_EQ((*got)[i].tidset, (*want)[i].tidset) << "row " << i;
  }

  // Kernel counters are a pure function of the input: a re-run agrees.
  SetOpStats again;
  hybrid.set_stats(&again);
  ASSERT_TRUE(hybrid.MineAll(*g).ok());
  EXPECT_EQ(again.bitmap_intersections, hybrid_stats.bitmap_intersections);
  EXPECT_EQ(again.dense_conversions, hybrid_stats.dense_conversions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AprioriHybridSweep, ::testing::Range(0, 4));

/// A universe past the 2^16 chunk threshold with ~1.5%-density tidsets:
/// the mid-density band genuinely engages the chunked representation.
/// Eclat and Apriori outputs must be byte-identical across
/// {hybrid on/off} x {chunked on/off} x {simd on/off}, and the two
/// miners must agree with each other. Kernel counters are compared
/// between the miners (same intersections either way) and across simd
/// on/off (dispatch is bit-exact and unobservable).
TEST(ChunkedTidsetTest, EclatAndAprioriByteIdenticalAcrossKernelConfigs) {
  // Restore the process-global dispatch state even when an assertion
  // fires mid-loop, so a failure here cannot poison later tests.
  struct DispatchRestore {
    ~DispatchRestore() {
      SetSimdDispatch(true);
      HybridVertexSet::SetChunkedEnabled(true);
    }
  } restore;
  Rng rng(101);
  const VertexId n = 70000;
  AttributedGraphBuilder builder(n);
  const int num_attrs = 6;
  for (int a = 0; a < num_attrs; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < n; ++v) {
    for (AttributeId a = 0; a < num_attrs; ++a) {
      if (rng.NextBool(0.015)) {
        ASSERT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());

  EclatOptions options;
  options.min_support = 4;

  // Merge-only reference.
  options.use_hybrid_tidsets = false;
  Result<std::vector<FrequentItemset>> want = Eclat(options).MineAll(*g);
  ASSERT_TRUE(want.ok());

  options.use_hybrid_tidsets = true;
  SetOpStats eclat_stats[2][2];  // [chunked][simd]
  for (bool chunked_on : {false, true}) {
    for (bool simd_on : {false, true}) {
      HybridVertexSet::SetChunkedEnabled(chunked_on);
      SetSimdDispatch(simd_on);
      SetOpStats& stats = eclat_stats[chunked_on][simd_on];
      Eclat eclat(options);
      eclat.set_stats(&stats);
      Result<std::vector<FrequentItemset>> got = eclat.MineAll(*g);
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->size(), want->size());
      for (std::size_t i = 0; i < got->size(); ++i) {
        EXPECT_EQ((*got)[i].items, (*want)[i].items);
        EXPECT_EQ((*got)[i].tidset, (*want)[i].tidset);
      }

      SetOpStats apriori_stats;
      Apriori apriori(options);
      apriori.set_stats(&apriori_stats);
      Result<std::vector<FrequentItemset>> apriori_got = apriori.MineAll(*g);
      ASSERT_TRUE(apriori_got.ok());
      ASSERT_EQ(apriori_got->size(), want->size());
      // Level order == DFS order only after the final (size, lex) sort;
      // compare via the sorted reference the suite already checks.
      std::map<AttributeSet, VertexSet> index;
      for (const auto& s : *want) index[s.items] = s.tidset;
      for (const auto& s : *apriori_got) {
        auto it = index.find(s.items);
        ASSERT_NE(it, index.end());
        EXPECT_EQ(s.tidset, it->second);
      }
      if (chunked_on) {
        // The point of the test: the chunked band genuinely engaged, in
        // both miners.
        EXPECT_GT(stats.chunked_conversions, 0u);
        EXPECT_GT(stats.chunked_intersections, 0u);
        EXPECT_GT(apriori_stats.chunked_intersections, 0u);
      } else {
        EXPECT_EQ(stats.chunked_conversions, 0u);
        EXPECT_EQ(stats.chunked_intersections, 0u);
      }
    }
  }

  // SIMD dispatch is unobservable in the kernel counters too.
  for (bool chunked_on : {false, true}) {
    EXPECT_EQ(eclat_stats[chunked_on][0].chunked_intersections,
              eclat_stats[chunked_on][1].chunked_intersections);
    EXPECT_EQ(eclat_stats[chunked_on][0].bitmap_intersections,
              eclat_stats[chunked_on][1].bitmap_intersections);
    EXPECT_EQ(eclat_stats[chunked_on][0].galloping_intersections,
              eclat_stats[chunked_on][1].galloping_intersections);
    EXPECT_EQ(eclat_stats[chunked_on][0].dense_conversions,
              eclat_stats[chunked_on][1].dense_conversions);
    EXPECT_EQ(eclat_stats[chunked_on][0].chunked_conversions,
              eclat_stats[chunked_on][1].chunked_conversions);
  }
}

TEST(EclatTest, SupportIsAntiMonotone) {
  Rng rng(42);
  AttributedGraphBuilder builder(40);
  for (int a = 0; a < 8; ++a) builder.InternAttribute(std::to_string(a));
  for (VertexId v = 0; v < 40; ++v) {
    for (AttributeId a = 0; a < 8; ++a) {
      if (rng.NextBool(0.4)) {
        ASSERT_TRUE(builder.AddVertexAttribute(v, a).ok());
      }
    }
  }
  Result<AttributedGraph> g = builder.Build();
  ASSERT_TRUE(g.ok());
  Eclat eclat(EclatOptions{});
  Result<std::vector<FrequentItemset>> sets = eclat.MineAll(*g);
  ASSERT_TRUE(sets.ok());
  std::map<AttributeSet, std::size_t> support;
  for (const auto& s : *sets) support[s.items] = s.support();
  for (const auto& s : *sets) {
    if (s.items.size() < 2) continue;
    // Every (size-1)-subset must have support >= the set's support.
    for (std::size_t drop = 0; drop < s.items.size(); ++drop) {
      AttributeSet subset = s.items;
      subset.erase(subset.begin() + static_cast<std::ptrdiff_t>(drop));
      auto it = support.find(subset);
      ASSERT_NE(it, support.end());
      EXPECT_GE(it->second, s.support());
    }
  }
}

}  // namespace
}  // namespace scpm
