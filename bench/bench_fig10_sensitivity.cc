// Reproduces paper Figure 10 (parameter sensitivity, §4.3): average
// structural correlation (eps) and normalized structural correlation
// (delta) of the complete output ("global") and of the top-10% attribute
// sets, sweeping gamma_min, min_size, and sigma_min.
//
// Expected shape: more restrictive quasi-clique parameters (higher gamma
// or min_size) reduce average eps but can increase delta (dense subgraphs
// become less expected); higher sigma_min raises eps but lowers delta.

#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "core/statistics.h"

namespace {

const scpm::AttributedGraph* g_graph = nullptr;

/// Paper defaults (scaled): gamma=0.5, min_size=10, sigma_min=100.
scpm::ScpmOptions Defaults() {
  scpm::ScpmOptions o;
  o.quasi_clique.gamma = 0.5;
  o.quasi_clique.min_size = 8;
  o.min_support = 25;
  o.min_epsilon = 0.0;  // Sensitivity studies summarize the whole output.
  o.collect_patterns = false;
  return o;
}

void Row(double x, const scpm::ScpmOptions& options) {
  scpm::Graph topology = g_graph->graph();
  scpm::MaxExpectationModel model(topology, options.quasi_clique);
  scpm::ScpmMiner miner(options, &model);
  auto result = miner.Mine(*g_graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return;
  }
  const scpm::OutputSummary s = SummarizeOutput(result->attribute_sets);
  std::cout << std::setw(10) << x << std::setw(8) << s.num_attribute_sets
            << std::setw(14) << std::fixed << std::setprecision(4)
            << s.avg_epsilon_global << std::setw(14) << s.avg_epsilon_top10
            << std::setw(14) << std::scientific << std::setprecision(3)
            << s.avg_delta_global << std::setw(14) << s.avg_delta_top10
            << "\n";
}

void Header(const char* param) {
  std::cout << std::setw(10) << param << std::setw(8) << "sets"
            << std::setw(14) << "eps(global)" << std::setw(14)
            << "eps(top10%)" << std::setw(14) << "delta(global)"
            << std::setw(14) << "delta(top10%)" << "\n";
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Figure 10 — parameter sensitivity of eps and delta",
      "global vs top-10% averages on the SmallDBLP-like dataset");
  const double scale = scpm::bench::Scale();
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::SmallDblpConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  g_graph = &dataset->graph;
  std::cout << "dataset: " << g_graph->NumVertices() << " vertices, "
            << g_graph->graph().NumEdges() << " edges\n";

  scpm::bench::SectionHeader("(a)+(d) eps and delta x gamma_min");
  Header("gamma");
  for (double gamma : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    scpm::ScpmOptions o = Defaults();
    o.quasi_clique.gamma = gamma;
    Row(gamma, o);
  }

  scpm::bench::SectionHeader("(b)+(e) eps and delta x min_size");
  Header("min_size");
  for (std::uint32_t min_size : {8u, 9u, 10u, 11u, 12u, 13u}) {
    scpm::ScpmOptions o = Defaults();
    o.quasi_clique.min_size = min_size;
    Row(min_size, o);
  }

  scpm::bench::SectionHeader("(c)+(f) eps and delta x sigma_min");
  Header("sigma_min");
  for (std::size_t sigma : {15u, 20u, 25u, 35u, 50u, 70u}) {
    scpm::ScpmOptions o = Defaults();
    o.min_support = sigma;
    Row(static_cast<double>(sigma), o);
  }
  return 0;
}
