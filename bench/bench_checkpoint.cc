// Checkpoint codec benchmark (ours; motivated by the binary v2 codec in
// core/ckpt_codec.cc): text v1 vs binary v2 encode/decode time and
// snapshot size on CiteSeer-scale frontiers, in both the roots-phase
// (cold start) and tree-phase (deep lattice) shapes, encoding both hot
// snapshots (straight off a budget cut, covered sets still live) and
// cold ones (round-tripped through a parse, the crash-recovery path).
//
// The headline bound — binary at least 3x smaller than text on every
// scenario — is asserted, so CI's bench-smoke run fails if structural
// sharing regresses. Timings flow into BENCH_checkpoint.json for the
// perf-trend gate.

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>

#include "bench_util.h"
#include "core/ckpt_codec.h"
#include "core/engine.h"
#include "core/sink.h"

namespace {

scpm::ScpmOptions CiteseerOptions() {
  scpm::ScpmOptions o;
  o.quasi_clique.gamma = 0.5;
  o.quasi_clique.min_size = 5;
  // Permissive thresholds relative to bench_table4: the measurement
  // wants deep frontiers (many live classes), not selective output.
  o.min_support = 5;
  o.min_epsilon = 0.0;
  o.top_k = 3;
  o.eval_batch_grain = 0;  // fine-grained batches so cuts land mid-phase
  return o;
}

/// Budget-cuts (and resumes) the engine until the cut lands in the
/// wanted phase, returning the hot frontier it left behind.
scpm::EngineCheckpoint CutFrontier(const scpm::AttributedGraph& graph,
                                   std::uint64_t max_evaluations,
                                   bool want_roots_phase) {
  const scpm::ScpmOptions options = CiteseerOptions();
  scpm::EngineBudget budget;
  budget.max_evaluations = max_evaluations;
  scpm::EngineCheckpoint checkpoint;
  for (int segment = 0; segment < 100000; ++segment) {
    scpm::ScpmEngine engine(options, nullptr);
    engine.set_budget(budget);
    engine.set_frontier_wave(4);
    scpm::AccumulatingSink sink;
    scpm::Result<scpm::MiningRun> run =
        segment == 0 ? engine.Run(graph, &sink)
                     : engine.Resume(graph, checkpoint, &sink);
    if (!run.ok()) {
      std::cerr << "engine failed: " << run.status() << "\n";
      std::exit(1);
    }
    if (run->exhausted) {
      std::cerr << "lattice exhausted before a "
                << (want_roots_phase ? "roots" : "tree")
                << "-phase cut; raise the dataset scale\n";
      std::exit(1);
    }
    checkpoint = std::move(run->checkpoint);
    if (checkpoint.in_roots_phase == want_roots_phase) return checkpoint;
  }
  std::cerr << "no cut landed in the wanted phase\n";
  std::exit(1);
}

/// Mean seconds per call of `fn` over enough iterations to be stable at
/// smoke scale.
template <typename Fn>
double TimePerCall(const Fn& fn, int iters = 20) {
  fn();  // warm-up, and faults out early
  scpm::WallTimer timer;
  for (int i = 0; i < iters; ++i) fn();
  return timer.ElapsedSeconds() / iters;
}

struct CodecNumbers {
  std::size_t bytes = 0;
  double encode_s = 0;
  double decode_s = 0;
};

CodecNumbers Measure(const scpm::EngineCheckpoint& cp,
                     scpm::CheckpointFormat format) {
  CodecNumbers out;
  const std::string encoded = cp.Serialize(format);
  out.bytes = encoded.size();
  std::size_t guard = 0;
  out.encode_s = TimePerCall([&] { guard += cp.Serialize(format).size(); });
  out.decode_s = TimePerCall([&] {
    scpm::Result<scpm::EngineCheckpoint> parsed =
        scpm::EngineCheckpoint::Parse(encoded);
    if (!parsed.ok()) {
      std::cerr << "decode failed: " << parsed.status() << "\n";
      std::exit(1);
    }
    guard += parsed->classes.size();
  });
  if (guard == SIZE_MAX) std::cout << "";  // keep the work observable
  return out;
}

/// Benches one frontier; returns false when the 3x size bound fails.
bool BenchScenario(scpm::bench::JsonReport* report, const std::string& name,
                   const scpm::EngineCheckpoint& cp) {
  const CodecNumbers text = Measure(cp, scpm::CheckpointFormat::kText);
  const CodecNumbers bin = Measure(cp, scpm::CheckpointFormat::kBinary);
  const double ratio =
      bin.bytes > 0 ? static_cast<double>(text.bytes) / bin.bytes : 0;
  std::cout << std::left << std::setw(26) << name << std::right
            << std::setw(10) << text.bytes << std::setw(10) << bin.bytes
            << std::setw(8) << std::fixed << std::setprecision(2) << ratio
            << std::setw(12) << std::setprecision(1)
            << text.encode_s * 1e6 << std::setw(12) << bin.encode_s * 1e6
            << std::setw(12) << text.decode_s * 1e6 << std::setw(12)
            << bin.decode_s * 1e6 << "\n";
  const auto extra = [&](std::size_t bytes) {
    std::ostringstream os;
    os << "\"bytes\":" << bytes << ",\"ratio\":" << ratio;
    return os.str();
  };
  report->Add(name, "encode text", text.encode_s, extra(text.bytes));
  report->Add(name, "encode binary", bin.encode_s, extra(bin.bytes));
  report->Add(name, "decode text", text.decode_s, extra(text.bytes));
  report->Add(name, "decode binary", bin.decode_s, extra(bin.bytes));
  if (bin.bytes * 3 > text.bytes) {
    std::cerr << "SIZE BOUND FAILED on " << name << ": binary " << bin.bytes
              << " bytes is not <= 1/3 of text " << text.bytes << " bytes\n";
    return false;
  }
  return true;
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Checkpoint codec — text v1 vs binary v2",
      "CiteSeer-like frontiers; sizes, encode/decode time, 3x bound");
  const double scale = scpm::bench::Scale();
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::CiteSeerLikeConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  const scpm::AttributedGraph& graph = dataset->graph;
  std::cout << "dataset: " << graph.NumVertices() << " vertices, "
            << graph.graph().NumEdges() << " edges, "
            << graph.NumAttributes() << " attributes\n\n";

  // Hot frontiers straight off the cut, then cold re-parses of the same
  // bytes (what recovery decodes after a crash).
  const scpm::EngineCheckpoint roots_hot =
      CutFrontier(graph, /*max_evaluations=*/4, /*want_roots_phase=*/true);
  const scpm::EngineCheckpoint tree_hot =
      CutFrontier(graph, /*max_evaluations=*/64, /*want_roots_phase=*/false);
  scpm::Result<scpm::EngineCheckpoint> roots_cold =
      scpm::EngineCheckpoint::Parse(roots_hot.Serialize());
  scpm::Result<scpm::EngineCheckpoint> tree_cold =
      scpm::EngineCheckpoint::Parse(tree_hot.Serialize());
  if (!roots_cold.ok() || !tree_cold.ok()) {
    std::cerr << "round-trip failed\n";
    return 1;
  }
  std::cout << "frontiers: roots done=" << roots_hot.done_roots.size()
            << " batches=" << roots_hot.root_batches.size()
            << "; tree classes=" << tree_hot.classes.size()
            << " expansions=" << tree_hot.expansions.size() << "\n\n";

  std::cout << std::left << std::setw(26) << "scenario" << std::right
            << std::setw(10) << "text B" << std::setw(10) << "bin B"
            << std::setw(8) << "ratio" << std::setw(12) << "enc txt us"
            << std::setw(12) << "enc bin us" << std::setw(12) << "dec txt us"
            << std::setw(12) << "dec bin us" << "\n";

  scpm::bench::JsonReport report("checkpoint");
  bool ok = true;
  ok &= BenchScenario(&report, "roots-hot", roots_hot);
  ok &= BenchScenario(&report, "roots-cold", *roots_cold);
  ok &= BenchScenario(&report, "tree-hot", tree_hot);
  ok &= BenchScenario(&report, "tree-cold", *tree_cold);
  if (!report.Write()) return 1;
  if (!ok) return 1;
  std::cout << "\nbinary <= 1/3 text on every scenario\n";
  return 0;
}
