// google-benchmark micro-benchmarks for the substrates: sorted-set
// algebra, subgraph induction, Eclat, quasi-clique coverage mining, and
// the analytical null model.

#include <benchmark/benchmark.h>

#include "datasets/synthetic.h"
#include "fim/eclat.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "nullmodel/expectation.h"
#include "qclique/miner.h"
#include "util/random.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

std::vector<std::uint32_t> RandomSorted(Rng& rng, std::size_t n,
                                        std::uint32_t universe) {
  std::vector<std::uint32_t> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    v.push_back(static_cast<std::uint32_t>(rng.NextBounded(universe)));
  }
  SortUnique(&v);
  return v;
}

void BM_SortedIntersect(benchmark::State& state) {
  Rng rng(1);
  const auto a = RandomSorted(rng, state.range(0), 1 << 20);
  const auto b = RandomSorted(rng, state.range(0), 1 << 20);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    SortedIntersect(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_SortedIntersect)->Range(1 << 8, 1 << 14);

void BM_SortedIntersectAsymmetric(benchmark::State& state) {
  Rng rng(2);
  const auto small = RandomSorted(rng, 64, 1 << 20);
  const auto large = RandomSorted(rng, state.range(0), 1 << 20);
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    SortedIntersect(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SortedIntersectAsymmetric)->Range(1 << 10, 1 << 16);

void BM_InducedSubgraph(benchmark::State& state) {
  Rng rng(3);
  Result<Graph> g = ChungLu(PowerLawWeights(5000, 2.5, 8.0), rng);
  const VertexSet subset = rng.SampleWithoutReplacement(
      5000, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto sub = InducedSubgraph::Create(*g, subset);
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_InducedSubgraph)->Range(64, 2048);

void BM_EclatMine(benchmark::State& state) {
  Result<SyntheticDataset> d = GenerateSynthetic(DblpLikeConfig(0.2));
  EclatOptions options;
  options.min_support = static_cast<std::size_t>(state.range(0));
  Eclat eclat(options);
  for (auto _ : state) {
    std::size_t count = 0;
    auto status = eclat.Mine(d->graph,
                             [&count](const AttributeSet&, const VertexSet&) {
                               ++count;
                               return true;
                             });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EclatMine)->Arg(10)->Arg(25)->Arg(50);

void BM_QuasiCliqueCoverage(benchmark::State& state) {
  Rng rng(4);
  std::vector<Edge> edges;
  Result<Graph> bg = ErdosRenyi(static_cast<VertexId>(state.range(0)),
                                4.0 / state.range(0), rng);
  edges = bg->Edges();
  PlantGroups(static_cast<VertexId>(state.range(0)), 5, 8, 12, 0.8, rng,
              &edges);
  Result<Graph> g =
      Graph::FromEdges(static_cast<VertexId>(state.range(0)), edges);
  QuasiCliqueMinerOptions options;
  options.params = {.gamma = 0.5, .min_size = 8};
  options.max_candidates = 5'000'000;  // Safety valve.
  QuasiCliqueMiner miner(options);
  for (auto _ : state) {
    auto covered = miner.MineCoverage(*g);
    benchmark::DoNotOptimize(covered);
  }
}
BENCHMARK(BM_QuasiCliqueCoverage)->Arg(100)->Arg(300)->Arg(1000);

void BM_MaxExpModel(benchmark::State& state) {
  Rng rng(5);
  Result<Graph> g = ChungLu(PowerLawWeights(10000, 2.5, 8.0), rng);
  for (auto _ : state) {
    // Rebuild each iteration: benchmark includes the histogram pass and an
    // uncached expectation evaluation.
    MaxExpectationModel model(*g, {.gamma = 0.5, .min_size = 10});
    benchmark::DoNotOptimize(
        model.Expectation(static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_MaxExpModel)->Arg(100)->Arg(1000)->Arg(5000);

void BM_VertexReductionOnly(benchmark::State& state) {
  // min_size so large that the reduction empties the graph: measures the
  // peeling pass in isolation (the hub core of a power-law graph would
  // otherwise dominate with actual search work).
  Rng rng(6);
  Result<Graph> g = ChungLu(
      PowerLawWeights(static_cast<VertexId>(state.range(0)), 2.5, 8.0), rng);
  QuasiCliqueMinerOptions options;
  options.params = {.gamma = 0.5, .min_size = 2000};
  QuasiCliqueMiner miner(options);
  for (auto _ : state) {
    auto covered = miner.MineCoverage(*g);
    benchmark::DoNotOptimize(covered);
  }
}
BENCHMARK(BM_VertexReductionOnly)->Arg(10000)->Arg(50000);

}  // namespace
}  // namespace scpm
