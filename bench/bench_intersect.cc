// Microbenchmark for the hybrid vertex-set intersection kernels: sweeps
// set density x size skew over a fixed universe and times the merge
// baseline (SortedIntersect) against the representation-matched hybrid
// kernels — vector/vector (merge or gallop), vector/bitmap (bit probe),
// and bitmap/bitmap (word AND + popcount).
//
// Expected shape: bitmap/bitmap pulls ahead of the merge scan as density
// grows (>= 5x at 5% density, the representation switch point), while
// vector/bitmap wins on skewed pairs where one side is dense. With
// SCPM_BENCH_JSON set every row lands in the CI perf artifacts.

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "fim/eclat.h"
#include "graph/attributed_graph.h"
#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace {

using scpm::HybridVertexSet;
using scpm::Rng;
using scpm::SetOpStats;
using scpm::VertexBitset;
using scpm::VertexId;
using scpm::VertexSet;

scpm::bench::JsonReport g_json("bench_intersect");
std::string g_section;

/// Times `fn` by doubling repetitions until the loop runs >= 20 ms and
/// returns seconds per call.
template <typename Fn>
double TimePerCall(const Fn& fn) {
  std::size_t reps = 1;
  for (;;) {
    scpm::WallTimer timer;
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed >= 0.02 || reps >= (1u << 24)) {
      return elapsed / static_cast<double>(reps);
    }
    reps *= 2;
  }
}

std::string Extra(const char* kernel, double density, std::size_t skew,
                  double speedup) {
  std::ostringstream os;
  os << "\"kernel\":\"" << kernel << "\",\"density\":" << density
     << ",\"skew\":" << skew << ",\"speedup\":" << std::setprecision(4)
     << speedup;
  return os.str();
}

void RunCell(VertexId universe, double density, std::size_t skew, Rng& rng) {
  const std::uint32_t size_a = static_cast<std::uint32_t>(
      static_cast<double>(universe) * density);
  const std::uint32_t size_b =
      std::max<std::uint32_t>(1, size_a / static_cast<std::uint32_t>(skew));
  if (size_a == 0) return;
  const VertexSet a = rng.SampleWithoutReplacement(universe, size_a);
  const VertexSet b = rng.SampleWithoutReplacement(universe, size_b);

  // Merge baseline: the pre-hybrid kernel, forced onto sorted vectors.
  VertexSet out_vec;
  const double merge_s =
      TimePerCall([&] { scpm::SortedIntersect(a, b, &out_vec); });

  // vector/vector hybrid (universe 0 pins both sides sparse; picks the
  // gallop path on its own when the skew warrants it).
  const HybridVertexSet sparse_a = HybridVertexSet::View(&a, 0);
  const HybridVertexSet sparse_b = HybridVertexSet::View(&b, 0);
  HybridVertexSet out;
  const double vec_vec_s = TimePerCall(
      [&] { HybridVertexSet::Intersect(sparse_a, sparse_b, &out, nullptr); });

  // vector/bitmap: probe a's bitmap once per element of b. Timed at the
  // kernel level (like bitmap/bitmap below) so the row measures the
  // probe kernel at every density, including below the knee where the
  // hybrid dispatcher would not choose it.
  const VertexBitset bits_a = VertexBitset::FromSorted(a, universe);
  const double vec_bits_s = TimePerCall(
      [&] { IntersectSortedWithBits(b, bits_a, &out_vec); });

  // bitmap/bitmap word AND + popcount.
  const VertexBitset bits_b = VertexBitset::FromSorted(b, universe);
  VertexBitset out_bits(universe);
  const double bits_bits_s = TimePerCall(
      [&] { VertexBitset::And(bits_a, bits_b, &out_bits); });

  const auto speedup = [&](double s) { return s > 0 ? merge_s / s : 0.0; };
  std::cout << std::setw(8) << density << std::setw(6) << skew << std::setw(14)
            << std::scientific << std::setprecision(3) << merge_s
            << std::setw(14) << vec_vec_s << std::setw(14) << vec_bits_s
            << std::setw(14) << bits_bits_s << std::defaultfloat
            << std::setw(10) << std::fixed << std::setprecision(1)
            << speedup(bits_bits_s) << "x\n"
            << std::defaultfloat << std::setprecision(6);

  std::ostringstream label;
  label << "density=" << density << " skew=" << skew;
  g_json.Add(g_section, label.str() + " merge", merge_s,
             Extra("merge", density, skew, 1.0));
  g_json.Add(g_section, label.str() + " vec_vec", vec_vec_s,
             Extra("vec_vec", density, skew, speedup(vec_vec_s)));
  g_json.Add(g_section, label.str() + " vec_bitmap", vec_bits_s,
             Extra("vec_bitmap", density, skew, speedup(vec_bits_s)));
  g_json.Add(g_section, label.str() + " bitmap_bitmap", bits_bits_s,
             Extra("bitmap_bitmap", density, skew, speedup(bits_bits_s)));
}

/// End-to-end intersection-dominated workload: Eclat over a dense
/// transaction database (every tidset far past the 5% knee), hybrid
/// tidsets off vs on. This is the pipeline-level read on the same
/// kernels the sweep above times in isolation.
void RunEclatScenario(VertexId universe) {
  g_section = "eclat end-to-end";
  scpm::bench::SectionHeader(g_section);
  scpm::Rng rng(13);
  scpm::AttributedGraphBuilder builder(universe);
  const int num_attrs = 14;
  for (int a = 0; a < num_attrs; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < universe; ++v) {
    for (scpm::AttributeId a = 0; a < static_cast<scpm::AttributeId>(num_attrs);
         ++a) {
      if (rng.NextBool(0.4)) {
        if (!builder.AddVertexAttribute(v, a).ok()) return;
      }
    }
  }
  scpm::Result<scpm::AttributedGraph> g = builder.Build();
  if (!g.ok()) {
    std::cerr << "generation failed: " << g.status() << "\n";
    return;
  }
  scpm::EclatOptions options;
  options.min_support = universe / 50;

  double base = 0.0;
  for (bool hybrid : {false, true}) {
    options.use_hybrid_tidsets = hybrid;
    SetOpStats stats;
    scpm::Eclat eclat(options);
    eclat.set_stats(&stats);
    std::size_t itemsets = 0;
    scpm::WallTimer timer;
    scpm::Status status =
        eclat.Mine(*g, [&](const scpm::AttributeSet&, const VertexSet&) {
          ++itemsets;
          return true;
        });
    const double t = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::cerr << "eclat failed: " << status << "\n";
      return;
    }
    if (!hybrid) base = t;
    std::cout << (hybrid ? "hybrid " : "merge  ") << std::fixed
              << std::setprecision(4) << t << " s  (" << itemsets
              << " itemsets, bitmap_isects=" << stats.bitmap_intersections
              << ", speedup " << std::setprecision(2)
              << (t > 0 ? base / t : 0.0) << "x)\n"
              << std::defaultfloat << std::setprecision(6);
    g_json.Add(g_section, hybrid ? "eclat hybrid" : "eclat merge", t,
               Extra(hybrid ? "hybrid" : "merge", 0.4, 1,
                     t > 0 ? base / t : 0.0));
  }
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Hybrid vertex-set intersection kernels",
      "density x skew sweep: merge vs vec/vec vs vec/bitmap vs bitmap/bitmap");
  const double scale = scpm::bench::Scale();
  const VertexId universe = std::max<VertexId>(
      1u << 14, static_cast<VertexId>((1u << 17) * scale));
  std::cout << "universe: " << universe << " vertices\n";
  Rng rng(7);

  g_section = "intersection kernels";
  std::cout << std::setw(8) << "density" << std::setw(6) << "skew"
            << std::setw(14) << "merge(s)" << std::setw(14) << "vec/vec(s)"
            << std::setw(14) << "vec/bmp(s)" << std::setw(14) << "bmp/bmp(s)"
            << std::setw(11) << "bmp spdup\n";
  for (double density : {0.001, 0.01, 0.05, 0.1, 0.2}) {
    for (std::size_t skew : {1u, 8u, 64u}) {
      RunCell(universe, density, skew, rng);
    }
  }
  RunEclatScenario(universe / 4);
  g_json.Write();
  return 0;
}
