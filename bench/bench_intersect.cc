// Microbenchmark for the hybrid vertex-set intersection kernels: sweeps
// set density x size skew over a fixed universe and times the merge
// baseline (SortedIntersect) against the representation-matched hybrid
// kernels — vector/vector (merge or gallop), vector/bitmap (bit probe),
// bitmap/bitmap (word AND + popcount), and the roaring-style chunked
// container. A dedicated mid-density section sweeps the 1-3% band
// (uniform and clustered layouts) where the chunked container is the
// designated winner, and a SIMD A/B section times the word kernels under
// the active dispatch path against the forced-scalar table.
//
// Every JSON row carries the kernel variant and the dispatch path, so the
// CI perf artifacts are attributable to a code path. With SCPM_BENCH_JSON
// set every row lands in the CI perf artifacts.

#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>

#include "bench_util.h"
#include "fim/eclat.h"
#include "graph/attributed_graph.h"
#include "util/hybrid_set.h"
#include "util/random.h"
#include "util/simd_ops.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace {

using scpm::ChunkedVertexSet;
using scpm::HybridVertexSet;
using scpm::Rng;
using scpm::SetOpStats;
using scpm::VertexBitset;
using scpm::VertexId;
using scpm::VertexSet;

scpm::bench::JsonReport g_json("bench_intersect");
std::string g_section;

/// Times `fn` by doubling repetitions until the loop runs >= 20 ms and
/// returns seconds per call.
template <typename Fn>
double TimePerCall(const Fn& fn) {
  std::size_t reps = 1;
  for (;;) {
    scpm::WallTimer timer;
    for (std::size_t i = 0; i < reps; ++i) fn();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed >= 0.02 || reps >= (1u << 24)) {
      return elapsed / static_cast<double>(reps);
    }
    reps *= 2;
  }
}

std::string Extra(const char* kernel, double density, std::size_t skew,
                  double speedup, const char* dispatch = nullptr) {
  std::ostringstream os;
  os << "\"kernel\":\"" << kernel << "\",\"density\":" << density
     << ",\"skew\":" << skew << ",\"speedup\":" << std::setprecision(4)
     << speedup << ",\"dispatch\":\""
     << (dispatch != nullptr ? dispatch : scpm::SimdDispatchName()) << "\"";
  return os.str();
}

void RunCell(VertexId universe, double density, std::size_t skew, Rng& rng) {
  const std::uint32_t size_a = static_cast<std::uint32_t>(
      static_cast<double>(universe) * density);
  const std::uint32_t size_b =
      std::max<std::uint32_t>(1, size_a / static_cast<std::uint32_t>(skew));
  if (size_a == 0) return;
  const VertexSet a = rng.SampleWithoutReplacement(universe, size_a);
  const VertexSet b = rng.SampleWithoutReplacement(universe, size_b);

  // Merge baseline: the pre-hybrid kernel, forced onto sorted vectors.
  VertexSet out_vec;
  const double merge_s =
      TimePerCall([&] { scpm::SortedIntersect(a, b, &out_vec); });

  // vector/vector hybrid (universe 0 pins both sides sparse; picks the
  // gallop path on its own when the skew warrants it).
  const HybridVertexSet sparse_a = HybridVertexSet::View(&a, 0);
  const HybridVertexSet sparse_b = HybridVertexSet::View(&b, 0);
  HybridVertexSet out;
  const double vec_vec_s = TimePerCall(
      [&] { HybridVertexSet::Intersect(sparse_a, sparse_b, &out, nullptr); });

  // vector/bitmap: probe a's bitmap once per element of b. Timed at the
  // kernel level (like bitmap/bitmap below) so the row measures the
  // probe kernel at every density, including below the knee where the
  // hybrid dispatcher would not choose it.
  const VertexBitset bits_a = VertexBitset::FromSorted(a, universe);
  const double vec_bits_s = TimePerCall(
      [&] { IntersectSortedWithBits(b, bits_a, &out_vec); });

  // bitmap/bitmap word AND + popcount.
  const VertexBitset bits_b = VertexBitset::FromSorted(b, universe);
  VertexBitset out_bits(universe);
  const double bits_bits_s = TimePerCall(
      [&] { VertexBitset::And(bits_a, bits_b, &out_bits); });

  // chunked/chunked (per-chunk word-AND / probe / u16 merge).
  const ChunkedVertexSet chunks_a = ChunkedVertexSet::FromSorted(a);
  const ChunkedVertexSet chunks_b = ChunkedVertexSet::FromSorted(b);
  ChunkedVertexSet out_chunks;
  const double chunks_s = TimePerCall(
      [&] { ChunkedVertexSet::And(chunks_a, chunks_b, &out_chunks); });

  const auto speedup = [&](double s) { return s > 0 ? merge_s / s : 0.0; };
  std::cout << std::setw(8) << density << std::setw(6) << skew << std::setw(13)
            << std::scientific << std::setprecision(3) << merge_s
            << std::setw(13) << vec_vec_s << std::setw(13) << vec_bits_s
            << std::setw(13) << bits_bits_s << std::setw(13) << chunks_s
            << std::defaultfloat << std::setw(9) << std::fixed
            << std::setprecision(1) << speedup(bits_bits_s) << "x"
            << std::setw(9) << speedup(chunks_s) << "x\n"
            << std::defaultfloat << std::setprecision(6);

  std::ostringstream label;
  label << "density=" << density << " skew=" << skew;
  g_json.Add(g_section, label.str() + " merge", merge_s,
             Extra("merge", density, skew, 1.0));
  g_json.Add(g_section, label.str() + " vec_vec", vec_vec_s,
             Extra("vec_vec", density, skew, speedup(vec_vec_s)));
  g_json.Add(g_section, label.str() + " vec_bitmap", vec_bits_s,
             Extra("vec_bitmap", density, skew, speedup(vec_bits_s)));
  g_json.Add(g_section, label.str() + " bitmap_bitmap", bits_bits_s,
             Extra("bitmap_bitmap", density, skew, speedup(bits_bits_s)));
  g_json.Add(g_section, label.str() + " chunked", chunks_s,
             Extra("chunked", density, skew, speedup(chunks_s)));
}

/// The 0.5-5% band the chunked container exists for, over a universe
/// large enough (16 chunks) that the full bitmap pays for empty regions.
/// `cluster_frac` < 1 confines both sets to a leading fraction of the
/// universe — the id-locality real tidsets exhibit — so most chunks are
/// empty: the chunked AND touches only the populated ones while the full
/// bitmap still scans every word.
void RunMidDensityCell(VertexId universe, double density, double cluster_frac,
                       Rng& rng) {
  const auto range = static_cast<VertexId>(universe * cluster_frac);
  const auto k = static_cast<std::uint32_t>(universe * density);
  if (k == 0 || k > range) return;
  const VertexSet a = rng.SampleWithoutReplacement(range, k);
  const VertexSet b = rng.SampleWithoutReplacement(range, k);

  VertexSet out_vec;
  const double merge_s =
      TimePerCall([&] { scpm::SortedIntersect(a, b, &out_vec); });

  const VertexBitset bits_a = VertexBitset::FromSorted(a, universe);
  const VertexBitset bits_b = VertexBitset::FromSorted(b, universe);
  VertexBitset out_bits(universe);
  const double bits_s = TimePerCall(
      [&] { VertexBitset::And(bits_a, bits_b, &out_bits); });
  // What a consumer of a below-the-knee result actually pays: the AND
  // plus the full-universe ctz scan to get the sorted ids back. The
  // chunked timings below include their (per-populated-chunk)
  // materialization already, so this is the like-for-like row.
  const double bits_mat_s = TimePerCall([&] {
    VertexBitset::And(bits_a, bits_b, &out_bits);
    out_vec.clear();
    out_bits.AppendTo(&out_vec);
  });

  const ChunkedVertexSet chunks_a = ChunkedVertexSet::FromSorted(a);
  const ChunkedVertexSet chunks_b = ChunkedVertexSet::FromSorted(b);
  ChunkedVertexSet out_chunks;
  const double chunks_s = TimePerCall(
      [&] { ChunkedVertexSet::And(chunks_a, chunks_b, &out_chunks); });

  const char* layout = cluster_frac < 1.0 ? "clustered" : "uniform";
  std::cout << std::setw(8) << density << std::setw(11) << layout
            << std::setw(13) << std::scientific << std::setprecision(3)
            << merge_s << std::setw(13) << bits_s << std::setw(13)
            << bits_mat_s << std::setw(13) << chunks_s << std::defaultfloat
            << std::fixed << std::setprecision(1) << std::setw(8)
            << (chunks_s > 0 ? merge_s / chunks_s : 0.0) << "x"
            << std::setw(8) << (chunks_s > 0 ? bits_mat_s / chunks_s : 0.0)
            << "x\n"
            << std::defaultfloat << std::setprecision(6);

  std::ostringstream label;
  label << "density=" << density << " " << layout;
  g_json.Add(g_section, label.str() + " merge", merge_s,
             Extra("merge", density, 1, 1.0));
  g_json.Add(g_section, label.str() + " bitmap_bitmap", bits_s,
             Extra("bitmap_bitmap", density, 1,
                   bits_s > 0 ? merge_s / bits_s : 0.0));
  g_json.Add(g_section, label.str() + " bitmap_materialized", bits_mat_s,
             Extra("bitmap_materialized", density, 1,
                   bits_mat_s > 0 ? merge_s / bits_mat_s : 0.0));
  g_json.Add(g_section, label.str() + " chunked", chunks_s,
             Extra("chunked", density, 1,
                   chunks_s > 0 ? merge_s / chunks_s : 0.0));
}

/// Word kernels under the active dispatch path vs the forced-scalar
/// table: the same buffers, the same results, only the inner loop
/// differs.
void RunSimdAb(VertexId universe, double density, Rng& rng) {
  const auto k = static_cast<std::uint32_t>(universe * density);
  const VertexSet a = rng.SampleWithoutReplacement(universe, k);
  const VertexSet b = rng.SampleWithoutReplacement(universe, k);
  const VertexBitset bits_a = VertexBitset::FromSorted(a, universe);
  const VertexBitset bits_b = VertexBitset::FromSorted(b, universe);
  VertexBitset out_bits(universe);

  const std::string active = scpm::SimdDispatchName();
  double seconds[2] = {0.0, 0.0};  // [0]=active, [1]=scalar
  for (int pass = 0; pass < 2; ++pass) {
    scpm::SetSimdDispatch(pass == 0);
    seconds[pass] = TimePerCall(
        [&] { VertexBitset::And(bits_a, bits_b, &out_bits); });
  }
  scpm::SetSimdDispatch(true);

  const double speedup = seconds[0] > 0 ? seconds[1] / seconds[0] : 0.0;
  std::cout << std::setw(8) << density << std::setw(13) << std::scientific
            << std::setprecision(3) << seconds[1] << std::setw(13)
            << seconds[0] << std::defaultfloat << std::fixed
            << std::setprecision(2) << std::setw(9) << speedup << "x  ("
            << active << ")\n"
            << std::defaultfloat << std::setprecision(6);

  std::ostringstream label;
  label << "density=" << density;
  g_json.Add(g_section, label.str() + " bmp_and scalar", seconds[1],
             Extra("bmp_and", density, 1, 1.0, "scalar"));
  g_json.Add(g_section, label.str() + " bmp_and " + active, seconds[0],
             Extra("bmp_and", density, 1, speedup, active.c_str()));
}

/// End-to-end intersection-dominated workload: Eclat over a dense
/// transaction database (every tidset far past the 5% knee), hybrid
/// tidsets off vs on. This is the pipeline-level read on the same
/// kernels the sweep above times in isolation.
void RunEclatScenario(VertexId universe) {
  g_section = "eclat end-to-end";
  scpm::bench::SectionHeader(g_section);
  scpm::Rng rng(13);
  scpm::AttributedGraphBuilder builder(universe);
  const int num_attrs = 14;
  for (int a = 0; a < num_attrs; ++a) {
    builder.InternAttribute("a" + std::to_string(a));
  }
  for (VertexId v = 0; v < universe; ++v) {
    for (scpm::AttributeId a = 0; a < static_cast<scpm::AttributeId>(num_attrs);
         ++a) {
      if (rng.NextBool(0.4)) {
        if (!builder.AddVertexAttribute(v, a).ok()) return;
      }
    }
  }
  scpm::Result<scpm::AttributedGraph> g = builder.Build();
  if (!g.ok()) {
    std::cerr << "generation failed: " << g.status() << "\n";
    return;
  }
  scpm::EclatOptions options;
  options.min_support = universe / 50;

  double base = 0.0;
  for (bool hybrid : {false, true}) {
    options.use_hybrid_tidsets = hybrid;
    SetOpStats stats;
    scpm::Eclat eclat(options);
    eclat.set_stats(&stats);
    std::size_t itemsets = 0;
    scpm::WallTimer timer;
    scpm::Status status =
        eclat.Mine(*g, [&](const scpm::AttributeSet&, const VertexSet&) {
          ++itemsets;
          return true;
        });
    const double t = timer.ElapsedSeconds();
    if (!status.ok()) {
      std::cerr << "eclat failed: " << status << "\n";
      return;
    }
    if (!hybrid) base = t;
    std::cout << (hybrid ? "hybrid " : "merge  ") << std::fixed
              << std::setprecision(4) << t << " s  (" << itemsets
              << " itemsets, bitmap_isects=" << stats.bitmap_intersections
              << ", speedup " << std::setprecision(2)
              << (t > 0 ? base / t : 0.0) << "x)\n"
              << std::defaultfloat << std::setprecision(6);
    g_json.Add(g_section, hybrid ? "eclat hybrid" : "eclat merge", t,
               Extra(hybrid ? "hybrid" : "merge", 0.4, 1,
                     t > 0 ? base / t : 0.0));
  }
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Hybrid vertex-set intersection kernels",
      "density x skew sweep: merge vs vec/vec vs vec/bitmap vs "
      "bitmap/bitmap vs chunked; mid-density chunked band; SIMD A/B");
  const double scale = scpm::bench::Scale();
  const VertexId universe = std::max<VertexId>(
      1u << 14, static_cast<VertexId>((1u << 17) * scale));
  std::cout << "universe: " << universe << " vertices, simd dispatch: "
            << scpm::SimdDispatchName() << "\n";
  Rng rng(7);

  g_section = "intersection kernels";
  std::cout << std::setw(8) << "density" << std::setw(6) << "skew"
            << std::setw(13) << "merge(s)" << std::setw(13) << "vec/vec(s)"
            << std::setw(13) << "vec/bmp(s)" << std::setw(13) << "bmp/bmp(s)"
            << std::setw(13) << "chunked(s)" << std::setw(10) << "bmp spd"
            << std::setw(10) << "chunk spd\n";
  for (double density : {0.001, 0.01, 0.05, 0.1, 0.2}) {
    for (std::size_t skew : {1u, 8u, 64u}) {
      RunCell(universe, density, skew, rng);
    }
  }

  // Mid-density band over a 16-chunk universe: the regime the chunked
  // container targets (1-3% density), uniform and clustered layouts.
  g_section = "mid-density chunked band";
  scpm::bench::SectionHeader(g_section);
  const VertexId mid_universe = std::max<VertexId>(
      1u << 18, static_cast<VertexId>((1u << 20) * scale));
  std::cout << "universe: " << mid_universe << " vertices\n"
            << std::setw(8) << "density" << std::setw(11) << "layout"
            << std::setw(13) << "merge(s)" << std::setw(13) << "bmp/bmp(s)"
            << std::setw(13) << "bmp+mat(s)" << std::setw(13) << "chunked(s)"
            << std::setw(9) << "vs merge" << std::setw(9) << "vs bmp+m\n";
  for (double density : {0.01, 0.02, 0.03}) {
    for (double cluster_frac : {1.0, 0.25}) {
      RunMidDensityCell(mid_universe, density, cluster_frac, rng);
    }
  }

  // SIMD dispatch A/B over the dense word kernel.
  g_section = "simd word kernels";
  scpm::bench::SectionHeader(g_section);
  std::cout << std::setw(8) << "density" << std::setw(13) << "scalar(s)"
            << std::setw(13) << "active(s)" << std::setw(10) << "speedup\n";
  for (double density : {0.05, 0.2}) {
    RunSimdAb(universe, density, rng);
  }

  RunEclatScenario(universe / 4);
  g_json.Write();
  return 0;
}
