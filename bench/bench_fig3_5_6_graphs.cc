// Reproduces paper Figures 3, 5, and 6: for each dataset analogue, the
// graph induced by the top-delta attribute set is exported as Graphviz
// DOT with the vertices of the discovered structural correlation pattern
// highlighted (render with `dot -Tpng <file>.dot -o <file>.png`).
//
// Files are written to the current directory:
//   fig3_dblp.dot, fig5_lastfm.dot, fig6_citeseer.dot

#include <algorithm>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "graph/dot.h"
#include "graph/subgraph.h"

namespace {

void RenderDataset(const char* figure, const scpm::SyntheticConfig& config,
                   scpm::ScpmOptions options, const std::string& out_path) {
  scpm::bench::SectionHeader(figure);
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return;
  }
  const scpm::AttributedGraph& graph = dataset->graph;
  scpm::Graph topology = graph.graph();
  scpm::MaxExpectationModel model(topology, options.quasi_clique);
  scpm::ScpmMiner miner(options, &model);
  scpm::Result<scpm::ScpmResult> result = miner.Mine(graph);
  if (!result.ok() || result->attribute_sets.empty()) {
    std::cerr << "mining produced no output\n";
    return;
  }
  const auto ranked = scpm::RankAttributeSets(
      result->attribute_sets, scpm::AttributeSetOrder::kByDelta);
  const scpm::AttributeSetStats& best = ranked.front();
  const scpm::VertexSet induced = graph.VerticesWithAll(best.attributes);
  scpm::Result<scpm::InducedSubgraph> sub =
      scpm::InducedSubgraph::Create(topology, induced);
  if (!sub.ok()) {
    std::cerr << "induction failed: " << sub.status() << "\n";
    return;
  }

  scpm::DotOptions dot;
  dot.graph_name = "induced";
  dot.drop_isolated = true;
  // Highlight every pattern of the winning attribute set (local ids).
  for (const auto& p : result->patterns) {
    if (p.attributes != best.attributes) continue;
    scpm::VertexSet local;
    for (scpm::VertexId v : p.vertices) {
      local.push_back(sub->ToLocal(v));
    }
    std::sort(local.begin(), local.end());
    dot.highlights.push_back(std::move(local));
  }
  scpm::Status status = WriteDot(sub->graph(), dot, out_path);
  if (!status.ok()) {
    std::cerr << "dot export failed: " << status << "\n";
    return;
  }
  std::cout << "attribute set " << graph.FormatAttributeSet(best.attributes)
            << " (sigma=" << best.support << ", eps=" << best.epsilon
            << ", delta=" << best.delta << ")\n"
            << "induced graph: " << sub->NumVertices() << " vertices, "
            << sub->graph().NumEdges() << " edges; "
            << dot.highlights.size() << " pattern(s) highlighted\n"
            << "wrote " << out_path << "\n";
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Figures 3 / 5 / 6 — induced graphs with patterns highlighted",
      "DOT exports; render with graphviz");
  const double scale = scpm::bench::Scale();

  scpm::ScpmOptions dblp;
  dblp.quasi_clique.gamma = 0.5;
  dblp.quasi_clique.min_size = 8;
  dblp.min_support = 25;
  dblp.min_epsilon = 0.05;
  dblp.top_k = 3;
  RenderDataset("Figure 3 (DBLP-like)", scpm::DblpLikeConfig(scale), dblp,
                "fig3_dblp.dot");

  scpm::ScpmOptions lastfm = dblp;
  lastfm.quasi_clique.min_size = 5;
  lastfm.min_support = 15;
  RenderDataset("Figure 5 (LastFm-like)", scpm::LastFmLikeConfig(scale),
                lastfm, "fig5_lastfm.dot");

  scpm::ScpmOptions citeseer = dblp;
  citeseer.quasi_clique.min_size = 5;
  citeseer.min_support = 20;
  RenderDataset("Figure 6 (CiteSeer-like)", scpm::CiteSeerLikeConfig(scale),
                citeseer, "fig6_citeseer.dot");
  return 0;
}
