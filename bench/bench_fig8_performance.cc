// Reproduces paper Figure 8 (performance evaluation, §4.2): runtime of
// SCPM-BFS, SCPM-DFS, and the Naive algorithm on the SmallDBLP-like
// dataset while sweeping each parameter with the others fixed:
//   (a) gamma_min  (b) min_size  (c) sigma_min  (d) eps_min
//   (e) delta_min  (f) k (SCPM-DFS vs Naive only).
//
// Expected shape: SCPM-DFS <= SCPM-BFS << Naive (the paper reports up to
// 3 orders of magnitude); SCPM runtimes drop as eps_min / delta_min grow
// (Theorem 4/5 pruning), Naive is flat in those parameters.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/naive.h"

namespace {

using scpm::ScpmOptions;

struct Timing {
  double scpm_bfs = 0;
  double scpm_dfs = 0;
  double naive = 0;
};

const scpm::AttributedGraph* g_graph = nullptr;
scpm::MaxExpectationModel* g_model = nullptr;

double TimeMiner(bool naive, const ScpmOptions& options) {
  scpm::WallTimer timer;
  if (naive) {
    scpm::NaiveMiner miner(options, g_model);
    auto result = miner.Mine(*g_graph);
    if (!result.ok()) std::cerr << "naive failed: " << result.status() << "\n";
  } else {
    scpm::ScpmMiner miner(options, g_model);
    auto result = miner.Mine(*g_graph);
    if (!result.ok()) std::cerr << "scpm failed: " << result.status() << "\n";
  }
  return timer.ElapsedSeconds();
}

Timing TimeAll(ScpmOptions options, bool run_naive = true) {
  Timing t;
  options.search_order = scpm::SearchOrder::kBfs;
  t.scpm_bfs = TimeMiner(false, options);
  options.search_order = scpm::SearchOrder::kDfs;
  t.scpm_dfs = TimeMiner(false, options);
  if (run_naive) t.naive = TimeMiner(true, options);
  return t;
}

void PrintRow(double x, const Timing& t) {
  std::cout << std::setw(10) << x << std::setw(14) << std::fixed
            << std::setprecision(4) << t.scpm_bfs << std::setw(14)
            << t.scpm_dfs << std::setw(14) << t.naive << "\n";
}

void Header(const char* param) {
  std::cout << std::setw(10) << param << std::setw(14) << "SCPM-BFS(s)"
            << std::setw(14) << "SCPM-DFS(s)" << std::setw(14)
            << "Naive(s)" << "\n";
}

/// Paper defaults (scaled): gamma=0.5, min_size=11, sigma_min=100,
/// eps_min=0.1, delta_min=1, k=5.
ScpmOptions Defaults() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.5;
  o.quasi_clique.min_size = 9;
  o.min_support = 25;
  o.min_epsilon = 0.1;
  o.min_delta = 1.0;
  o.top_k = 5;
  return o;
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Figure 8 — runtime of SCPM-BFS / SCPM-DFS / Naive",
      "SmallDBLP-like dataset; sweeps (a)-(f) of §4.2");
  const double scale = scpm::bench::Scale();
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::SmallDblpConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  g_graph = &dataset->graph;
  std::cout << "dataset: " << g_graph->NumVertices() << " vertices, "
            << g_graph->graph().NumEdges() << " edges, "
            << g_graph->NumAttributes() << " attributes\n";
  scpm::Graph topology = g_graph->graph();
  scpm::MaxExpectationModel model(topology, Defaults().quasi_clique);
  g_model = &model;

  scpm::bench::SectionHeader("(a) runtime x gamma_min");
  Header("gamma");
  for (double gamma : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    ScpmOptions o = Defaults();
    o.quasi_clique.gamma = gamma;
    PrintRow(gamma, TimeAll(o));
  }

  scpm::bench::SectionHeader("(b) runtime x min_size");
  Header("min_size");
  for (std::uint32_t min_size : {8u, 9u, 10u, 11u, 12u}) {
    ScpmOptions o = Defaults();
    o.quasi_clique.min_size = min_size;
    PrintRow(min_size, TimeAll(o));
  }

  scpm::bench::SectionHeader("(c) runtime x sigma_min");
  Header("sigma_min");
  for (std::size_t sigma : {15u, 20u, 25u, 35u, 50u}) {
    ScpmOptions o = Defaults();
    o.min_support = sigma;
    PrintRow(static_cast<double>(sigma), TimeAll(o));
  }

  scpm::bench::SectionHeader("(d) runtime x eps_min");
  Header("eps_min");
  for (double eps : {0.1, 0.15, 0.2, 0.25}) {
    ScpmOptions o = Defaults();
    o.min_epsilon = eps;
    PrintRow(eps, TimeAll(o));
  }

  scpm::bench::SectionHeader("(e) runtime x delta_min");
  Header("delta_min");
  for (double delta : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    ScpmOptions o = Defaults();
    o.min_delta = delta;
    PrintRow(delta, TimeAll(o));
  }

  scpm::bench::SectionHeader("(f) runtime x k (SCPM-DFS vs Naive)");
  std::cout << std::setw(10) << "k" << std::setw(14) << "SCPM-DFS(s)"
            << std::setw(14) << "Naive(s)" << "\n";
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    ScpmOptions o = Defaults();
    o.top_k = k;
    o.search_order = scpm::SearchOrder::kDfs;
    const double dfs = TimeMiner(false, o);
    const double naive = TimeMiner(true, o);
    std::cout << std::setw(10) << k << std::setw(14) << std::fixed
              << std::setprecision(4) << dfs << std::setw(14) << naive
              << "\n";
  }

  // Beyond the paper: scaling of the work-stealing parallel engine
  // (output is byte-identical to num_threads=1 at every point).
  scpm::bench::SectionHeader("(g) runtime x num_threads (SCPM-DFS)");
  std::cout << std::setw(10) << "threads" << std::setw(14) << "SCPM-DFS(s)"
            << std::setw(14) << "speedup" << "\n";
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ScpmOptions o = Defaults();
    o.search_order = scpm::SearchOrder::kDfs;
    o.num_threads = threads;
    const double t = TimeMiner(false, o);
    if (threads == 1) base = t;
    std::cout << std::setw(10) << threads << std::setw(14) << std::fixed
              << std::setprecision(4) << t << std::setw(14)
              << std::setprecision(2) << (t > 0 ? base / t : 0.0)
              << std::setprecision(4) << "\n";
  }
  return 0;
}
