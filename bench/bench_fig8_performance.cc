// Reproduces paper Figure 8 (performance evaluation, §4.2): runtime of
// SCPM-BFS, SCPM-DFS, and the Naive algorithm on the SmallDBLP-like
// dataset while sweeping each parameter with the others fixed:
//   (a) gamma_min  (b) min_size  (c) sigma_min  (d) eps_min
//   (e) delta_min  (f) k (SCPM-DFS vs Naive only).
//
// Expected shape: SCPM-DFS <= SCPM-BFS << Naive (the paper reports up to
// 3 orders of magnitude); SCPM runtimes drop as eps_min / delta_min grow
// (Theorem 4/5 pruning), Naive is flat in those parameters.
//
// Beyond the paper, sweeps (g) and (h) track the parallel engine: (g)
// thread scaling on the lattice-bound workload, (h) a small-lattice /
// huge-G(S) workload where speedup must come from the intra-search
// decomposition of single coverage computations. With SCPM_BENCH_JSON
// set, every timing row is also written as JSON for the CI artifacts.

#include <iomanip>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "core/naive.h"
#include "core/statistics.h"
#include "graph/generators.h"
#include "util/random.h"

namespace {

using scpm::ScpmOptions;

struct Timing {
  double scpm_bfs = 0;
  double scpm_dfs = 0;
  double naive = 0;
};

const scpm::AttributedGraph* g_graph = nullptr;
scpm::MaxExpectationModel* g_model = nullptr;
scpm::bench::JsonReport g_json("bench_fig8");
std::string g_section;

void Section(const std::string& title) {
  g_section = title;
  scpm::bench::SectionHeader(title);
}

std::string Label(const char* param, double x, const char* miner) {
  std::ostringstream os;
  os << param << "=" << x << " " << miner;
  return os.str();
}

double TimeMiner(bool naive, const ScpmOptions& options) {
  scpm::WallTimer timer;
  if (naive) {
    scpm::NaiveMiner miner(options, g_model);
    auto result = miner.Mine(*g_graph);
    if (!result.ok()) std::cerr << "naive failed: " << result.status() << "\n";
  } else {
    scpm::ScpmMiner miner(options, g_model);
    auto result = miner.Mine(*g_graph);
    if (!result.ok()) std::cerr << "scpm failed: " << result.status() << "\n";
  }
  return timer.ElapsedSeconds();
}

Timing TimeAll(ScpmOptions options, bool run_naive = true) {
  Timing t;
  options.search_order = scpm::SearchOrder::kBfs;
  t.scpm_bfs = TimeMiner(false, options);
  options.search_order = scpm::SearchOrder::kDfs;
  t.scpm_dfs = TimeMiner(false, options);
  if (run_naive) t.naive = TimeMiner(true, options);
  return t;
}

void PrintRow(const char* param, double x, const Timing& t) {
  std::cout << std::setw(10) << x << std::setw(14) << std::fixed
            << std::setprecision(4) << t.scpm_bfs << std::setw(14)
            << t.scpm_dfs << std::setw(14) << t.naive << "\n";
  g_json.Add(g_section, Label(param, x, "scpm_bfs"), t.scpm_bfs);
  g_json.Add(g_section, Label(param, x, "scpm_dfs"), t.scpm_dfs);
  g_json.Add(g_section, Label(param, x, "naive"), t.naive);
}

void Header(const char* param) {
  std::cout << std::setw(10) << param << std::setw(14) << "SCPM-BFS(s)"
            << std::setw(14) << "SCPM-DFS(s)" << std::setw(14)
            << "Naive(s)" << "\n";
}

/// Paper defaults (scaled): gamma=0.5, min_size=11, sigma_min=100,
/// eps_min=0.1, delta_min=1, k=5.
ScpmOptions Defaults() {
  ScpmOptions o;
  o.quasi_clique.gamma = 0.5;
  o.quasi_clique.min_size = 9;
  o.min_support = 25;
  o.min_epsilon = 0.1;
  o.min_delta = 1.0;
  o.top_k = 5;
  return o;
}

/// Scenario (h): the hard half of the Fig. 8 workload inverted — a tiny
/// attribute lattice (three near-global attributes, at most 7 sets) over
/// a graph with planted dense groups, so nearly all runtime is a handful
/// of coverage computations on huge G(S). Lattice-level parallelism has
/// nothing to chew on here; speedup must come from the intra-search
/// decomposition.
scpm::Result<scpm::AttributedGraph> BuildHugeSubgraphDataset(double scale) {
  const scpm::VertexId n = std::max<scpm::VertexId>(
      200, static_cast<scpm::VertexId>(2000 * scale));
  scpm::Rng rng(97);
  scpm::Result<scpm::Graph> bg = scpm::ErdosRenyi(n, 3.0 / n, rng);
  if (!bg.ok()) return bg.status();
  std::vector<scpm::Edge> edges = bg->Edges();
  scpm::PlantGroups(n, n / 40 + 4, 8, 14, 0.9, rng, &edges);
  scpm::AttributedGraphBuilder builder(n);
  for (const scpm::Edge& e : edges) builder.AddEdge(e.u, e.v);
  for (const char* name : {"alpha", "beta", "delta"}) {
    const scpm::AttributeId id = builder.InternAttribute(name);
    for (scpm::VertexId v = 0; v < n; ++v) {
      if (rng.NextBool(0.7)) {
        if (auto status = builder.AddVertexAttribute(v, id); !status.ok()) {
          return status;
        }
      }
    }
  }
  return builder.Build();
}

void RunHugeSubgraphScenario() {
  Section("(h) small lattice, huge G(S) — intra-search scaling");
  scpm::Result<scpm::AttributedGraph> dataset =
      BuildHugeSubgraphDataset(scpm::bench::Scale());
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return;
  }
  std::cout << "dataset: " << dataset->NumVertices() << " vertices, "
            << dataset->graph().NumEdges() << " edges, "
            << dataset->NumAttributes() << " attributes\n";

  ScpmOptions o;
  o.quasi_clique.gamma = 0.5;
  o.quasi_clique.min_size = 6;
  o.min_support = 10;
  o.min_epsilon = 0.01;
  o.top_k = 3;
  o.search_order = scpm::SearchOrder::kDfs;
  // Low trigger so the intra-search path is exercised at every
  // SCPM_BENCH_SCALE, including the CI smoke scale.
  o.intra_search_min_universe = 64;

  // Dense-set baseline: the same workload with the hybrid representation
  // forced off, so the artifact records what the bitmap kernels buy on
  // the near-global (70% dense) tidsets of this scenario.
  {
    ScpmOptions plain = o;
    plain.use_hybrid_sets = false;
    scpm::ScpmMiner miner(plain);
    scpm::WallTimer timer;
    scpm::Result<scpm::ScpmResult> result = miner.Mine(*dataset);
    const double t = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::cerr << "scpm failed: " << result.status() << "\n";
      return;
    }
    std::cout << "hybrid-off baseline (1 thread): " << std::fixed
              << std::setprecision(4) << t << " s\n"
              << std::defaultfloat << std::setprecision(6);
    g_json.Add(g_section, "hybrid=off scpm_dfs", t,
               "\"counters\":" + scpm::ScpmCountersJson(result->counters));
  }

  std::cout << std::setw(10) << "threads" << std::setw(14) << "SCPM-DFS(s)"
            << std::setw(14) << "speedup" << "\n";
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ScpmOptions run = o;
    run.num_threads = threads;
    scpm::ScpmMiner miner(run);
    scpm::WallTimer timer;
    scpm::Result<scpm::ScpmResult> result = miner.Mine(*dataset);
    const double t = timer.ElapsedSeconds();
    if (!result.ok()) {
      std::cerr << "scpm failed: " << result.status() << "\n";
      return;
    }
    if (threads == 1) {
      base = t;
      std::cout << "counters: "
                << scpm::FormatScpmCounters(result->counters) << "\n";
    }
    std::cout << std::setw(10) << threads << std::setw(14) << std::fixed
              << std::setprecision(4) << t << std::setw(14)
              << std::setprecision(2) << (t > 0 ? base / t : 0.0)
              << std::setprecision(4) << "\n";
    g_json.Add(g_section,
               Label("threads", static_cast<double>(threads), "scpm_dfs"), t,
               "\"counters\":" + scpm::ScpmCountersJson(result->counters));
  }
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Figure 8 — runtime of SCPM-BFS / SCPM-DFS / Naive",
      "SmallDBLP-like dataset; sweeps (a)-(f) of §4.2");
  const double scale = scpm::bench::Scale();
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::SmallDblpConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  g_graph = &dataset->graph;
  std::cout << "dataset: " << g_graph->NumVertices() << " vertices, "
            << g_graph->graph().NumEdges() << " edges, "
            << g_graph->NumAttributes() << " attributes\n";
  scpm::Graph topology = g_graph->graph();
  scpm::MaxExpectationModel model(topology, Defaults().quasi_clique);
  g_model = &model;

  Section("(a) runtime x gamma_min");
  Header("gamma");
  for (double gamma : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    ScpmOptions o = Defaults();
    o.quasi_clique.gamma = gamma;
    PrintRow("gamma", gamma, TimeAll(o));
  }

  Section("(b) runtime x min_size");
  Header("min_size");
  for (std::uint32_t min_size : {8u, 9u, 10u, 11u, 12u}) {
    ScpmOptions o = Defaults();
    o.quasi_clique.min_size = min_size;
    PrintRow("min_size", min_size, TimeAll(o));
  }

  Section("(c) runtime x sigma_min");
  Header("sigma_min");
  for (std::size_t sigma : {15u, 20u, 25u, 35u, 50u}) {
    ScpmOptions o = Defaults();
    o.min_support = sigma;
    PrintRow("sigma_min", static_cast<double>(sigma), TimeAll(o));
  }

  Section("(d) runtime x eps_min");
  Header("eps_min");
  for (double eps : {0.1, 0.15, 0.2, 0.25}) {
    ScpmOptions o = Defaults();
    o.min_epsilon = eps;
    PrintRow("eps_min", eps, TimeAll(o));
  }

  Section("(e) runtime x delta_min");
  Header("delta_min");
  for (double delta : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    ScpmOptions o = Defaults();
    o.min_delta = delta;
    PrintRow("delta_min", delta, TimeAll(o));
  }

  Section("(f) runtime x k (SCPM-DFS vs Naive)");
  std::cout << std::setw(10) << "k" << std::setw(14) << "SCPM-DFS(s)"
            << std::setw(14) << "Naive(s)" << "\n";
  for (std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
    ScpmOptions o = Defaults();
    o.top_k = k;
    o.search_order = scpm::SearchOrder::kDfs;
    const double dfs = TimeMiner(false, o);
    const double naive = TimeMiner(true, o);
    std::cout << std::setw(10) << k << std::setw(14) << std::fixed
              << std::setprecision(4) << dfs << std::setw(14) << naive
              << "\n";
    g_json.Add(g_section, Label("k", static_cast<double>(k), "scpm_dfs"),
               dfs);
    g_json.Add(g_section, Label("k", static_cast<double>(k), "naive"), naive);
  }

  // Beyond the paper: scaling of the work-stealing parallel engine
  // (output is byte-identical to num_threads=1 at every point).
  Section("(g) runtime x num_threads (SCPM-DFS)");
  std::cout << std::setw(10) << "threads" << std::setw(14) << "SCPM-DFS(s)"
            << std::setw(14) << "speedup" << "\n";
  double base = 0.0;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ScpmOptions o = Defaults();
    o.search_order = scpm::SearchOrder::kDfs;
    o.num_threads = threads;
    const double t = TimeMiner(false, o);
    if (threads == 1) base = t;
    std::cout << std::setw(10) << threads << std::setw(14) << std::fixed
              << std::setprecision(4) << t << std::setw(14)
              << std::setprecision(2) << (t > 0 ? base / t : 0.0)
              << std::setprecision(4) << "\n";
    g_json.Add(g_section, Label("threads", static_cast<double>(threads),
                                "scpm_dfs"),
               t);
  }

  RunHugeSubgraphScenario();
  g_json.Write();
  return 0;
}
