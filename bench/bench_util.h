// Shared helpers for the table/figure reproduction benches.

#ifndef SCPM_BENCH_BENCH_UTIL_H_
#define SCPM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/scpm.h"
#include "datasets/synthetic.h"
#include "graph/metrics.h"
#include "nullmodel/expectation.h"
#include "util/timer.h"

namespace scpm::bench {

/// Scale factor for dataset sizes, overridable via SCPM_BENCH_SCALE.
inline double Scale(double fallback = 0.4) {
  if (const char* env = std::getenv("SCPM_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Prints a banner naming the paper artifact being reproduced.
inline void Banner(const std::string& artifact, const std::string& note) {
  std::cout << "==========================================================\n"
            << artifact << "\n"
            << note << "\n"
            << "==========================================================\n";
}

inline void SectionHeader(const std::string& title) {
  std::cout << "\n--- " << title << " ---\n";
}

/// Machine-readable bench output for the CI perf-trajectory artifacts:
/// collects one row per timing and writes them as JSON to the path named
/// by SCPM_BENCH_JSON (a no-op when the variable is unset). Labels and
/// extra fields are emitted verbatim; callers keep them quote-free.
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}

  /// Records one timing row. `extra_json` (optional) is spliced into the
  /// row object as additional fields, e.g. "\"threads\":4".
  void Add(const std::string& section, const std::string& label,
           double seconds, const std::string& extra_json = "") {
    rows_.push_back({section, label, seconds, extra_json});
  }

  /// Writes the report; returns false (after a warning on stderr) when
  /// the requested path cannot be written.
  bool Write() const {
    const char* path = std::getenv("SCPM_BENCH_JSON");
    if (path == nullptr || *path == '\0') return true;
    std::ofstream out(path);
    out << "{\"bench\":\"" << name_ << "\",\"scale\":" << Scale()
        << ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      if (i > 0) out << ",";
      out << "{\"section\":\"" << row.section << "\",\"label\":\""
          << row.label << "\",\"seconds\":" << row.seconds;
      if (!row.extra_json.empty()) out << "," << row.extra_json;
      out << "}";
    }
    out << "]}\n";
    out.flush();
    if (!out.good()) {
      std::cerr << "warning: failed to write bench JSON to " << path << "\n";
      return false;
    }
    std::cout << "\nwrote bench JSON: " << path << " (" << rows_.size()
              << " rows)\n";
    return true;
  }

 private:
  struct Row {
    std::string section;
    std::string label;
    double seconds;
    std::string extra_json;
  };

  std::string name_;
  std::vector<Row> rows_;
};

/// Shared driver for the Table 2/3/4 case studies: generate the synthetic
/// analogue, mine with the max-exp null model, print top-10 by
/// sigma / eps / delta_lb plus the largest pattern.
inline int RunCaseStudy(const SyntheticConfig& config,
                        ScpmOptions options) {
  Result<SyntheticDataset> dataset = GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  const AttributedGraph& graph = dataset->graph;
  std::cout << "dataset: " << graph.NumVertices() << " vertices, "
            << graph.graph().NumEdges() << " edges, "
            << graph.NumAttributes() << " attributes ("
            << dataset->communities.size() << " planted communities, "
            << dataset->topics.size() << " topics)\n";
  std::cout << "params: gamma=" << options.quasi_clique.gamma
            << " min_size=" << options.quasi_clique.min_size
            << " sigma_min=" << options.min_support
            << " eps_min=" << options.min_epsilon << "\n\n";

  Graph topology = graph.graph();
  MaxExpectationModel null_model(topology, options.quasi_clique);
  ScpmMiner miner(options, &null_model);
  WallTimer timer;
  Result<ScpmResult> result = miner.Mine(graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }
  std::cout << "mined " << result->attribute_sets.size()
            << " attribute sets / " << result->patterns.size()
            << " patterns in " << timer.ElapsedSeconds() << " s\n\n";
  PrintTopAttributeSets(std::cout, graph, result->attribute_sets, 10);
  if (!result->patterns.empty()) {
    std::cout << "\nlargest pattern: "
              << FormatPattern(graph, result->patterns.front()) << "\n";
  }
  return 0;
}

}  // namespace scpm::bench

#endif  // SCPM_BENCH_BENCH_UTIL_H_
