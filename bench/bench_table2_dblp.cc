// Reproduces paper Table 2 (DBLP case study, §4.1.1) on the DBLP-like
// synthetic analogue: top-10 attribute sets by support, structural
// correlation (eps), and normalized structural correlation (delta_lb).
//
// Expected shape (not absolute values): top-support sets are generic
// filler terms with low eps/delta; top-eps and top-delta sets are the
// planted topic pairs; delta values are orders of magnitude above 1.

#include "bench_util.h"

int main() {
  scpm::bench::Banner(
      "Table 2 — DBLP: top sigma / eps / delta_lb attribute sets",
      "synthetic DBLP-like analogue (see DESIGN.md substitutions)");
  const double scale = scpm::bench::Scale();
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;   // paper: 0.5
  options.quasi_clique.min_size = 8;  // paper: 10 (scaled with dataset)
  options.min_support = 25;           // paper: 400 on 108k vertices
  options.min_epsilon = 0.02;
  options.top_k = 3;
  return scpm::bench::RunCaseStudy(scpm::DblpLikeConfig(scale), options);
}
