// Reproduces paper Table 3 (LastFm case study, §4.1.2) on the LastFm-like
// synthetic analogue: top-10 attribute sets by sigma / eps / delta_lb.
//
// Expected shape: the friendship graph is so sparse that even popular
// artists get modest eps; the top-delta sets are niche taste combinations
// (planted topics), not the most popular artists.

#include "bench_util.h"

int main() {
  scpm::bench::Banner(
      "Table 3 — LastFm: top sigma / eps / delta_lb attribute sets",
      "synthetic LastFm-like analogue (see DESIGN.md substitutions)");
  const double scale = scpm::bench::Scale();
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;   // paper: 0.5
  options.quasi_clique.min_size = 5;  // paper: 5
  options.min_support = 15;           // paper: 27000 on 272k vertices
  options.min_epsilon = 0.01;
  options.top_k = 3;
  return scpm::bench::RunCaseStudy(scpm::LastFmLikeConfig(scale), options);
}
