// Reproduces paper Table 4 (CiteSeer case study, §4.1.3) on the
// CiteSeer-like synthetic analogue: top-10 attribute sets by
// sigma / eps / delta_lb.
//
// Expected shape: higher edge density than DBLP/LastFm yields higher
// absolute eps for topical sets; generic terms still dominate support but
// not eps/delta.

#include "bench_util.h"

int main() {
  scpm::bench::Banner(
      "Table 4 — CiteSeer: top sigma / eps / delta_lb attribute sets",
      "synthetic CiteSeer-like analogue (see DESIGN.md substitutions)");
  const double scale = scpm::bench::Scale();
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.5;   // paper: 0.5
  options.quasi_clique.min_size = 5;  // paper: 5
  options.min_support = 20;           // paper: 2000 on 294k vertices
  options.min_epsilon = 0.02;
  options.top_k = 3;
  return scpm::bench::RunCaseStudy(scpm::CiteSeerLikeConfig(scale), options);
}
