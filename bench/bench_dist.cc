// Distributed-mining bench: one CiteSeer-like workload mined through
// the src/dist/ coordinator while sweeping worker count {1, 2, 4} with
// fault injection off and on (a worker kill + a dropped heartbeat per
// run). Every cell is checked byte-identical to the single-process
// reference before its timing is reported, so a determinism break
// fails the bench, not just the trend gate. With SCPM_BENCH_JSON set
// the rows feed scripts/bench_trend.py like every other bench.

#include <iostream>
#include <string>

#include "bench_util.h"
#include "core/request.h"
#include "dist/dist.h"
#include "util/fault.h"
#include "util/timer.h"

namespace {

using scpm::bench::JsonReport;

scpm::MiningRequest Request() {
  scpm::MiningRequest request;
  request.options.quasi_clique.gamma = 0.5;
  request.options.quasi_clique.min_size = 5;
  request.options.min_support = 12;
  request.options.min_epsilon = 0.02;
  request.options.top_k = 5;
  return request;
}

bool SameRun(const scpm::MiningRun& a, const scpm::MiningRun& b) {
  return a.emitted == b.emitted && a.patterns_emitted == b.patterns_emitted &&
         a.counters.attribute_sets_evaluated ==
             b.counters.attribute_sets_evaluated &&
         a.counters.coverage_candidates == b.counters.coverage_candidates &&
         a.counters.bitmap_intersections == b.counters.bitmap_intersections;
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Distributed mining: worker count x fault toggle",
      "coordinator + forked workers vs single-process ExecuteRequest");
  JsonReport json("dist");

  scpm::SyntheticConfig config =
      scpm::CiteSeerLikeConfig(scpm::bench::Scale(0.5));
  config.seed = 7;
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  const scpm::AttributedGraph& graph = dataset->graph;
  std::cout << "dataset: " << graph.NumVertices() << " vertices, "
            << graph.graph().NumEdges() << " edges, "
            << graph.NumAttributes() << " attributes\n";

  scpm::WallTimer timer;
  scpm::Result<scpm::MiningResponse> reference =
      scpm::ExecuteRequest(graph, Request());
  if (!reference.ok()) {
    std::cerr << "single-process reference failed: " << reference.status()
              << "\n";
    return 1;
  }
  const double single = timer.ElapsedSeconds();
  std::cout << "single-process: " << reference->run.emitted
            << " attribute sets in " << single << " s\n";
  json.Add("single_process", "workers=0 faults=off", single);

  for (const bool faults : {false, true}) {
    for (const std::size_t workers : {1, 2, 4}) {
      // One worker killed on its first lease and one heartbeat
      // swallowed per run: the retry/backoff path is part of the cost
      // being tracked.
      const char* spec = faults ? "worker-kill:0=0,heartbeat-drop:1=1" : "";
      if (!scpm::FaultInjector::Instance().Configure(spec).ok()) {
        std::cerr << "fault spec rejected\n";
        return 1;
      }
      scpm::dist::DistOptions dist;
      dist.workers = workers;
      dist.lease_ms = 500;
      dist.backoff_ms = 5;
      scpm::dist::DistStats stats;
      timer.Reset();
      scpm::Result<scpm::MiningResponse> response =
          scpm::dist::Mine(graph, Request(), dist, nullptr, &stats);
      const double seconds = timer.ElapsedSeconds();
      (void)scpm::FaultInjector::Instance().Configure("");
      if (!response.ok()) {
        std::cerr << "distributed run failed: " << response.status() << "\n";
        return 1;
      }
      if (!SameRun(response->run, reference->run)) {
        std::cerr << "determinism break: workers=" << workers
                  << " faults=" << (faults ? "on" : "off")
                  << " diverged from single-process output\n";
        return 1;
      }
      const std::string label = "workers=" + std::to_string(workers) +
                                " faults=" + (faults ? "on" : "off");
      std::cout << label << ": " << seconds << " s (batches=" << stats.batches
                << " retries=" << stats.retries
                << " inline=" << stats.inline_fallbacks << ")\n";
      json.Add(faults ? "faults_on" : "faults_off", label, seconds,
               "\"workers\":" + std::to_string(workers));
    }
  }
  return json.Write() ? 0 : 1;
}
