// Ablation study (ours; motivated by DESIGN.md): contribution of each
// pruning/search technique to SCPM's runtime on the SmallDBLP-like
// dataset.
//
//  * Theorem 3 vertex pruning on/off (attribute-set level)
//  * Theorem 4 (eps) and Theorem 5 (delta) attribute-set pruning on/off
//  * quasi-clique miner internals: vertex reduction, size bound,
//    lookahead, diameter filter on/off (measured via coverage mining on
//    the densest induced subgraphs)

#include <iomanip>
#include <iostream>
#include <string>

#include "bench_util.h"
#include "graph/subgraph.h"
#include "qclique/miner.h"

namespace {

const scpm::AttributedGraph* g_graph = nullptr;
scpm::MaxExpectationModel* g_model = nullptr;

scpm::ScpmOptions Defaults() {
  scpm::ScpmOptions o;
  o.quasi_clique.gamma = 0.5;
  o.quasi_clique.min_size = 9;
  o.min_support = 15;
  // Selective thresholds so Theorems 4/5 have extension candidates to
  // prune (with permissive thresholds everything extends regardless).
  o.min_epsilon = 0.3;
  o.min_delta = 25.0;
  o.top_k = 5;
  return o;
}

void TimeScpm(const std::string& label, const scpm::ScpmOptions& options) {
  scpm::ScpmMiner miner(options, g_model);
  scpm::WallTimer timer;
  auto result = miner.Mine(*g_graph);
  if (!result.ok()) {
    std::cerr << label << " failed: " << result.status() << "\n";
    return;
  }
  std::cout << std::left << std::setw(40) << label << std::right
            << std::setw(12) << std::fixed << std::setprecision(4)
            << timer.ElapsedSeconds() << std::setw(14)
            << result->counters.coverage_candidates << std::setw(10)
            << result->counters.attribute_sets_evaluated << "\n";
}

void TimeMinerFlags(const std::string& label,
                    scpm::QuasiCliqueMinerOptions options,
                    const scpm::Graph& graph) {
  // Bound the search: an ablation that exceeds the budget is reported as
  // such (that *is* the measurement — the technique was load-bearing).
  options.max_candidates = 2'000'000;
  scpm::QuasiCliqueMiner miner(options);
  scpm::WallTimer timer;
  auto covered = miner.MineCoverage(graph);
  std::cout << std::left << std::setw(40) << label << std::right
            << std::setw(12) << std::fixed << std::setprecision(4)
            << timer.ElapsedSeconds() << std::setw(14)
            << miner.stats().candidates_processed;
  if (covered.ok()) {
    std::cout << std::setw(10) << covered->size() << "\n";
  } else {
    std::cout << std::setw(10) << "BUDGET" << "\n";
  }
}

}  // namespace

int main() {
  scpm::bench::Banner("Ablation — pruning and search strategies",
                      "runtime / candidates with each technique disabled");
  const double scale = scpm::bench::Scale();
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(scpm::SmallDblpConfig(scale));
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return 1;
  }
  g_graph = &dataset->graph;
  scpm::Graph topology = g_graph->graph();
  scpm::MaxExpectationModel model(topology, Defaults().quasi_clique);
  g_model = &model;

  scpm::bench::SectionHeader("SCPM attribute-set pruning (Theorems 3-5)");
  std::cout << std::left << std::setw(40) << "configuration" << std::right
            << std::setw(12) << "seconds" << std::setw(14) << "qc-cands"
            << std::setw(10) << "sets" << "\n";
  TimeScpm("all pruning on (default)", Defaults());
  {
    scpm::ScpmOptions o = Defaults();
    o.use_vertex_pruning = false;
    TimeScpm("no Theorem-3 vertex pruning", o);
  }
  {
    scpm::ScpmOptions o = Defaults();
    o.use_epsilon_pruning = false;
    TimeScpm("no Theorem-4 eps pruning", o);
  }
  {
    scpm::ScpmOptions o = Defaults();
    o.use_delta_pruning = false;
    TimeScpm("no Theorem-5 delta pruning", o);
  }
  {
    scpm::ScpmOptions o = Defaults();
    o.use_vertex_pruning = false;
    o.use_epsilon_pruning = false;
    o.use_delta_pruning = false;
    TimeScpm("no attribute-set pruning at all", o);
  }

  scpm::bench::SectionHeader(
      "quasi-clique miner internals (coverage of densest induced graph)");
  // Use the graph induced by the highest-support attribute (a generic
  // filler word whose induced graph mixes background and communities).
  scpm::AttributeId best = 0;
  std::size_t best_support = 0;
  for (scpm::AttributeId a = 0; a < g_graph->NumAttributes(); ++a) {
    if (g_graph->VerticesWith(a).size() > best_support) {
      best_support = g_graph->VerticesWith(a).size();
      best = a;
    }
  }
  auto sub = scpm::InducedSubgraph::Create(topology,
                                           g_graph->VerticesWith(best));
  if (!sub.ok()) {
    std::cerr << "induction failed: " << sub.status() << "\n";
    return 1;
  }
  std::cout << "induced graph: " << sub->NumVertices() << " vertices, "
            << sub->graph().NumEdges() << " edges (attribute "
            << g_graph->AttributeName(best) << ")\n";
  std::cout << std::left << std::setw(40) << "configuration" << std::right
            << std::setw(12) << "seconds" << std::setw(14) << "candidates"
            << std::setw(10) << "covered" << "\n";
  scpm::QuasiCliqueMinerOptions base;
  base.params = Defaults().quasi_clique;
  TimeMinerFlags("all miner pruning on (default)", base, sub->graph());
  {
    auto o = base;
    o.enable_vertex_reduction = false;
    TimeMinerFlags("no vertex reduction", o, sub->graph());
  }
  {
    auto o = base;
    o.enable_size_bound = false;
    TimeMinerFlags("no size upper bound", o, sub->graph());
  }
  {
    auto o = base;
    o.enable_lookahead = false;
    TimeMinerFlags("no lookahead", o, sub->graph());
  }
  {
    auto o = base;
    o.enable_diameter_filter = false;
    TimeMinerFlags("no diameter filter", o, sub->graph());
  }
  {
    auto o = base;
    o.enable_critical_vertex = false;
    TimeMinerFlags("no critical-vertex jumps", o, sub->graph());
  }
  {
    auto o = base;
    o.order = scpm::SearchOrder::kBfs;
    TimeMinerFlags("BFS candidate order", o, sub->graph());
  }
  return 0;
}
