// Reproduces paper Figures 4, 7, and 9: expected structural correlation
// computed by the simulation model (sim-exp, with stddev) and the
// analytical upper bound (max-exp) as a function of support, for the
// DBLP-, LastFm-, and CiteSeer-like datasets.
//
// Expected shape: max-exp dominates sim-exp everywhere but grows with a
// similar slope (the paper's justification for using delta_lb); both are
// monotone non-decreasing in support.

#include <iomanip>
#include <iostream>
#include <vector>

#include "bench_util.h"

namespace {

void RunCurve(const char* figure, const scpm::SyntheticConfig& config,
              scpm::QuasiCliqueParams params, std::size_t num_samples) {
  scpm::bench::SectionHeader(figure);
  scpm::Result<scpm::SyntheticDataset> dataset =
      scpm::GenerateSynthetic(config);
  if (!dataset.ok()) {
    std::cerr << "generation failed: " << dataset.status() << "\n";
    return;
  }
  scpm::Graph topology = dataset->graph.graph();
  std::cout << "dataset: " << topology.NumVertices() << " vertices, "
            << topology.NumEdges() << " edges; gamma=" << params.gamma
            << " min_size=" << params.min_size << "; r=" << num_samples
            << " simulations per point\n";

  scpm::MaxExpectationModel max_model(topology, params);
  scpm::SimExpectationModel sim_model(topology, params, num_samples,
                                      /*seed=*/12345);

  const scpm::VertexId n = topology.NumVertices();
  std::vector<std::size_t> supports;
  for (int i = 1; i <= 6; ++i) supports.push_back(n * i / 10);

  std::cout << std::right << std::setw(8) << "sigma" << std::setw(14)
            << "sim-exp" << std::setw(12) << "stddev" << std::setw(14)
            << "max-exp" << std::setw(10) << "ratio" << "\n";
  for (std::size_t support : supports) {
    if (support < 2) continue;
    const auto sim = sim_model.EstimateWithStddev(support);
    const double bound = max_model.Expectation(support);
    std::cout << std::setw(8) << support << std::setw(14) << std::scientific
              << std::setprecision(3) << sim.mean << std::setw(12)
              << sim.stddev << std::setw(14) << bound << std::setw(10)
              << std::fixed << std::setprecision(1)
              << (sim.mean > 0 ? bound / sim.mean : 0.0) << "\n";
  }
}

}  // namespace

int main() {
  scpm::bench::Banner(
      "Figures 4 / 7 / 9 — expected structural correlation vs support",
      "sim-exp (Monte-Carlo) vs max-exp (Theorem 2 analytical bound)");
  const double scale = scpm::bench::Scale();
  // Paper: r=1000 (DBLP), r=100 (LastFm); scaled down for the sweep.
  RunCurve("Figure 4 (DBLP-like)", scpm::DblpLikeConfig(scale),
           {.gamma = 0.5, .min_size = 8}, 15);
  RunCurve("Figure 7 (LastFm-like)", scpm::LastFmLikeConfig(scale),
           {.gamma = 0.5, .min_size = 5}, 15);
  RunCurve("Figure 9 (CiteSeer-like)", scpm::CiteSeerLikeConfig(scale),
           {.gamma = 0.5, .min_size = 5}, 15);
  return 0;
}
