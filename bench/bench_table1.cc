// Reproduces paper Table 1: the complete set of structural correlation
// patterns from the Figure-1 running example with sigma_min=3,
// gamma_min=0.6, min_size=4, eps_min=0.5.
//
// Expected (paper ids): five {A} patterns, one {B}, one {A,B}; this is an
// EXACT reproduction (same graph, same parameters, deterministic).

#include <iomanip>
#include <iostream>

#include "bench_util.h"
#include "core/scpm.h"
#include "datasets/paper_example.h"

int main() {
  scpm::bench::Banner(
      "Table 1 — patterns from the Figure-1 example graph",
      "paper: 7 patterns; gamma column is the min-degree ratio");

  const scpm::AttributedGraph graph = scpm::PaperExampleGraph();
  scpm::ScpmOptions options;
  options.quasi_clique.gamma = 0.6;
  options.quasi_clique.min_size = 4;
  options.min_support = 3;
  options.min_epsilon = 0.5;
  options.top_k = 10;

  scpm::ScpmMiner miner(options);
  scpm::Result<scpm::ScpmResult> result = miner.Mine(graph);
  if (!result.ok()) {
    std::cerr << "mining failed: " << result.status() << "\n";
    return 1;
  }

  std::cout << std::left << std::setw(34) << "pattern" << std::right
            << std::setw(6) << "size" << std::setw(8) << "gamma"
            << std::setw(7) << "sigma" << std::setw(8) << "eps" << "\n";
  for (const scpm::StructuralCorrelationPattern& p : result->patterns) {
    std::string attrs = "{";
    for (std::size_t i = 0; i < p.attributes.size(); ++i) {
      if (i) attrs += ",";
      attrs += graph.AttributeName(p.attributes[i]);
    }
    attrs += "}";
    std::string vertices = "{";
    for (std::size_t i = 0; i < p.vertices.size(); ++i) {
      if (i) vertices += ",";
      vertices += std::to_string(scpm::PaperExampleLabel(p.vertices[i]));
    }
    vertices += "}";
    // Look up sigma / eps of the pattern's attribute set.
    std::size_t sigma = 0;
    double eps = 0;
    for (const auto& s : result->attribute_sets) {
      if (s.attributes == p.attributes) {
        sigma = s.support;
        eps = s.epsilon;
      }
    }
    std::cout << std::left << std::setw(34)
              << ("(" + attrs + "," + vertices + ")") << std::right
              << std::setw(6) << p.size() << std::setw(8)
              << std::fixed << std::setprecision(2) << p.min_degree_ratio
              << std::setw(7) << sigma << std::setw(8) << eps << "\n";
  }
  std::cout << "\ntotal patterns: " << result->patterns.size()
            << " (paper: 7)\n";
  return 0;
}
