#include "util/hybrid_set.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <utility>

#include "util/logging.h"
#include "util/simd_ops.h"
#include "util/sorted_ops.h"

namespace scpm {

// ------------------------------------------------------------ VertexBitset

VertexBitset VertexBitset::FromSorted(const VertexSet& v, VertexId universe) {
  VertexBitset out(universe);
  for (VertexId x : v) {
    SCPM_CHECK(x < universe) << "vertex id out of bitmap universe";
    out.Set(x);
  }
  return out;
}

std::size_t VertexBitset::Count() const {
  return ActiveSimdOps().popcount_words(words_.data(), words_.size());
}

std::size_t VertexBitset::And(const VertexBitset& a, const VertexBitset& b,
                              VertexBitset* out) {
  SCPM_CHECK(a.universe_ == b.universe_) << "bitmap universes differ";
  if (out->universe_ != a.universe_) *out = VertexBitset(a.universe_);
  return ActiveSimdOps().and_words(a.words_.data(), b.words_.data(),
                                   out->words_.data(), a.words_.size());
}

std::size_t VertexBitset::AndCount(const VertexBitset& a,
                                   const VertexBitset& b) {
  SCPM_CHECK(a.universe_ == b.universe_) << "bitmap universes differ";
  return ActiveSimdOps().and_count_words(a.words_.data(), b.words_.data(),
                                         a.words_.size());
}

std::size_t VertexBitset::AndNot(const VertexBitset& a, const VertexBitset& b,
                                 VertexBitset* out) {
  SCPM_CHECK(a.universe_ == b.universe_) << "bitmap universes differ";
  if (out->universe_ != a.universe_) *out = VertexBitset(a.universe_);
  return ActiveSimdOps().andnot_words(a.words_.data(), b.words_.data(),
                                      out->words_.data(), a.words_.size());
}

void VertexBitset::AppendTo(VertexSet* out) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const int tz = std::countr_zero(bits);
      out->push_back(static_cast<VertexId>(w * 64 + tz));
      bits &= bits - 1;
    }
  }
}

std::size_t IntersectSortedWithBitsCount(const VertexSet& sorted,
                                         const VertexBitset& bits) {
  std::size_t count = 0;
  for (VertexId v : sorted) count += bits.Test(v) ? 1 : 0;
  return count;
}

void IntersectSortedWithBits(const VertexSet& sorted, const VertexBitset& bits,
                             VertexSet* out) {
  out->clear();
  for (VertexId v : sorted) {
    if (bits.Test(v)) out->push_back(v);
  }
}

// -------------------------------------------------------- ChunkedVertexSet

namespace {

bool ChunkTest(const ChunkedVertexSet::Chunk& c, std::uint16_t low) {
  if (c.dense()) return (c.words[low / 64] >> (low % 64)) & 1u;
  return std::binary_search(c.values.begin(), c.values.end(), low);
}

/// Demotes a chunk computed into its bitmap payload back to the sorted
/// u16 array when its cardinality falls below the per-chunk knee — the
/// same canonical-form rule FromSorted applies, so chunk payloads are a
/// pure function of the chunk cardinality everywhere. The word buffer's
/// capacity is kept for reuse by the next intersection into this slot.
void CanonicalizeChunkFromWords(ChunkedVertexSet::Chunk* c) {
  if (c->dense()) return;
  c->values.reserve(c->count);
  for (std::size_t w = 0; w < c->words.size(); ++w) {
    std::uint64_t bits = c->words[w];
    while (bits != 0) {
      const int tz = std::countr_zero(bits);
      c->values.push_back(static_cast<std::uint16_t>(w * 64 + tz));
      bits &= bits - 1;
    }
  }
  // The stale word buffer is intentionally kept: Chunk::dense() reads
  // only `count`, and the buffer's capacity feeds the next kernel that
  // recycles this slot.
}

/// Reuses (or grows) chunks[index] as the target of a chunk kernel:
/// payload buffers keep their capacity across calls, so intersections
/// into a recycled ChunkedVertexSet with a stable (or shrinking-prefix)
/// populated-chunk count allocate nothing — that, not the AND itself,
/// would otherwise dominate the mid-density kernels. (The final
/// resize(used) does free slots past the result's chunk count, so a
/// shrink-then-grow sequence re-pays their allocation; kept simple
/// because chunks() must stay a plain vector for the walk kernels.)
ChunkedVertexSet::Chunk& RecycleChunkSlot(
    std::vector<ChunkedVertexSet::Chunk>* chunks, std::size_t index,
    std::uint32_t key) {
  if (index == chunks->size()) chunks->emplace_back();
  ChunkedVertexSet::Chunk& c = (*chunks)[index];
  c.key = key;
  c.count = 0;
  c.values.clear();
  return c;
}

/// Sizes a recycled chunk's word buffer for a dense kernel. Only the
/// first use of a slot pays the allocation (and value-init); afterwards
/// the resize is a no-op and the kernel overwrites every word it reads.
void PrepareChunkWords(ChunkedVertexSet::Chunk* c) {
  c->words.resize(ChunkedVertexSet::kChunkWords);
}

}  // namespace

ChunkedVertexSet ChunkedVertexSet::FromSorted(const VertexSet& v) {
  ChunkedVertexSet out;
  out.size_ = v.size();
  std::size_t i = 0;
  while (i < v.size()) {
    const std::uint32_t key = v[i] >> kChunkBits;
    std::size_t j = i + 1;
    while (j < v.size() && (v[j] >> kChunkBits) == key) ++j;
    Chunk c;
    c.key = key;
    c.count = static_cast<std::uint32_t>(j - i);
    if (c.count >= kChunkDenseMin) {
      c.words.assign(kChunkWords, 0);
      for (std::size_t k = i; k < j; ++k) {
        const auto low = static_cast<std::uint16_t>(v[k]);
        c.words[low / 64] |= std::uint64_t{1} << (low % 64);
      }
    } else {
      c.values.reserve(c.count);
      for (std::size_t k = i; k < j; ++k) {
        c.values.push_back(static_cast<std::uint16_t>(v[k]));
      }
    }
    out.chunks_.push_back(std::move(c));
    i = j;
  }
  return out;
}

bool ChunkedVertexSet::Test(VertexId v) const {
  const std::uint32_t key = v >> kChunkBits;
  const auto it = std::lower_bound(
      chunks_.begin(), chunks_.end(), key,
      [](const Chunk& c, std::uint32_t k) { return c.key < k; });
  if (it == chunks_.end() || it->key != key) return false;
  return ChunkTest(*it, static_cast<std::uint16_t>(v));
}

void ChunkedVertexSet::AppendTo(VertexSet* out) const {
  for (const Chunk& c : chunks_) {
    const VertexId base = static_cast<VertexId>(c.key) << kChunkBits;
    if (c.dense()) {
      for (std::size_t w = 0; w < c.words.size(); ++w) {
        std::uint64_t bits = c.words[w];
        while (bits != 0) {
          const int tz = std::countr_zero(bits);
          out->push_back(base + static_cast<VertexId>(w * 64 + tz));
          bits &= bits - 1;
        }
      }
    } else {
      for (std::uint16_t low : c.values) out->push_back(base | low);
    }
  }
}

std::size_t ChunkedVertexSet::And(const ChunkedVertexSet& a,
                                  const ChunkedVertexSet& b,
                                  ChunkedVertexSet* out) {
  out->size_ = 0;
  std::size_t used = 0;
  const SimdOps& ops = ActiveSimdOps();
  std::size_t ia = 0, ib = 0;
  while (ia < a.chunks_.size() && ib < b.chunks_.size()) {
    const Chunk& ca = a.chunks_[ia];
    const Chunk& cb = b.chunks_[ib];
    if (ca.key < cb.key) {
      ++ia;
      continue;
    }
    if (cb.key < ca.key) {
      ++ib;
      continue;
    }
    Chunk& c = RecycleChunkSlot(&out->chunks_, used, ca.key);
    if (ca.dense() && cb.dense()) {
      PrepareChunkWords(&c);
      c.count = static_cast<std::uint32_t>(ops.and_words(
          ca.words.data(), cb.words.data(), c.words.data(), kChunkWords));
      CanonicalizeChunkFromWords(&c);
    } else if (ca.dense() != cb.dense()) {
      const Chunk& sp = ca.dense() ? cb : ca;
      const Chunk& de = ca.dense() ? ca : cb;
      c.values.reserve(sp.values.size());
      for (std::uint16_t low : sp.values) {
        if ((de.words[low / 64] >> (low % 64)) & 1u) c.values.push_back(low);
      }
      c.count = static_cast<std::uint32_t>(c.values.size());
    } else {
      c.count = static_cast<std::uint32_t>(
          SortedIntersectAppend(ca.values, cb.values, &c.values));
    }
    if (c.count > 0) {
      out->size_ += c.count;
      ++used;
    }
    ++ia;
    ++ib;
  }
  out->chunks_.resize(used);
  return out->size_;
}

std::size_t ChunkedVertexSet::AndCount(const ChunkedVertexSet& a,
                                       const ChunkedVertexSet& b) {
  const SimdOps& ops = ActiveSimdOps();
  std::size_t count = 0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.chunks_.size() && ib < b.chunks_.size()) {
    const Chunk& ca = a.chunks_[ia];
    const Chunk& cb = b.chunks_[ib];
    if (ca.key < cb.key) {
      ++ia;
      continue;
    }
    if (cb.key < ca.key) {
      ++ib;
      continue;
    }
    if (ca.dense() && cb.dense()) {
      count +=
          ops.and_count_words(ca.words.data(), cb.words.data(), kChunkWords);
    } else if (ca.dense() != cb.dense()) {
      const Chunk& sp = ca.dense() ? cb : ca;
      const Chunk& de = ca.dense() ? ca : cb;
      for (std::uint16_t low : sp.values) {
        count += (de.words[low / 64] >> (low % 64)) & 1u;
      }
    } else {
      count += SortedIntersectSize(ca.values, cb.values);
    }
    ++ia;
    ++ib;
  }
  return count;
}

std::size_t ChunkedVertexSet::AndBits(const ChunkedVertexSet& a,
                                      const VertexBitset& bits,
                                      ChunkedVertexSet* out) {
  out->size_ = 0;
  std::size_t used = 0;
  const SimdOps& ops = ActiveSimdOps();
  for (const Chunk& ca : a.chunks_) {
    const std::size_t offset = static_cast<std::size_t>(ca.key) * kChunkWords;
    if (offset >= bits.num_words()) break;  // chunks beyond the universe
    const std::size_t avail = std::min(kChunkWords, bits.num_words() - offset);
    const std::uint64_t* slice = bits.data() + offset;
    Chunk& c = RecycleChunkSlot(&out->chunks_, used, ca.key);
    if (ca.dense()) {
      // Chunk words past `avail` hold no members (ids < universe), so the
      // shorter AND is exact; the recycled tail words are zeroed by hand.
      PrepareChunkWords(&c);
      c.count = static_cast<std::uint32_t>(
          ops.and_words(ca.words.data(), slice, c.words.data(), avail));
      std::fill(c.words.begin() + static_cast<std::ptrdiff_t>(avail),
                c.words.end(), 0);
      CanonicalizeChunkFromWords(&c);
    } else {
      c.values.reserve(ca.values.size());
      for (std::uint16_t low : ca.values) {
        const std::size_t w = low / 64;
        if (w < avail && ((slice[w] >> (low % 64)) & 1u)) {
          c.values.push_back(low);
        }
      }
      c.count = static_cast<std::uint32_t>(c.values.size());
    }
    if (c.count > 0) {
      out->size_ += c.count;
      ++used;
    }
  }
  out->chunks_.resize(used);
  return out->size_;
}

std::size_t ChunkedVertexSet::AndBitsCount(const ChunkedVertexSet& a,
                                           const VertexBitset& bits) {
  const SimdOps& ops = ActiveSimdOps();
  std::size_t count = 0;
  for (const Chunk& ca : a.chunks_) {
    const std::size_t offset = static_cast<std::size_t>(ca.key) * kChunkWords;
    if (offset >= bits.num_words()) break;
    const std::size_t avail = std::min(kChunkWords, bits.num_words() - offset);
    const std::uint64_t* slice = bits.data() + offset;
    if (ca.dense()) {
      count += ops.and_count_words(ca.words.data(), slice, avail);
    } else {
      for (std::uint16_t low : ca.values) {
        const std::size_t w = low / 64;
        if (w < avail) count += (slice[w] >> (low % 64)) & 1u;
      }
    }
  }
  return count;
}

// --------------------------------------------------------- HybridVertexSet

namespace {

std::atomic<bool> g_chunked_enabled{true};

/// True when SortedIntersect will take its galloping path (it returns
/// early on an empty operand, before the skew check).
bool WouldGallop(std::size_t a, std::size_t b) {
  return a != 0 && b != 0 &&
         (a * kGallopSkew < b || b * kGallopSkew < a);
}

/// out = sorted ∩ chunked. Walks the sorted vector and the chunk list in
/// lockstep (both ascending), probing inside the matching chunk.
void IntersectSortedWithChunked(const VertexSet& sorted,
                                const ChunkedVertexSet& chunked,
                                VertexSet* out) {
  out->clear();
  const auto& chunks = chunked.chunks();
  std::size_t ci = 0;
  for (VertexId v : sorted) {
    const std::uint32_t key = v >> ChunkedVertexSet::kChunkBits;
    while (ci < chunks.size() && chunks[ci].key < key) ++ci;
    if (ci == chunks.size()) break;
    if (chunks[ci].key != key) continue;
    if (ChunkTest(chunks[ci], static_cast<std::uint16_t>(v))) {
      out->push_back(v);
    }
  }
}

std::size_t IntersectSortedWithChunkedCount(const VertexSet& sorted,
                                            const ChunkedVertexSet& chunked) {
  const auto& chunks = chunked.chunks();
  std::size_t ci = 0;
  std::size_t count = 0;
  for (VertexId v : sorted) {
    const std::uint32_t key = v >> ChunkedVertexSet::kChunkBits;
    while (ci < chunks.size() && chunks[ci].key < key) ++ci;
    if (ci == chunks.size()) break;
    if (chunks[ci].key != key) continue;
    count += ChunkTest(chunks[ci], static_cast<std::uint16_t>(v)) ? 1 : 0;
  }
  return count;
}

}  // namespace

void HybridVertexSet::SetChunkedEnabled(bool enabled) {
  g_chunked_enabled.store(enabled, std::memory_order_release);
}

bool HybridVertexSet::ChunkedEnabled() {
  return g_chunked_enabled.load(std::memory_order_acquire);
}

bool HybridVertexSet::ShouldBeChunked(std::size_t size, VertexId universe) {
  return universe >= kMinChunkedUniverse &&
         size * kChunkedFraction >= universe &&
         !ShouldBeDense(size, universe) && ChunkedEnabled();
}

HybridVertexSet::Repr HybridVertexSet::PickRepresentation(std::size_t size,
                                                          VertexId universe) {
  if (ShouldBeDense(size, universe)) return Repr::kDense;
  if (ShouldBeChunked(size, universe)) return Repr::kChunked;
  return Repr::kSparse;
}

HybridVertexSet HybridVertexSet::View(const VertexSet* v, VertexId universe) {
  HybridVertexSet out;
  out.view_ = v;
  out.size_ = v->size();
  out.universe_ = universe;
  return out;
}

HybridVertexSet HybridVertexSet::FromVector(VertexSet v, VertexId universe,
                                            SetOpStats* stats) {
  HybridVertexSet out;
  out.size_ = v.size();
  out.universe_ = universe;
  out.vec_ = std::move(v);
  out.Canonicalize(stats);
  return out;
}

void HybridVertexSet::Normalize(SetOpStats* stats) { Canonicalize(stats); }

void HybridVertexSet::Canonicalize(SetOpStats* stats) {
  const Repr wanted = PickRepresentation(size_, universe_);
  if (wanted == repr_) return;
  switch (wanted) {
    case Repr::kDense:
      if (repr_ == Repr::kChunked) {
        vec_.clear();
        vec_.reserve(size_);
        chunks_.AppendTo(&vec_);
        chunks_.Clear();
        bits_ = VertexBitset::FromSorted(vec_, universe_);
      } else {
        bits_ = VertexBitset::FromSorted(sorted(), universe_);
      }
      view_ = nullptr;
      vec_.clear();
      vec_.shrink_to_fit();
      if (stats != nullptr) ++stats->dense_conversions;
      break;
    case Repr::kChunked:
      if (repr_ == Repr::kDense) {
        vec_.clear();
        vec_.reserve(size_);
        bits_.AppendTo(&vec_);
        bits_ = VertexBitset();
        chunks_ = ChunkedVertexSet::FromSorted(vec_);
      } else {
        chunks_ = ChunkedVertexSet::FromSorted(sorted());
      }
      view_ = nullptr;
      vec_.clear();
      vec_.shrink_to_fit();
      if (stats != nullptr) ++stats->chunked_conversions;
      break;
    case Repr::kSparse:
      // Demotion: materialize the sorted vector. Not counted — only
      // materializations *into* the compressed representations are
      // conversions.
      vec_.clear();
      vec_.reserve(size_);
      if (repr_ == Repr::kDense) {
        bits_.AppendTo(&vec_);
        bits_ = VertexBitset();
      } else {
        chunks_.AppendTo(&vec_);
        chunks_.Clear();
      }
      view_ = nullptr;
      break;
  }
  repr_ = wanted;
}

void HybridVertexSet::Intersect(const HybridVertexSet& a,
                                const HybridVertexSet& b, HybridVertexSet* out,
                                SetOpStats* stats) {
  const VertexId universe = a.universe_ != 0 ? a.universe_ : b.universe_;
  out->view_ = nullptr;
  out->universe_ = universe;
  if (a.dense() && b.dense()) {
    if (stats != nullptr) ++stats->bitmap_intersections;
    out->size_ = VertexBitset::And(a.bits_, b.bits_, &out->bits_);
    out->vec_.clear();
    out->chunks_.Clear();
    out->repr_ = Repr::kDense;
  } else if (a.chunked() && b.chunked()) {
    if (stats != nullptr) ++stats->chunked_intersections;
    out->size_ = ChunkedVertexSet::And(a.chunks_, b.chunks_, &out->chunks_);
    out->vec_.clear();
    out->bits_ = VertexBitset();
    out->repr_ = Repr::kChunked;
  } else if ((a.chunked() && b.dense()) || (a.dense() && b.chunked())) {
    // Chunk-wise AND against the word slices of the full-universe bitmap.
    if (stats != nullptr) ++stats->chunked_intersections;
    const ChunkedVertexSet& chunks = a.chunked() ? a.chunks_ : b.chunks_;
    const VertexBitset& bits = a.dense() ? a.bits_ : b.bits_;
    out->size_ = ChunkedVertexSet::AndBits(chunks, bits, &out->chunks_);
    out->vec_.clear();
    out->bits_ = VertexBitset();
    out->repr_ = Repr::kChunked;
  } else if (a.dense() || b.dense()) {
    // Probe the bitmap once per element of the sparse side.
    if (stats != nullptr) ++stats->bitmap_intersections;
    const HybridVertexSet& sparse = a.dense() ? b : a;
    const VertexBitset& bits = a.dense() ? a.bits_ : b.bits_;
    IntersectSortedWithBits(sparse.sorted(), bits, &out->vec_);
    out->size_ = out->vec_.size();
    out->bits_ = VertexBitset();
    out->chunks_.Clear();
    out->repr_ = Repr::kSparse;
  } else if (a.chunked() || b.chunked()) {
    if (stats != nullptr) ++stats->chunked_intersections;
    const HybridVertexSet& sparse = a.chunked() ? b : a;
    const ChunkedVertexSet& chunks = a.chunked() ? a.chunks_ : b.chunks_;
    IntersectSortedWithChunked(sparse.sorted(), chunks, &out->vec_);
    out->size_ = out->vec_.size();
    out->bits_ = VertexBitset();
    out->chunks_.Clear();
    out->repr_ = Repr::kSparse;
  } else {
    if (stats != nullptr && WouldGallop(a.size_, b.size_)) {
      ++stats->galloping_intersections;
    }
    SortedIntersect(a.sorted(), b.sorted(), &out->vec_);
    out->size_ = out->vec_.size();
    out->bits_ = VertexBitset();
    out->chunks_.Clear();
    out->repr_ = Repr::kSparse;
  }
  // Re-establish the canonical-representation invariant: the kernels
  // above produce whatever their operands dictated; the density rule
  // decides what the result is stored as.
  out->Canonicalize(stats);
}

std::size_t HybridVertexSet::IntersectSize(const HybridVertexSet& a,
                                           const HybridVertexSet& b,
                                           SetOpStats* stats) {
  if (a.dense() && b.dense()) {
    if (stats != nullptr) ++stats->bitmap_intersections;
    return VertexBitset::AndCount(a.bits_, b.bits_);
  }
  if (a.chunked() && b.chunked()) {
    if (stats != nullptr) ++stats->chunked_intersections;
    return ChunkedVertexSet::AndCount(a.chunks_, b.chunks_);
  }
  if ((a.chunked() && b.dense()) || (a.dense() && b.chunked())) {
    if (stats != nullptr) ++stats->chunked_intersections;
    const ChunkedVertexSet& chunks = a.chunked() ? a.chunks_ : b.chunks_;
    const VertexBitset& bits = a.dense() ? a.bits_ : b.bits_;
    return ChunkedVertexSet::AndBitsCount(chunks, bits);
  }
  if (a.dense() || b.dense()) {
    if (stats != nullptr) ++stats->bitmap_intersections;
    const HybridVertexSet& sparse = a.dense() ? b : a;
    const VertexBitset& bits = a.dense() ? a.bits_ : b.bits_;
    return IntersectSortedWithBitsCount(sparse.sorted(), bits);
  }
  if (a.chunked() || b.chunked()) {
    if (stats != nullptr) ++stats->chunked_intersections;
    const HybridVertexSet& sparse = a.chunked() ? b : a;
    const ChunkedVertexSet& chunks = a.chunked() ? a.chunks_ : b.chunks_;
    return IntersectSortedWithChunkedCount(sparse.sorted(), chunks);
  }
  return SortedIntersectSize(a.sorted(), b.sorted());
}

bool HybridVertexSet::Contains(VertexId v) const {
  if (dense()) return v < universe_ && bits_.Test(v);
  if (chunked()) return chunks_.Test(v);
  return SortedContains(sorted(), v);
}

void HybridVertexSet::AppendTo(VertexSet* out) const {
  if (dense()) {
    bits_.AppendTo(out);
    return;
  }
  if (chunked()) {
    chunks_.AppendTo(out);
    return;
  }
  const VertexSet& src = sorted();
  out->insert(out->end(), src.begin(), src.end());
}

VertexSet HybridVertexSet::ToVector() const {
  VertexSet out;
  out.reserve(size_);
  AppendTo(&out);
  return out;
}

VertexSet HybridVertexSet::TakeVector() {
  VertexSet out;
  if (dense() || chunked()) {
    out.reserve(size_);
    AppendTo(&out);
  } else if (view_ != nullptr) {
    out = *view_;
  } else {
    out = std::move(vec_);
  }
  *this = HybridVertexSet();
  return out;
}

}  // namespace scpm
