#include "util/hybrid_set.h"

#include <bit>
#include <utility>

#include "util/logging.h"
#include "util/sorted_ops.h"

namespace scpm {

VertexBitset VertexBitset::FromSorted(const VertexSet& v, VertexId universe) {
  VertexBitset out(universe);
  for (VertexId x : v) {
    SCPM_CHECK(x < universe) << "vertex id out of bitmap universe";
    out.Set(x);
  }
  return out;
}

std::size_t VertexBitset::Count() const {
  std::size_t count = 0;
  for (std::uint64_t w : words_) count += std::popcount(w);
  return count;
}

std::size_t VertexBitset::And(const VertexBitset& a, const VertexBitset& b,
                              VertexBitset* out) {
  SCPM_CHECK(a.universe_ == b.universe_) << "bitmap universes differ";
  if (out->universe_ != a.universe_) *out = VertexBitset(a.universe_);
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    const std::uint64_t v = a.words_[w] & b.words_[w];
    out->words_[w] = v;
    count += std::popcount(v);
  }
  return count;
}

std::size_t VertexBitset::AndCount(const VertexBitset& a,
                                   const VertexBitset& b) {
  SCPM_CHECK(a.universe_ == b.universe_) << "bitmap universes differ";
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    count += std::popcount(a.words_[w] & b.words_[w]);
  }
  return count;
}

std::size_t VertexBitset::AndNot(const VertexBitset& a, const VertexBitset& b,
                                 VertexBitset* out) {
  SCPM_CHECK(a.universe_ == b.universe_) << "bitmap universes differ";
  if (out->universe_ != a.universe_) *out = VertexBitset(a.universe_);
  std::size_t count = 0;
  for (std::size_t w = 0; w < a.words_.size(); ++w) {
    const std::uint64_t v = a.words_[w] & ~b.words_[w];
    out->words_[w] = v;
    count += std::popcount(v);
  }
  return count;
}

void VertexBitset::AppendTo(VertexSet* out) const {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t bits = words_[w];
    while (bits != 0) {
      const int tz = std::countr_zero(bits);
      out->push_back(static_cast<VertexId>(w * 64 + tz));
      bits &= bits - 1;
    }
  }
}

std::size_t IntersectSortedWithBitsCount(const VertexSet& sorted,
                                         const VertexBitset& bits) {
  std::size_t count = 0;
  for (VertexId v : sorted) count += bits.Test(v) ? 1 : 0;
  return count;
}

void IntersectSortedWithBits(const VertexSet& sorted, const VertexBitset& bits,
                             VertexSet* out) {
  out->clear();
  for (VertexId v : sorted) {
    if (bits.Test(v)) out->push_back(v);
  }
}

HybridVertexSet HybridVertexSet::View(const VertexSet* v, VertexId universe) {
  HybridVertexSet out;
  out.view_ = v;
  out.size_ = v->size();
  out.universe_ = universe;
  return out;
}

HybridVertexSet HybridVertexSet::FromVector(VertexSet v, VertexId universe,
                                            SetOpStats* stats) {
  HybridVertexSet out;
  out.size_ = v.size();
  out.universe_ = universe;
  if (ShouldBeDense(v.size(), universe)) {
    out.bits_ = VertexBitset::FromSorted(v, universe);
    out.dense_ = true;
    if (stats != nullptr) ++stats->dense_conversions;
  } else {
    out.vec_ = std::move(v);
  }
  return out;
}

void HybridVertexSet::Normalize(SetOpStats* stats) {
  if (dense_ || !ShouldBeDense(size_, universe_)) return;
  bits_ = VertexBitset::FromSorted(sorted(), universe_);
  dense_ = true;
  view_ = nullptr;
  vec_.clear();
  vec_.shrink_to_fit();
  if (stats != nullptr) ++stats->dense_conversions;
}

namespace {

/// True when SortedIntersect will take its galloping path (it returns
/// early on an empty operand, before the skew check).
bool WouldGallop(std::size_t a, std::size_t b) {
  return a != 0 && b != 0 &&
         (a * kGallopSkew < b || b * kGallopSkew < a);
}

}  // namespace

void HybridVertexSet::Intersect(const HybridVertexSet& a,
                                const HybridVertexSet& b, HybridVertexSet* out,
                                SetOpStats* stats) {
  const VertexId universe = a.universe_ != 0 ? a.universe_ : b.universe_;
  out->view_ = nullptr;
  out->universe_ = universe;
  if (a.dense_ && b.dense_) {
    if (stats != nullptr) ++stats->bitmap_intersections;
    const std::size_t count = VertexBitset::And(a.bits_, b.bits_, &out->bits_);
    out->size_ = count;
    if (ShouldBeDense(count, universe)) {
      out->dense_ = true;
      out->vec_.clear();
      return;
    }
    // The result fell below the density knee: materialize the sorted
    // vector and drop the bitmap.
    out->vec_.clear();
    out->bits_.AppendTo(&out->vec_);
    out->bits_ = VertexBitset();
    out->dense_ = false;
    return;
  }
  out->dense_ = false;
  out->bits_ = VertexBitset();
  if (a.dense_ != b.dense_) {
    // Probe the bitmap once per element of the sparse side.
    if (stats != nullptr) ++stats->bitmap_intersections;
    const HybridVertexSet& sparse = a.dense_ ? b : a;
    const VertexBitset& bits = a.dense_ ? a.bits_ : b.bits_;
    IntersectSortedWithBits(sparse.sorted(), bits, &out->vec_);
  } else {
    if (stats != nullptr && WouldGallop(a.size_, b.size_)) {
      ++stats->galloping_intersections;
    }
    SortedIntersect(a.sorted(), b.sorted(), &out->vec_);
  }
  out->size_ = out->vec_.size();
  // With both operands at the same universe a sparse-producing kernel can
  // never cross the density knee (the result is no larger than a sparse
  // input), so this normalization only fires for mixed-universe operands
  // — but it keeps the canonical-representation invariant unconditional.
  out->Normalize(stats);
}

std::size_t HybridVertexSet::IntersectSize(const HybridVertexSet& a,
                                           const HybridVertexSet& b,
                                           SetOpStats* stats) {
  if (a.dense_ && b.dense_) {
    if (stats != nullptr) ++stats->bitmap_intersections;
    return VertexBitset::AndCount(a.bits_, b.bits_);
  }
  if (a.dense_ != b.dense_) {
    if (stats != nullptr) ++stats->bitmap_intersections;
    const HybridVertexSet& sparse = a.dense_ ? b : a;
    const VertexBitset& bits = a.dense_ ? a.bits_ : b.bits_;
    return IntersectSortedWithBitsCount(sparse.sorted(), bits);
  }
  return SortedIntersectSize(a.sorted(), b.sorted());
}

bool HybridVertexSet::Contains(VertexId v) const {
  if (dense_) return v < universe_ && bits_.Test(v);
  return SortedContains(sorted(), v);
}

void HybridVertexSet::AppendTo(VertexSet* out) const {
  if (dense_) {
    bits_.AppendTo(out);
    return;
  }
  const VertexSet& src = sorted();
  out->insert(out->end(), src.begin(), src.end());
}

VertexSet HybridVertexSet::ToVector() const {
  VertexSet out;
  out.reserve(size_);
  AppendTo(&out);
  return out;
}

VertexSet HybridVertexSet::TakeVector() {
  VertexSet out;
  if (dense_) {
    out.reserve(size_);
    bits_.AppendTo(&out);
  } else if (view_ != nullptr) {
    out = *view_;
  } else {
    out = std::move(vec_);
  }
  *this = HybridVertexSet();
  return out;
}

}  // namespace scpm
