#include "util/simd_ops.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace scpm {
namespace {

std::size_t ScalarAnd(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* out, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = a[i] & b[i];
    out[i] = v;
    count += std::popcount(v);
  }
  return count;
}

std::size_t ScalarAndCount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += std::popcount(a[i] & b[i]);
  return count;
}

std::size_t ScalarAndNot(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = a[i] & ~b[i];
    out[i] = v;
    count += std::popcount(v);
  }
  return count;
}

std::size_t ScalarPopcount(const std::uint64_t* w, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += std::popcount(w[i]);
  return count;
}

constexpr SimdOps kScalarOps = {"scalar", &ScalarAnd, &ScalarAndCount,
                                &ScalarAndNot, &ScalarPopcount};

/// Automatic choice: SCPM_SIMD env override first, then the best table
/// the CPU supports. Pure function of the environment, so every call —
/// and every thread — resolves the same table.
const SimdOps* ResolveAutomatic() {
  const char* env = std::getenv("SCPM_SIMD");
  if (env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return &kScalarOps;
    if (std::strcmp(env, "avx2") == 0 && Avx2SimdOps() != nullptr) {
      return Avx2SimdOps();
    }
    // "auto" (or an unknown value) falls through to detection.
  }
  if (const SimdOps* avx2 = Avx2SimdOps()) return avx2;
  return &kScalarOps;
}

std::atomic<const SimdOps*> g_active{nullptr};

}  // namespace

const SimdOps& ScalarSimdOps() { return kScalarOps; }

const SimdOps& ActiveSimdOps() {
  const SimdOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    // Benign race: concurrent first calls resolve the same table.
    ops = ResolveAutomatic();
    g_active.store(ops, std::memory_order_release);
  }
  return *ops;
}

const char* SimdDispatchName() { return ActiveSimdOps().name; }

void SetSimdDispatch(bool enable_simd) {
  g_active.store(enable_simd ? ResolveAutomatic() : &kScalarOps,
                 std::memory_order_release);
}

}  // namespace scpm
