// Runtime-dispatched SIMD kernels for the 64-bit word loops.
//
// Every dense set operation in the engine — VertexBitset AND / ANDNOT /
// popcount, and the per-chunk bitmap kernels of ChunkedVertexSet — bottoms
// out in a loop over u64 words. This header exposes those loops as a table
// of function pointers (SimdOps) with two interchangeable implementations:
// a portable scalar table that compiles everywhere, and an AVX2 table
// living in its own translation unit (src/util/simd_ops_avx2.cc, the only
// TU built with -mavx2; see SCPM_ENABLE_AVX2 in CMakeLists.txt) that is
// selected at runtime via cpuid. The same table shape is NEON-ready: a
// future simd_ops_neon.cc slots in as a third provider without touching
// any caller.
//
// Determinism contract: every implementation is bit-exact — identical
// output words and identical popcounts for identical inputs — so the
// dispatch choice can never change mined output or any counter. The
// active table is resolved once per process (env override SCPM_SIMD,
// then cpuid) and only changes through SetSimdDispatch(), which callers
// must not invoke concurrently with mining.

#ifndef SCPM_UTIL_SIMD_OPS_H_
#define SCPM_UTIL_SIMD_OPS_H_

#include <cstddef>
#include <cstdint>

namespace scpm {

/// A dispatchable table of word-array kernels. All entries are bit-exact
/// across implementations (see file comment).
struct SimdOps {
  /// Implementation tag ("scalar", "avx2") for logs and bench JSON.
  const char* name;

  /// out[i] = a[i] & b[i] for i < n; returns the total popcount of out.
  /// `out` may alias `a` or `b`.
  std::size_t (*and_words)(const std::uint64_t* a, const std::uint64_t* b,
                           std::uint64_t* out, std::size_t n);

  /// Popcount of a[i] & b[i] over i < n without materializing the result.
  std::size_t (*and_count_words)(const std::uint64_t* a,
                                 const std::uint64_t* b, std::size_t n);

  /// out[i] = a[i] & ~b[i] for i < n; returns the total popcount of out.
  /// `out` may alias `a` or `b`.
  std::size_t (*andnot_words)(const std::uint64_t* a, const std::uint64_t* b,
                              std::uint64_t* out, std::size_t n);

  /// Total popcount of w[0..n).
  std::size_t (*popcount_words)(const std::uint64_t* w, std::size_t n);
};

/// The portable scalar table — always available, and the reference the
/// equivalence fuzz suite compares every other table against.
const SimdOps& ScalarSimdOps();

/// The AVX2 table, or null when the AVX2 TU was compiled without
/// -mavx2 (SCPM_ENABLE_AVX2=OFF) or the running CPU lacks AVX2.
const SimdOps* Avx2SimdOps();

/// The table the word kernels dispatch to. Resolved once per process:
/// the SCPM_SIMD environment variable ("scalar" pins the scalar table,
/// "avx2" requests AVX2) wins, otherwise the best table the CPU supports.
const SimdOps& ActiveSimdOps();

/// ActiveSimdOps().name — the tag the CLI counters line and the bench
/// JSON use to attribute rows to a kernel variant.
const char* SimdDispatchName();

/// A/B escape hatch (scpm_cli --simd 0|1): false pins the scalar table,
/// true restores the automatic choice (which still honors SCPM_SIMD).
/// Call before mining, never concurrently with it.
void SetSimdDispatch(bool enable_simd);

}  // namespace scpm

#endif  // SCPM_UTIL_SIMD_OPS_H_
