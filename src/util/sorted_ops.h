// Set algebra on sorted, duplicate-free vectors.
//
// Sorted u32 vectors are the library's universal set representation:
// adjacency lists, attribute tidsets, induced vertex sets, quasi-clique
// candidate sets. These routines are the inner loops of the miners, so they
// are header-only and branch-light merge scans with galloping fallbacks for
// very asymmetric inputs.

#ifndef SCPM_UTIL_SORTED_OPS_H_
#define SCPM_UTIL_SORTED_OPS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace scpm {

/// True iff `v` is strictly increasing (sorted and duplicate-free).
template <typename T>
bool IsStrictlySorted(const std::vector<T>& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] >= v[i]) return false;
  }
  return true;
}

/// Binary-search membership test.
template <typename T>
bool SortedContains(const std::vector<T>& v, T x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// Size skew at which the intersection routines (here and in
/// util/hybrid_set) switch from the linear merge to galloping probes of
/// the larger side.
inline constexpr std::size_t kGallopSkew = 32;

namespace internal {

/// Galloping lower_bound: advances `it` to the first element >= x.
template <typename It, typename T>
It GallopTo(It it, It end, T x) {
  std::size_t step = 1;
  It probe = it;
  while (probe != end && *probe < x) {
    it = probe;
    if (static_cast<std::size_t>(end - probe) <= step) {
      probe = end;
      break;
    }
    probe += step;
    step <<= 1;
  }
  return std::lower_bound(it, probe == end ? end : probe + 1, x);
}

}  // namespace internal

/// Appends a ∩ b to `out` without clearing it; returns the number of
/// elements appended. Same merge/gallop policy as SortedIntersect. The
/// per-chunk kernels of ChunkedVertexSet use this to accumulate one
/// output vector across chunks. `out` may alias neither input.
template <typename T>
std::size_t SortedIntersectAppend(const std::vector<T>& a,
                                  const std::vector<T>& b,
                                  std::vector<T>* out) {
  const std::size_t before = out->size();
  if (a.empty() || b.empty()) return 0;
  // Use galloping when one side is much smaller.
  if (a.size() * kGallopSkew < b.size() || b.size() * kGallopSkew < a.size()) {
    const std::vector<T>& small = a.size() < b.size() ? a : b;
    const std::vector<T>& large = a.size() < b.size() ? b : a;
    auto it = large.begin();
    for (T x : small) {
      it = internal::GallopTo(it, large.end(), x);
      if (it == large.end()) break;
      if (*it == x) out->push_back(x);
    }
    return out->size() - before;
  }
  auto ia = a.begin(), ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      out->push_back(*ia);
      ++ia;
      ++ib;
    }
  }
  return out->size() - before;
}

/// out = a ∩ b. `out` may alias neither input.
template <typename T>
void SortedIntersect(const std::vector<T>& a, const std::vector<T>& b,
                     std::vector<T>* out) {
  out->clear();
  SortedIntersectAppend(a, b, out);
}

/// |a ∩ b| without materializing the intersection.
template <typename T>
std::size_t SortedIntersectSize(const std::vector<T>& a,
                                const std::vector<T>& b) {
  std::size_t count = 0;
  auto ia = a.begin(), ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

/// out = a ∪ b. `out` may alias neither input.
template <typename T>
void SortedUnion(const std::vector<T>& a, const std::vector<T>& b,
                 std::vector<T>* out) {
  out->clear();
  out->reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(*out));
}

/// out = a \ b. `out` may alias neither input.
template <typename T>
void SortedDifference(const std::vector<T>& a, const std::vector<T>& b,
                      std::vector<T>* out) {
  out->clear();
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(*out));
}

/// True iff a ⊆ b.
template <typename T>
bool SortedIsSubset(const std::vector<T>& a, const std::vector<T>& b) {
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// Inserts x into sorted vector v if absent; returns true when inserted.
template <typename T>
bool SortedInsert(std::vector<T>* v, T x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it != v->end() && *it == x) return false;
  v->insert(it, x);
  return true;
}

/// Removes x from sorted vector v if present; returns true when removed.
template <typename T>
bool SortedErase(std::vector<T>* v, T x) {
  auto it = std::lower_bound(v->begin(), v->end(), x);
  if (it == v->end() || *it != x) return false;
  v->erase(it);
  return true;
}

/// Sorts and removes duplicates in place.
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace scpm

#endif  // SCPM_UTIL_SORTED_OPS_H_
