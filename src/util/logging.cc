#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace scpm {
namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  std::fflush(stderr);
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace scpm
