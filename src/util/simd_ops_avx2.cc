// AVX2 provider for the SIMD word kernels (see util/simd_ops.h).
//
// This is the only translation unit built with -mavx2 (CMake option
// SCPM_ENABLE_AVX2 attaches the flag to this file alone), so the rest of
// the binary stays baseline x86-64 and callers only reach this code after
// the runtime cpuid check in Avx2SimdOps(). Built without the flag, the
// TU degrades to a null provider and dispatch stays scalar.
//
// Popcounts use Mula's vpshufb nibble-LUT: per-byte counts via two table
// lookups, summed into four u64 lanes with vpsadbw and accumulated in a
// vector register across the loop. Exactly the same integer results as
// std::popcount, word for word — the dispatch path is unobservable in
// mined output.

#include "util/simd_ops.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace scpm {
namespace {

inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  // Horizontal byte sums per 64-bit lane.
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t HorizontalSum(__m256i lanes) {
  const __m128i lo = _mm256_castsi256_si128(lanes);
  const __m128i hi = _mm256_extracti128_si256(lanes, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

std::size_t Avx2And(const std::uint64_t* a, const std::uint64_t* b,
                    std::uint64_t* out, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    const __m256i v = _mm256_and_si256(va, vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  std::size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    const std::uint64_t v = a[i] & b[i];
    out[i] = v;
    count += std::popcount(v);
  }
  return count;
}

std::size_t Avx2AndCount(const std::uint64_t* a, const std::uint64_t* b,
                         std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, Popcount256(_mm256_and_si256(va, vb)));
  }
  std::size_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += std::popcount(a[i] & b[i]);
  return count;
}

std::size_t Avx2AndNot(const std::uint64_t* a, const std::uint64_t* b,
                       std::uint64_t* out, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    // vpandn computes ~first & second, so b goes first.
    const __m256i v = _mm256_andnot_si256(vb, va);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), v);
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  std::size_t count = HorizontalSum(acc);
  for (; i < n; ++i) {
    const std::uint64_t v = a[i] & ~b[i];
    out[i] = v;
    count += std::popcount(v);
  }
  return count;
}

std::size_t Avx2Popcount(const std::uint64_t* w, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  std::size_t count = HorizontalSum(acc);
  for (; i < n; ++i) count += std::popcount(w[i]);
  return count;
}

constexpr SimdOps kAvx2Ops = {"avx2", &Avx2And, &Avx2AndCount, &Avx2AndNot,
                              &Avx2Popcount};

}  // namespace

const SimdOps* Avx2SimdOps() {
  // cpuid check: the table is only handed out on hardware that can run
  // it, so linking this TU never constrains where the binary runs.
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported ? &kAvx2Ops : nullptr;
}

}  // namespace scpm

#else  // !defined(__AVX2__)

namespace scpm {

const SimdOps* Avx2SimdOps() { return nullptr; }

}  // namespace scpm

#endif
