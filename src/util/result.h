// Result<T>: value-or-Status, the payload-carrying companion of Status.

#ifndef SCPM_UTIL_RESULT_H_
#define SCPM_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace scpm {

/// Holds either a value of type T or a non-OK Status describing why the
/// value is absent. Accessing the value of an errored Result is a fatal
/// programming error (checked via SCPM_CHECK).
template <typename T>
class Result {
 public:
  /// Implicit from value: `return MakeGraph(...);`
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    SCPM_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SCPM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SCPM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SCPM_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ is set.
};

}  // namespace scpm

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`.
#define SCPM_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  SCPM_ASSIGN_OR_RETURN_IMPL_(                                \
      SCPM_CONCAT_(_scpm_result_, __LINE__), lhs, rexpr)

#define SCPM_CONCAT_INNER_(a, b) a##b
#define SCPM_CONCAT_(a, b) SCPM_CONCAT_INNER_(a, b)
#define SCPM_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // SCPM_UTIL_RESULT_H_
