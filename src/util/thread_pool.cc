#include "util/thread_pool.h"

#include <utility>

namespace scpm {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace scpm
