#include "util/thread_pool.h"

#include <utility>

namespace scpm {

namespace {

/// Identity of the current thread within its owning pool, if any. Set once
/// per worker thread; tasks executed while helping inherit the worker's
/// identity, which is what per-worker state needs.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

/// RAII registration of a thread about to park on the pool's cv. The
/// count must be raised under the cv mutex (so a notifier that reads a
/// stale zero is ordered before the sleeper's predicate check, which then
/// observes the notifier's state change) and is read without it on the
/// notify fast path.
class ScopedSleeper {
 public:
  explicit ScopedSleeper(std::atomic<std::size_t>* sleepers)
      : sleepers_(sleepers) {
    sleepers_->fetch_add(1);
  }
  ~ScopedSleeper() { sleepers_->fetch_sub(1); }

 private:
  std::atomic<std::size_t>* sleepers_;
};

}  // namespace

bool ParallelismBudget::TryAcquire() {
  std::size_t free = slots_.load(std::memory_order_relaxed);
  while (free > 0) {
    if (slots_.compare_exchange_weak(free, free - 1,
                                     std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

void ParallelismBudget::Release() {
  slots_.fetch_add(1, std::memory_order_release);
}

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

int ThreadPool::current_worker_index() const {
  return tls_pool == this ? static_cast<int>(tls_index) : -1;
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(Task{std::move(task), nullptr});
}

void ThreadPool::Spawn(TaskGroup* group, std::function<void()> task) {
  group->pending_.fetch_add(1);
  Enqueue(Task{std::move(task), group});
}

void ThreadPool::Enqueue(Task task) {
  total_pending_.fetch_add(1);
  if (tls_pool == this) {
    Worker& self = *workers_[tls_index];
    std::lock_guard<std::mutex> lock(self.mutex);
    self.deque.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    injection_.push_back(std::move(task));
  }
  epoch_.fetch_add(1);
  // Fast path: nobody is parked, nobody to wake. A thread concurrently
  // about to park raised sleepers_ under mutex_ before its predicate
  // check, so reading 0 here means its check happens after the epoch
  // bump above and it will not sleep.
  if (sleepers_.load() != 0) {
    // Empty critical section: serializes with cv_ waiters between their
    // predicate check and sleep, so the notify cannot be lost.
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
  }
}

bool ThreadPool::TakeTask(std::deque<Task>* deque,
                          const TaskGroup* only_group, bool from_back,
                          Task* out) {
  if (only_group == nullptr) {
    if (deque->empty()) return false;
    if (from_back) {
      *out = std::move(deque->back());
      deque->pop_back();
    } else {
      *out = std::move(deque->front());
      deque->pop_front();
    }
    return true;
  }
  if (from_back) {
    for (auto it = deque->rbegin(); it != deque->rend(); ++it) {
      if (it->group != only_group) continue;
      *out = std::move(*it);
      deque->erase(std::next(it).base());
      return true;
    }
  } else {
    for (auto it = deque->begin(); it != deque->end(); ++it) {
      if (it->group != only_group) continue;
      *out = std::move(*it);
      deque->erase(it);
      return true;
    }
  }
  return false;
}

bool ThreadPool::PopTask(std::size_t self, const TaskGroup* only_group,
                         Task* out) {
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (TakeTask(&own.deque, only_group, /*from_back=*/true, out)) {
      return true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(injection_mutex_);
    if (TakeTask(&injection_, only_group, /*from_back=*/false, out)) {
      return true;
    }
  }
  for (std::size_t step = 1; step < workers_.size(); ++step) {
    Worker& victim = *workers_[(self + step) % workers_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (TakeTask(&victim.deque, only_group, /*from_back=*/false, out)) {
      return true;
    }
  }
  return false;
}

void ThreadPool::FinishTask(const Task& task) {
  bool notify = false;
  if (task.group != nullptr && task.group->pending_.fetch_sub(1) == 1) {
    notify = true;
  }
  if (total_pending_.fetch_sub(1) == 1) notify = true;
  if (!notify) return;
  // A drained group may release helping workers (cv_) and external
  // waiters (done_cv_) alike.
  if (sleepers_.load() != 0 || external_sleepers_.load() != 0) {
    { std::lock_guard<std::mutex> lock(mutex_); }
    cv_.notify_all();
    done_cv_.notify_all();
  }
}

bool ThreadPool::RunOneTask(std::size_t self, const TaskGroup* only_group) {
  Task task;
  if (!PopTask(self, only_group, &task)) return false;
  task.fn();
  FinishTask(task);
  return true;
}

void ThreadPool::WorkerLoop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  while (true) {
    const std::uint64_t epoch = epoch_.load();
    if (RunOneTask(index, nullptr)) continue;
    std::unique_lock<std::mutex> lock(mutex_);
    if (shutting_down_ && total_pending_.load() == 0) return;
    ScopedSleeper sleeper(&sleepers_);
    cv_.wait(lock, [this, epoch] {
      return epoch_.load() != epoch ||
             (shutting_down_ && total_pending_.load() == 0);
    });
  }
}

void ThreadPool::WaitFor(TaskGroup* group) {
  if (tls_pool == this) {
    const std::size_t self = tls_index;
    while (group->pending_.load() != 0) {
      const std::uint64_t epoch = epoch_.load();
      // Help on the awaited group's tasks only: anything else could block
      // in a nested WaitFor of its own and pile unrelated frames on this
      // stack (see the file comment in the header).
      if (RunOneTask(self, group)) continue;
      // None queued: the group's remaining tasks are executing on other
      // workers. Sleep until something completes or new work shows up (a
      // running task of the group may fork into it).
      std::unique_lock<std::mutex> lock(mutex_);
      ScopedSleeper sleeper(&sleepers_);
      cv_.wait(lock, [this, group, epoch] {
        return group->pending_.load() == 0 || epoch_.load() != epoch;
      });
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  ScopedSleeper sleeper(&external_sleepers_);
  done_cv_.wait(lock, [group] { return group->pending_.load() == 0; });
}

bool ThreadPool::WaitForUntil(
    TaskGroup* group, std::chrono::steady_clock::time_point deadline) {
  if (tls_pool == this) {
    const std::size_t self = tls_index;
    while (group->pending_.load() != 0) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      const std::uint64_t epoch = epoch_.load();
      if (RunOneTask(self, group)) continue;
      std::unique_lock<std::mutex> lock(mutex_);
      ScopedSleeper sleeper(&sleepers_);
      cv_.wait_until(lock, deadline, [this, group, epoch] {
        return group->pending_.load() == 0 || epoch_.load() != epoch;
      });
    }
    return true;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  ScopedSleeper sleeper(&external_sleepers_);
  return done_cv_.wait_until(lock, deadline, [group] {
    return group->pending_.load() == 0;
  });
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  ScopedSleeper sleeper(&external_sleepers_);
  done_cv_.wait(lock, [this] { return total_pending_.load() == 0; });
}

}  // namespace scpm
