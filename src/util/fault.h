// Deterministic fault injection for robustness tests.
//
// Production code declares *injection points* — named places where a
// failure is physically possible (an allocation, a checkpoint write, a
// socket send, a slice cancellation) — by asking the process-wide
// FaultInjector whether to fail here. The injector is always compiled
// in and costs one relaxed atomic load when disarmed, so the exact
// binary that ships is the binary the recovery tests torture.
//
// Two arming modes, both deterministic:
//
//   * Scripted ("point=N"): the Nth hit of `point` fails, every other
//     hit passes. This is how a test aims one ENOSPC at exactly the
//     second checkpoint write.
//   * Seeded (a single uint64): every hit of every point flips a coin
//     drawn from a splitmix64 stream keyed by (seed, point name, hit
//     index). The same seed always fails the same hits — a CI sweep
//     over fixed seeds explores many interleavings reproducibly.
//
// Tests arm programmatically (Configure/Seed/Reset); processes under
// test arm from the environment (SCPM_FAULT_SPEC / SCPM_FAULT_SEED,
// read once at first use), which is how a forked server child gets its
// faults without any new flags.

#ifndef SCPM_UTIL_FAULT_H_
#define SCPM_UTIL_FAULT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace scpm {

/// Well-known injection-point names, kept in one place so tests and
/// production sites can't drift apart on spelling.
namespace fault {
inline constexpr const char* kAlloc = "alloc";
inline constexpr const char* kJournalWrite = "journal-write";
inline constexpr const char* kCheckpointWrite = "checkpoint-write";
inline constexpr const char* kSocketSend = "socket-send";
inline constexpr const char* kSliceCancel = "slice-cancel";
// Distributed-mining points. The coordinator forks one process per
// worker, so each worker has its own injector (and hit counters): a
// bare base name fires in *every* worker. To aim at one worker, dist
// code consults "<base>:<worker-index>" alongside the base name.
inline constexpr const char* kWorkerKill = "worker-kill";
inline constexpr const char* kHeartbeatDrop = "heartbeat-drop";
inline constexpr const char* kResultCorrupt = "result-corrupt";
}  // namespace fault

class FaultInjector {
 public:
  /// The process-wide injector. First call reads SCPM_FAULT_SPEC /
  /// SCPM_FAULT_SEED from the environment (spec wins when both are
  /// set).
  static FaultInjector& Instance();

  /// Scripted mode: fail the `nth_hit` (0-based) of `point`; several
  /// "point=N" terms may be comma-separated, with whitespace around
  /// terms and tokens ignored. Replaces any previous arming. A
  /// malformed token yields kInvalidArgument naming it, and leaves the
  /// injector disarmed.
  Status Configure(const std::string& spec);

  /// Seeded mode: probabilistic-but-deterministic failures at every
  /// point, `permille` chances in 1000 per hit.
  void Seed(std::uint64_t seed, std::uint32_t permille = 125);

  /// Disarms and forgets all counters.
  void Reset();

  /// The production-side gate: returns true when the caller must fail
  /// this operation now. Counts the hit either way.
  bool ShouldFail(const char* point);

  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Total times any point was consulted / told to fail since the last
  /// Reset (tests assert the sweep actually bit).
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector();

  struct Script {
    std::string point;
    std::uint64_t nth_hit = 0;
    bool fired = false;
  };

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> injected_{0};

  // Guarded by mutex_ in fault.cc (kept out of the header so the hot
  // disarmed path stays a single atomic load).
  std::vector<Script> scripts_;
  bool seeded_ = false;
  std::uint64_t seed_ = 0;
  std::uint32_t permille_ = 0;
  std::vector<std::pair<std::string, std::uint64_t>> per_point_hits_;
};

}  // namespace scpm

#endif  // SCPM_UTIL_FAULT_H_
