#include "util/status.h"

namespace scpm {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kNotFound:
      return "not-found";
    case StatusCode::kOutOfRange:
      return "out-of-range";
    case StatusCode::kAlreadyExists:
      return "already-exists";
    case StatusCode::kIoError:
      return "io-error";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace scpm
