#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace scpm {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  // Guard against an all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  SCPM_CHECK_GT(bound, 0u);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  SCPM_CHECK_LE(lo, hi);
  std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // Full range.
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::uint64_t Rng::NextZipf(std::uint64_t n, double s) {
  SCPM_CHECK_GE(n, 1u);
  SCPM_CHECK_GT(s, 0.0);
  // Devroye's rejection method for the Zipf distribution.
  const double b = std::pow(2.0, s - 1.0);
  while (true) {
    const double u = NextDouble();
    const double v = NextDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::uint64_t>(x);
    }
  }
}

std::vector<std::uint32_t> Rng::SampleWithoutReplacement(std::uint32_t n,
                                                         std::uint32_t k) {
  SCPM_CHECK_LE(k, n);
  std::vector<std::uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  // Floyd's algorithm: expected O(k) inserts into a hash set.
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  for (std::uint32_t j = n - k; j < n; ++j) {
    std::uint32_t t = static_cast<std::uint32_t>(
        NextBounded(static_cast<std::uint64_t>(j) + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  out.assign(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace scpm
