// Wall-clock timing helpers for benchmarks and progress reporting.

#ifndef SCPM_UTIL_TIMER_H_
#define SCPM_UTIL_TIMER_H_

#include <chrono>

namespace scpm {

/// Monotonic wall-clock stopwatch; starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace scpm

#endif  // SCPM_UTIL_TIMER_H_
