// Minimal leveled logging and check macros.
//
// SCPM_LOG(INFO) << "...";    -- leveled logging to stderr
// SCPM_CHECK(cond) << "...";  -- fatal invariant check (aborts)
//
// Checks guard programmer errors; user/input errors go through Status.

#ifndef SCPM_UTIL_LOGGING_H_
#define SCPM_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace scpm {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4
};

/// Process-wide minimum level actually emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (and aborts for kFatal) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level is disabled.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace scpm

#define SCPM_LOG_INTERNAL_(level)                                         \
  ::scpm::internal::LogMessage(::scpm::LogLevel::k##level, __FILE__, __LINE__)

#define SCPM_LOG(level)                                      \
  (::scpm::LogLevel::k##level < ::scpm::GetLogLevel())       \
      ? (void)0                                              \
      : ::scpm::internal::LogMessageVoidify() & SCPM_LOG_INTERNAL_(level)

#define SCPM_CHECK(cond)            \
  (cond) ? (void)0                  \
         : ::scpm::internal::LogMessageVoidify() &           \
               (SCPM_LOG_INTERNAL_(Fatal) << "Check failed: " #cond " ")

#define SCPM_CHECK_EQ(a, b) SCPM_CHECK((a) == (b))
#define SCPM_CHECK_NE(a, b) SCPM_CHECK((a) != (b))
#define SCPM_CHECK_LT(a, b) SCPM_CHECK((a) < (b))
#define SCPM_CHECK_LE(a, b) SCPM_CHECK((a) <= (b))
#define SCPM_CHECK_GT(a, b) SCPM_CHECK((a) > (b))
#define SCPM_CHECK_GE(a, b) SCPM_CHECK((a) >= (b))

#endif  // SCPM_UTIL_LOGGING_H_
