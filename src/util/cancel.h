// Cooperative cancellation shared by the frontier engine and the
// quasi-clique searches.
//
// A CancelToken carries a sticky "stop now" flag plus an optional
// wall-clock deadline. Long-running loops poll it: the flag read is one
// relaxed atomic load, and the deadline comparison — the only part that
// touches the clock — is throttled by a caller-owned tick counter, so a
// candidate loop can poll on every iteration without paying a clock read
// each time. Once the deadline is observed the flag latches, so every
// other poller (including ones that never look at the clock) stops on its
// next flag read.
//
// The flag only ever goes from clear to set; deadline configuration
// happens before the token is shared with workers. That makes the token
// safe to poll from any number of threads without further synchronization.

#ifndef SCPM_UTIL_CANCEL_H_
#define SCPM_UTIL_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace scpm {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Latches the stop flag. Idempotent; callable from any thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms the wall-clock deadline. Must be called before the token is
  /// shared with pollers (the engine configures it before the first
  /// frontier wave).
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  bool has_deadline() const { return has_deadline_; }

  /// The sticky flag alone — never touches the clock.
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Flag check plus an unthrottled deadline check; latches the flag when
  /// the deadline has passed. Used at frontier boundaries, where one
  /// clock read per wave is nothing.
  bool CheckNow() {
    if (cancelled()) return true;
    if (has_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      RequestCancel();
      return true;
    }
    return false;
  }

  /// Hot-loop poll: the flag every call, the clock only every 256th call
  /// per `tick` (caller-owned, one per polling loop — never shared
  /// between threads).
  bool ShouldStop(std::uint32_t* tick) {
    if (cancelled()) return true;
    if (!has_deadline_) return false;
    if ((++*tick & 255u) != 0) return false;
    return CheckNow();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace scpm

#endif  // SCPM_UTIL_CANCEL_H_
