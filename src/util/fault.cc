#include "util/fault.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace scpm {

namespace {

std::mutex g_mutex;

/// Strips leading/trailing ASCII whitespace so "a = 1, b=2" parses the
/// way a human who typed it into an env var expects.
std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// splitmix64: tiny, statistically solid, and stable across platforms —
/// the whole point is that a seed reproduces the same failure schedule
/// everywhere.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t HashName(const char* s) {
  std::uint64_t h = 1469598103934665603ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

FaultInjector::FaultInjector() {
  const char* spec = std::getenv("SCPM_FAULT_SPEC");
  if (spec != nullptr && *spec != '\0') {
    const Status status = Configure(spec);
    if (!status.ok()) {
      // Constructor runs at an arbitrary first use — a typed error has
      // nowhere to return to, so report loudly instead of silently
      // running the test without its faults armed.
      std::fprintf(stderr, "scpm: ignoring SCPM_FAULT_SPEC: %s\n",
                   status.ToString().c_str());
    }
    return;
  }
  const char* seed = std::getenv("SCPM_FAULT_SEED");
  if (seed != nullptr && *seed != '\0') {
    Seed(std::strtoull(seed, nullptr, 10));
  }
}

Status FaultInjector::Configure(const std::string& spec) {
  std::vector<Script> scripts;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string term = Trim(spec.substr(begin, end - begin));
    begin = end + 1;
    if (term.empty()) continue;
    const std::size_t eq = term.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault spec term '" + term +
                                     "' is not of the form point=N");
    }
    Script s;
    s.point = Trim(term.substr(0, eq));
    if (s.point.empty()) {
      return Status::InvalidArgument("fault spec term '" + term +
                                     "' names no injection point");
    }
    char* rest = nullptr;
    const std::string count = Trim(term.substr(eq + 1));
    s.nth_hit = std::strtoull(count.c_str(), &rest, 10);
    if (count.empty() || rest == nullptr || *rest != '\0') {
      return Status::InvalidArgument("fault spec term '" + term +
                                     "' needs a non-negative integer "
                                     "hit index after '='");
    }
    scripts.push_back(std::move(s));
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  scripts_ = std::move(scripts);
  seeded_ = false;
  per_point_hits_.clear();
  armed_.store(!scripts_.empty(), std::memory_order_relaxed);
  return Status::OK();
}

void FaultInjector::Seed(std::uint64_t seed, std::uint32_t permille) {
  std::lock_guard<std::mutex> lock(g_mutex);
  scripts_.clear();
  seeded_ = true;
  seed_ = seed;
  permille_ = permille > 1000 ? 1000 : permille;
  per_point_hits_.clear();
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  scripts_.clear();
  seeded_ = false;
  per_point_hits_.clear();
  hits_.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(const char* point) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_mutex);
  if (!armed_.load(std::memory_order_relaxed)) return false;
  hits_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t* hit_count = nullptr;
  for (auto& [name, count] : per_point_hits_) {
    if (name == point) {
      hit_count = &count;
      break;
    }
  }
  if (hit_count == nullptr) {
    per_point_hits_.emplace_back(point, 0);
    hit_count = &per_point_hits_.back().second;
  }
  const std::uint64_t hit = (*hit_count)++;
  bool fail = false;
  if (seeded_) {
    const std::uint64_t draw = Mix(seed_ ^ Mix(HashName(point) + hit));
    fail = draw % 1000 < permille_;
  } else {
    for (Script& s : scripts_) {
      if (!s.fired && s.point == point && s.nth_hit == hit) {
        s.fired = true;
        fail = true;
        break;
      }
    }
  }
  if (fail) injected_.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

}  // namespace scpm
