// Status: lightweight error propagation in the RocksDB/Arrow style.
//
// Library code never throws; fallible operations return `Status` (or
// `Result<T>`, see util/result.h). `Status` is cheap to copy in the OK case
// (empty message, small enum).

#ifndef SCPM_UTIL_STATUS_H_
#define SCPM_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace scpm {

/// Error category carried by a Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kIoError = 5,
  kInternal = 6,
  kUnimplemented = 7,
  /// Not an error: a cooperative cancellation (deadline or budget)
  /// stopped the operation before completion. Callers that cut work on
  /// purpose check for this code and recover instead of propagating.
  kCancelled = 8,
  /// A bounded resource (the query admission queue, a budgeted pool) is
  /// full; the request was rejected without side effects and may be
  /// retried once load drains.
  kResourceExhausted = 9,
};

/// Returns a stable human-readable name ("ok", "invalid-argument", ...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace scpm

/// Propagates a non-OK Status to the caller.
#define SCPM_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::scpm::Status _scpm_status = (expr);         \
    if (!_scpm_status.ok()) return _scpm_status;  \
  } while (false)

#endif  // SCPM_UTIL_STATUS_H_
