// Deterministic, fast pseudo-random utilities (xoshiro256**).
//
// All stochastic code in the library (generators, null-model simulation)
// takes an explicit Rng so experiments are reproducible from a seed.

#ifndef SCPM_UTIL_RANDOM_H_
#define SCPM_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace scpm {

/// xoshiro256** 1.0 generator seeded via SplitMix64.
///
/// Satisfies the UniformRandomBitGenerator requirements so it can be used
/// with <random> distributions, but the member helpers below are preferred
/// (they are reproducible across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64-bit output.
  std::uint64_t Next();
  std::uint64_t operator()() { return Next(); }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli(p).
  bool NextBool(double p);

  /// Geometric-like Zipf sample in [1, n] with exponent `s` via rejection
  /// sampling (Devroye). Requires n >= 1, s > 0.
  std::uint64_t NextZipf(std::uint64_t n, double s);

  /// k distinct values sampled uniformly from [0, n) (Floyd's algorithm),
  /// returned sorted. Requires k <= n.
  std::vector<std::uint32_t> SampleWithoutReplacement(std::uint32_t n,
                                                      std::uint32_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace scpm

#endif  // SCPM_UTIL_RANDOM_H_
