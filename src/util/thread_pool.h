// Minimal fixed-size thread pool for coarse-grained task parallelism.
//
// Used by the parallel SCPM mode to fan independent attribute-set
// subtrees across cores. Submission is thread-safe; Wait() blocks until
// every submitted task has finished.

#ifndef SCPM_UTIL_THREAD_POOL_H_
#define SCPM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scpm {

/// Fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task. Tasks must not Submit-and-Wait recursively on the
  /// same pool (risk of deadlock); fan out first, then Wait from outside.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and all workers are idle.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;
  bool shutting_down_ = false;
};

}  // namespace scpm

#endif  // SCPM_UTIL_THREAD_POOL_H_
