// Work-stealing thread pool for recursive task parallelism.
//
// Each worker owns a deque: it pushes and pops spawned tasks at the back
// (LIFO, keeping the working set hot and the traversal depth-first) while
// idle workers steal from the front (FIFO, taking the largest pending
// subtrees). External submissions land on a shared injection queue.
//
// Tasks may fork children and wait for them from inside the pool:
// Spawn(group, fn) enqueues onto the calling worker's own deque and
// WaitFor(group) *helps* — the waiting worker keeps executing queued
// tasks of the awaited group (wherever they sit, including stealing them
// back from other workers) until the group drains, so recursive fork/join
// cannot deadlock the pool. Helping is restricted to the awaited group on
// purpose: the helper only runs work its own wait transitively depends
// on, so the nesting of blocked frames on its stack is bounded by the
// logical fork/join depth, never by how many unrelated sibling subtrees
// happen to be queued.

#ifndef SCPM_UTIL_THREAD_POOL_H_
#define SCPM_UTIL_THREAD_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace scpm {

/// Cooperative cap on how many extra tasks a recursive computation may
/// keep outstanding on a pool at once. A computation that wants to fork a
/// subtask calls TryAcquire; on success it spawns and must Release when
/// the subtask finishes, on failure it runs the subtask inline. Sharing
/// one budget between sibling computations makes parallelism adaptive:
/// whichever computation currently has work grabs the slots, and a
/// computation whose subtasks finish returns them to its siblings.
///
/// The budget only shapes *where* work executes (pool vs. inline), never
/// *what* work exists, so callers that decompose work deterministically
/// stay deterministic no matter how acquisition races resolve.
class ParallelismBudget {
 public:
  explicit ParallelismBudget(std::size_t slots) : slots_(slots) {}
  ParallelismBudget(const ParallelismBudget&) = delete;
  ParallelismBudget& operator=(const ParallelismBudget&) = delete;

  /// Borrows one slot; returns false (and borrows nothing) when none are
  /// free. Never blocks.
  bool TryAcquire();

  /// Returns a previously acquired slot.
  void Release();

  /// Currently free slots (racy; for tests and diagnostics).
  std::size_t available() const {
    return slots_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> slots_;
};

/// Fixed set of worker threads with per-worker stealing deques.
class ThreadPool {
 public:
  /// Completion counter for one fork/join scope. A group may be waited on
  /// and reused repeatedly; it must outlive every task spawned into it.
  class TaskGroup {
   public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

   private:
    friend class ThreadPool;
    std::atomic<std::size_t> pending_{0};
  };

  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task outside any group. Thread-safe; callable from worker
  /// threads (lands on the caller's own deque) and external threads alike.
  void Submit(std::function<void()> task);

  /// Enqueues a task accounted against `group`. Same routing as Submit.
  void Spawn(TaskGroup* group, std::function<void()> task);

  /// Blocks until every task in `group` has finished. When called from a
  /// worker thread of this pool the worker executes the group's queued
  /// tasks while waiting, so tasks can fork-and-join recursively (see the
  /// file comment for why helping is limited to the awaited group).
  void WaitFor(TaskGroup* group);

  /// WaitFor with a drain budget: helps (or parks) only until `deadline`
  /// passes. Returns true when the group drained, false on timeout — in
  /// which case the group's tasks may still be queued or running and the
  /// caller must make them finish (typically by latching a CancelToken
  /// they poll) before waiting again. A worker calling this stops taking
  /// new tasks of the group once the deadline passes, but a task already
  /// being helped runs to completion, so the return may overshoot by one
  /// task body; budget-aware tasks bound that overshoot by polling their
  /// token.
  bool WaitForUntil(TaskGroup* group,
                    std::chrono::steady_clock::time_point deadline);

  /// Blocks until every task (all groups and ungrouped submissions) has
  /// finished. Must be called from outside the pool's worker threads; a
  /// task waiting for "everything" would wait for itself.
  void Wait();

  /// Index in [0, num_threads()) when called from one of this pool's
  /// workers (including inside a task run while helping), -1 otherwise.
  int current_worker_index() const;

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  /// One worker's deque. Owner pushes/pops at the back; thieves and the
  /// injection path take from the front.
  struct Worker {
    std::mutex mutex;
    std::deque<Task> deque;
  };

  void WorkerLoop(std::size_t index);
  void Enqueue(Task task);
  /// Takes the newest (from_back) or oldest matching task out of `deque`;
  /// a null `only_group` matches any task. Caller holds the deque's lock.
  static bool TakeTask(std::deque<Task>* deque, const TaskGroup* only_group,
                       bool from_back, Task* out);
  /// Pops a runnable task: own deque back, then injection front, then
  /// steal from victims' fronts. `only_group` non-null restricts the pop
  /// to that group's tasks (the helping path of WaitFor).
  bool PopTask(std::size_t self, const TaskGroup* only_group, Task* out);
  bool RunOneTask(std::size_t self, const TaskGroup* only_group);
  void FinishTask(const Task& task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::mutex injection_mutex_;
  std::deque<Task> injection_;

  // Sleep/wake machinery. Threads that can *run* tasks (workers, and
  // workers helping inside WaitFor) park on cv_; enqueues bump epoch_ and
  // wake them. External threads blocked in Wait/WaitFor park on done_cv_
  // and are woken only by completions that drain a group (or everything)
  // — an enqueue can never satisfy their predicate, so the per-task hot
  // path does not touch them. All waiters re-check predicates against
  // these atomics under mutex_.
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::size_t> total_pending_{0};
  // Threads parked on cv_ / done_cv_ respectively. Raised under mutex_
  // before the predicate check; read without it on the notify fast paths,
  // which skip the lock + notify entirely when nobody is parked.
  std::atomic<std::size_t> sleepers_{0};
  std::atomic<std::size_t> external_sleepers_{0};
  bool shutting_down_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace scpm

#endif  // SCPM_UTIL_THREAD_POOL_H_
