// Hybrid sparse-vector / dense-bitmap vertex sets.
//
// Every hot path of the pipeline — Eclat tidset extension, SCPM lattice
// expansion, Theorem-3 universe pruning, induced-subgraph construction —
// bottoms out in pairwise intersection of sorted VertexSet vectors. Once a
// set holds more than a few percent of the universe, a fixed-universe
// bitmap with 64-bit word AND + popcount beats the merge scan by an order
// of magnitude, so HybridVertexSet stores each set in whichever
// representation the *density rule* picks and dispatches intersections to
// the matching kernel (word-AND, bitmap probe, or merge/gallop).
//
// Determinism contract: the representation is a pure function of
// (size, universe) — never of thread count, timing, or which worker built
// the set — and every kernel produces the same sorted elements, so
// miners that swap VertexSet for HybridVertexSet keep byte-identical
// output. The SetOpStats counters only ever count kernel dispatches,
// which are themselves deterministic, so per-worker counts sum to the
// same totals for any thread count.

#ifndef SCPM_UTIL_HYBRID_SET_H_
#define SCPM_UTIL_HYBRID_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace scpm {

/// Deterministic counts of the set-kernel dispatches (see the file
/// comment). Accumulated per worker and summed on join, like ScpmCounters.
struct SetOpStats {
  /// Intersections executed with at least one bitmap operand (word-AND
  /// when both are dense, bitmap probe when one is).
  std::uint64_t bitmap_intersections = 0;
  /// Vector/vector intersections that took the galloping (binary-probe)
  /// path because one side was >= 32x smaller.
  std::uint64_t galloping_intersections = 0;
  /// Sorted-vector -> bitmap materializations (the density rule promoted
  /// a set to the dense representation).
  std::uint64_t dense_conversions = 0;

  void MergeFrom(const SetOpStats& other) {
    bitmap_intersections += other.bitmap_intersections;
    galloping_intersections += other.galloping_intersections;
    dense_conversions += other.dense_conversions;
  }
};

/// Fixed-universe bitmap over vertex ids [0, universe).
class VertexBitset {
 public:
  VertexBitset() = default;

  /// All-zero bitmap over [0, universe).
  explicit VertexBitset(VertexId universe)
      : universe_(universe),
        words_((static_cast<std::size_t>(universe) + 63) / 64, 0) {}

  /// Bitmap of a sorted, duplicate-free vertex set.
  static VertexBitset FromSorted(const VertexSet& v, VertexId universe);

  VertexId universe() const { return universe_; }
  std::size_t num_words() const { return words_.size(); }
  const std::uint64_t* data() const { return words_.data(); }

  bool Test(VertexId v) const {
    return (words_[v / 64] >> (v % 64)) & 1u;
  }
  void Set(VertexId v) { words_[v / 64] |= std::uint64_t{1} << (v % 64); }
  void Reset(VertexId v) {
    words_[v / 64] &= ~(std::uint64_t{1} << (v % 64));
  }

  /// Population count.
  std::size_t Count() const;

  /// out = a & b (word-wise AND); returns |out|. Universes must match.
  /// `out` may alias either input.
  static std::size_t And(const VertexBitset& a, const VertexBitset& b,
                         VertexBitset* out);

  /// |a & b| without materializing the result.
  static std::size_t AndCount(const VertexBitset& a, const VertexBitset& b);

  /// out = a & ~b; returns |out|. Universes must match; `out` may alias
  /// either input.
  static std::size_t AndNot(const VertexBitset& a, const VertexBitset& b,
                            VertexBitset* out);

  /// Appends the members in ascending order (ctz scan over the words).
  void AppendTo(VertexSet* out) const;

 private:
  VertexId universe_ = 0;
  std::vector<std::uint64_t> words_;
};

/// |sorted ∩ bits| by probing the bitmap once per vector element.
std::size_t IntersectSortedWithBitsCount(const VertexSet& sorted,
                                         const VertexBitset& bits);

/// out = sorted ∩ bits, sorted. `out` may not alias `sorted`.
void IntersectSortedWithBits(const VertexSet& sorted, const VertexBitset& bits,
                             VertexSet* out);

/// A vertex set stored as either a sorted vector (sparse) or a
/// fixed-universe bitmap (dense), switched by the deterministic density
/// rule ShouldBeDense. A sparse set can additionally *borrow* a
/// caller-owned vector (View), which is how Eclat/SCPM roots reference the
/// graph-owned attribute tidsets without copying them.
///
/// Universe 0 means "unknown universe": the set can never go dense and
/// every operation takes the sorted-vector path — the escape hatch the
/// use_hybrid_sets=false configurations use to reproduce the pure
/// merge-based behavior bit for bit.
class HybridVertexSet {
 public:
  HybridVertexSet() = default;

  /// Borrows `v` (not copied; caller keeps it alive and unchanged).
  static HybridVertexSet View(const VertexSet* v, VertexId universe);

  /// Owns `v`, immediately applying the density rule (a promotion to
  /// dense bumps stats->dense_conversions).
  static HybridVertexSet FromVector(VertexSet v, VertexId universe,
                                    SetOpStats* stats);

  /// The density rule: dense iff the universe is at least one full word
  /// beyond trivial and the set fills >= 1/kDenseFraction of it. Pure
  /// function of (size, universe) so every thread picks the same
  /// representation.
  static bool ShouldBeDense(std::size_t size, VertexId universe) {
    return universe >= kMinDenseUniverse &&
           size * kDenseFraction >= universe;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  VertexId universe() const { return universe_; }
  bool dense() const { return dense_; }
  bool is_view() const { return view_ != nullptr; }

  /// Re-applies the density rule to a view or freshly assembled set: a
  /// sparse set the rule wants dense is materialized as a bitmap (counted
  /// in stats->dense_conversions). Calling it where the set is built —
  /// e.g. inside the per-batch evaluation tasks — shards the conversion
  /// cost of the root-class tidsets across the pool.
  void Normalize(SetOpStats* stats);

  /// out = a ∩ b, dispatched to the word-AND, bitmap-probe, or
  /// merge/gallop kernel by the operands' representations; the result
  /// representation again follows the density rule. `out` may alias
  /// neither input. Kernel dispatches are counted in `stats` (may be
  /// null).
  static void Intersect(const HybridVertexSet& a, const HybridVertexSet& b,
                        HybridVertexSet* out, SetOpStats* stats);

  /// |a ∩ b| without materializing the result.
  static std::size_t IntersectSize(const HybridVertexSet& a,
                                   const HybridVertexSet& b,
                                   SetOpStats* stats);

  /// Membership test (binary search when sparse, bit probe when dense).
  bool Contains(VertexId v) const;

  /// Appends the members in ascending order.
  void AppendTo(VertexSet* out) const;

  /// Sorted materialization (the API-boundary representation).
  VertexSet ToVector() const;

  /// Moves the sorted vector out (copies when borrowed, materializes when
  /// dense). The set is left empty.
  VertexSet TakeVector();

  /// The sorted vector without copying; requires !dense().
  const VertexSet& sorted() const { return view_ != nullptr ? *view_ : vec_; }

  /// The bitmap; requires dense().
  const VertexBitset& bits() const { return bits_; }

 private:
  // Dense iff universe >= 64 and density >= 5% (1/20). The 5% knee is
  // where the word-AND scan (universe/64 words) undercuts the merge scan
  // (~2 * density * universe branchy steps); below one word the bitmap
  // cannot win anything.
  static constexpr std::size_t kDenseFraction = 20;
  static constexpr VertexId kMinDenseUniverse = 64;

  const VertexSet* view_ = nullptr;  // borrowed sparse storage
  VertexSet vec_;                    // owned sparse storage
  VertexBitset bits_;                // owned dense storage
  std::size_t size_ = 0;
  VertexId universe_ = 0;
  bool dense_ = false;
};

}  // namespace scpm

#endif  // SCPM_UTIL_HYBRID_SET_H_
