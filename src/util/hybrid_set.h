// Hybrid sparse-vector / chunked / dense-bitmap vertex sets.
//
// Every hot path of the pipeline — Eclat/Apriori tidset extension, SCPM
// lattice expansion, Theorem-3 universe pruning, induced-subgraph
// construction — bottoms out in pairwise intersection of sorted VertexSet
// vectors. HybridVertexSet stores each set in whichever of three
// representations the *density rule* picks and dispatches intersections
// to the matching kernel:
//
//   sparse   sorted u32 vector            merge / gallop
//   chunked  roaring-style 2^16 chunks    per-chunk word-AND / probe / merge
//   dense    fixed-universe bitmap        word AND + popcount
//
// The dense bitmap wins past ~5% density; the chunked container covers
// the 0.5-5% mid-density band where the full-universe bitmap wastes words
// on empty regions but the merge scan is already slow. All word loops go
// through the runtime-dispatched SIMD table (util/simd_ops.h).
//
// Determinism contract: the representation is a pure function of
// (size, universe) — never of thread count, timing, or which worker built
// the set — and every kernel produces the same sorted elements, so
// miners that swap VertexSet for HybridVertexSet keep byte-identical
// output. The SetOpStats counters only ever count kernel dispatches,
// which are themselves deterministic, so per-worker counts sum to the
// same totals for any thread count. SIMD dispatch is bit-exact and
// therefore unobservable in output and counters alike.

#ifndef SCPM_UTIL_HYBRID_SET_H_
#define SCPM_UTIL_HYBRID_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace scpm {

/// Deterministic counts of the set-kernel dispatches (see the file
/// comment). Accumulated per worker and summed on join, like ScpmCounters.
struct SetOpStats {
  /// Intersections executed with at least one full-universe bitmap
  /// operand (word-AND when both are dense, bitmap probe when one is)
  /// and no chunked operand.
  std::uint64_t bitmap_intersections = 0;
  /// Vector/vector intersections that took the galloping (binary-probe)
  /// path because one side was >= 32x smaller.
  std::uint64_t galloping_intersections = 0;
  /// Intersections with at least one chunked operand (chunk-wise kernels,
  /// including chunked x dense-bitmap slicing and chunked x vector
  /// probes).
  std::uint64_t chunked_intersections = 0;
  /// Materializations into the dense representation (the density rule
  /// promoted a set to a full-universe bitmap).
  std::uint64_t dense_conversions = 0;
  /// Materializations into the chunked representation (the density rule
  /// placed a set in the mid-density band).
  std::uint64_t chunked_conversions = 0;

  void MergeFrom(const SetOpStats& other) {
    bitmap_intersections += other.bitmap_intersections;
    galloping_intersections += other.galloping_intersections;
    chunked_intersections += other.chunked_intersections;
    dense_conversions += other.dense_conversions;
    chunked_conversions += other.chunked_conversions;
  }
};

/// Fixed-universe bitmap over vertex ids [0, universe). Word loops run on
/// the runtime-dispatched SIMD table (util/simd_ops.h).
class VertexBitset {
 public:
  VertexBitset() = default;

  /// All-zero bitmap over [0, universe).
  explicit VertexBitset(VertexId universe)
      : universe_(universe),
        words_((static_cast<std::size_t>(universe) + 63) / 64, 0) {}

  /// Bitmap of a sorted, duplicate-free vertex set.
  static VertexBitset FromSorted(const VertexSet& v, VertexId universe);

  VertexId universe() const { return universe_; }
  std::size_t num_words() const { return words_.size(); }
  const std::uint64_t* data() const { return words_.data(); }

  bool Test(VertexId v) const {
    return (words_[v / 64] >> (v % 64)) & 1u;
  }
  void Set(VertexId v) { words_[v / 64] |= std::uint64_t{1} << (v % 64); }
  void Reset(VertexId v) {
    words_[v / 64] &= ~(std::uint64_t{1} << (v % 64));
  }

  /// Population count.
  std::size_t Count() const;

  /// out = a & b (word-wise AND); returns |out|. Universes must match.
  /// `out` may alias either input.
  static std::size_t And(const VertexBitset& a, const VertexBitset& b,
                         VertexBitset* out);

  /// |a & b| without materializing the result.
  static std::size_t AndCount(const VertexBitset& a, const VertexBitset& b);

  /// out = a & ~b; returns |out|. Universes must match; `out` may alias
  /// either input.
  static std::size_t AndNot(const VertexBitset& a, const VertexBitset& b,
                            VertexBitset* out);

  /// Appends the members in ascending order (ctz scan over the words).
  void AppendTo(VertexSet* out) const;

 private:
  VertexId universe_ = 0;
  std::vector<std::uint64_t> words_;
};

/// |sorted ∩ bits| by probing the bitmap once per vector element.
std::size_t IntersectSortedWithBitsCount(const VertexSet& sorted,
                                         const VertexBitset& bits);

/// out = sorted ∩ bits, sorted. `out` may not alias `sorted`.
void IntersectSortedWithBits(const VertexSet& sorted, const VertexBitset& bits,
                             VertexSet* out);

/// Roaring-style chunked set: vertex ids are split into 2^16-element
/// chunks keyed by the high 16 bits; each populated chunk independently
/// stores its low 16 bits as either a sorted u16 array (below
/// kChunkDenseMin members) or an 8 KiB bitmap. Intersections walk the two
/// chunk lists by key and dispatch per matching pair — word-AND,
/// bit-probe, or u16 merge — so empty regions of the universe cost
/// nothing, unlike the full-universe bitmap. Universe-agnostic: the keys
/// derive from the stored values.
class ChunkedVertexSet {
 public:
  static constexpr std::uint32_t kChunkBits = 16;
  static constexpr VertexId kChunkCapacity = VertexId{1} << kChunkBits;
  static constexpr std::size_t kChunkWords = kChunkCapacity / 64;  // 1024
  /// Chunk cardinality at which the chunk payload flips from the sorted
  /// u16 array to the bitmap (0.78% in-chunk density: the point where the
  /// word-AND over 1024 words undercuts the u16 merge).
  static constexpr std::uint32_t kChunkDenseMin = 512;

  struct Chunk {
    std::uint32_t key = 0;    // vertex id >> kChunkBits
    std::uint32_t count = 0;  // members in this chunk
    std::vector<std::uint16_t> values;  // sparse payload: sorted low bits
    std::vector<std::uint64_t> words;   // dense payload: kChunkWords words

    /// Payload discriminator — the canonical per-chunk rule, a pure
    /// function of the cardinality. (A sparse chunk may retain a stale
    /// word buffer for reuse by the next kernel into its slot; only
    /// `count` decides which payload is live.)
    bool dense() const { return count >= kChunkDenseMin; }
  };

  ChunkedVertexSet() = default;

  /// Chunked form of a sorted, duplicate-free vertex set; each chunk
  /// picks its payload by the kChunkDenseMin rule (a pure function of
  /// the chunk cardinality).
  static ChunkedVertexSet FromSorted(const VertexSet& v);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::vector<Chunk>& chunks() const { return chunks_; }

  void Clear() {
    chunks_.clear();
    size_ = 0;
  }

  /// Membership test: binary search over the chunk keys, then bit probe
  /// or u16 binary search inside the chunk.
  bool Test(VertexId v) const;

  /// Appends the members in ascending order.
  void AppendTo(VertexSet* out) const;

  /// out = a ∩ b; returns |out|. Chunk-wise: only keys present on both
  /// sides do any work. `out` may alias neither input.
  static std::size_t And(const ChunkedVertexSet& a, const ChunkedVertexSet& b,
                         ChunkedVertexSet* out);

  /// |a ∩ b| without materializing the result.
  static std::size_t AndCount(const ChunkedVertexSet& a,
                              const ChunkedVertexSet& b);

  /// out = a ∩ bits, where `bits` is a full-universe bitmap: each chunk
  /// is intersected against the word slice [key * kChunkWords, ...) of
  /// `bits`. Returns |out|. `out` may not alias `a`.
  static std::size_t AndBits(const ChunkedVertexSet& a,
                             const VertexBitset& bits, ChunkedVertexSet* out);

  /// |a ∩ bits| without materializing the result.
  static std::size_t AndBitsCount(const ChunkedVertexSet& a,
                                  const VertexBitset& bits);

 private:
  std::vector<Chunk> chunks_;  // sorted by key, no empty chunks
  std::size_t size_ = 0;
};

/// A vertex set stored as a sorted vector (sparse), a roaring-style
/// chunked container (mid-density), or a fixed-universe bitmap (dense),
/// switched by the deterministic density rule PickRepresentation. A
/// sparse set can additionally *borrow* a caller-owned vector (View),
/// which is how Eclat/Apriori/SCPM roots reference the graph-owned
/// attribute tidsets without copying them.
///
/// Universe 0 means "unknown universe": the set can never leave the
/// sorted-vector representation and every operation takes the merge path
/// — the escape hatch the use_hybrid_sets=false configurations use to
/// reproduce the pure merge-based behavior bit for bit.
class HybridVertexSet {
 public:
  enum class Repr : std::uint8_t { kSparse, kChunked, kDense };

  HybridVertexSet() = default;

  /// Borrows `v` (not copied; caller keeps it alive and unchanged).
  static HybridVertexSet View(const VertexSet* v, VertexId universe);

  /// Owns `v`, immediately applying the density rule (a materialization
  /// into the chunked or dense representation bumps the matching
  /// stats->*_conversions counter).
  static HybridVertexSet FromVector(VertexSet v, VertexId universe,
                                    SetOpStats* stats);

  /// The dense leg of the density rule: dense iff the universe is at
  /// least one full word beyond trivial and the set fills >=
  /// 1/kDenseFraction of it. Pure function of (size, universe) so every
  /// thread picks the same representation.
  static bool ShouldBeDense(std::size_t size, VertexId universe) {
    return universe >= kMinDenseUniverse &&
           size * kDenseFraction >= universe;
  }

  /// The chunked leg: a universe of at least one full chunk whose set
  /// density sits in the [1/kChunkedFraction, 1/kDenseFraction) band.
  /// Also a pure function of (size, universe) — plus the process-wide
  /// A/B toggle below, which must not change mid-run.
  static bool ShouldBeChunked(std::size_t size, VertexId universe);

  /// The full three-way rule (dense wins over chunked wins over sparse).
  static Repr PickRepresentation(std::size_t size, VertexId universe);

  /// A/B escape hatch (scpm_cli --chunked 0|1): disabling it makes the
  /// mid-density band fall back to sorted vectors, reproducing the PR-3
  /// two-way engine bit for bit. Process-wide; set before mining, never
  /// concurrently with it.
  static void SetChunkedEnabled(bool enabled);
  static bool ChunkedEnabled();

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  VertexId universe() const { return universe_; }
  Repr repr() const { return repr_; }
  bool sparse() const { return repr_ == Repr::kSparse; }
  bool chunked() const { return repr_ == Repr::kChunked; }
  bool dense() const { return repr_ == Repr::kDense; }
  bool is_view() const { return view_ != nullptr; }

  /// Re-applies the density rule to a view or freshly assembled set,
  /// materializing whichever representation the rule picks (counted in
  /// stats->dense_conversions / chunked_conversions). Calling it where
  /// the set is built — e.g. inside the per-batch evaluation tasks —
  /// shards the conversion cost of the root-class tidsets across the
  /// pool.
  void Normalize(SetOpStats* stats);

  /// out = a ∩ b, dispatched by the operands' representations to the
  /// word-AND, chunk-wise, bitmap-probe, or merge/gallop kernel; the
  /// result representation again follows the density rule. `out` may
  /// alias neither input. Kernel dispatches are counted in `stats` (may
  /// be null).
  static void Intersect(const HybridVertexSet& a, const HybridVertexSet& b,
                        HybridVertexSet* out, SetOpStats* stats);

  /// |a ∩ b| without materializing the result.
  static std::size_t IntersectSize(const HybridVertexSet& a,
                                   const HybridVertexSet& b,
                                   SetOpStats* stats);

  /// Membership test (binary search when sparse, chunk probe when
  /// chunked, bit probe when dense).
  bool Contains(VertexId v) const;

  /// Appends the members in ascending order.
  void AppendTo(VertexSet* out) const;

  /// Sorted materialization (the API-boundary representation).
  VertexSet ToVector() const;

  /// Moves the sorted vector out (copies when borrowed, materializes
  /// when chunked or dense). The set is left empty.
  VertexSet TakeVector();

  /// The sorted vector without copying; requires sparse().
  const VertexSet& sorted() const { return view_ != nullptr ? *view_ : vec_; }

  /// The chunked container; requires chunked().
  const ChunkedVertexSet& chunk_set() const { return chunks_; }

  /// The bitmap; requires dense().
  const VertexBitset& bits() const { return bits_; }

 private:
  // Dense iff universe >= 64 and density >= 5% (1/20). The 5% knee is
  // where the word-AND scan (universe/64 words) undercuts the merge scan
  // (~2 * density * universe branchy steps); below one word the bitmap
  // cannot win anything.
  static constexpr std::size_t kDenseFraction = 20;
  static constexpr VertexId kMinDenseUniverse = 64;
  // Chunked iff universe >= one full chunk and density >= 0.5% (1/200)
  // but below the dense knee: populated chunks run at word-AND speed
  // while empty chunks — which a full-universe bitmap would still scan —
  // cost nothing.
  static constexpr std::size_t kChunkedFraction = 200;
  static constexpr VertexId kMinChunkedUniverse =
      ChunkedVertexSet::kChunkCapacity;

  /// Converts the set to PickRepresentation(size, universe), counting
  /// materializations into chunked/dense in `stats`; demotions to
  /// sparse are free.
  void Canonicalize(SetOpStats* stats);

  const VertexSet* view_ = nullptr;  // borrowed sparse storage
  VertexSet vec_;                    // owned sparse storage
  ChunkedVertexSet chunks_;          // owned chunked storage
  VertexBitset bits_;                // owned dense storage
  std::size_t size_ = 0;
  VertexId universe_ = 0;
  Repr repr_ = Repr::kSparse;
};

}  // namespace scpm

#endif  // SCPM_UTIL_HYBRID_SET_H_
