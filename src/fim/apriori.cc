#include "fim/apriori.h"

#include <algorithm>
#include <set>
#include <utility>

#include "util/hybrid_set.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

/// One itemset of the current level with its hybrid tidset (roots borrow
/// the graph-owned tidsets; join results own theirs, chunked or dense
/// past the density rule).
struct LevelEntry {
  AttributeSet items;
  HybridVertexSet tidset;
};

/// True iff every (k-1)-subset of `candidate` is in the frequent set of
/// the previous level.
bool AllSubsetsFrequent(const AttributeSet& candidate,
                        const std::set<AttributeSet>& previous_level) {
  AttributeSet subset;
  subset.reserve(candidate.size() - 1);
  for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
    subset.clear();
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != drop) subset.push_back(candidate[i]);
    }
    if (!previous_level.count(subset)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<FrequentItemset>> Apriori::MineAll(
    const AttributedGraph& graph) const {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  if (set_op_stats_ != nullptr) *set_op_stats_ = SetOpStats{};
  SetOpStats* stats = set_op_stats_;
  // Universe 0 pins every set to the sorted-vector representation.
  const VertexId universe =
      options_.use_hybrid_tidsets ? graph.NumVertices() : 0;

  std::vector<FrequentItemset> out;
  // Level 1: frequent single attributes, borrowing the graph-owned
  // tidsets (only sets the density rule compresses are materialized).
  std::vector<LevelEntry> level;
  for (AttributeId a = 0; a < graph.NumAttributes(); ++a) {
    const VertexSet& tidset = graph.VerticesWith(a);
    if (tidset.size() >= options_.min_support) {
      LevelEntry entry;
      entry.items = {a};
      entry.tidset = HybridVertexSet::View(&tidset, universe);
      entry.tidset.Normalize(stats);
      level.push_back(std::move(entry));
    }
  }

  std::size_t k = 1;
  while (!level.empty() && k <= options_.max_itemset_size) {
    if (k >= options_.min_itemset_size) {
      for (const LevelEntry& entry : level) {
        out.push_back({entry.items, entry.tidset.ToVector()});
      }
    }
    if (k == options_.max_itemset_size) break;

    // Index of the current level for the subset prune.
    std::set<AttributeSet> frequent_k;
    for (const LevelEntry& s : level) frequent_k.insert(s.items);

    // Join step: combine itemsets sharing the first k-1 items (the level
    // is sorted lexicographically, so joinable sets are adjacent runs).
    std::vector<LevelEntry> next;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        const AttributeSet& a = level[i].items;
        const AttributeSet& b = level[j].items;
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
        AttributeSet candidate = a;
        candidate.push_back(b.back());
        if (!AllSubsetsFrequent(candidate, frequent_k)) continue;
        LevelEntry entry;
        entry.items = std::move(candidate);
        HybridVertexSet::Intersect(level[i].tidset, level[j].tidset,
                                   &entry.tidset, stats);
        if (entry.tidset.size() >= options_.min_support) {
          next.push_back(std::move(entry));
        }
      }
    }
    level = std::move(next);
    ++k;
  }

  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return out;
}

}  // namespace scpm
