#include "fim/apriori.h"

#include <algorithm>
#include <set>

#include "util/sorted_ops.h"

namespace scpm {
namespace {

/// True iff every (k-1)-subset of `candidate` is in the frequent set of
/// the previous level.
bool AllSubsetsFrequent(const AttributeSet& candidate,
                        const std::set<AttributeSet>& previous_level) {
  AttributeSet subset;
  subset.reserve(candidate.size() - 1);
  for (std::size_t drop = 0; drop < candidate.size(); ++drop) {
    subset.clear();
    for (std::size_t i = 0; i < candidate.size(); ++i) {
      if (i != drop) subset.push_back(candidate[i]);
    }
    if (!previous_level.count(subset)) return false;
  }
  return true;
}

}  // namespace

Result<std::vector<FrequentItemset>> Apriori::MineAll(
    const AttributedGraph& graph) const {
  SCPM_RETURN_IF_ERROR(options_.Validate());

  std::vector<FrequentItemset> out;
  // Level 1: frequent single attributes.
  std::vector<FrequentItemset> level;
  for (AttributeId a = 0; a < graph.NumAttributes(); ++a) {
    const VertexSet& tidset = graph.VerticesWith(a);
    if (tidset.size() >= options_.min_support) {
      level.push_back({{a}, tidset});
    }
  }

  std::size_t k = 1;
  while (!level.empty() && k <= options_.max_itemset_size) {
    if (k >= options_.min_itemset_size) {
      out.insert(out.end(), level.begin(), level.end());
    }
    if (k == options_.max_itemset_size) break;

    // Index of the current level for the subset prune.
    std::set<AttributeSet> frequent_k;
    for (const FrequentItemset& s : level) frequent_k.insert(s.items);

    // Join step: combine itemsets sharing the first k-1 items (the level
    // is sorted lexicographically, so joinable sets are adjacent runs).
    std::vector<FrequentItemset> next;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        const AttributeSet& a = level[i].items;
        const AttributeSet& b = level[j].items;
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) break;
        AttributeSet candidate = a;
        candidate.push_back(b.back());
        if (!AllSubsetsFrequent(candidate, frequent_k)) continue;
        FrequentItemset item;
        item.items = std::move(candidate);
        SortedIntersect(level[i].tidset, level[j].tidset, &item.tidset);
        if (item.tidset.size() >= options_.min_support) {
          next.push_back(std::move(item));
        }
      }
    }
    level = std::move(next);
    ++k;
  }

  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });
  return out;
}

}  // namespace scpm
