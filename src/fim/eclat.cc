#include "fim/eclat.h"

#include <utility>

#include "util/sorted_ops.h"

namespace scpm {

Status EclatOptions::Validate() const {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (min_itemset_size < 1) {
    return Status::InvalidArgument("min_itemset_size must be >= 1");
  }
  if (max_itemset_size < min_itemset_size) {
    return Status::InvalidArgument(
        "max_itemset_size must be >= min_itemset_size");
  }
  return Status::OK();
}

namespace {

/// One node of the Eclat prefix tree: the last item of the prefix plus the
/// tidset of the whole prefix.
struct Node {
  AttributeId item;
  VertexSet tidset;
};

/// Recursive equivalence-class extension. `prefix` holds the current
/// itemset; `siblings` the frequent right-extensions of the parent class.
/// Returns false when the visitor requested a stop.
bool Extend(std::vector<Node>& siblings, AttributeSet& prefix,
            const EclatOptions& options, const ItemsetVisitor& visitor) {
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    prefix.push_back(siblings[i].item);
    if (prefix.size() >= options.min_itemset_size) {
      if (!visitor(prefix, siblings[i].tidset)) {
        prefix.pop_back();
        return false;
      }
    }
    if (prefix.size() < options.max_itemset_size) {
      std::vector<Node> children;
      for (std::size_t j = i + 1; j < siblings.size(); ++j) {
        Node child;
        child.item = siblings[j].item;
        SortedIntersect(siblings[i].tidset, siblings[j].tidset,
                        &child.tidset);
        if (child.tidset.size() >= options.min_support) {
          children.push_back(std::move(child));
        }
      }
      if (!children.empty() && !Extend(children, prefix, options, visitor)) {
        prefix.pop_back();
        return false;
      }
    }
    prefix.pop_back();
  }
  return true;
}

}  // namespace

Status Eclat::Mine(const AttributedGraph& graph,
                   const ItemsetVisitor& visitor) const {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  std::vector<Node> roots;
  for (AttributeId a = 0; a < graph.NumAttributes(); ++a) {
    const VertexSet& tidset = graph.VerticesWith(a);
    if (tidset.size() >= options_.min_support) {
      roots.push_back({a, tidset});
    }
  }
  AttributeSet prefix;
  Extend(roots, prefix, options_, visitor);
  return Status::OK();
}

Result<std::vector<FrequentItemset>> Eclat::MineAll(
    const AttributedGraph& graph) const {
  std::vector<FrequentItemset> out;
  Status status =
      Mine(graph, [&](const AttributeSet& items, const VertexSet& tidset) {
        out.push_back({items, tidset});
        return true;
      });
  if (!status.ok()) return status;
  return out;
}

}  // namespace scpm
