#include "fim/eclat.h"

#include <utility>

#include "util/sorted_ops.h"

namespace scpm {

Status EclatOptions::Validate() const {
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (min_itemset_size < 1) {
    return Status::InvalidArgument("min_itemset_size must be >= 1");
  }
  if (max_itemset_size < min_itemset_size) {
    return Status::InvalidArgument(
        "max_itemset_size must be >= min_itemset_size");
  }
  return Status::OK();
}

namespace {

/// One node of the Eclat prefix tree: the last item of the prefix plus the
/// tidset of the whole prefix. Roots borrow the graph-owned tidsets;
/// deeper nodes own the intersection results, dense or sparse.
struct Node {
  AttributeId item;
  HybridVertexSet tidset;
};

/// Mining state threaded through the recursion: thresholds, the visitor,
/// the kernel counters, and a scratch vector for materializing dense
/// tidsets at the visitor boundary.
struct Context {
  const EclatOptions& options;
  const ItemsetVisitor& visitor;
  SetOpStats* stats = nullptr;
  VertexSet scratch;

  /// Presents a tidset to the visitor as a sorted vector (zero-copy when
  /// sparse; chunked and dense tidsets materialize into the scratch
  /// vector). Returns the visitor's verdict.
  bool Visit(const AttributeSet& items, const Node& node) {
    if (node.tidset.sparse()) return visitor(items, node.tidset.sorted());
    scratch.clear();
    node.tidset.AppendTo(&scratch);
    return visitor(items, scratch);
  }
};

/// Recursive equivalence-class extension. `prefix` holds the current
/// itemset; `siblings` the frequent right-extensions of the parent class.
/// Returns false when the visitor requested a stop.
bool Extend(std::vector<Node>& siblings, AttributeSet& prefix, Context& ctx) {
  for (std::size_t i = 0; i < siblings.size(); ++i) {
    prefix.push_back(siblings[i].item);
    if (prefix.size() >= ctx.options.min_itemset_size) {
      if (!ctx.Visit(prefix, siblings[i])) {
        prefix.pop_back();
        return false;
      }
    }
    if (prefix.size() < ctx.options.max_itemset_size) {
      std::vector<Node> children;
      for (std::size_t j = i + 1; j < siblings.size(); ++j) {
        Node child;
        child.item = siblings[j].item;
        HybridVertexSet::Intersect(siblings[i].tidset, siblings[j].tidset,
                                   &child.tidset, ctx.stats);
        if (child.tidset.size() >= ctx.options.min_support) {
          children.push_back(std::move(child));
        }
      }
      if (!children.empty() && !Extend(children, prefix, ctx)) {
        prefix.pop_back();
        return false;
      }
    }
    prefix.pop_back();
  }
  return true;
}

}  // namespace

Status Eclat::Mine(const AttributedGraph& graph,
                   const ItemsetVisitor& visitor) const {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  if (set_op_stats_ != nullptr) *set_op_stats_ = SetOpStats{};
  Context ctx{options_, visitor, set_op_stats_, {}};
  // Universe 0 pins every set to the sorted-vector representation.
  const VertexId universe =
      options_.use_hybrid_tidsets ? graph.NumVertices() : 0;
  std::vector<Node> roots;
  for (AttributeId a = 0; a < graph.NumAttributes(); ++a) {
    const VertexSet& tidset = graph.VerticesWith(a);
    if (tidset.size() < options_.min_support) continue;
    Node root;
    root.item = a;
    // Borrow the graph-owned tidset (the graph outlives the mining call);
    // only sets the density rule wants dense are materialized at all.
    root.tidset = HybridVertexSet::View(&tidset, universe);
    root.tidset.Normalize(ctx.stats);
    roots.push_back(std::move(root));
  }
  AttributeSet prefix;
  Extend(roots, prefix, ctx);
  return Status::OK();
}

Result<std::vector<FrequentItemset>> Eclat::MineAll(
    const AttributedGraph& graph) const {
  std::vector<FrequentItemset> out;
  Status status =
      Mine(graph, [&](const AttributeSet& items, const VertexSet& tidset) {
        out.push_back({items, tidset});
        return true;
      });
  if (!status.ok()) return status;
  return out;
}

}  // namespace scpm
