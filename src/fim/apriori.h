// Apriori frequent itemset mining (Agrawal et al., SIGMOD'93 — the
// paper's reference [1]).
//
// Level-wise candidate generation with the subset-infrequency prune;
// provided as an independent reference implementation for Eclat (the test
// suite checks they produce identical outputs) and for workloads where
// breadth-first enumeration is preferable.

#ifndef SCPM_FIM_APRIORI_H_
#define SCPM_FIM_APRIORI_H_

#include <vector>

#include "fim/eclat.h"
#include "graph/attributed_graph.h"
#include "util/result.h"

namespace scpm {

/// Level-wise Apriori; accepts the same options as Eclat and produces the
/// same itemsets (in level order rather than DFS order).
class Apriori {
 public:
  explicit Apriori(EclatOptions options) : options_(options) {}

  /// Materializes all frequent itemsets, ordered by (size, lexicographic).
  Result<std::vector<FrequentItemset>> MineAll(
      const AttributedGraph& graph) const;

 private:
  EclatOptions options_;
};

}  // namespace scpm

#endif  // SCPM_FIM_APRIORI_H_
