// Apriori frequent itemset mining (Agrawal et al., SIGMOD'93 — the
// paper's reference [1]).
//
// Level-wise candidate generation with the subset-infrequency prune;
// provided as an independent reference implementation for Eclat (the test
// suite checks they produce identical outputs) and for workloads where
// breadth-first enumeration is preferable. Candidate tidset intersections
// go through the same hybrid (sparse / chunked / dense-bitmap) kernels as
// Eclat's.

#ifndef SCPM_FIM_APRIORI_H_
#define SCPM_FIM_APRIORI_H_

#include <vector>

#include "fim/eclat.h"
#include "graph/attributed_graph.h"
#include "util/hybrid_set.h"
#include "util/result.h"

namespace scpm {

/// Apriori accepts exactly Eclat's thresholds — including
/// use_hybrid_tidsets, which routes the level-join tidset intersections
/// through the HybridVertexSet kernels (off pins the pure sorted-vector
/// merges, bit for bit).
using AprioriOptions = EclatOptions;

/// Level-wise Apriori; accepts the same options as Eclat and produces the
/// same itemsets (in level order rather than DFS order).
class Apriori {
 public:
  explicit Apriori(AprioriOptions options) : options_(options) {}

  /// Materializes all frequent itemsets, ordered by (size, lexicographic).
  Result<std::vector<FrequentItemset>> MineAll(
      const AttributedGraph& graph) const;

  /// Optional sink for the set-kernel counters of each MineAll call
  /// (reset at every call); borrowed, may be null.
  void set_stats(SetOpStats* stats) { set_op_stats_ = stats; }

 private:
  AprioriOptions options_;
  SetOpStats* set_op_stats_ = nullptr;
};

}  // namespace scpm

#endif  // SCPM_FIM_APRIORI_H_
