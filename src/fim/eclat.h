// Eclat frequent itemset mining over vertex attributes.
//
// The paper's naive baseline (§3.1) enumerates all frequent attribute sets
// with Eclat [Zaki 2000] before mining quasi-cliques per induced graph.
// Items are attribute ids; transactions are vertices; the "tidset" of an
// attribute set S is exactly V(S), the induced vertex set.

#ifndef SCPM_FIM_ECLAT_H_
#define SCPM_FIM_ECLAT_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "graph/attributed_graph.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// A frequent attribute set with its supporting vertex set.
struct FrequentItemset {
  AttributeSet items;  // sorted attribute ids
  VertexSet tidset;    // sorted vertices containing every item; V(S)

  std::size_t support() const { return tidset.size(); }
};

/// Mining thresholds for Eclat.
struct EclatOptions {
  /// Minimum support sigma_min (absolute vertex count), >= 1.
  std::size_t min_support = 1;
  /// Report only itemsets with at least this many items.
  std::size_t min_itemset_size = 1;
  /// Do not extend itemsets beyond this many items.
  std::size_t max_itemset_size = std::numeric_limits<std::size_t>::max();

  Status Validate() const;
};

/// Visitor invoked for every frequent itemset (in DFS order). Return false
/// to stop mining early.
using ItemsetVisitor =
    std::function<bool(const AttributeSet& items, const VertexSet& tidset)>;

/// Depth-first Eclat with sorted-vector tidset intersection.
class Eclat {
 public:
  explicit Eclat(EclatOptions options) : options_(options) {}

  /// Streams every frequent itemset to `visitor`.
  Status Mine(const AttributedGraph& graph,
              const ItemsetVisitor& visitor) const;

  /// Materializes the complete set of frequent itemsets.
  Result<std::vector<FrequentItemset>> MineAll(
      const AttributedGraph& graph) const;

 private:
  EclatOptions options_;
};

}  // namespace scpm

#endif  // SCPM_FIM_ECLAT_H_
