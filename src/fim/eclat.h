// Eclat frequent itemset mining over vertex attributes.
//
// The paper's naive baseline (§3.1) enumerates all frequent attribute sets
// with Eclat [Zaki 2000] before mining quasi-cliques per induced graph.
// Items are attribute ids; transactions are vertices; the "tidset" of an
// attribute set S is exactly V(S), the induced vertex set.

#ifndef SCPM_FIM_ECLAT_H_
#define SCPM_FIM_ECLAT_H_

#include <cstddef>
#include <functional>
#include <limits>
#include <vector>

#include "graph/attributed_graph.h"
#include "graph/types.h"
#include "util/hybrid_set.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// A frequent attribute set with its supporting vertex set.
struct FrequentItemset {
  AttributeSet items;  // sorted attribute ids
  VertexSet tidset;    // sorted vertices containing every item; V(S)

  std::size_t support() const { return tidset.size(); }
};

/// Mining thresholds for Eclat.
struct EclatOptions {
  /// Minimum support sigma_min (absolute vertex count), >= 1.
  std::size_t min_support = 1;
  /// Report only itemsets with at least this many items.
  std::size_t min_itemset_size = 1;
  /// Do not extend itemsets beyond this many items.
  std::size_t max_itemset_size = std::numeric_limits<std::size_t>::max();
  /// Store tidsets as HybridVertexSet (dense bitmaps once they pass the
  /// density rule) instead of always-sorted vectors. Output is identical
  /// either way; off reproduces the pure merge-based mining.
  bool use_hybrid_tidsets = true;

  Status Validate() const;
};

/// Visitor invoked for every frequent itemset (in DFS order). Return false
/// to stop mining early.
using ItemsetVisitor =
    std::function<bool(const AttributeSet& items, const VertexSet& tidset)>;

/// Depth-first Eclat over hybrid (sparse-vector / dense-bitmap) tidsets.
/// Root classes borrow the graph-owned attribute tidsets instead of
/// copying them, so mining starts without an O(attribute occurrences)
/// materialization pass.
class Eclat {
 public:
  explicit Eclat(EclatOptions options) : options_(options) {}

  /// Streams every frequent itemset to `visitor`. The tidset reference
  /// passed to the visitor is only valid during the call.
  Status Mine(const AttributedGraph& graph,
              const ItemsetVisitor& visitor) const;

  /// Materializes the complete set of frequent itemsets.
  Result<std::vector<FrequentItemset>> MineAll(
      const AttributedGraph& graph) const;

  /// Optional sink for the set-kernel counters of each Mine call (reset
  /// at every call); borrowed, may be null.
  void set_stats(SetOpStats* stats) { set_op_stats_ = stats; }

 private:
  EclatOptions options_;
  SetOpStats* set_op_stats_ = nullptr;
};

}  // namespace scpm

#endif  // SCPM_FIM_ECLAT_H_
