#include "nullmodel/binomial.h"

#include <cmath>

#include "util/logging.h"

namespace scpm {

double LogBinomialCoefficient(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -INFINITY;
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double BinomialPmf(std::uint64_t n, std::uint64_t k, double p) {
  SCPM_CHECK(p >= 0.0 && p <= 1.0);
  if (k > n) return 0.0;
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double log_pmf = LogBinomialCoefficient(n, k) +
                         static_cast<double>(k) * std::log(p) +
                         static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(log_pmf);
}

double BinomialTailAtLeast(std::uint64_t n, std::uint64_t z, double p) {
  SCPM_CHECK(p >= 0.0 && p <= 1.0);
  if (z == 0) return 1.0;
  if (z > n) return 0.0;
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  // Start from the pmf at z and accumulate upward:
  //   pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p).
  const double odds = p / (1.0 - p);
  double term = BinomialPmf(n, z, p);
  double sum = term;
  for (std::uint64_t k = z; k < n; ++k) {
    term *= static_cast<double>(n - k) / static_cast<double>(k + 1) * odds;
    sum += term;
    if (term < 1e-18 * sum) break;  // Converged: remaining tail negligible.
  }
  return sum > 1.0 ? 1.0 : sum;
}

}  // namespace scpm
