// Numerically stable binomial helpers for the analytical null model
// (paper Theorems 1 and 2).

#ifndef SCPM_NULLMODEL_BINOMIAL_H_
#define SCPM_NULLMODEL_BINOMIAL_H_

#include <cstdint>

namespace scpm {

/// ln C(n, k); 0 when k == 0 or k == n, -inf-free (returns 0 for invalid
/// k > n by convention of the callers, which never pass it).
double LogBinomialCoefficient(std::uint64_t n, std::uint64_t k);

/// Binomial point mass P[Bin(n, p) = k], computed in log space.
double BinomialPmf(std::uint64_t n, std::uint64_t k, double p);

/// Upper tail P[Bin(n, p) >= z]. Handles p = 0, p = 1, z = 0, z > n.
/// Computed by summing pmf terms upward from z with an incremental odds
/// ratio; O(n - z) work.
double BinomialTailAtLeast(std::uint64_t n, std::uint64_t z, double p);

}  // namespace scpm

#endif  // SCPM_NULLMODEL_BINOMIAL_H_
