// Null models for the expected structural correlation (paper §2.1.3).
//
// Both models answer: "if sigma vertices were drawn at random from G, what
// fraction would sit in a quasi-clique of the sampled subgraph?"
//
//  * MaxExpectationModel — the analytical upper bound of Theorem 2:
//    max-exp(sigma) = sum_alpha p(alpha) * P[Bin(alpha, rho) >= z] with
//    rho = (sigma-1)/(|V|-1), z = ceil(gamma (min_size - 1)). Monotone
//    non-decreasing in sigma, which Theorem 5's pruning relies on.
//  * SimExpectationModel — Monte-Carlo: draws r random vertex samples and
//    mines quasi-clique coverage in each induced subgraph (sim-exp).
//
// delta_lb = eps / max-exp  is a lower bound on  delta_sim = eps / sim-exp.

#ifndef SCPM_NULLMODEL_EXPECTATION_H_
#define SCPM_NULLMODEL_EXPECTATION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "qclique/miner.h"
#include "qclique/quasi_clique.h"
#include "util/random.h"

namespace scpm {

/// Interface: expected structural correlation as a function of support.
/// Implementations memoize per-support values; the bundled
/// implementations are thread-safe (required by parallel SCPM).
class ExpectationModel {
 public:
  virtual ~ExpectationModel() = default;

  /// Expected structural correlation of a random vertex sample of size
  /// `support` from the underlying graph. Must be monotone non-decreasing
  /// in `support` for Theorem 5 pruning to be sound.
  virtual double Expectation(std::size_t support) = 0;

  /// Model name for reports ("max-exp", "sim-exp").
  virtual std::string name() const = 0;
};

/// Theorem 2's analytical upper bound on the expected structural
/// correlation; exact degree histogram, O(max_degree^2) per distinct
/// support (memoized).
class MaxExpectationModel : public ExpectationModel {
 public:
  MaxExpectationModel(const Graph& graph, QuasiCliqueParams params);

  double Expectation(std::size_t support) override;
  std::string name() const override { return "max-exp"; }

 private:
  QuasiCliqueParams params_;
  std::size_t num_vertices_;
  std::vector<double> degree_fraction_;  // p(alpha)
  std::mutex mutex_;                     // guards cache_
  std::unordered_map<std::size_t, double> cache_;
};

/// Monte-Carlo estimate of the expected structural correlation
/// (the paper's sim-exp with r simulations per support value).
///
/// The estimate for a given support is a pure function of (graph, params,
/// num_samples, seed, support) — each support value draws from its own
/// seed-derived random stream — so results do not depend on the order in
/// which supports are first queried. Parallel SCPM relies on this for its
/// byte-identical-output guarantee.
class SimExpectationModel : public ExpectationModel {
 public:
  /// `graph` must outlive the model.
  SimExpectationModel(const Graph& graph, QuasiCliqueParams params,
                      std::size_t num_samples, std::uint64_t seed);

  double Expectation(std::size_t support) override;
  std::string name() const override { return "sim-exp"; }

  /// Mean and standard deviation across the r samples (uncached path).
  struct Estimate {
    double mean = 0.0;
    double stddev = 0.0;
  };
  Estimate EstimateWithStddev(std::size_t support);

 private:
  /// The pure per-support Monte-Carlo computation; needs no lock.
  Estimate ComputeEstimate(std::size_t support);

  const Graph& graph_;
  QuasiCliqueParams params_;
  std::size_t num_samples_;
  std::uint64_t seed_;
  std::mutex mutex_;  // guards cache_
  std::unordered_map<std::size_t, double> cache_;
};

}  // namespace scpm

#endif  // SCPM_NULLMODEL_EXPECTATION_H_
