#include "nullmodel/expectation.h"

#include <cmath>

#include "graph/subgraph.h"
#include "nullmodel/binomial.h"
#include "util/logging.h"

namespace scpm {

MaxExpectationModel::MaxExpectationModel(const Graph& graph,
                                         QuasiCliqueParams params)
    : params_(params), num_vertices_(graph.NumVertices()) {
  const std::vector<std::size_t> histogram = graph.DegreeHistogram();
  degree_fraction_.resize(histogram.size());
  for (std::size_t d = 0; d < histogram.size(); ++d) {
    degree_fraction_[d] =
        num_vertices_ == 0
            ? 0.0
            : static_cast<double>(histogram[d]) /
                  static_cast<double>(num_vertices_);
  }
}

double MaxExpectationModel::Expectation(std::size_t support) {
  if (num_vertices_ < 2 || support < 2) return 0.0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = cache_.find(support); it != cache_.end()) return it->second;

  // Theorem 2: rho is the probability that a specific other vertex lands
  // in the random sample given that v is already in it.
  const double rho = static_cast<double>(support - 1) /
                     static_cast<double>(num_vertices_ - 1);
  const std::uint32_t z = params_.RequiredDegree(params_.min_size);
  double value;
  if (z == 0) {
    value = 1.0;
  } else {
    value = 0.0;
    for (std::size_t alpha = z; alpha < degree_fraction_.size(); ++alpha) {
      if (degree_fraction_[alpha] == 0.0) continue;
      value += degree_fraction_[alpha] *
               BinomialTailAtLeast(alpha, z, rho);
    }
  }
  cache_.emplace(support, value);
  return value;
}

SimExpectationModel::SimExpectationModel(const Graph& graph,
                                         QuasiCliqueParams params,
                                         std::size_t num_samples,
                                         std::uint64_t seed)
    : graph_(graph),
      params_(params),
      num_samples_(num_samples),
      seed_(seed) {
  SCPM_CHECK_GE(num_samples, 1u);
}

double SimExpectationModel::Expectation(std::size_t support) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (auto it = cache_.find(support); it != cache_.end()) {
      return it->second;
    }
  }
  // Computed outside the lock: the estimate is a pure function of
  // (seed, support), so concurrent first-touches of the same support
  // redundantly compute the same value instead of serializing every
  // worker behind one Monte-Carlo loop.
  const double value = ComputeEstimate(support).mean;
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.emplace(support, value);
  return value;
}

SimExpectationModel::Estimate SimExpectationModel::EstimateWithStddev(
    std::size_t support) {
  return ComputeEstimate(support);
}

SimExpectationModel::Estimate SimExpectationModel::ComputeEstimate(
    std::size_t support) {
  Estimate out;
  if (graph_.NumVertices() == 0 || support == 0) return out;
  const std::uint32_t n = graph_.NumVertices();
  const std::uint32_t sample_size = static_cast<std::uint32_t>(
      std::min<std::size_t>(support, n));

  QuasiCliqueMinerOptions miner_options;
  miner_options.params = params_;
  QuasiCliqueMiner miner(miner_options);

  // Each support draws from its own seed-derived stream (splitmix64 mix)
  // so the estimate does not depend on which supports were queried
  // before it — parallel mining first-touches supports in thread-timing
  // order, and the result must not care.
  std::uint64_t z = seed_ ^ (support + 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e9b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  Rng rng(z ^ (z >> 31));

  double sum = 0.0;
  double sum_sq = 0.0;
  for (std::size_t s = 0; s < num_samples_; ++s) {
    const VertexSet sample = rng.SampleWithoutReplacement(n, sample_size);
    Result<InducedSubgraph> sub = InducedSubgraph::Create(graph_, sample);
    SCPM_CHECK(sub.ok()) << sub.status();
    Result<VertexSet> covered = miner.MineCoverage(sub->graph());
    SCPM_CHECK(covered.ok()) << covered.status();
    const double eps = static_cast<double>(covered->size()) /
                       static_cast<double>(sample_size);
    sum += eps;
    sum_sq += eps * eps;
  }
  const double r = static_cast<double>(num_samples_);
  out.mean = sum / r;
  const double variance = std::max(0.0, sum_sq / r - out.mean * out.mean);
  out.stddev = std::sqrt(variance);
  return out;
}

}  // namespace scpm
