// Quasi-clique definitions (paper Definition 1).
//
// A gamma-quasi-clique is a vertex set Q, |Q| >= min_size, in which every
// vertex has at least ceil(gamma * (|Q| - 1)) neighbors inside Q; the
// mining problem asks for the maximal such sets. Following the paper's
// Table 1, a pattern's reported "gamma" is its min-degree ratio
// min_v deg_Q(v) / (|Q| - 1).

#ifndef SCPM_QCLIQUE_QUASI_CLIQUE_H_
#define SCPM_QCLIQUE_QUASI_CLIQUE_H_

#include <cstdint>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace scpm {

/// gamma_min and min_size thresholds shared by everything downstream.
struct QuasiCliqueParams {
  /// Minimum density threshold gamma_min in (0, 1].
  double gamma = 0.5;
  /// Minimum quasi-clique size (number of vertices), >= 2.
  std::uint32_t min_size = 2;

  Status Validate() const;

  /// ceil(gamma * (size - 1)): minimum in-set degree for a member of a
  /// satisfying set with `size` vertices.
  std::uint32_t RequiredDegree(std::size_t size) const;

  /// Largest set size in which a vertex of in-set degree `degree` can still
  /// meet the constraint: max { s : RequiredDegree(s) <= degree }.
  std::size_t MaxSizeForDegree(std::size_t degree) const;
};

/// True iff every vertex of (sorted) `q` has at least RequiredDegree(|q|)
/// neighbors inside `q`. Does not check min_size.
bool SatisfiesDegreeConstraint(const Graph& graph, const VertexSet& q,
                               const QuasiCliqueParams& params);

/// Degree + size check: |q| >= min_size and SatisfiesDegreeConstraint.
/// (Maximality is a property relative to all satisfying sets and is
/// handled by the miners.)
bool IsSatisfyingSet(const Graph& graph, const VertexSet& q,
                     const QuasiCliqueParams& params);

/// min_v deg_q(v) / (|q| - 1); 0 for |q| < 2. The paper's per-pattern
/// "gamma" column.
double MinDegreeRatio(const Graph& graph, const VertexSet& q);

}  // namespace scpm

#endif  // SCPM_QCLIQUE_QUASI_CLIQUE_H_
