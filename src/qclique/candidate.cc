#include "qclique/candidate.h"

#include <algorithm>
#include <bit>

#include "util/sorted_ops.h"

namespace scpm {
namespace {

/// Bitset degree counting pays off until the bitset scan (n/64 words)
/// exceeds typical adjacency sizes by too much; 4096 vertices = 64 words
/// per query, still far cheaper than cache-missing adjacency walks.
constexpr VertexId kMaxBitsetVertices = 4096;

}  // namespace

CandidateScratch::CandidateScratch(const Graph& graph)
    : graph_(graph),
      epoch_of_(graph.NumVertices(), 0),
      in_x_(graph.NumVertices(), 0) {
  const VertexId n = graph.NumVertices();
  if (n > 0 && n <= kMaxBitsetVertices) {
    use_bitsets_ = true;
    words_ = (static_cast<std::size_t>(n) + 63) / 64;
    auto bits = std::make_shared<std::vector<std::uint64_t>>(
        static_cast<std::size_t>(n) * words_, 0);
    marked_bits_.assign(words_, 0);
    x_bits_.assign(words_, 0);
    for (VertexId v = 0; v < n; ++v) {
      std::uint64_t* row = &(*bits)[v * words_];
      for (VertexId u : graph.Neighbors(v)) {
        row[u / 64] |= std::uint64_t{1} << (u % 64);
      }
    }
    adjacency_bits_ = std::move(bits);
  }
}

void CandidateScratch::Mark(VertexId v, bool in_x) {
  epoch_of_[v] = epoch_;
  in_x_[v] = in_x ? 1 : 0;
  if (use_bitsets_) {
    const std::uint64_t bit = std::uint64_t{1} << (v % 64);
    marked_bits_[v / 64] |= bit;
    if (in_x) {
      x_bits_[v / 64] |= bit;
    } else {
      x_bits_[v / 64] &= ~bit;
    }
  }
}

void CandidateScratch::Unmark(VertexId v) {
  epoch_of_[v] = epoch_ - 1;
  if (use_bitsets_) {
    const std::uint64_t bit = std::uint64_t{1} << (v % 64);
    marked_bits_[v / 64] &= ~bit;
    x_bits_[v / 64] &= ~bit;
  }
}

std::uint32_t CandidateScratch::MarkedDegree(VertexId v) const {
  if (use_bitsets_) {
    const std::uint64_t* row = adjacency_bits_->data() + v * words_;
    std::uint32_t deg = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      deg += static_cast<std::uint32_t>(
          std::popcount(row[w] & marked_bits_[w]));
    }
    return deg;
  }
  std::uint32_t deg = 0;
  for (VertexId u : graph_.Neighbors(v)) {
    if (epoch_of_[u] == epoch_) ++deg;
  }
  return deg;
}

std::uint32_t CandidateScratch::MarkedDegreeInX(VertexId v) const {
  if (use_bitsets_) {
    const std::uint64_t* row = adjacency_bits_->data() + v * words_;
    std::uint32_t deg = 0;
    for (std::size_t w = 0; w < words_; ++w) {
      deg += static_cast<std::uint32_t>(std::popcount(row[w] & x_bits_[w]));
    }
    return deg;
  }
  std::uint32_t deg = 0;
  for (VertexId u : graph_.Neighbors(v)) {
    if (epoch_of_[u] == epoch_ && in_x_[u]) ++deg;
  }
  return deg;
}

CandidateAnalysis CandidateScratch::Analyze(const Candidate& candidate,
                                            const QuasiCliqueParams& params,
                                            bool enable_size_bound,
                                            bool enable_lookahead,
                                            bool enable_critical_vertex) {
  CandidateAnalysis out;
  if (epoch_ == static_cast<std::uint32_t>(-1)) {
    std::fill(epoch_of_.begin(), epoch_of_.end(), 0);
    epoch_ = 0;
  }
  ++epoch_;
  if (use_bitsets_) {
    std::fill(marked_bits_.begin(), marked_bits_.end(), 0);
    std::fill(x_bits_.begin(), x_bits_.end(), 0);
  }
  for (VertexId v : candidate.x) Mark(v, /*in_x=*/true);
  for (VertexId v : candidate.ext) Mark(v, /*in_x=*/false);

  VertexSet alive = candidate.ext;
  const std::size_t x_size = candidate.x.size();
  // Any set in this subtree containing an extension vertex has size at
  // least max(min_size, |x| + 1).
  const std::uint32_t ext_required = params.RequiredDegree(
      std::max<std::size_t>(params.min_size, x_size + 1));

  // Iteratively drop extension vertices whose degree inside x ∪ alive can
  // no longer meet the constraint; each removal may cascade.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < alive.size();) {
      const VertexId v = alive[i];
      if (MarkedDegree(v) < ext_required) {
        Unmark(v);
        alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
      } else {
        ++i;
      }
    }
  }

  // Feasibility of x itself: each chosen vertex must be able to meet the
  // constraint in some set of size >= max(min_size, |x|) drawn from
  // x ∪ alive.
  const std::uint32_t x_required = params.RequiredDegree(
      std::max<std::size_t>(params.min_size, x_size));
  std::size_t max_reachable = x_size + alive.size();
  for (VertexId v : candidate.x) {
    const std::uint32_t deg = MarkedDegree(v);
    if (deg < x_required) {
      out.verdict = CandidateVerdict::kPrune;
      return out;
    }
    if (enable_size_bound) {
      max_reachable = std::min(max_reachable, params.MaxSizeForDegree(deg));
    }
  }
  if (x_size + alive.size() < params.min_size ||
      max_reachable < params.min_size) {
    out.verdict = CandidateVerdict::kPrune;
    return out;
  }

  // Is x already a satisfying set? (Degrees counted within x only.)
  if (x_size >= params.min_size) {
    const std::uint32_t req_x = params.RequiredDegree(x_size);
    out.x_is_satisfying = true;
    for (VertexId v : candidate.x) {
      if (MarkedDegreeInX(v) < req_x) {
        out.x_is_satisfying = false;
        break;
      }
    }
  }

  // Lookahead (paper Alg. 1 line 9): if x ∪ alive satisfies the degree
  // constraint, it dominates every subset in the subtree.
  if (enable_lookahead) {
    const std::size_t all_size = x_size + alive.size();
    if (all_size >= params.min_size) {
      const std::uint32_t req_all = params.RequiredDegree(all_size);
      bool all_ok = true;
      for (VertexId v : candidate.x) {
        if (MarkedDegree(v) < req_all) {
          all_ok = false;
          break;
        }
      }
      if (all_ok) {
        for (VertexId v : alive) {
          if (MarkedDegree(v) < req_all) {
            all_ok = false;
            break;
          }
        }
      }
      if (all_ok) {
        out.verdict = CandidateVerdict::kLookahead;
        out.pruned_ext = std::move(alive);
        return out;
      }
    }
  }

  // Critical-vertex technique (Quick): if a chosen vertex's degree budget
  // inside x ∪ alive is exactly the minimum it needs, every satisfying
  // set in this subtree must include all of its alive neighbors. (Note a
  // non-empty forced set implies x itself is not satisfying: the critical
  // vertex is short of degree within x alone.)
  if (enable_critical_vertex) {
    for (VertexId u : candidate.x) {
      if (MarkedDegree(u) != x_required) continue;
      for (VertexId w : graph_.Neighbors(u)) {
        if (epoch_of_[w] == epoch_ && !in_x_[w]) out.forced.push_back(w);
      }
    }
    SortUnique(&out.forced);
  }

  out.verdict = CandidateVerdict::kExpand;
  out.pruned_ext = std::move(alive);
  return out;
}

}  // namespace scpm
