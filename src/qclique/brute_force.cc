#include "qclique/brute_force.h"

#include <algorithm>

#include "util/sorted_ops.h"

namespace scpm {
namespace {

constexpr VertexId kMaxBruteForceVertices = 24;

Status CheckSize(const Graph& graph) {
  if (graph.NumVertices() > kMaxBruteForceVertices) {
    return Status::InvalidArgument(
        "brute-force reference limited to tiny graphs");
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<VertexSet>> BruteForceSatisfyingSets(
    const Graph& graph, const QuasiCliqueParams& params) {
  SCPM_RETURN_IF_ERROR(CheckSize(graph));
  SCPM_RETURN_IF_ERROR(params.Validate());
  const VertexId n = graph.NumVertices();
  std::vector<VertexSet> out;
  VertexSet q;
  for (std::uint64_t mask = 1; mask < (1ULL << n); ++mask) {
    if (static_cast<std::uint32_t>(__builtin_popcountll(mask)) <
        params.min_size) {
      continue;
    }
    q.clear();
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1ULL << v)) q.push_back(v);
    }
    if (SatisfiesDegreeConstraint(graph, q, params)) out.push_back(q);
  }
  std::sort(out.begin(), out.end(),
            [](const VertexSet& a, const VertexSet& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  return out;
}

Result<std::vector<VertexSet>> BruteForceMaximalQuasiCliques(
    const Graph& graph, const QuasiCliqueParams& params) {
  Result<std::vector<VertexSet>> all = BruteForceSatisfyingSets(graph, params);
  if (!all.ok()) return all.status();
  std::vector<VertexSet> maximal;
  for (const VertexSet& q : *all) {
    bool dominated = false;
    for (const VertexSet& other : *all) {
      if (other.size() > q.size() && SortedIsSubset(q, other)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) maximal.push_back(q);
  }
  std::sort(maximal.begin(), maximal.end(),
            [](const VertexSet& a, const VertexSet& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;
            });
  return maximal;
}

Result<VertexSet> BruteForceCoverage(const Graph& graph,
                                     const QuasiCliqueParams& params) {
  Result<std::vector<VertexSet>> all = BruteForceSatisfyingSets(graph, params);
  if (!all.ok()) return all.status();
  std::vector<bool> covered(graph.NumVertices(), false);
  for (const VertexSet& q : *all) {
    for (VertexId v : q) covered[v] = true;
  }
  VertexSet out;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (covered[v]) out.push_back(v);
  }
  return out;
}

}  // namespace scpm
