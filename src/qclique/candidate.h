// Candidate quasi-cliques: the (X, candExts(X)) pairs of paper Algorithm 1.
//
// The set-enumeration tree explores all subsets Q with X ⊆ Q ⊆ X ∪ ext;
// CandidateScratch centralizes the per-candidate degree computation and the
// iterative pruning shared by all mining modes.

#ifndef SCPM_QCLIQUE_CANDIDATE_H_
#define SCPM_QCLIQUE_CANDIDATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "qclique/quasi_clique.h"

namespace scpm {

/// One node of the quasi-clique search tree.
struct Candidate {
  VertexSet x;    // chosen vertices (sorted)
  VertexSet ext;  // candidate extensions (sorted, disjoint from x)
};

/// Outcome of analyzing a candidate.
enum class CandidateVerdict {
  kPrune,          // no satisfying set can exist in this subtree
  kLookahead,      // x ∪ ext is itself a satisfying set (report; subtree done)
  kExpand,         // keep searching; x may additionally be a satisfying set
};

/// Per-candidate analysis results.
struct CandidateAnalysis {
  CandidateVerdict verdict = CandidateVerdict::kPrune;
  bool x_is_satisfying = false;  // |x| >= min_size and degree constraint holds
  VertexSet pruned_ext;          // ext after iterative vertex pruning
  /// Quick's critical-vertex technique: extension vertices that every
  /// satisfying set of this subtree must contain (the neighbors of a
  /// chosen vertex whose degree budget is exactly tight). When non-empty
  /// (and the verdict is kExpand), the caller should jump directly to the
  /// candidate (x ∪ forced, pruned_ext \ forced).
  VertexSet forced;
};

/// Reusable scratch buffers for candidate analysis on one graph. Not
/// thread-safe; create one per mining thread. Copying is cheap by design:
/// the adjacency bitset — the only O(n^2/64) part — is immutable after
/// construction and shared between copies, so per-worker scratch arenas
/// for a parallel search over one graph clone a prototype instead of
/// re-walking every adjacency list.
class CandidateScratch {
 public:
  explicit CandidateScratch(const Graph& graph);

  /// Analyzes (x, ext): computes in-(x ∪ ext) degrees, iteratively removes
  /// hopeless extension vertices, applies the size upper bound and the
  /// lookahead test.
  ///
  /// `enable_size_bound` toggles the MaxSizeForDegree subtree bound;
  /// `enable_lookahead` toggles the x ∪ ext satisfying-set shortcut;
  /// `enable_critical_vertex` toggles the forced-extension detection.
  CandidateAnalysis Analyze(const Candidate& candidate,
                            const QuasiCliqueParams& params,
                            bool enable_size_bound, bool enable_lookahead,
                            bool enable_critical_vertex = false);

 private:
  /// Degree of `v` counted against vertices whose mark_ equals the current
  /// epoch (i.e., current members of x ∪ ext).
  std::uint32_t MarkedDegree(VertexId v) const;

  /// Degree of `v` within x only.
  std::uint32_t MarkedDegreeInX(VertexId v) const;

  void Mark(VertexId v, bool in_x);
  void Unmark(VertexId v);

  const Graph& graph_;
  std::vector<std::uint32_t> epoch_of_;  // stamp per vertex
  std::vector<std::uint8_t> in_x_;       // valid when epoch matches

  // Bitset fast path, used when the graph is small enough (the common
  // case: miners run on induced subgraphs). adjacency_bits_[v] holds v's
  // neighborhood; marked_bits_ / x_bits_ mirror the epoch marks, so
  // degree queries become AND + popcount scans. The adjacency rows are
  // immutable and shared across copies (see the class comment).
  bool use_bitsets_ = false;
  std::size_t words_ = 0;
  std::shared_ptr<const std::vector<std::uint64_t>> adjacency_bits_;
  std::vector<std::uint64_t> marked_bits_;
  std::vector<std::uint64_t> x_bits_;

  std::uint32_t epoch_ = 0;
};

}  // namespace scpm

#endif  // SCPM_QCLIQUE_CANDIDATE_H_
