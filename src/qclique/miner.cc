#include "qclique/miner.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "graph/subgraph.h"
#include "qclique/candidate.h"
#include "util/logging.h"
#include "util/sorted_ops.h"

namespace scpm {

Status QuasiCliqueMinerOptions::Validate() const { return params.Validate(); }

namespace {

/// Iteratively removes vertices of degree < RequiredDegree(min_size);
/// returns the sorted survivors. Survivors of this peeling form a
/// superset of every satisfying set.
VertexSet ReduceVertices(const Graph& graph, const QuasiCliqueParams& params) {
  const std::uint32_t threshold = params.RequiredDegree(params.min_size);
  std::vector<std::uint32_t> degree(graph.NumVertices());
  std::vector<bool> removed(graph.NumVertices(), false);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < threshold) {
      removed[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u] && --degree[u] < threshold) {
        removed[u] = true;
        queue.push_back(u);
      }
    }
  }
  VertexSet keep;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!removed[v]) keep.push_back(v);
  }
  return keep;
}

/// Collection of the best (size, ratio) satisfying sets seen so far,
/// maintained as an antichain under set inclusion: an offered set that is
/// contained in a kept set is non-maximal and rejected; kept sets contained
/// in the offered set are evicted. This keeps the §3.2.3 size threshold
/// from being inflated by sets that would later be filtered as
/// non-maximal.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  void Offer(RankedQuasiClique entry) {
    // Reject entries dominated by (or equal to) a kept set.
    for (const RankedQuasiClique& kept : entries_) {
      if (kept.size() >= entry.size() &&
          SortedIsSubset(entry.vertices, kept.vertices)) {
        return;
      }
    }
    // Evict kept sets dominated by the new entry (sorted by size desc, so
    // only smaller suffix entries can be subsets).
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&entry](const RankedQuasiClique& kept) {
                         return kept.size() < entry.size() &&
                                SortedIsSubset(kept.vertices, entry.vertices);
                       }),
        entries_.end());
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), entry,
        [](const RankedQuasiClique& a, const RankedQuasiClique& b) {
          if (a.size() != b.size()) return a.size() > b.size();
          return a.min_degree_ratio > b.min_degree_ratio;
        });
    entries_.insert(pos, std::move(entry));
    // Keep generous slack beyond k: evicting the tail is safe because an
    // entry can only leave the antichain when a strictly larger superset
    // arrives, which preserves the count above it.
    if (entries_.size() > 4 * k_ + 8) entries_.pop_back();
  }

  bool Full() const { return entries_.size() >= k_; }

  /// Size of the k-th best entry; candidates whose whole X ∪ candExts is
  /// smaller cannot enter the top-k (paper §3.2.3).
  std::size_t KthSize() const {
    SCPM_CHECK(Full());
    return entries_[k_ - 1].size();
  }

  std::vector<RankedQuasiClique> Finalize() {
    if (entries_.size() > k_) entries_.resize(k_);
    return std::move(entries_);
  }

 private:
  std::size_t k_;
  std::vector<RankedQuasiClique> entries_;  // antichain, (size, ratio) desc
};

enum class Mode { kMaximal, kCoverage, kTopK };

/// Shared search over one (already vertex-reduced) local graph.
class Search {
 public:
  Search(const Graph& graph, const QuasiCliqueMinerOptions& options,
         Mode mode, std::size_t k, MinerStats* stats)
      : graph_(graph),
        options_(options),
        mode_(mode),
        stats_(stats),
        scratch_(graph),
        covered_(graph.NumVertices(), false),
        collector_(k == 0 ? 1 : k),
        neighbor_epoch_(graph.NumVertices(), 0) {}

  Status Run() {
    const VertexId n = graph_.NumVertices();
    if (n < options_.params.min_size) return Status::OK();

    Candidate root;
    root.ext.resize(n);
    for (VertexId v = 0; v < n; ++v) root.ext[v] = v;
    std::deque<Candidate> work;
    work.push_back(std::move(root));

    while (!work.empty()) {
      Candidate cand;
      if (options_.order == SearchOrder::kBfs) {
        cand = std::move(work.front());
        work.pop_front();
      } else {
        cand = std::move(work.back());
        work.pop_back();
      }
      ++stats_->candidates_processed;
      if (options_.max_candidates != 0 &&
          stats_->candidates_processed > options_.max_candidates) {
        return Status::OutOfRange("candidate budget exceeded");
      }

      if (mode_ == Mode::kCoverage) {
        if (covered_count_ == n) break;  // Everything already covered.
        if (AllCovered(cand)) {
          ++stats_->pruned_by_coverage;
          continue;
        }
      }

      // The paper §3.2.3: once k patterns are known, candidates that
      // cannot reach the k-th size are pruned; the raised size also
      // strengthens every degree bound inside Analyze.
      QuasiCliqueParams params = options_.params;
      if (mode_ == Mode::kTopK && collector_.Full()) {
        const std::size_t kth = collector_.KthSize();
        if (cand.x.size() + cand.ext.size() < kth) {
          ++stats_->pruned_by_topk;
          continue;
        }
        params.min_size = std::max<std::uint32_t>(
            params.min_size, static_cast<std::uint32_t>(kth));
      }

      CandidateAnalysis analysis =
          scratch_.Analyze(cand, params, options_.enable_size_bound,
                           options_.enable_lookahead,
                           options_.enable_critical_vertex);
      if (analysis.verdict == CandidateVerdict::kPrune) {
        ++stats_->pruned_by_analysis;
        continue;
      }
      if (analysis.verdict == CandidateVerdict::kLookahead) {
        ++stats_->lookahead_hits;
        VertexSet whole;
        SortedUnion(cand.x, analysis.pruned_ext, &whole);
        Report(std::move(whole));
        continue;
      }
      if (!analysis.forced.empty()) {
        // Critical vertex: every satisfying set of this subtree contains
        // the forced vertices, so jump straight to that candidate.
        ++stats_->critical_vertex_jumps;
        Candidate jump;
        SortedUnion(cand.x, analysis.forced, &jump.x);
        SortedDifference(analysis.pruned_ext, analysis.forced, &jump.ext);
        work.push_back(std::move(jump));
        continue;
      }
      if (analysis.x_is_satisfying) Report(cand.x);

      ExpandChildren(cand, analysis.pruned_ext, &work);
    }
    return Status::OK();
  }

  std::vector<VertexSet> TakeMaximal() {
    // Drop reported sets contained in another reported set; every maximal
    // satisfying set is reported, so survivors are exactly the maximal
    // ones.
    std::sort(reported_.begin(), reported_.end(),
              [](const VertexSet& a, const VertexSet& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    reported_.erase(std::unique(reported_.begin(), reported_.end()),
                    reported_.end());
    std::vector<VertexSet> keep;
    for (auto& q : reported_) {
      bool dominated = false;
      for (const auto& big : keep) {
        if (big.size() > q.size() && SortedIsSubset(q, big)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) keep.push_back(std::move(q));
    }
    stats_->sets_reported = keep.size();
    return keep;
  }

  VertexSet TakeCoverage() const {
    VertexSet out;
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      if (covered_[v]) out.push_back(v);
    }
    return out;
  }

  std::vector<RankedQuasiClique> TakeTopK() { return collector_.Finalize(); }

 private:
  bool AllCovered(const Candidate& cand) const {
    for (VertexId v : cand.x) {
      if (!covered_[v]) return false;
    }
    for (VertexId v : cand.ext) {
      if (!covered_[v]) return false;
    }
    return true;
  }

  void Report(VertexSet q) {
    switch (mode_) {
      case Mode::kMaximal:
        reported_.push_back(std::move(q));
        break;
      case Mode::kCoverage:
        for (VertexId v : q) {
          if (!covered_[v]) {
            covered_[v] = true;
            ++covered_count_;
          }
        }
        break;
      case Mode::kTopK: {
        RankedQuasiClique entry;
        entry.min_degree_ratio = MinDegreeRatio(graph_, q);
        entry.vertices = std::move(q);
        collector_.Offer(std::move(entry));
        break;
      }
    }
  }

  void ExpandChildren(const Candidate& cand, const VertexSet& ext,
                      std::deque<Candidate>* work) {
    const bool use_diameter =
        options_.enable_diameter_filter && options_.params.gamma >= 0.5;
    std::vector<Candidate> children;
    children.reserve(ext.size());
    for (std::size_t i = 0; i < ext.size(); ++i) {
      const VertexId v = ext[i];
      Candidate child;
      child.x = cand.x;
      SortedInsert(&child.x, v);
      if (use_diameter) MarkWithinTwoHops(v);
      for (std::size_t j = i + 1; j < ext.size(); ++j) {
        const VertexId u = ext[j];
        if (use_diameter && neighbor_epoch_[u] != current_epoch_) continue;
        child.ext.push_back(u);
      }
      if (child.x.size() + child.ext.size() >= options_.params.min_size) {
        children.push_back(std::move(child));
      }
    }
    if (options_.order == SearchOrder::kBfs) {
      for (auto& c : children) work->push_back(std::move(c));
    } else {
      // Stack: push in reverse so the first child is expanded first.
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        work->push_back(std::move(*it));
      }
    }
  }

  /// Stamps every vertex within graph distance <= 2 of v. Sound filter for
  /// gamma >= 0.5: any two members of a satisfying set are within two hops
  /// inside the set, hence within two hops in the graph.
  void MarkWithinTwoHops(VertexId v) {
    ++current_epoch_;
    if (current_epoch_ == 0) {  // Wrapped: re-zero.
      std::fill(neighbor_epoch_.begin(), neighbor_epoch_.end(), 0);
      current_epoch_ = 1;
    }
    for (VertexId u : graph_.Neighbors(v)) {
      neighbor_epoch_[u] = current_epoch_;
      for (VertexId w : graph_.Neighbors(u)) {
        neighbor_epoch_[w] = current_epoch_;
      }
    }
  }

  const Graph& graph_;
  const QuasiCliqueMinerOptions& options_;
  Mode mode_;
  MinerStats* stats_;
  CandidateScratch scratch_;

  std::vector<VertexSet> reported_;      // kMaximal
  std::vector<bool> covered_;            // kCoverage
  VertexId covered_count_ = 0;           // kCoverage
  TopKCollector collector_;              // kTopK

  std::vector<std::uint32_t> neighbor_epoch_;  // diameter filter scratch
  std::uint32_t current_epoch_ = 0;
};

/// Applies vertex reduction and returns the working subgraph.
Result<InducedSubgraph> Reduce(const Graph& graph,
                               const QuasiCliqueMinerOptions& options,
                               SubgraphWorkspace* workspace) {
  VertexSet keep;
  if (options.enable_vertex_reduction) {
    keep = ReduceVertices(graph, options.params);
  } else {
    keep.resize(graph.NumVertices());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) keep[v] = v;
  }
  if (workspace != nullptr) return workspace->Build(graph, std::move(keep));
  return InducedSubgraph::Create(graph, std::move(keep));
}

/// Returns the subgraph's buffers to the workspace, if any.
void Release(SubgraphWorkspace* workspace, InducedSubgraph&& sub) {
  if (workspace != nullptr) workspace->Recycle(std::move(sub));
}

}  // namespace

Result<std::vector<VertexSet>> QuasiCliqueMiner::MineMaximal(
    const Graph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  Search search(sub->graph(), options_, Mode::kMaximal, 0, &stats_);
  SCPM_RETURN_IF_ERROR(search.Run());
  std::vector<VertexSet> local = search.TakeMaximal();
  std::vector<VertexSet> out;
  out.reserve(local.size());
  for (const VertexSet& q : local) out.push_back(sub->ToGlobal(q));
  Release(workspace_, std::move(sub).value());
  return out;
}

Result<VertexSet> QuasiCliqueMiner::MineCoverage(const Graph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  Search search(sub->graph(), options_, Mode::kCoverage, 0, &stats_);
  SCPM_RETURN_IF_ERROR(search.Run());
  VertexSet covered = sub->ToGlobal(search.TakeCoverage());
  Release(workspace_, std::move(sub).value());
  return covered;
}

Result<std::vector<RankedQuasiClique>> QuasiCliqueMiner::MineTopK(
    const Graph& graph, std::size_t k) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  Search search(sub->graph(), options_, Mode::kTopK, k, &stats_);
  SCPM_RETURN_IF_ERROR(search.Run());
  std::vector<RankedQuasiClique> local = search.TakeTopK();
  for (RankedQuasiClique& q : local) {
    q.vertices = sub->ToGlobal(q.vertices);
  }
  Release(workspace_, std::move(sub).value());
  return local;
}

}  // namespace scpm
