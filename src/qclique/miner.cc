#include "qclique/miner.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

#include "graph/subgraph.h"
#include "qclique/candidate.h"
#include "util/cancel.h"
#include "util/logging.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"

namespace scpm {

Status QuasiCliqueMinerOptions::Validate() const { return params.Validate(); }

void MinerStats::MergeFrom(const MinerStats& other) {
  candidates_processed += other.candidates_processed;
  pruned_by_analysis += other.pruned_by_analysis;
  pruned_by_coverage += other.pruned_by_coverage;
  pruned_by_topk += other.pruned_by_topk;
  lookahead_hits += other.lookahead_hits;
  critical_vertex_jumps += other.critical_vertex_jumps;
  sets_reported += other.sets_reported;
  branch_tasks += other.branch_tasks;
}

namespace {

/// One bit per vertex mod 64: q can only be a subset of e when every
/// signature bit of q is present in e's, so (sig_q & ~sig_e) != 0
/// disproves containment without touching the sets.
std::uint64_t SetSignature(const VertexSet& q) {
  std::uint64_t sig = 0;
  for (VertexId v : q) sig |= std::uint64_t{1} << (v & 63u);
  return sig;
}

}  // namespace

bool MaximalSetFilter::Offer(VertexSet q) {
  const std::uint64_t sig = SetSignature(q);
  // Dominated? Only kept sets of size >= |q| qualify: an equal-size
  // container would be a duplicate, a larger one a strict superset.
  for (auto it = buckets_.begin();
       it != buckets_.end() && it->first >= q.size(); ++it) {
    if (it->first == q.size()) {
      for (const Entry& e : it->second) {
        if (e.sig == sig && e.set == q) return false;
      }
    } else {
      for (const Entry& e : it->second) {
        if ((sig & ~e.sig) == 0 && SortedIsSubset(q, e.set)) return false;
      }
    }
  }
  // Admitted: evict kept strict subsets (all in smaller buckets).
  for (auto it = buckets_.upper_bound(q.size()); it != buckets_.end();) {
    std::vector<Entry>& entries = it->second;
    for (std::size_t k = 0; k < entries.size();) {
      if ((entries[k].sig & ~sig) == 0 && SortedIsSubset(entries[k].set, q)) {
        entries[k] = std::move(entries.back());
        entries.pop_back();
        --count_;
      } else {
        ++k;
      }
    }
    it = entries.empty() ? buckets_.erase(it) : std::next(it);
  }
  std::vector<Entry>& bucket = buckets_[q.size()];
  bucket.push_back(Entry{sig, std::move(q)});
  ++count_;
  return true;
}

std::vector<VertexSet> MaximalSetFilter::TakeSorted() {
  std::vector<VertexSet> out;
  out.reserve(count_);
  for (auto& bucket : buckets_) {
    std::sort(bucket.second.begin(), bucket.second.end(),
              [](const Entry& a, const Entry& b) { return a.set < b.set; });
    for (Entry& e : bucket.second) out.push_back(std::move(e.set));
  }
  buckets_.clear();
  count_ = 0;
  return out;
}

namespace {

/// Iteratively removes vertices of degree < RequiredDegree(min_size);
/// returns the sorted survivors. Survivors of this peeling form a
/// superset of every satisfying set.
VertexSet ReduceVertices(const Graph& graph, const QuasiCliqueParams& params) {
  const std::uint32_t threshold = params.RequiredDegree(params.min_size);
  std::vector<std::uint32_t> degree(graph.NumVertices());
  std::vector<bool> removed(graph.NumVertices(), false);
  std::deque<VertexId> queue;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    degree[v] = graph.Degree(v);
    if (degree[v] < threshold) {
      removed[v] = true;
      queue.push_back(v);
    }
  }
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : graph.Neighbors(v)) {
      if (!removed[u] && --degree[u] < threshold) {
        removed[u] = true;
        queue.push_back(u);
      }
    }
  }
  VertexSet keep;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!removed[v]) keep.push_back(v);
  }
  return keep;
}

/// Collection of the best (size, ratio) satisfying sets seen so far,
/// maintained as an antichain under set inclusion: an offered set that is
/// contained in a kept set is non-maximal and rejected; kept sets contained
/// in the offered set are evicted. This keeps the §3.2.3 size threshold
/// from being inflated by sets that would later be filtered as
/// non-maximal.
class TopKCollector {
 public:
  explicit TopKCollector(std::size_t k) : k_(k) {}

  void Offer(RankedQuasiClique entry) {
    // Reject entries dominated by (or equal to) a kept set.
    for (const RankedQuasiClique& kept : entries_) {
      if (kept.size() >= entry.size() &&
          SortedIsSubset(entry.vertices, kept.vertices)) {
        return;
      }
    }
    // Evict kept sets dominated by the new entry (sorted by size desc, so
    // only smaller suffix entries can be subsets).
    entries_.erase(
        std::remove_if(entries_.begin(), entries_.end(),
                       [&entry](const RankedQuasiClique& kept) {
                         return kept.size() < entry.size() &&
                                SortedIsSubset(kept.vertices, entry.vertices);
                       }),
        entries_.end());
    auto pos = std::lower_bound(
        entries_.begin(), entries_.end(), entry,
        [](const RankedQuasiClique& a, const RankedQuasiClique& b) {
          if (a.size() != b.size()) return a.size() > b.size();
          return a.min_degree_ratio > b.min_degree_ratio;
        });
    entries_.insert(pos, std::move(entry));
    // Keep generous slack beyond k: evicting the tail is safe because an
    // entry can only leave the antichain when a strictly larger superset
    // arrives, which preserves the count above it.
    if (entries_.size() > 4 * k_ + 8) entries_.pop_back();
  }

  bool Full() const { return entries_.size() >= k_; }

  /// Size of the k-th best entry; candidates whose whole X ∪ candExts is
  /// smaller cannot enter the top-k (paper §3.2.3).
  std::size_t KthSize() const {
    SCPM_CHECK(Full());
    return entries_[k_ - 1].size();
  }

  std::vector<RankedQuasiClique> Finalize() {
    if (entries_.size() > k_) entries_.resize(k_);
    return std::move(entries_);
  }

 private:
  std::size_t k_;
  std::vector<RankedQuasiClique> entries_;  // antichain, (size, ratio) desc
};

enum class Mode { kMaximal, kCoverage, kTopK };

/// Epoch-stamped two-hop neighborhood marks backing the diameter filter:
/// any two members of a satisfying set are within two hops inside the set
/// when gamma >= 0.5, hence within two hops in the graph.
class TwoHopMarker {
 public:
  explicit TwoHopMarker(const Graph& graph)
      : graph_(graph), epoch_of_(graph.NumVertices(), 0) {}

  /// Stamps every vertex within graph distance <= 2 of v.
  void Mark(VertexId v) {
    ++epoch_;
    if (epoch_ == 0) {  // Wrapped: re-zero.
      std::fill(epoch_of_.begin(), epoch_of_.end(), 0);
      epoch_ = 1;
    }
    for (VertexId u : graph_.Neighbors(v)) {
      epoch_of_[u] = epoch_;
      for (VertexId w : graph_.Neighbors(u)) {
        epoch_of_[w] = epoch_;
      }
    }
  }

  bool IsMarked(VertexId u) const { return epoch_of_[u] == epoch_; }

 private:
  const Graph& graph_;
  std::vector<std::uint32_t> epoch_of_;
  std::uint32_t epoch_ = 0;
};

/// Children of (x, ext): one per extension vertex, keeping only later
/// extensions within two hops of the chosen vertex (diameter filter) and
/// dropping children that cannot reach min_size.
void BuildChildren(const Candidate& cand, const VertexSet& ext,
                   const QuasiCliqueMinerOptions& options,
                   TwoHopMarker* marker, std::vector<Candidate>* children) {
  const bool use_diameter =
      options.enable_diameter_filter && options.params.gamma >= 0.5;
  children->clear();
  children->reserve(ext.size());
  for (std::size_t i = 0; i < ext.size(); ++i) {
    const VertexId v = ext[i];
    Candidate child;
    child.x = cand.x;
    SortedInsert(&child.x, v);
    if (use_diameter) marker->Mark(v);
    for (std::size_t j = i + 1; j < ext.size(); ++j) {
      const VertexId u = ext[j];
      if (use_diameter && !marker->IsMarked(u)) continue;
      child.ext.push_back(u);
    }
    if (child.x.size() + child.ext.size() >= options.params.min_size) {
      children->push_back(std::move(child));
    }
  }
}

/// Shared search over one (already vertex-reduced) local graph.
class Search {
 public:
  Search(const Graph& graph, const QuasiCliqueMinerOptions& options,
         Mode mode, std::size_t k, MinerStats* stats)
      : graph_(graph),
        options_(options),
        mode_(mode),
        stats_(stats),
        scratch_(graph),
        covered_(graph.NumVertices(), false),
        collector_(k == 0 ? 1 : k),
        marker_(graph) {}

  /// Stops the search (without error) once this many candidates have
  /// been processed; the decomposed search's primer pass uses it to run
  /// a deterministic sequential prefix.
  void set_soft_limit(std::uint64_t limit) { soft_limit_ = limit; }

  /// Borrowed cancellation token, polled once per candidate; a latched
  /// token makes Run return StatusCode::kCancelled.
  void set_cancel(CancelToken* cancel) { cancel_ = cancel; }

  /// Whether Run stopped at the soft limit with work left.
  bool stopped_early() const { return stopped_early_; }

  /// Coverage found so far, as a mask over the local vertex ids.
  const std::vector<bool>& covered_mask() const { return covered_; }
  VertexId covered_count() const { return covered_count_; }

  Status Run() {
    const VertexId n = graph_.NumVertices();
    if (n < options_.params.min_size) return Status::OK();

    Candidate root;
    root.ext.resize(n);
    for (VertexId v = 0; v < n; ++v) root.ext[v] = v;
    std::deque<Candidate> work;
    work.push_back(std::move(root));

    while (!work.empty()) {
      if (cancel_ != nullptr && cancel_->ShouldStop(&cancel_tick_)) {
        return Status::Cancelled("quasi-clique search cancelled");
      }
      if (soft_limit_ != 0 && stats_->candidates_processed >= soft_limit_) {
        stopped_early_ = true;
        return Status::OK();
      }
      Candidate cand;
      if (options_.order == SearchOrder::kBfs) {
        cand = std::move(work.front());
        work.pop_front();
      } else {
        cand = std::move(work.back());
        work.pop_back();
      }
      ++stats_->candidates_processed;
      if (options_.max_candidates != 0 &&
          stats_->candidates_processed > options_.max_candidates) {
        return Status::OutOfRange("candidate budget exceeded");
      }

      if (mode_ == Mode::kCoverage) {
        if (covered_count_ == n) break;  // Everything already covered.
        if (AllCovered(cand)) {
          ++stats_->pruned_by_coverage;
          continue;
        }
      }

      // The paper §3.2.3: once k patterns are known, candidates that
      // cannot reach the k-th size are pruned; the raised size also
      // strengthens every degree bound inside Analyze.
      QuasiCliqueParams params = options_.params;
      if (mode_ == Mode::kTopK && collector_.Full()) {
        const std::size_t kth = collector_.KthSize();
        if (cand.x.size() + cand.ext.size() < kth) {
          ++stats_->pruned_by_topk;
          continue;
        }
        params.min_size = std::max<std::uint32_t>(
            params.min_size, static_cast<std::uint32_t>(kth));
      }

      CandidateAnalysis analysis =
          scratch_.Analyze(cand, params, options_.enable_size_bound,
                           options_.enable_lookahead,
                           options_.enable_critical_vertex);
      if (analysis.verdict == CandidateVerdict::kPrune) {
        ++stats_->pruned_by_analysis;
        continue;
      }
      if (analysis.verdict == CandidateVerdict::kLookahead) {
        ++stats_->lookahead_hits;
        VertexSet whole;
        SortedUnion(cand.x, analysis.pruned_ext, &whole);
        Report(std::move(whole));
        continue;
      }
      if (!analysis.forced.empty()) {
        // Critical vertex: every satisfying set of this subtree contains
        // the forced vertices, so jump straight to that candidate.
        ++stats_->critical_vertex_jumps;
        Candidate jump;
        SortedUnion(cand.x, analysis.forced, &jump.x);
        SortedDifference(analysis.pruned_ext, analysis.forced, &jump.ext);
        work.push_back(std::move(jump));
        continue;
      }
      if (analysis.x_is_satisfying) Report(cand.x);

      ExpandChildren(cand, analysis.pruned_ext, &work);
    }
    return Status::OK();
  }

  std::vector<VertexSet> TakeMaximal() {
    std::vector<VertexSet> keep = maximal_.TakeSorted();
    stats_->sets_reported = keep.size();
    return keep;
  }

  VertexSet TakeCoverage() const {
    VertexSet out;
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      if (covered_[v]) out.push_back(v);
    }
    return out;
  }

  std::vector<RankedQuasiClique> TakeTopK() { return collector_.Finalize(); }

  /// Emit-as-found bypass (kMaximal only): reported sets stream to the
  /// callback instead of the antichain; sets_reported counts raw
  /// reports. See QuasiCliqueMiner::MineMaximalInto.
  void set_emit(const std::function<void(const VertexSet&)>* emit) {
    emit_ = emit;
  }

 private:
  bool AllCovered(const Candidate& cand) const {
    for (VertexId v : cand.x) {
      if (!covered_[v]) return false;
    }
    for (VertexId v : cand.ext) {
      if (!covered_[v]) return false;
    }
    return true;
  }

  void Report(VertexSet q) {
    switch (mode_) {
      case Mode::kMaximal:
        if (emit_ != nullptr) {
          ++stats_->sets_reported;
          (*emit_)(q);
        } else {
          maximal_.Offer(std::move(q));
        }
        break;
      case Mode::kCoverage:
        for (VertexId v : q) {
          if (!covered_[v]) {
            covered_[v] = true;
            ++covered_count_;
          }
        }
        break;
      case Mode::kTopK: {
        RankedQuasiClique entry;
        entry.min_degree_ratio = MinDegreeRatio(graph_, q);
        entry.vertices = std::move(q);
        collector_.Offer(std::move(entry));
        break;
      }
    }
  }

  void ExpandChildren(const Candidate& cand, const VertexSet& ext,
                      std::deque<Candidate>* work) {
    std::vector<Candidate> children;
    BuildChildren(cand, ext, options_, &marker_, &children);
    if (options_.order == SearchOrder::kBfs) {
      for (auto& c : children) work->push_back(std::move(c));
    } else {
      // Stack: push in reverse so the first child is expanded first.
      for (auto it = children.rbegin(); it != children.rend(); ++it) {
        work->push_back(std::move(*it));
      }
    }
  }

  const Graph& graph_;
  const QuasiCliqueMinerOptions& options_;
  Mode mode_;
  MinerStats* stats_;
  CandidateScratch scratch_;

  MaximalSetFilter maximal_;             // kMaximal
  const std::function<void(const VertexSet&)>* emit_ = nullptr;  // kMaximal
  std::vector<bool> covered_;            // kCoverage
  VertexId covered_count_ = 0;           // kCoverage
  TopKCollector collector_;              // kTopK

  TwoHopMarker marker_;  // diameter filter scratch
  std::uint64_t soft_limit_ = 0;
  bool stopped_early_ = false;
  CancelToken* cancel_ = nullptr;
  std::uint32_t cancel_tick_ = 0;  // clock-check throttle for cancel_
};

/// Decomposed (intra-parallel) search over one (already vertex-reduced)
/// local graph; see the header's file comment for the contract.
///
/// Determinism: the decomposition into branch tasks is a pure function of
/// (graph, options) — the ThreadPool/ParallelismBudget only choose where
/// each task executes — and every task accumulates its own MinerStats and
/// discoveries, merged in task-key order at the end.
///
/// Maximal mode has no cross-branch state, so its decomposition is
/// fire-and-forget fork/join (RunBranch). Coverage mode's pruning power
/// lives in the shared covered set, so it decomposes into *wave nodes*
/// (CoverageWaveNode): coverage is exchanged only at deterministic wave
/// barriers, never through live shared state, which may process more
/// candidates than the sequential search but exactly the same number at
/// every thread count.
class ParallelSearch {
 public:
  ParallelSearch(const Graph& graph, const QuasiCliqueMinerOptions& options,
                 Mode mode, ThreadPool* pool, ParallelismBudget* budget,
                 CancelToken* cancel, MinerStats* stats)
      : graph_(graph),
        options_(options),
        mode_(mode),
        pool_(pool),
        budget_(budget),
        cancel_(cancel),
        stats_(stats),
        prototype_(graph),
        covered_(graph.NumVertices(), false) {
    SCPM_CHECK(mode_ != Mode::kTopK)
        << "top-k pruning is traversal-order dependent";
    arenas_.resize(pool_ != nullptr ? pool_->num_threads() + 1 : 1);
  }

  Status Run() {
    const VertexId n = graph_.NumVertices();
    if (n < options_.params.min_size) return Status::OK();

    Candidate root;
    root.ext.resize(n);
    for (VertexId v = 0; v < n; ++v) root.ext[v] = v;

    if (mode_ == Mode::kCoverage) {
      std::vector<bool> running(n, false);
      VertexId running_count = 0;
      bool decompose = true;
      if (options_.coverage_primer_candidates != 0) {
        // Deterministic sequential primer: the exact sequential search,
        // stopped after a fixed candidate budget, whose coverage seeds
        // the whole decomposed tree. Searches that finish inside the
        // primer skip decomposition (and its overheads) entirely. Its
        // result sorts first, under the empty key.
        TaskResult primer_result;
        primer_result.stats.branch_tasks = 1;
        Search primer(graph_, options_, Mode::kCoverage, 0,
                      &primer_result.stats);
        primer.set_soft_limit(options_.coverage_primer_candidates);
        primer.set_cancel(cancel_);
        SCPM_RETURN_IF_ERROR(primer.Run());
        running = primer.covered_mask();
        running_count = primer.covered_count();
        decompose = primer.stopped_early() && running_count < n;
        // Pre-charge the shared budget counter: max_candidates caps the
        // primer and the decomposed phase together, exactly as it caps
        // the one sequential search they replace.
        shared_candidates_.store(primer_result.stats.candidates_processed);
        results_.push_back(std::move(primer_result));
      }
      if (decompose) {
        CoverageWaveNode(std::move(root), 0, {0}, &running, &running_count);
      }
      for (VertexId v = 0; v < n; ++v) {
        if (running[v]) covered_[v] = true;
      }
    } else {
      BranchTask task;
      task.root = std::move(root);
      SpawnOrRun(std::move(task));
      if (pool_ != nullptr) pool_->WaitFor(&group_);
    }

    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_.ok()) return first_error_;
    }
    // Key-ordered merge of the coverage wave nodes: lexicographic task
    // keys reproduce the order in which the subtrees were split off,
    // independent of completion order. (Counter sums are commutative, but
    // the canonical order keeps the merge auditable.)
    std::sort(results_.begin(), results_.end(),
              [](const TaskResult& a, const TaskResult& b) {
                return a.key < b.key;
              });
    for (TaskResult& r : results_) stats_->MergeFrom(r.stats);
    // Maximal-mode results were folded into the shared antichain as
    // each branch task finished (see RunBranch); the filter's final
    // content is offer-order independent, so the fold order (branch
    // completion timing) cannot show in the output.
    stats_->MergeFrom(maximal_.stats);
    return Status::OK();
  }

  std::vector<VertexSet> TakeMaximal() {
    std::vector<VertexSet> keep = maximal_.filter.TakeSorted();
    stats_->sets_reported = keep.size();
    return keep;
  }

  VertexSet TakeCoverage() const {
    VertexSet out;
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) {
      if (covered_[v]) out.push_back(v);
    }
    return out;
  }

 private:
  /// One maximal-mode branch task: a subtree root and its depth. No key:
  /// maximal tasks fold into the shared accumulator (see below).
  struct BranchTask {
    Candidate root;
    std::uint32_t depth = 0;
  };

  /// What one coverage wave node produced, tagged with its key for the
  /// merge. Coverage itself is not stored here: each wave node's coverage
  /// folds into its parent's running set at the wave barrier, so the
  /// root call's running set — folded into covered_ by Run — already
  /// holds the union, and keeping per-task masks alive until the merge
  /// would cost O(tasks x n) memory for nothing.
  struct TaskResult {
    std::vector<std::uint32_t> key;
    MinerStats stats;
  };

  /// Maximal-mode sink: every branch task folds its counters and its
  /// local antichain in here the moment it finishes, so merge memory is
  /// bounded by the live antichain instead of every set any branch ever
  /// reported (deep decompositions spawn thousands of tasks).
  /// Order-independent by construction: counter sums are commutative
  /// and MaximalSetFilter's content is offer-order independent, so
  /// output and stats stay byte-identical to the sequential search for
  /// any completion interleaving.
  struct MaximalAccumulator {
    std::mutex mutex;
    MinerStats stats;
    MaximalSetFilter filter;
  };

  /// Per-worker mutable search state; no branch task ever touches another
  /// worker's arena. The CandidateScratch clones the prototype, sharing
  /// its immutable adjacency bitset.
  struct WorkerArena {
    WorkerArena(const CandidateScratch& prototype, const Graph& graph)
        : scratch(prototype), marker(graph) {}
    CandidateScratch scratch;
    TwoHopMarker marker;
    std::uint32_t cancel_tick = 0;  // clock-check throttle; worker-local
  };

  /// Executes `task` as a pool task when a budget slot is free, inline on
  /// the calling thread otherwise. Inline recursion is bounded by
  /// spawn_depth: only candidates shallower than it decompose children.
  void SpawnOrRun(BranchTask task) {
    if (pool_ != nullptr && budget_ != nullptr && budget_->TryAcquire()) {
      auto boxed = std::make_shared<BranchTask>(std::move(task));
      pool_->Spawn(&group_, [this, boxed] {
        RunBranch(std::move(*boxed));
        budget_->Release();
      });
    } else {
      RunBranch(std::move(task));
    }
  }

  /// The arena of the pool worker running the current task; slot 0 is the
  /// initiating thread (inline execution outside the pool).
  WorkerArena& Arena() {
    const int index = pool_ != nullptr ? pool_->current_worker_index() : -1;
    const std::size_t slot = static_cast<std::size_t>(index + 1);
    std::lock_guard<std::mutex> lock(arena_mutex_);
    if (arenas_[slot] == nullptr) {
      arenas_[slot] = std::make_unique<WorkerArena>(prototype_, graph_);
    }
    return *arenas_[slot];
  }

  void RecordError(Status status) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (first_error_.ok()) first_error_ = std::move(status);
    has_error_.store(true);
  }

  static bool AllCovered(const Candidate& cand,
                         const std::vector<bool>& covered) {
    for (VertexId v : cand.x) {
      if (!covered[v]) return false;
    }
    for (VertexId v : cand.ext) {
      if (!covered[v]) return false;
    }
    return true;
  }

  /// Marks the vertices of a discovered satisfying set as covered.
  static void Cover(const VertexSet& q, std::vector<bool>* covered,
                    VertexId* covered_count) {
    for (VertexId v : q) {
      if (!(*covered)[v]) {
        (*covered)[v] = true;
        ++*covered_count;
      }
    }
  }

  /// A spawned wave subtask's private coverage state: seeded from the
  /// parent node's covered set at the wave's start, written only by that
  /// subtask, folded back in slot order at the wave barrier.
  struct WaveSlot {
    std::vector<bool> covered;
    VertexId count = 0;
  };

  /// One coverage-mode candidate step, shared by every coverage loop:
  /// the budget check, coverage pruning, analysis, and verdict handling
  /// (following critical-vertex jumps inline). Returns true when the
  /// candidate expands, with its children in `children`; false when the
  /// subtree resolved (or an error was recorded). Keeping this in one
  /// place is what keeps the decomposed loops in counter lock-step.
  bool CoverageStep(Candidate cand, WorkerArena* arena, MinerStats* stats,
                    std::vector<bool>* covered, VertexId* covered_count,
                    std::vector<Candidate>* children) {
    const VertexId n = graph_.NumVertices();
    while (!has_error_.load()) {
      if (cancel_ != nullptr && cancel_->ShouldStop(&arena->cancel_tick)) {
        RecordError(Status::Cancelled("quasi-clique search cancelled"));
        return false;
      }
      ++stats->candidates_processed;
      if (options_.max_candidates != 0 &&
          shared_candidates_.fetch_add(1) + 1 > options_.max_candidates) {
        RecordError(Status::OutOfRange("candidate budget exceeded"));
        return false;
      }
      if (*covered_count == n) return false;
      if (AllCovered(cand, *covered)) {
        ++stats->pruned_by_coverage;
        return false;
      }
      CandidateAnalysis analysis = arena->scratch.Analyze(
          cand, options_.params, options_.enable_size_bound,
          options_.enable_lookahead, options_.enable_critical_vertex);
      if (analysis.verdict == CandidateVerdict::kPrune) {
        ++stats->pruned_by_analysis;
        return false;
      }
      if (analysis.verdict == CandidateVerdict::kLookahead) {
        ++stats->lookahead_hits;
        VertexSet whole;
        SortedUnion(cand.x, analysis.pruned_ext, &whole);
        Cover(whole, covered, covered_count);
        return false;
      }
      if (!analysis.forced.empty()) {
        ++stats->critical_vertex_jumps;
        Candidate jump;
        SortedUnion(cand.x, analysis.forced, &jump.x);
        SortedDifference(analysis.pruned_ext, analysis.forced, &jump.ext);
        cand = std::move(jump);
        continue;
      }
      if (analysis.x_is_satisfying) {
        Cover(cand.x, covered, covered_count);
      }
      BuildChildren(cand, analysis.pruned_ext, options_, &arena->marker,
                    children);
      return true;
    }
    return false;
  }

  /// Coverage-mode wave node. Set-enumeration trees are first-child
  /// heavy, and in the sequential DFS it is the first child's subtree
  /// whose coverage makes every later sibling cheap — so the node first
  /// descends the first-child chain inline (collecting each level's
  /// remaining siblings), then unwinds from the deepest level up,
  /// running each level's siblings in fixed-size waves: siblings with
  /// large extension lists become parallel subtasks seeded with the
  /// coverage known when their wave starts (further wave nodes while
  /// shallower than spawn_depth, sequential leaf tasks otherwise), small
  /// siblings run inline against the live covered set. Each wave's
  /// discoveries fold back into `covered` at a barrier before the next
  /// wave. With wave size 1 this replays the sequential DFS exactly;
  /// larger waves lose coverage pruning only between same-wave siblings.
  /// Chain, wave boundaries, seeds, and the task split depend only on
  /// the input, so output and counters are thread-count-independent.
  void CoverageWaveNode(Candidate cand, std::uint32_t depth,
                        std::vector<std::uint32_t> key,
                        std::vector<bool>* covered, VertexId* covered_count) {
    TaskResult result;
    result.key = std::move(key);
    result.stats.branch_tasks = 1;
    const VertexId n = graph_.NumVertices();

    // Descend the first-child chain (staying on critical-vertex jump
    // candidates within a level).
    struct Level {
      std::vector<Candidate> siblings;
      std::uint32_t depth = 0;
    };
    std::vector<Level> levels;
    std::uint32_t cur_depth = depth;
    WorkerArena& arena = Arena();
    std::vector<Candidate> children;
    while (CoverageStep(std::move(cand), &arena, &result.stats, covered,
                        covered_count, &children) &&
           !children.empty()) {
      Level level;
      level.depth = cur_depth + 1;
      level.siblings.assign(std::make_move_iterator(children.begin() + 1),
                            std::make_move_iterator(children.end()));
      cand = std::move(children.front());
      levels.push_back(std::move(level));
      ++cur_depth;
    }

    // Unwind: deepest siblings first (the sequential DFS visit order),
    // each level's siblings in waves seeded with all coverage so far.
    const std::uint32_t wave =
        std::max<std::uint32_t>(1, options_.coverage_wave);
    for (std::size_t li = levels.size(); li-- > 0;) {
      Level& level = levels[li];
      if (*covered_count == n || has_error_.load()) break;
      for (std::size_t begin = 0; begin < level.siblings.size();
           begin += wave) {
        if (*covered_count == n || has_error_.load()) break;
        const std::size_t end = std::min(level.siblings.size(), begin + wave);
        std::vector<WaveSlot> slots(end - begin);
        ThreadPool::TaskGroup wave_group;
        for (std::size_t c = begin; c < end; ++c) {
          Candidate& sibling = level.siblings[c];
          if (sibling.ext.size() >= options_.min_spawn_ext) {
            std::vector<std::uint32_t> child_key = result.key;
            child_key.push_back(static_cast<std::uint32_t>(li));
            child_key.push_back(static_cast<std::uint32_t>(c + 1));
            WaveSlot* slot = &slots[c - begin];
            slot->covered = *covered;
            slot->count = *covered_count;
            DispatchCoverageTask(std::move(sibling), level.depth,
                                 std::move(child_key), &wave_group, slot);
          } else {
            // Small subtree: not worth a task; runs right here against
            // the live covered set, accounted to this node.
            CoverageSubtreeLoop(std::move(sibling), covered, covered_count,
                                &result.stats);
          }
        }
        if (pool_ != nullptr) pool_->WaitFor(&wave_group);
        // Fold the wave's discoveries into the next wave's seed, in slot
        // order (union is commutative, so any order gives the same set).
        for (const WaveSlot& slot : slots) {
          for (std::size_t v = 0; v < slot.covered.size(); ++v) {
            if (slot.covered[v] && !(*covered)[v]) {
              (*covered)[v] = true;
              ++*covered_count;
            }
          }
        }
      }
    }

    std::lock_guard<std::mutex> lock(results_mutex_);
    results_.push_back(std::move(result));
  }

  /// Runs one wave child as a subtask — a further wave node while
  /// shallower than spawn_depth, the plain sequential loop otherwise —
  /// on the pool when a budget slot is free, inline otherwise.
  void DispatchCoverageTask(Candidate child, std::uint32_t depth,
                            std::vector<std::uint32_t> key,
                            ThreadPool::TaskGroup* group, WaveSlot* slot) {
    auto body = [this, depth, slot, child = std::move(child),
                 key = std::move(key)]() mutable {
      if (depth < options_.spawn_depth) {
        CoverageWaveNode(std::move(child), depth, std::move(key),
                         &slot->covered, &slot->count);
        return;
      }
      TaskResult result;
      result.key = std::move(key);
      result.stats.branch_tasks = 1;
      CoverageSubtreeLoop(std::move(child), &slot->covered, &slot->count,
                          &result.stats);
      std::lock_guard<std::mutex> lock(results_mutex_);
      results_.push_back(std::move(result));
    };
    if (pool_ != nullptr && budget_ != nullptr && budget_->TryAcquire()) {
      pool_->Spawn(group, [this, body = std::move(body)]() mutable {
        body();
        budget_->Release();
      });
    } else {
      body();
    }
  }

  /// Sequential exploration of one whole subtree against `covered`: the
  /// leaf layer of the decomposed coverage search, and the inline path
  /// for subtrees too small to be tasks.
  void CoverageSubtreeLoop(Candidate root, std::vector<bool>* covered,
                           VertexId* covered_count, MinerStats* stats) {
    WorkerArena& arena = Arena();
    std::deque<Candidate> work;
    work.push_back(std::move(root));
    std::vector<Candidate> children;
    while (!work.empty()) {
      if (has_error_.load()) return;
      Candidate cand;
      if (options_.order == SearchOrder::kBfs) {
        cand = std::move(work.front());
        work.pop_front();
      } else {
        cand = std::move(work.back());
        work.pop_back();
      }
      if (!CoverageStep(std::move(cand), &arena, stats, covered,
                        covered_count, &children)) {
        continue;
      }
      if (options_.order == SearchOrder::kBfs) {
        for (auto& c : children) work.push_back(std::move(c));
      } else {
        // Stack: push in reverse so the first child is expanded first.
        for (auto it = children.rbegin(); it != children.rend(); ++it) {
          work.push_back(std::move(*it));
        }
      }
    }
  }

  /// Maximal-mode task body: the sequential candidate loop over this
  /// subtree, except that candidates shallower than spawn_depth hand
  /// their large children to new branch tasks instead of their own
  /// deque. Maximal mode has no cross-branch pruning, so fire-and-forget
  /// decomposition (no barriers) is exact.
  void RunBranch(BranchTask task) {
    MinerStats stats;
    stats.branch_tasks = 1;
    // Local antichain: dominated sets die inside the branch, shrinking
    // both this task's residency and the fold under the shared lock.
    MaximalSetFilter reported;

    WorkerArena& arena = Arena();

    struct WorkItem {
      Candidate cand;
      std::uint32_t depth = 0;
    };
    std::deque<WorkItem> work;
    work.push_back({std::move(task.root), task.depth});

    std::vector<Candidate> children;
    while (!work.empty()) {
      if (has_error_.load()) return;
      if (cancel_ != nullptr && cancel_->ShouldStop(&arena.cancel_tick)) {
        RecordError(Status::Cancelled("quasi-clique search cancelled"));
        return;
      }
      WorkItem item;
      if (options_.order == SearchOrder::kBfs) {
        item = std::move(work.front());
        work.pop_front();
      } else {
        item = std::move(work.back());
        work.pop_back();
      }
      ++stats.candidates_processed;
      if (options_.max_candidates != 0 &&
          shared_candidates_.fetch_add(1) + 1 > options_.max_candidates) {
        RecordError(Status::OutOfRange("candidate budget exceeded"));
        return;
      }

      CandidateAnalysis analysis = arena.scratch.Analyze(
          item.cand, options_.params, options_.enable_size_bound,
          options_.enable_lookahead, options_.enable_critical_vertex);
      if (analysis.verdict == CandidateVerdict::kPrune) {
        ++stats.pruned_by_analysis;
        continue;
      }
      if (analysis.verdict == CandidateVerdict::kLookahead) {
        ++stats.lookahead_hits;
        VertexSet whole;
        SortedUnion(item.cand.x, analysis.pruned_ext, &whole);
        reported.Offer(std::move(whole));
        continue;
      }
      if (!analysis.forced.empty()) {
        ++stats.critical_vertex_jumps;
        Candidate jump;
        SortedUnion(item.cand.x, analysis.forced, &jump.x);
        SortedDifference(analysis.pruned_ext, analysis.forced, &jump.ext);
        work.push_back({std::move(jump), item.depth});
        continue;
      }
      if (analysis.x_is_satisfying) {
        reported.Offer(item.cand.x);
      }

      // Deterministic split of the children: shallow candidates send
      // every child with a large enough extension list off as a subtask;
      // everything else continues in this task's deque.
      BuildChildren(item.cand, analysis.pruned_ext, options_, &arena.marker,
                    &children);
      const bool decompose = item.depth < options_.spawn_depth;
      std::vector<Candidate> local;
      for (Candidate& child : children) {
        if (decompose && child.ext.size() >= options_.min_spawn_ext) {
          BranchTask sub;
          sub.root = std::move(child);
          sub.depth = item.depth + 1;
          SpawnOrRun(std::move(sub));
        } else {
          local.push_back(std::move(child));
        }
      }
      if (options_.order == SearchOrder::kBfs) {
        for (auto& c : local) work.push_back({std::move(c), item.depth + 1});
      } else {
        // Stack: push in reverse so the first child is expanded first.
        for (auto it = local.rbegin(); it != local.rend(); ++it) {
          work.push_back({std::move(*it), item.depth + 1});
        }
      }
    }

    // Fold into the shared accumulator: one lock round per task, merge
    // memory bounded by the accumulated output.
    std::lock_guard<std::mutex> lock(maximal_.mutex);
    maximal_.stats.MergeFrom(stats);
    for (VertexSet& q : reported.TakeSorted()) {
      maximal_.filter.Offer(std::move(q));
    }
  }

  const Graph& graph_;
  const QuasiCliqueMinerOptions& options_;
  Mode mode_;
  ThreadPool* pool_;
  ParallelismBudget* budget_;
  CancelToken* cancel_;
  MinerStats* stats_;

  CandidateScratch prototype_;  // adjacency bits shared into the arenas
  std::mutex arena_mutex_;
  std::vector<std::unique_ptr<WorkerArena>> arenas_;

  ThreadPool::TaskGroup group_;
  std::mutex results_mutex_;
  std::vector<TaskResult> results_;  // coverage wave nodes + primer
  MaximalAccumulator maximal_;

  std::mutex error_mutex_;
  Status first_error_;
  std::atomic<bool> has_error_{false};
  std::atomic<std::uint64_t> shared_candidates_{0};  // max_candidates only

  std::vector<bool> covered_;  // kCoverage, after the merge
};

/// Applies vertex reduction and returns the working subgraph.
Result<InducedSubgraph> Reduce(const Graph& graph,
                               const QuasiCliqueMinerOptions& options,
                               SubgraphWorkspace* workspace) {
  VertexSet keep;
  if (options.enable_vertex_reduction) {
    keep = ReduceVertices(graph, options.params);
  } else {
    keep.resize(graph.NumVertices());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) keep[v] = v;
  }
  if (workspace != nullptr) return workspace->Build(graph, std::move(keep));
  return InducedSubgraph::Create(graph, std::move(keep));
}

/// Returns the subgraph's buffers to the workspace, if any.
void Release(SubgraphWorkspace* workspace, InducedSubgraph&& sub) {
  if (workspace != nullptr) workspace->Recycle(std::move(sub));
}

}  // namespace

Result<std::vector<VertexSet>> QuasiCliqueMiner::MineMaximal(
    const Graph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  std::vector<VertexSet> local;
  if (options_.spawn_depth > 0) {
    ParallelSearch search(sub->graph(), options_, Mode::kMaximal, pool_,
                          budget_, cancel_, &stats_);
    SCPM_RETURN_IF_ERROR(search.Run());
    local = search.TakeMaximal();
  } else {
    Search search(sub->graph(), options_, Mode::kMaximal, 0, &stats_);
    search.set_cancel(cancel_);
    SCPM_RETURN_IF_ERROR(search.Run());
    local = search.TakeMaximal();
  }
  std::vector<VertexSet> out;
  out.reserve(local.size());
  for (const VertexSet& q : local) out.push_back(sub->ToGlobal(q));
  Release(workspace_, std::move(sub).value());
  return out;
}

Status QuasiCliqueMiner::MineMaximalInto(
    const Graph& graph, const std::function<void(const VertexSet&)>& emit) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  // Reported sets leave in local ids; translate at the boundary so the
  // caller sees the same coordinate space MineMaximal returns.
  const std::function<void(const VertexSet&)> global_emit =
      [&](const VertexSet& q) { emit(sub->ToGlobal(q)); };
  Search search(sub->graph(), options_, Mode::kMaximal, 0, &stats_);
  search.set_cancel(cancel_);
  search.set_emit(&global_emit);
  const Status status = search.Run();
  Release(workspace_, std::move(sub).value());
  return status;
}

Result<VertexSet> QuasiCliqueMiner::MineCoverage(const Graph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  VertexSet covered;
  if (options_.spawn_depth > 0) {
    ParallelSearch search(sub->graph(), options_, Mode::kCoverage, pool_,
                          budget_, cancel_, &stats_);
    SCPM_RETURN_IF_ERROR(search.Run());
    covered = sub->ToGlobal(search.TakeCoverage());
  } else {
    Search search(sub->graph(), options_, Mode::kCoverage, 0, &stats_);
    search.set_cancel(cancel_);
    SCPM_RETURN_IF_ERROR(search.Run());
    covered = sub->ToGlobal(search.TakeCoverage());
  }
  Release(workspace_, std::move(sub).value());
  return covered;
}

Result<std::vector<RankedQuasiClique>> QuasiCliqueMiner::MineTopK(
    const Graph& graph, std::size_t k) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  if (k == 0) return Status::InvalidArgument("k must be >= 1");
  stats_ = MinerStats{};
  Result<InducedSubgraph> sub = Reduce(graph, options_, workspace_);
  if (!sub.ok()) return sub.status();
  Search search(sub->graph(), options_, Mode::kTopK, k, &stats_);
  search.set_cancel(cancel_);
  SCPM_RETURN_IF_ERROR(search.Run());
  std::vector<RankedQuasiClique> local = search.TakeTopK();
  for (RankedQuasiClique& q : local) {
    q.vertices = sub->ToGlobal(q.vertices);
  }
  Release(workspace_, std::move(sub).value());
  return local;
}

}  // namespace scpm
