// Exponential reference implementations used to validate the miner.
//
// These enumerate every vertex subset, so they are only usable on tiny
// graphs (guarded at ~24 vertices); the test suite compares the optimized
// miner against them on randomized inputs.

#ifndef SCPM_QCLIQUE_BRUTE_FORCE_H_
#define SCPM_QCLIQUE_BRUTE_FORCE_H_

#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "qclique/quasi_clique.h"
#include "util/result.h"

namespace scpm {

/// Every vertex set satisfying size + degree constraints, in increasing
/// (size, lexicographic) order.
Result<std::vector<VertexSet>> BruteForceSatisfyingSets(
    const Graph& graph, const QuasiCliqueParams& params);

/// The maximal satisfying sets (no satisfying strict superset), ordered by
/// decreasing size then lexicographically.
Result<std::vector<VertexSet>> BruteForceMaximalQuasiCliques(
    const Graph& graph, const QuasiCliqueParams& params);

/// Sorted union of all satisfying sets: the paper's K for this graph.
Result<VertexSet> BruteForceCoverage(const Graph& graph,
                                     const QuasiCliqueParams& params);

}  // namespace scpm

#endif  // SCPM_QCLIQUE_BRUTE_FORCE_H_
