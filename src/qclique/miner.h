// Quasi-clique miner in the style of Quick [Liu & Wong 2008], following
// the paper's Algorithm 1.
//
// Three modes over the same set-enumeration search:
//  * MineMaximal  — all maximal satisfying sets (maximal by inclusion).
//  * MineCoverage — the vertex set K covered by at least one satisfying
//                   set, with the paper's §3.2.2 coverage pruning (prune a
//                   candidate whose whole X ∪ candExts is already covered).
//  * MineTopK     — the k best satisfying sets by (size, min-degree ratio),
//                   with the paper's §3.2.3 dynamic min-size raising.
//
// BFS (queue) and DFS (stack) candidate orders are both supported
// (paper §3.2.2); they are equivalent in output for MineMaximal and
// MineCoverage and only differ in traversal cost.

#ifndef SCPM_QCLIQUE_MINER_H_
#define SCPM_QCLIQUE_MINER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "qclique/quasi_clique.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

class SubgraphWorkspace;

/// Order in which candidate quasi-cliques are expanded (paper §3.2.2).
enum class SearchOrder {
  kDfs,  // stack: extend vertex sets as far as possible first
  kBfs,  // queue: smaller vertex sets before larger ones
};

/// Tuning knobs; the enable_* flags exist for ablation benchmarks and
/// equivalence tests — all default on.
struct QuasiCliqueMinerOptions {
  QuasiCliqueParams params;
  SearchOrder order = SearchOrder::kDfs;

  /// Iteratively peel vertices that cannot be in any satisfying set before
  /// searching (vertex pruning, paper §3.2.1 group 1).
  bool enable_vertex_reduction = true;
  /// Subtree size upper bound from member degrees.
  bool enable_size_bound = true;
  /// Report X ∪ candExts directly when it satisfies the constraint.
  bool enable_lookahead = true;
  /// Restrict child extensions to distance <= 2 from the chosen vertex
  /// (sound for gamma >= 0.5, ignored otherwise).
  bool enable_diameter_filter = true;
  /// Quick's critical-vertex technique: jump directly to forced
  /// extensions when a chosen vertex's degree budget is exactly tight.
  bool enable_critical_vertex = true;
  /// Abort with an error after this many candidates (0 = unlimited).
  std::uint64_t max_candidates = 0;

  Status Validate() const;
};

/// Search-effort counters from the most recent mining call.
struct MinerStats {
  std::uint64_t candidates_processed = 0;
  std::uint64_t pruned_by_analysis = 0;
  std::uint64_t pruned_by_coverage = 0;
  std::uint64_t pruned_by_topk = 0;
  std::uint64_t lookahead_hits = 0;
  std::uint64_t critical_vertex_jumps = 0;
  std::uint64_t sets_reported = 0;
};

/// A top-k entry: the vertex set plus its ranking keys.
struct RankedQuasiClique {
  VertexSet vertices;
  double min_degree_ratio = 0.0;  // the paper's per-pattern gamma

  std::size_t size() const { return vertices.size(); }
};

/// Reusable miner; each Mine* call is independent. Not thread-safe.
class QuasiCliqueMiner {
 public:
  explicit QuasiCliqueMiner(QuasiCliqueMinerOptions options)
      : options_(options) {}

  const QuasiCliqueMinerOptions& options() const { return options_; }

  /// All maximal satisfying sets, each sorted; the list is ordered by
  /// decreasing size then lexicographically.
  Result<std::vector<VertexSet>> MineMaximal(const Graph& graph);

  /// Sorted set of vertices covered by at least one satisfying set
  /// (the paper's K for this graph).
  Result<VertexSet> MineCoverage(const Graph& graph);

  /// Top-k satisfying sets by (size desc, min-degree ratio desc), maximal
  /// among the reported sets. May return fewer than k.
  Result<std::vector<RankedQuasiClique>> MineTopK(const Graph& graph,
                                                  std::size_t k);

  /// Counters from the most recent call.
  const MinerStats& stats() const { return stats_; }

  /// Optional borrowed workspace for the vertex-reduction subgraph; must
  /// outlive the miner. Saves an allocation round per Mine* call when the
  /// miner is reused (the parallel SCPM engine passes its per-worker
  /// workspace).
  void set_workspace(SubgraphWorkspace* workspace) { workspace_ = workspace; }

 private:
  QuasiCliqueMinerOptions options_;
  MinerStats stats_;
  SubgraphWorkspace* workspace_ = nullptr;
};

}  // namespace scpm

#endif  // SCPM_QCLIQUE_MINER_H_
