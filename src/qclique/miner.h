// Quasi-clique miner in the style of Quick [Liu & Wong 2008], following
// the paper's Algorithm 1.
//
// Three modes over the same set-enumeration search:
//  * MineMaximal  — all maximal satisfying sets (maximal by inclusion).
//  * MineCoverage — the vertex set K covered by at least one satisfying
//                   set, with the paper's §3.2.2 coverage pruning (prune a
//                   candidate whose whole X ∪ candExts is already covered).
//  * MineTopK     — the k best satisfying sets by (size, min-degree ratio),
//                   with the paper's §3.2.3 dynamic min-size raising.
//
// BFS (queue) and DFS (stack) candidate orders are both supported
// (paper §3.2.2); they are equivalent in output for MineMaximal and
// MineCoverage and only differ in traversal cost.
//
// Intra-search parallelism (Galois kcl-style): with spawn_depth > 0 the
// candidate-extension tree is *decomposed* into branch tasks — every
// branch within spawn_depth of the root whose extension list is large
// enough becomes its own task with its own key, scratch arena, and
// MinerStats — and *executed* adaptively: a task runs on the attached
// work-stealing ThreadPool when a ParallelismBudget slot is free, inline
// otherwise. Decomposition depends only on the graph and the options,
// never on thread count or timing, and per-task results are merged in
// key order, so output and stats are identical for any thread count
// (including no pool at all). MineTopK always searches sequentially: its
// §3.2.3 dynamic min-size pruning depends on the traversal order.

#ifndef SCPM_QCLIQUE_MINER_H_
#define SCPM_QCLIQUE_MINER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "qclique/quasi_clique.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

class CancelToken;
class ParallelismBudget;
class SubgraphWorkspace;
class ThreadPool;

/// Order in which candidate quasi-cliques are expanded (paper §3.2.2).
enum class SearchOrder {
  kDfs,  // stack: extend vertex sets as far as possible first
  kBfs,  // queue: smaller vertex sets before larger ones
};

/// Tuning knobs; the enable_* flags exist for ablation benchmarks and
/// equivalence tests — all default on.
struct QuasiCliqueMinerOptions {
  QuasiCliqueParams params;
  SearchOrder order = SearchOrder::kDfs;

  /// Iteratively peel vertices that cannot be in any satisfying set before
  /// searching (vertex pruning, paper §3.2.1 group 1).
  bool enable_vertex_reduction = true;
  /// Subtree size upper bound from member degrees.
  bool enable_size_bound = true;
  /// Report X ∪ candExts directly when it satisfies the constraint.
  bool enable_lookahead = true;
  /// Restrict child extensions to distance <= 2 from the chosen vertex
  /// (sound for gamma >= 0.5, ignored otherwise).
  bool enable_diameter_filter = true;
  /// Quick's critical-vertex technique: jump directly to forced
  /// extensions when a chosen vertex's degree budget is exactly tight.
  bool enable_critical_vertex = true;
  /// Abort with an error after this many candidates (0 = unlimited).
  std::uint64_t max_candidates = 0;

  /// Intra-search parallel decomposition depth: candidate-tree branches
  /// within this many levels of the search root become their own branch
  /// tasks (0 = classic sequential search). Decomposition is purely a
  /// function of the graph and these options, so results and stats do
  /// not depend on whether (or where) tasks actually run in parallel.
  /// Ignored by MineTopK (see the file comment).
  std::uint32_t spawn_depth = 0;
  /// Branches with fewer candidate extensions than this are never worth
  /// a task of their own; they stay inline in their parent task. The
  /// default keeps tasks to thousands of candidates each — small enough
  /// to balance, large enough that task bookkeeping stays in the noise.
  std::uint32_t min_spawn_ext = 32;
  /// Decomposed coverage searches first run the plain sequential search
  /// for this many candidates and seed every branch task with the
  /// coverage it found: cross-task sharing of live covered sets would
  /// make counters timing-dependent, so coverage is shared only at
  /// deterministic points. A search finishing within the budget skips
  /// decomposition. 0 disables the primer.
  std::uint64_t coverage_primer_candidates = 4096;
  /// Decomposed coverage searches process each node's children in waves
  /// of this many tasks with a barrier between waves; each wave is
  /// seeded with the union of all coverage found before it (a
  /// deterministic merge), so coverage pruning is lost only between
  /// same-wave siblings. The sequential search is the wave-size-1 limit;
  /// larger waves trade pruning for parallelism. Waves nest per
  /// decomposition level, so concurrency scales like wave^spawn_depth.
  std::uint32_t coverage_wave = 8;

  Status Validate() const;
};

/// Search-effort counters from the most recent mining call. In a
/// decomposed (intra-parallel) search each branch task accumulates its
/// own MinerStats, merged in task-key order at the end — never through
/// shared atomics — so the totals are exact and thread-count-independent.
struct MinerStats {
  std::uint64_t candidates_processed = 0;
  std::uint64_t pruned_by_analysis = 0;
  std::uint64_t pruned_by_coverage = 0;
  std::uint64_t pruned_by_topk = 0;
  std::uint64_t lookahead_hits = 0;
  std::uint64_t critical_vertex_jumps = 0;
  std::uint64_t sets_reported = 0;
  /// Branch tasks the search was decomposed into (0 on the sequential
  /// path). Deterministic: decomposition does not depend on execution.
  std::uint64_t branch_tasks = 0;

  /// Key-ordered accumulation of one branch task's counters.
  void MergeFrom(const MinerStats& other);
};

/// A top-k entry: the vertex set plus its ranking keys.
struct RankedQuasiClique {
  VertexSet vertices;
  double min_degree_ratio = 0.0;  // the paper's per-pattern gamma

  std::size_t size() const { return vertices.size(); }
};

/// Streaming maximality filter: an incremental antichain under set
/// inclusion. Offer() admits a satisfying set the moment the search
/// reports it — rejecting duplicates and sets contained in a kept
/// larger set, evicting kept sets the newcomer strictly contains — so a
/// maximal-mode search holds only the current antichain instead of
/// buffering every reported set for a final filter pass. Candidate
/// supersets are found through size buckets (only strictly larger kept
/// sets can dominate) with a 64-bit membership signature prefilter in
/// front of the exact SortedIsSubset check. The final content equals
/// the old batch filter's survivors for ANY offer order, which is what
/// keeps the decomposed search's output independent of branch-task
/// completion timing. Exposed for the equivalence fuzz tests.
class MaximalSetFilter {
 public:
  /// Offers one satisfying set (sorted, duplicate-free). Returns true
  /// when the set was admitted to the antichain.
  bool Offer(VertexSet q);

  /// Kept sets currently in the antichain.
  std::size_t size() const { return count_; }

  /// Drains the antichain in the canonical report order (size
  /// descending, then lexicographic); the filter is empty afterwards.
  std::vector<VertexSet> TakeSorted();

 private:
  struct Entry {
    std::uint64_t sig = 0;
    VertexSet set;
  };
  // Size-bucketed, largest first: domination scans walk buckets >= |q|,
  // eviction scans walk buckets < |q|.
  std::map<std::size_t, std::vector<Entry>, std::greater<std::size_t>>
      buckets_;
  std::size_t count_ = 0;
};

/// Reusable miner; each Mine* call is independent. Not thread-safe.
class QuasiCliqueMiner {
 public:
  explicit QuasiCliqueMiner(QuasiCliqueMinerOptions options)
      : options_(options) {}

  const QuasiCliqueMinerOptions& options() const { return options_; }

  /// All maximal satisfying sets, each sorted; the list is ordered by
  /// decreasing size then lexicographically.
  Result<std::vector<VertexSet>> MineMaximal(const Graph& graph);

  /// Emit-as-found bypass for coverage-only consumers: streams every
  /// *reported* satisfying set to `emit` the moment the search finds
  /// it, with no maximality filter and nothing buffered — the union of
  /// the reported sets equals the union of the maximal ones, so a
  /// caller that only folds the sets (coverage marking, counting) gets
  /// the same answer with O(1) resident sets. Emission order is the
  /// traversal order, so this always searches sequentially
  /// (spawn_depth is ignored); work counters match MineMaximal, but
  /// stats().sets_reported counts raw reports, not maximal survivors.
  Status MineMaximalInto(const Graph& graph,
                         const std::function<void(const VertexSet&)>& emit);

  /// Sorted set of vertices covered by at least one satisfying set
  /// (the paper's K for this graph).
  Result<VertexSet> MineCoverage(const Graph& graph);

  /// Top-k satisfying sets by (size desc, min-degree ratio desc), maximal
  /// among the reported sets. May return fewer than k.
  Result<std::vector<RankedQuasiClique>> MineTopK(const Graph& graph,
                                                  std::size_t k);

  /// Counters from the most recent call.
  const MinerStats& stats() const { return stats_; }

  /// Optional borrowed workspace for the vertex-reduction subgraph; must
  /// outlive the miner. Saves an allocation round per Mine* call when the
  /// miner is reused (the parallel SCPM engine passes its per-worker
  /// workspace).
  void set_workspace(SubgraphWorkspace* workspace) { workspace_ = workspace; }

  /// Attaches the pool and slot budget that execute decomposed branch
  /// tasks (both borrowed; may be null). With spawn_depth > 0 and no
  /// pool the search is still decomposed — byte-identical output and
  /// stats — but every task runs inline on the calling thread.
  void set_parallel_context(ThreadPool* pool, ParallelismBudget* budget) {
    pool_ = pool;
    budget_ = budget;
  }

  /// Adjusts the decomposition depth between Mine* calls (the adaptive
  /// SCPM policy flips it per evaluation based on |G(S)|).
  void set_spawn_depth(std::uint32_t depth) { options_.spawn_depth = depth; }

  /// Borrowed cooperative-cancellation token (may be null). Every search
  /// loop — sequential, decomposed branch tasks, and wave nodes alike —
  /// polls it once per candidate, so a long coverage search observes an
  /// engine budget within one candidate's work of the flag latching. A
  /// cancelled Mine* call returns StatusCode::kCancelled; partial
  /// discoveries are discarded.
  void set_cancel_token(CancelToken* cancel) { cancel_ = cancel; }

 private:
  QuasiCliqueMinerOptions options_;
  MinerStats stats_;
  SubgraphWorkspace* workspace_ = nullptr;
  ThreadPool* pool_ = nullptr;
  ParallelismBudget* budget_ = nullptr;
  CancelToken* cancel_ = nullptr;
};

}  // namespace scpm

#endif  // SCPM_QCLIQUE_MINER_H_
