// Bron–Kerbosch maximal clique enumeration with pivoting.
//
// Cliques are the gamma = 1 special case of quasi-cliques; this dedicated
// miner serves as an independent reference implementation (the test suite
// cross-checks QuasiCliqueMiner at gamma = 1 against it) and as a faster
// path for clique workloads.

#ifndef SCPM_QCLIQUE_BRON_KERBOSCH_H_
#define SCPM_QCLIQUE_BRON_KERBOSCH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "util/result.h"

namespace scpm {

/// All maximal cliques with at least `min_size` vertices, ordered by
/// decreasing size then lexicographically. Uses Bron–Kerbosch with the
/// Tomita max-degree pivot; `max_cliques` (0 = unlimited) caps the output
/// as a safety valve for pathological graphs.
Result<std::vector<VertexSet>> MaximalCliques(const Graph& graph,
                                              std::uint32_t min_size,
                                              std::uint64_t max_cliques = 0);

}  // namespace scpm

#endif  // SCPM_QCLIQUE_BRON_KERBOSCH_H_
