#include "qclique/quasi_clique.h"

#include <algorithm>
#include <cmath>

#include "util/sorted_ops.h"

namespace scpm {

Status QuasiCliqueParams::Validate() const {
  if (!(gamma > 0.0) || gamma > 1.0) {
    return Status::InvalidArgument("gamma must be in (0, 1]");
  }
  if (min_size < 2) {
    return Status::InvalidArgument("min_size must be >= 2");
  }
  return Status::OK();
}

std::uint32_t QuasiCliqueParams::RequiredDegree(std::size_t size) const {
  if (size <= 1) return 0;
  return static_cast<std::uint32_t>(
      std::ceil(gamma * static_cast<double>(size - 1) -
                1e-9));  // Guard against FP noise at exact integers.
}

std::size_t QuasiCliqueParams::MaxSizeForDegree(std::size_t degree) const {
  // RequiredDegree(s) <= degree  <=>  ceil(gamma (s-1)) <= degree
  // <=> gamma (s-1) <= degree  <=>  s <= degree / gamma + 1.
  return static_cast<std::size_t>(
      std::floor(static_cast<double>(degree) / gamma + 1e-9)) + 1;
}

namespace {

/// In-set degree of q[i] via sorted merge of its adjacency with q.
std::uint32_t InSetDegree(const Graph& graph, const VertexSet& q,
                          VertexId v) {
  auto nbrs = graph.Neighbors(v);
  std::uint32_t deg = 0;
  auto a = nbrs.begin();
  auto b = q.begin();
  while (a != nbrs.end() && b != q.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++deg;
      ++a;
      ++b;
    }
  }
  return deg;
}

}  // namespace

bool SatisfiesDegreeConstraint(const Graph& graph, const VertexSet& q,
                               const QuasiCliqueParams& params) {
  const std::uint32_t required = params.RequiredDegree(q.size());
  for (VertexId v : q) {
    if (InSetDegree(graph, q, v) < required) return false;
  }
  return true;
}

bool IsSatisfyingSet(const Graph& graph, const VertexSet& q,
                     const QuasiCliqueParams& params) {
  return q.size() >= params.min_size &&
         SatisfiesDegreeConstraint(graph, q, params);
}

double MinDegreeRatio(const Graph& graph, const VertexSet& q) {
  if (q.size() < 2) return 0.0;
  std::uint32_t min_degree = static_cast<std::uint32_t>(q.size());
  for (VertexId v : q) {
    min_degree = std::min(min_degree, InSetDegree(graph, q, v));
  }
  return static_cast<double>(min_degree) /
         static_cast<double>(q.size() - 1);
}

}  // namespace scpm
