#include "qclique/bron_kerbosch.h"

#include <algorithm>

#include "util/sorted_ops.h"

namespace scpm {
namespace {

/// Recursion state for Bron–Kerbosch.
class Enumerator {
 public:
  Enumerator(const Graph& graph, std::uint32_t min_size,
             std::uint64_t max_cliques)
      : graph_(graph), min_size_(min_size), max_cliques_(max_cliques) {}

  Status Run() {
    VertexSet r, p(graph_.NumVertices()), x;
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) p[v] = v;
    return Expand(r, std::move(p), std::move(x));
  }

  std::vector<VertexSet> TakeCliques() {
    std::sort(cliques_.begin(), cliques_.end(),
              [](const VertexSet& a, const VertexSet& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    return std::move(cliques_);
  }

 private:
  VertexSet NeighborsOf(VertexId v) const {
    auto nbrs = graph_.Neighbors(v);
    return VertexSet(nbrs.begin(), nbrs.end());
  }

  Status Expand(VertexSet& r, VertexSet p, VertexSet x) {
    if (p.empty() && x.empty()) {
      if (r.size() >= min_size_) {
        if (max_cliques_ != 0 && cliques_.size() >= max_cliques_) {
          return Status::OutOfRange("maximal clique budget exceeded");
        }
        VertexSet clique = r;
        std::sort(clique.begin(), clique.end());
        cliques_.push_back(std::move(clique));
      }
      return Status::OK();
    }
    if (r.size() + p.size() < min_size_) return Status::OK();

    // Tomita pivot: the vertex of P ∪ X with the most neighbors in P.
    VertexId pivot = kInvalidVertex;
    std::size_t best = 0;
    for (const VertexSet* side : {&p, &x}) {
      for (VertexId u : *side) {
        const std::size_t count =
            SortedIntersectSize(p, NeighborsOf(u));
        if (pivot == kInvalidVertex || count > best) {
          pivot = u;
          best = count;
        }
      }
    }
    VertexSet candidates;
    if (pivot == kInvalidVertex) {
      candidates = p;
    } else {
      SortedDifference(p, NeighborsOf(pivot), &candidates);
    }

    for (VertexId v : candidates) {
      const VertexSet nbrs = NeighborsOf(v);
      VertexSet p_next, x_next;
      SortedIntersect(p, nbrs, &p_next);
      SortedIntersect(x, nbrs, &x_next);
      r.push_back(v);
      SCPM_RETURN_IF_ERROR(Expand(r, std::move(p_next), std::move(x_next)));
      r.pop_back();
      SortedErase(&p, v);
      SortedInsert(&x, v);
    }
    return Status::OK();
  }

  const Graph& graph_;
  std::uint32_t min_size_;
  std::uint64_t max_cliques_;
  std::vector<VertexSet> cliques_;
};

}  // namespace

Result<std::vector<VertexSet>> MaximalCliques(const Graph& graph,
                                              std::uint32_t min_size,
                                              std::uint64_t max_cliques) {
  Enumerator enumerator(graph, min_size, max_cliques);
  SCPM_RETURN_IF_ERROR(enumerator.Run());
  return enumerator.TakeCliques();
}

}  // namespace scpm
