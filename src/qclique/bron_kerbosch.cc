#include "qclique/bron_kerbosch.h"

#include <algorithm>

#include "util/hybrid_set.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

/// Bitmap adjacency pays off exactly as in CandidateScratch: one row is
/// n/64 words, so the candidate-set checks of the recursion become word
/// probes instead of re-intersecting sorted adjacency lists (which also
/// means no per-call neighbor-vector allocations).
constexpr VertexId kMaxBitsetVertices = 4096;

/// Recursion state for Bron–Kerbosch.
class Enumerator {
 public:
  Enumerator(const Graph& graph, std::uint32_t min_size,
             std::uint64_t max_cliques)
      : graph_(graph), min_size_(min_size), max_cliques_(max_cliques) {
    const VertexId n = graph.NumVertices();
    if (n > 0 && n <= kMaxBitsetVertices) {
      use_bitsets_ = true;
      rows_.reserve(n);
      for (VertexId v = 0; v < n; ++v) {
        VertexBitset row(n);
        for (VertexId u : graph.Neighbors(v)) row.Set(u);
        rows_.push_back(std::move(row));
      }
    }
  }

  Status Run() {
    VertexSet r, p(graph_.NumVertices()), x;
    for (VertexId v = 0; v < graph_.NumVertices(); ++v) p[v] = v;
    return Expand(r, std::move(p), std::move(x));
  }

  std::vector<VertexSet> TakeCliques() {
    std::sort(cliques_.begin(), cliques_.end(),
              [](const VertexSet& a, const VertexSet& b) {
                if (a.size() != b.size()) return a.size() > b.size();
                return a < b;
              });
    return std::move(cliques_);
  }

 private:
  VertexSet NeighborsOf(VertexId v) const {
    auto nbrs = graph_.Neighbors(v);
    return VertexSet(nbrs.begin(), nbrs.end());
  }

  /// |p ∩ N(u)|: the pivot-selection neighborhood check.
  std::size_t NeighborCount(const VertexSet& p, const VertexBitset* p_bits,
                            VertexId u) const {
    if (use_bitsets_) {
      return VertexBitset::AndCount(*p_bits, rows_[u]);
    }
    return SortedIntersectSize(p, NeighborsOf(u));
  }

  Status Expand(VertexSet& r, VertexSet p, VertexSet x) {
    if (p.empty() && x.empty()) {
      if (r.size() >= min_size_) {
        if (max_cliques_ != 0 && cliques_.size() >= max_cliques_) {
          return Status::OutOfRange("maximal clique budget exceeded");
        }
        VertexSet clique = r;
        std::sort(clique.begin(), clique.end());
        cliques_.push_back(std::move(clique));
      }
      return Status::OK();
    }
    if (r.size() + p.size() < min_size_) return Status::OK();

    // Tomita pivot: the vertex of P ∪ X with the most neighbors in P.
    VertexBitset p_bits;
    if (use_bitsets_) {
      p_bits = VertexBitset::FromSorted(p, graph_.NumVertices());
    }
    VertexId pivot = kInvalidVertex;
    std::size_t best = 0;
    for (const VertexSet* side : {&p, &x}) {
      for (VertexId u : *side) {
        const std::size_t count = NeighborCount(p, &p_bits, u);
        if (pivot == kInvalidVertex || count > best) {
          pivot = u;
          best = count;
        }
      }
    }
    VertexSet candidates;
    if (pivot == kInvalidVertex) {
      candidates = p;
    } else {
      SortedDifference(p, NeighborsOf(pivot), &candidates);
    }

    for (VertexId v : candidates) {
      VertexSet p_next, x_next;
      if (use_bitsets_) {
        IntersectSortedWithBits(p, rows_[v], &p_next);
        IntersectSortedWithBits(x, rows_[v], &x_next);
      } else {
        const VertexSet nbrs = NeighborsOf(v);
        SortedIntersect(p, nbrs, &p_next);
        SortedIntersect(x, nbrs, &x_next);
      }
      r.push_back(v);
      SCPM_RETURN_IF_ERROR(Expand(r, std::move(p_next), std::move(x_next)));
      r.pop_back();
      SortedErase(&p, v);
      SortedInsert(&x, v);
    }
    return Status::OK();
  }

  const Graph& graph_;
  std::uint32_t min_size_;
  std::uint64_t max_cliques_;
  bool use_bitsets_ = false;
  std::vector<VertexBitset> rows_;  // adjacency bitmaps when use_bitsets_
  std::vector<VertexSet> cliques_;
};

}  // namespace

Result<std::vector<VertexSet>> MaximalCliques(const Graph& graph,
                                              std::uint32_t min_size,
                                              std::uint64_t max_cliques) {
  Enumerator enumerator(graph, min_size, max_cliques);
  SCPM_RETURN_IF_ERROR(enumerator.Run());
  return enumerator.TakeCliques();
}

}  // namespace scpm
