// The paper's Figure-1 running example, reconstructed exactly.
//
// Eleven vertices (paper ids 1..11 map to internal ids 0..10) with
// attributes A..E as listed in Figure 1(a). The edge set is reconstructed
// from the constraints the paper states: {3,4,5,6} is a clique
// (Figure 1(c)), {6..11} is a 0.6-quasi-clique of size 6 with min degree 3
// (Figure 1(d)), and with sigma_min=3, gamma=0.6, min_size=4, eps_min=0.5
// the complete pattern output is exactly the paper's Table 1, with
// eps({A}) = 9/11, eps({C}) = 0, eps({A,B}) = 1.

#ifndef SCPM_DATASETS_PAPER_EXAMPLE_H_
#define SCPM_DATASETS_PAPER_EXAMPLE_H_

#include "graph/attributed_graph.h"

namespace scpm {

/// Builds the Figure-1 attributed graph. Internal vertex v corresponds to
/// paper vertex v + 1.
AttributedGraph PaperExampleGraph();

/// Paper-facing label of an internal vertex id.
inline VertexId PaperExampleLabel(VertexId v) { return v + 1; }

}  // namespace scpm

#endif  // SCPM_DATASETS_PAPER_EXAMPLE_H_
