#include "datasets/paper_example.h"

#include "util/logging.h"

namespace scpm {

AttributedGraph PaperExampleGraph() {
  AttributedGraphBuilder builder(11);

  // Edges in paper ids (1-based); see header for the reconstruction
  // constraints.
  constexpr std::pair<int, int> kEdges[] = {
      {1, 2}, {1, 3}, {2, 3},                   // periphery around 3
      {3, 4}, {3, 5}, {3, 6}, {3, 7},           // 3's hub edges
      {4, 5}, {4, 6}, {5, 6},                   // completes clique {3,4,5,6}
      {6, 7}, {6, 8}, {7, 8},                   // triangle {6,7,8}
      {9, 10}, {9, 11}, {10, 11},               // triangle {9,10,11}
      {6, 9}, {7, 10}, {8, 11},                 // prism matching
  };
  for (auto [u, v] : kEdges) {
    builder.AddEdge(static_cast<VertexId>(u - 1),
                    static_cast<VertexId>(v - 1));
  }

  // Figure 1(a) attribute table (paper ids).
  const struct {
    int vertex;
    const char* attrs;
  } kAttrs[] = {
      {1, "AC"},  {2, "A"},   {3, "ACD"}, {4, "AD"},  {5, "AE"},
      {6, "ABC"}, {7, "ABE"}, {8, "AB"},  {9, "AB"},  {10, "ABD"},
      {11, "AB"},
  };
  for (const auto& row : kAttrs) {
    for (const char* c = row.attrs; *c != '\0'; ++c) {
      Status status = builder.AddVertexAttribute(
          static_cast<VertexId>(row.vertex - 1), std::string_view(c, 1));
      SCPM_CHECK(status.ok()) << status;
    }
  }

  Result<AttributedGraph> graph = builder.Build();
  SCPM_CHECK(graph.ok()) << graph.status();
  return std::move(graph).value();
}

}  // namespace scpm
