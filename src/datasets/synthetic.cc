#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "util/logging.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

Status ValidateConfig(const SyntheticConfig& c) {
  if (c.num_vertices < c.community_max_size) {
    return Status::InvalidArgument("num_vertices < community_max_size");
  }
  if (c.community_min_size > c.community_max_size) {
    return Status::InvalidArgument("community_min_size > community_max_size");
  }
  if (c.powerlaw_exponent <= 2.0) {
    return Status::InvalidArgument("powerlaw_exponent must be > 2");
  }
  if (c.vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be > 0");
  }
  if (c.num_topics == 0 || c.topic_size == 0) {
    return Status::InvalidArgument("need at least one topic attribute");
  }
  return Status::OK();
}

}  // namespace

Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config) {
  SCPM_RETURN_IF_ERROR(ValidateConfig(config));
  Rng rng(config.seed);

  // --- Topology: power-law background + planted communities. ---
  Result<Graph> background = ChungLu(
      PowerLawWeights(config.num_vertices, config.powerlaw_exponent,
                      config.avg_degree),
      rng);
  if (!background.ok()) return background.status();
  std::vector<Edge> edges = background->Edges();
  std::vector<PlantedGroup> communities = PlantGroups(
      config.num_vertices, config.num_communities, config.community_min_size,
      config.community_max_size, config.community_density, rng, &edges);

  AttributedGraphBuilder builder(config.num_vertices);
  for (const Edge& e : edges) builder.AddEdge(e.u, e.v);

  // --- Topics: attribute sets "t<i>_<j>". ---
  std::vector<AttributeSet> topics(config.num_topics);
  for (std::size_t t = 0; t < config.num_topics; ++t) {
    for (std::size_t j = 0; j < config.topic_size; ++j) {
      const std::string name =
          "t" + std::to_string(t) + "_" + std::to_string(j);
      topics[t].push_back(builder.InternAttribute(name));
    }
    SortUnique(&topics[t]);
  }

  // Community members carry their topic's attributes with high affinity.
  std::vector<std::size_t> community_topic(communities.size());
  for (std::size_t c = 0; c < communities.size(); ++c) {
    const std::size_t t = c % config.num_topics;
    community_topic[c] = t;
    for (VertexId v : communities[c].members) {
      for (AttributeId a : topics[t]) {
        if (rng.NextBool(config.topic_affinity)) {
          SCPM_RETURN_IF_ERROR(builder.AddVertexAttribute(v, a));
        }
      }
    }
  }
  // Topic noise: random vertices also carry topic attributes, inflating
  // support beyond the communities.
  if (config.topic_noise > 0.0) {
    for (VertexId v = 0; v < config.num_vertices; ++v) {
      for (const AttributeSet& topic : topics) {
        for (AttributeId a : topic) {
          if (rng.NextBool(config.topic_noise)) {
            SCPM_RETURN_IF_ERROR(builder.AddVertexAttribute(v, a));
          }
        }
      }
    }
  }

  // --- Background vocabulary: Zipf-popular filler words "w<i>". ---
  // Each word r has an independent per-vertex probability
  //   p_r = min(filler_max_frequency, C (r+1)^{-zipf_exponent})
  // with C normalizing the expected attribute count per vertex to
  // attrs_per_vertex. The cap keeps head terms at realistic frequencies
  // (the paper's most frequent term covers ~5% of DBLP).
  std::vector<AttributeId> vocab(config.vocab_size);
  std::vector<double> word_probability(config.vocab_size);
  double zipf_mass = 0.0;
  for (std::size_t w = 0; w < config.vocab_size; ++w) {
    vocab[w] = builder.InternAttribute("w" + std::to_string(w));
    zipf_mass += std::pow(static_cast<double>(w) + 1.0,
                          -config.zipf_exponent);
  }
  const double normalizer =
      static_cast<double>(config.attrs_per_vertex) / zipf_mass;
  for (std::size_t w = 0; w < config.vocab_size; ++w) {
    word_probability[w] = std::min(
        config.filler_max_frequency,
        normalizer * std::pow(static_cast<double>(w) + 1.0,
                              -config.zipf_exponent));
  }
  for (VertexId v = 0; v < config.num_vertices; ++v) {
    for (std::size_t w = 0; w < config.vocab_size; ++w) {
      if (word_probability[w] < 1e-4) break;  // Negligible tail.
      if (rng.NextBool(word_probability[w])) {
        SCPM_RETURN_IF_ERROR(builder.AddVertexAttribute(v, vocab[w]));
      }
    }
  }
  // Communities adopt a few generic words: the source of the paper's
  // "popular term with small but nonzero eps" head rows.
  for (const PlantedGroup& community : communities) {
    for (std::size_t i = 0; i < config.community_common_words; ++i) {
      const std::size_t w = static_cast<std::size_t>(
          rng.NextZipf(config.vocab_size, config.zipf_exponent) - 1);
      for (VertexId v : community.members) {
        if (rng.NextBool(config.community_word_affinity)) {
          SCPM_RETURN_IF_ERROR(builder.AddVertexAttribute(v, vocab[w]));
        }
      }
    }
  }

  Result<AttributedGraph> graph = builder.Build();
  if (!graph.ok()) return graph.status();

  SyntheticDataset dataset;
  dataset.graph = std::move(graph).value();
  dataset.communities = std::move(communities);
  dataset.topics = std::move(topics);
  dataset.community_topic = std::move(community_topic);
  return dataset;
}

SyntheticConfig DblpLikeConfig(double scale) {
  // Sparse collaboration network: avg degree ~5, mid-size communities
  // (research groups), modest vocabulary of title terms.
  SyntheticConfig c;
  c.num_vertices = static_cast<VertexId>(3000 * scale);
  c.avg_degree = 5.0;
  c.powerlaw_exponent = 2.6;
  c.num_communities = static_cast<std::size_t>(60 * scale);
  c.community_min_size = 10;
  c.community_max_size = 18;
  c.community_density = 0.75;
  c.vocab_size = 500;
  c.zipf_exponent = 1.9;
  c.attrs_per_vertex = 5;
  c.num_topics = 15;
  c.topic_size = 2;
  c.topic_affinity = 0.9;
  c.topic_noise = 0.015;
  c.seed = 20120827;
  return c;
}

SyntheticConfig LastFmLikeConfig(double scale) {
  // Very sparse friendship graph (avg degree ~2.6 in the crawl), a large
  // attribute universe (artists), smaller communities.
  SyntheticConfig c;
  c.num_vertices = static_cast<VertexId>(4000 * scale);
  c.avg_degree = 2.6;
  c.powerlaw_exponent = 2.4;
  c.num_communities = static_cast<std::size_t>(80 * scale);
  c.community_min_size = 5;
  c.community_max_size = 12;
  c.community_density = 0.7;
  c.vocab_size = 1200;
  c.zipf_exponent = 1.6;
  c.attrs_per_vertex = 8;
  c.num_topics = 20;
  c.topic_size = 2;
  c.topic_affinity = 0.85;
  c.topic_noise = 0.02;
  c.seed = 19450121;
  return c;
}

SyntheticConfig CiteSeerLikeConfig(double scale) {
  // Citation graph: denser (avg degree ~5.3), strong topical clustering.
  SyntheticConfig c;
  c.num_vertices = static_cast<VertexId>(3500 * scale);
  c.avg_degree = 5.3;
  c.powerlaw_exponent = 2.7;
  c.num_communities = static_cast<std::size_t>(70 * scale);
  c.community_min_size = 5;
  c.community_max_size = 15;
  c.community_density = 0.8;
  c.vocab_size = 700;
  c.zipf_exponent = 1.8;
  c.attrs_per_vertex = 6;
  c.num_topics = 18;
  c.topic_size = 2;
  c.topic_affinity = 0.9;
  c.topic_noise = 0.02;
  c.seed = 20100301;
  return c;
}

SyntheticConfig SmallDblpConfig(double scale) {
  // The §4.2 performance dataset (SmallDBLP): same shape as DblpLike but
  // smaller, with min_size around 11 communities to exercise the sweeps.
  SyntheticConfig c = DblpLikeConfig(scale * 0.5);
  c.community_min_size = 11;
  c.community_max_size = 16;
  c.num_communities = static_cast<std::size_t>(40 * scale);
  c.seed = 32908;
  return c;
}

}  // namespace scpm
