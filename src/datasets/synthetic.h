// Synthetic attributed-graph analogues of the paper's three crawled
// datasets (DBLP, LastFm, CiteSeer).
//
// The paper mines the correlation between attribute sets and planted
// dense structure on a heavy-tailed background. The generator reproduces
// exactly that signal at laptop scale (see DESIGN.md "Substitutions"):
//
//  * background topology: Chung–Lu power-law random graph;
//  * communities: planted near-cliques of configurable size and density;
//  * topics: each community is assigned a topic (a small attribute set);
//    members carry its attributes with probability `topic_affinity`,
//    random non-members with probability `topic_noise` (so topic support
//    exceeds the community and eps < 1);
//  * background vocabulary: every vertex carries Zipf-popular filler
//    attributes ("w<i>"), which yields the paper's high-support /
//    low-correlation generic terms.

#ifndef SCPM_DATASETS_SYNTHETIC_H_
#define SCPM_DATASETS_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "graph/attributed_graph.h"
#include "graph/generators.h"
#include "util/result.h"

namespace scpm {

/// All knobs of the planted-topic attributed-graph model.
struct SyntheticConfig {
  VertexId num_vertices = 2000;
  double powerlaw_exponent = 2.5;  // degree-distribution exponent
  double avg_degree = 5.0;         // background average degree

  std::size_t num_communities = 40;
  std::uint32_t community_min_size = 8;
  std::uint32_t community_max_size = 20;
  double community_density = 0.8;  // intra-community edge probability

  std::size_t vocab_size = 400;      // filler attribute vocabulary
  double zipf_exponent = 1.8;        // filler popularity skew
  std::uint32_t attrs_per_vertex = 4;  // expected filler attrs per vertex
  /// Cap on any single filler attribute's frequency (fraction of
  /// vertices). The paper's most frequent DBLP term covers ~5% of
  /// vertices; without a cap a Zipf head term would cover nearly all
  /// vertices and every induced subgraph would be the whole graph.
  double filler_max_frequency = 0.20;

  std::size_t num_topics = 12;     // distinct topics shared by communities
  std::size_t topic_size = 2;      // attributes per topic
  double topic_affinity = 0.9;     // P(member carries each topic attr)
  double topic_noise = 0.01;       // P(random vertex carries a topic attr)

  /// Each community also adopts this many *generic* filler words (drawn
  /// Zipf-popular), which members carry with community_word_affinity.
  /// This reproduces the paper's Table 2/3/4 head rows: very frequent
  /// generic terms with small but nonzero structural correlation.
  std::size_t community_common_words = 2;
  double community_word_affinity = 0.8;

  std::uint64_t seed = 42;
};

/// A generated dataset plus its ground truth.
struct SyntheticDataset {
  AttributedGraph graph;
  std::vector<PlantedGroup> communities;     // planted dense groups
  std::vector<AttributeSet> topics;          // topic attribute sets
  std::vector<std::size_t> community_topic;  // community -> topic index
};

/// Generates a dataset from the model above. Deterministic per config.
Result<SyntheticDataset> GenerateSynthetic(const SyntheticConfig& config);

/// Presets shaped after the paper's datasets; `scale` multiplies the
/// vertex/community counts (1.0 = the defaults documented in DESIGN.md).
SyntheticConfig DblpLikeConfig(double scale);     // sparse collaboration
SyntheticConfig LastFmLikeConfig(double scale);   // sparse social, huge vocab
SyntheticConfig CiteSeerLikeConfig(double scale); // denser citation graph
SyntheticConfig SmallDblpConfig(double scale);    // §4.2 performance dataset

}  // namespace scpm

#endif  // SCPM_DATASETS_SYNTHETIC_H_
