// Wire protocol between the distributed-mining coordinator and its
// forked workers (see docs/DIST.md).
//
// Transport: one AF_UNIX stream socketpair per worker, carrying
// length-prefixed *frames*. A frame is a single header line
//
//   scpm-dist <type> <batch-id> <payload-bytes> <checksum>\n
//
// followed by exactly <payload-bytes> of payload. The checksum is
// FNV-1a-64 of the payload; a mismatch on receive is how corrupt
// results are detected (the frame is still consumed whole, so the
// stream stays framed — the *lease* fails, not the protocol).
//
// Frame types:
//   batch      coordinator -> worker: a leased batch of frontier
//              entries (payload: EncodeBatch).
//   exit       coordinator -> worker: finish up, empty payload.
//   heartbeat  worker -> coordinator: lease keep-alive between engine
//              waves, empty payload.
//   result     worker -> coordinator: a finished lease (payload:
//              EncodeResult).
//   fail       worker -> coordinator: the engine rejected the batch;
//              payload is the Status text.
//
// Payload codecs are plain whitespace-separated text for the framing
// fields — doubles travel as uint64 bit patterns so results merge
// byte-identically — while the embedded EngineCheckpoint (the bulk of
// every batch and of any unfinished result) uses whichever checkpoint
// codec the coordinator selected, binary by default (see
// core/ckpt_codec.h). Receivers auto-detect, and a worker mirrors the
// format of the batch it received when encoding the remainder, so the
// format negotiates per lease with no extra handshake.

#ifndef SCPM_DIST_PROTOCOL_H_
#define SCPM_DIST_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scpm.h"
#include "core/sink.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {
namespace dist {

enum class FrameType { kBatch, kExit, kHeartbeat, kResult, kFail };

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::uint64_t batch_id = 0;
  std::string payload;
};

/// FNV-1a-64 over `data` — the per-batch checksum.
std::uint64_t Checksum(const std::string& data);

/// Writes one frame. With `corrupt_payload` set, one payload byte is
/// flipped AFTER the checksum was computed (the result-corruption
/// fault: the receiver must detect it). Returns kIoError when the peer
/// is gone.
Status WriteFrame(int fd, const Frame& frame, bool corrupt_payload = false);

/// Blocking read of one whole frame. kIoError on EOF / socket error /
/// malformed header (the connection is unusable afterwards);
/// a *checksum mismatch* instead returns OK with `frame->checksum_ok`
/// false — the stream itself is still framed and usable.
struct ReadFrameResult {
  Frame frame;
  bool checksum_ok = true;
};
Result<ReadFrameResult> ReadFrame(int fd);

/// What one lease asks a worker to do: resume `checkpoint` with this
/// evaluation budget and wave size, heartbeating every wave; the
/// lease duration rides along so fault-injected heartbeat drops can
/// oversleep it deliberately.
struct BatchPayload {
  std::uint64_t max_evaluations = 0;
  std::size_t wave = 0;
  std::uint64_t lease_ms = 0;
  /// Encoding of `checkpoint` in the encoded payload. EncodeBatch
  /// writes it; DecodeBatch reports the detected format so the worker
  /// can mirror it in its result.
  CheckpointFormat ckpt_format = CheckpointFormat::kBinary;
  EngineCheckpoint checkpoint;
};

std::string EncodeBatch(const BatchPayload& batch);
Result<BatchPayload> DecodeBatch(const std::string& text);

/// What one finished lease returns: the segment's work counters, every
/// finalized emission (keyed, so the coordinator merges in canonical
/// order), and the unfinished remainder of the batch's frontier (empty
/// checkpoint when the budget did not cut).
struct ResultPayload {
  bool exhausted = true;
  ScpmCounters counters;
  struct Emission {
    SinkKey key;
    AttributeSetOutput output;
  };
  std::vector<Emission> emissions;
  /// Encoding of `remainder`; workers set it to the format of the
  /// batch they are answering.
  CheckpointFormat ckpt_format = CheckpointFormat::kBinary;
  EngineCheckpoint remainder;  // valid only when !exhausted
};

std::string EncodeResult(const ResultPayload& result);
Result<ResultPayload> DecodeResult(const std::string& text);

}  // namespace dist
}  // namespace scpm

#endif  // SCPM_DIST_PROTOCOL_H_
