// The forked worker side of distributed mining.
//
// A worker is a fork of the coordinator taken before any mining ran:
// it inherits the graph, the options, and the null model read-only
// (copy-on-write, nothing is serialized), talks to the coordinator
// over one inherited socketpair fd, and mines strictly single-threaded
// — fork-safety under sanitizers, and the engine's determinism
// contract makes single-threaded counters equal any thread count's.

#ifndef SCPM_DIST_WORKER_H_
#define SCPM_DIST_WORKER_H_

#include <cstddef>

#include "core/scpm.h"
#include "graph/attributed_graph.h"

namespace scpm {

class ExpectationModel;

namespace dist {

/// Runs the worker loop on `fd` until an exit frame, peer EOF, or a
/// fatal send failure. Returns the worker's exit code; the caller
/// (the forked child) must _exit() with it — never exit(), the child
/// shares the parent's stdio and atexit state.
int WorkerMain(int fd, std::size_t worker_index, const AttributedGraph& graph,
               const ScpmOptions& options, ExpectationModel* null_model);

}  // namespace dist
}  // namespace scpm

#endif  // SCPM_DIST_WORKER_H_
