// The coordinator side of distributed mining: roots phase, lease
// bookkeeping, failure handling, deterministic merge, durability.
// Protocol and failure matrix: docs/DIST.md.

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/statistics.h"
#include "dist/dist.h"
#include "dist/pool.h"
#include "dist/protocol.h"
#include "dist/worker.h"
#include "nullmodel/expectation.h"
#include "server/journal.h"

namespace scpm {
namespace dist {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t MsUntil(Clock::time_point then, Clock::time_point now) {
  if (then <= now) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(then - now)
          .count()) +
         1;
}

/// One unit of leased work. `attempts` counts failed leases so far; the
/// id is stable across retries so events and logs correlate.
struct Batch {
  std::uint64_t id = 0;
  std::size_t entries = 0;
  EngineCheckpoint checkpoint;
  std::uint32_t attempts = 0;
  Clock::time_point not_before{};
};

struct WorkerSlot {
  pid_t pid = -1;
  int fd = -1;
  bool alive = false;
  bool busy = false;
  Batch lease;
  Clock::time_point deadline{};
};

class Coordinator {
 public:
  Coordinator(const AttributedGraph& graph, const ScpmOptions& options,
              const DistOptions& dist, PatternSink* sink,
              ExpectationModel* null_model, DistStats* stats,
              CancelToken* cancel)
      : graph_(graph),
        options_(options),
        dist_(dist),
        sink_(sink),
        null_model_(null_model),
        stats_(stats != nullptr ? stats : &local_stats_),
        cancel_(cancel) {
    stats_->workers.resize(dist_.workers);
  }

  /// Durability hooks: `resume` seeds the pool from a recovered
  /// snapshot (roots phase skipped), `seed` restores the cumulative
  /// run state merged before the crash, `snapshot` is called with the
  /// un-merged frontier at most every checkpoint_interval_ms.
  void SeedRecovered(const EngineCheckpoint& resume, const MiningRun& seed) {
    resume_ = &resume;
    cum_ = seed;
  }
  void set_snapshot(
      std::function<void(const EngineCheckpoint&, const MiningRun&)> fn) {
    snapshot_ = std::move(fn);
  }

  Result<MiningRun> Run() {
    // Fork before any mining: workers must inherit a process that has
    // never spawned a thread (the roots phase below may build a pool).
    SCPM_RETURN_IF_ERROR(SpawnWorkers());
    Status status = RunJob();
    ShutdownWorkers();
    if (!status.ok()) return status;
    cum_.exhausted = true;
    cum_.frontier_entries = 0;
    cum_.checkpoint = EngineCheckpoint();
    return cum_;
  }

 private:
  Status RunJob() {
    if (resume_ != nullptr) {
      pool_.BindTo(*resume_);
      pool_.Ingest(*resume_);
    } else {
      bool exhausted = false;
      SCPM_RETURN_IF_ERROR(RunRoots(&exhausted));
      if (exhausted) return Status::OK();
    }
    last_snapshot_ = Clock::now();
    return DriveLeases();
  }

  /// Mines the roots phase inline with an evaluation budget equal to
  /// the frequent-singleton count: the engine forms the root classes
  /// the moment the last singleton evaluates and only then notices the
  /// budget, so the cut lands exactly at the roots/tree boundary with
  /// every expansion entry pending — and the roots counters equal a
  /// single-process run's roots share exactly.
  Status RunRoots(bool* exhausted) {
    std::uint64_t frequent = 0;
    for (AttributeId a = 0; a < graph_.NumAttributes(); ++a) {
      if (graph_.VerticesWith(a).size() >= options_.min_support) ++frequent;
    }
    ScpmEngine engine(options_, null_model_);
    if (frequent > 0) {
      EngineBudget budget;
      budget.max_evaluations = frequent;
      engine.set_budget(budget);
    }
    if (cancel_ != nullptr) engine.set_cancel_token(cancel_);
    Result<MiningRun> run = engine.Run(graph_, sink_);
    if (!run.ok()) return run.status();
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Cancelled("distributed job cancelled");
    }
    cum_.counters.MergeFrom(run->counters);
    cum_.emitted += run->emitted;
    cum_.patterns_emitted += run->patterns_emitted;
    if (run->exhausted) {
      *exhausted = true;  // the lattice ended inside the roots budget
      return Status::OK();
    }
    pool_.BindTo(run->checkpoint);
    pool_.Ingest(run->checkpoint);
    *exhausted = false;
    return Status::OK();
  }

  Status SpawnWorkers() {
    workers_.resize(dist_.workers);
    for (std::size_t i = 0; i < dist_.workers; ++i) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        return Status::IoError("socketpair failed");
      }
      const pid_t pid = ::fork();
      if (pid < 0) {
        ::close(sv[0]);
        ::close(sv[1]);
        return Status::IoError("fork failed");
      }
      if (pid == 0) {
        // Worker child: keep only its own socket end, die with the
        // coordinator, and never run parent atexit handlers.
        ::close(sv[0]);
        for (std::size_t j = 0; j < i; ++j) ::close(workers_[j].fd);
#if defined(__linux__)
        ::prctl(PR_SET_PDEATHSIG, SIGKILL);
        if (::getppid() == 1) ::_exit(0);  // parent died before prctl
#endif
        ::_exit(WorkerMain(sv[1], i, graph_, options_, null_model_));
      }
      ::close(sv[1]);
      workers_[i].pid = pid;
      workers_[i].fd = sv[0];
      workers_[i].alive = true;
      if (dist_.on_worker_spawn) dist_.on_worker_spawn(i, pid);
    }
    return Status::OK();
  }

  void KillWorker(WorkerSlot* slot) {
    if (!slot->alive) return;
    ::close(slot->fd);
    slot->fd = -1;
    ::kill(slot->pid, SIGKILL);
    int wstatus = 0;
    ::waitpid(slot->pid, &wstatus, 0);
    slot->alive = false;
    slot->busy = false;
  }

  void ShutdownWorkers() {
    for (WorkerSlot& slot : workers_) {
      if (!slot.alive) continue;
      Frame exit;
      exit.type = FrameType::kExit;
      (void)WriteFrame(slot.fd, exit);
      ::close(slot.fd);
      slot.fd = -1;
      int wstatus = 0;
      ::waitpid(slot.pid, &wstatus, 0);
      slot.alive = false;
    }
  }

  bool AnyBusy() const {
    for (const WorkerSlot& slot : workers_) {
      if (slot.busy) return true;
    }
    return false;
  }

  bool AnyLive() const {
    for (const WorkerSlot& slot : workers_) {
      if (slot.alive) return true;
    }
    return false;
  }

  std::size_t WorkerIndex(const WorkerSlot* slot) const {
    return static_cast<std::size_t>(slot - workers_.data());
  }

  /// Every lease failure funnels here: typed event, stats, backoff,
  /// re-queue. The worker is additionally killed unless `keep_alive`
  /// (an explicit fail frame leaves a healthy worker; everything else
  /// means the worker or its stream can no longer be trusted).
  void LeaseFailed(WorkerSlot* slot, Status why, bool keep_alive) {
    Batch batch = std::move(slot->lease);
    slot->busy = false;
    ++batch.attempts;
    const std::uint64_t backoff =
        dist_.backoff_ms << std::min<std::uint32_t>(batch.attempts - 1, 20);
    batch.not_before = Clock::now() + std::chrono::milliseconds(backoff);
    DistWorkerStats& ws = stats_->workers[WorkerIndex(slot)];
    ++ws.reassignments;
    ws.backoff_ms += backoff;
    ++stats_->retries;
    stats_->backoff_ms_total += backoff;
    stats_->events.push_back(DistEvent{
        why.code(), "batch " + std::to_string(batch.id) + " attempt " +
                        std::to_string(batch.attempts) + ": " + why.message()});
    pending_.push_back(std::move(batch));
    if (!keep_alive) KillWorker(slot);
  }

  /// Merges one finished lease. Validation happens before any side
  /// effect so a bad payload fails the lease atomically.
  Status MergeResult(WorkerSlot* slot, const ResultPayload& result) {
    if (!result.exhausted) {
      const EngineCheckpoint& r = result.remainder;
      if (!r.valid || r.in_roots_phase ||
          r.num_vertices != graph_.NumVertices() ||
          r.num_edges != graph_.graph().NumEdges() ||
          r.num_attributes != graph_.NumAttributes()) {
        return Status::IoError("lease remainder does not bind to this job");
      }
    }
    // Deterministic merge order: emissions sort by their canonical
    // sequential key within the lease (sinks that care about global
    // order sort again at harvest; jsonl byte-identity is defined on
    // sorted lines, as with any multi-threaded run).
    std::vector<const ResultPayload::Emission*> order;
    order.reserve(result.emissions.size());
    for (const ResultPayload::Emission& e : result.emissions) {
      order.push_back(&e);
    }
    std::sort(order.begin(), order.end(),
              [](const ResultPayload::Emission* a,
                 const ResultPayload::Emission* b) { return a->key < b->key; });
    for (const ResultPayload::Emission* e : order) {
      SCPM_RETURN_IF_ERROR(sink_->Emit(e->key, e->output));
      ++cum_.emitted;
      cum_.patterns_emitted += e->output.patterns.size();
    }
    cum_.counters.MergeFrom(result.counters);
    if (!result.exhausted) pool_.Ingest(result.remainder);
    ++stats_->batches;
    ++stats_->workers[WorkerIndex(slot)].batches;
    return Status::OK();
  }

  /// Runs one batch on the coordinator itself — the always-terminates
  /// escape hatch once retries are exhausted or no worker is left.
  Status RunInline(Batch batch) {
    ++stats_->inline_fallbacks;
    ScpmEngine engine(options_, null_model_);
    EngineBudget budget;
    budget.max_evaluations = dist_.batch_evals;
    engine.set_budget(budget);
    engine.set_uncounted_seeding(true);
    if (cancel_ != nullptr) engine.set_cancel_token(cancel_);
    Result<MiningRun> run = engine.Resume(graph_, batch.checkpoint, sink_);
    if (!run.ok()) return run.status();
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::Cancelled("distributed job cancelled");
    }
    cum_.counters.MergeFrom(run->counters);
    cum_.emitted += run->emitted;
    cum_.patterns_emitted += run->patterns_emitted;
    if (!run->exhausted) pool_.Ingest(run->checkpoint);
    return Status::OK();
  }

  Status AssignWork() {
    for (WorkerSlot& slot : workers_) {
      if (!slot.alive || slot.busy) continue;
      const Clock::time_point now = Clock::now();
      Batch batch;
      bool have = false;
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->attempts <= dist_.max_retries && it->not_before <= now) {
          batch = std::move(*it);
          pending_.erase(it);
          have = true;
          break;
        }
      }
      if (!have && !pool_.empty()) {
        batch.id = next_batch_id_++;
        batch.checkpoint = pool_.MakeBatch(dist_.batch_entries);
        batch.entries = batch.checkpoint.expansions.size();
        have = true;
      }
      if (!have) return Status::OK();
      BatchPayload payload;
      payload.max_evaluations = dist_.batch_evals;
      payload.wave = dist_.worker_wave;
      payload.lease_ms = dist_.lease_ms;
      payload.ckpt_format = dist_.ckpt_format;
      payload.checkpoint = batch.checkpoint;
      Frame frame;
      frame.type = FrameType::kBatch;
      frame.batch_id = batch.id;
      frame.payload = EncodeBatch(payload);
      if (!WriteFrame(slot.fd, frame).ok()) {
        // The worker died between leases; its loss is an event only if
        // it held work, which it did not — put the batch back untouched
        // and retire the worker.
        pending_.push_front(std::move(batch));
        KillWorker(&slot);
        continue;
      }
      if (batch.attempts > 0) ++stats_->workers[WorkerIndex(&slot)].retries;
      slot.busy = true;
      slot.lease = std::move(batch);
      slot.deadline = Clock::now() + std::chrono::milliseconds(dist_.lease_ms);
    }
    return Status::OK();
  }

  /// Inline-mines every batch that exhausted its retries, and — with no
  /// worker left alive — everything else too.
  Status DrainFallbacks() {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->attempts > dist_.max_retries) {
        Batch batch = std::move(*it);
        it = pending_.erase(it);
        SCPM_RETURN_IF_ERROR(RunInline(std::move(batch)));
      } else {
        ++it;
      }
    }
    if (!AnyLive()) {
      while (!pending_.empty()) {
        Batch batch = std::move(pending_.front());
        pending_.pop_front();
        SCPM_RETURN_IF_ERROR(RunInline(std::move(batch)));
      }
      while (!pool_.empty()) {
        Batch batch;
        batch.id = next_batch_id_++;
        batch.checkpoint = pool_.MakeBatch(dist_.batch_entries);
        SCPM_RETURN_IF_ERROR(RunInline(std::move(batch)));
      }
    }
    return Status::OK();
  }

  /// Reads every complete frame a worker has buffered. Draining happens
  /// before any deadline check, so heartbeats that queued up while the
  /// coordinator was busy (an inline fallback, a snapshot) refresh the
  /// lease before expiry is judged.
  Status DrainWorker(WorkerSlot* slot) {
    while (slot->alive) {
      Result<ReadFrameResult> read = ReadFrame(slot->fd);
      if (!read.ok()) {
        ++stats_->worker_exits;
        if (slot->busy) {
          LeaseFailed(slot,
                      Status::IoError("worker " +
                                      std::to_string(WorkerIndex(slot)) +
                                      " exited mid-lease (" +
                                      read.status().message() + ")"),
                      /*keep_alive=*/false);
        } else {
          KillWorker(slot);
        }
        return Status::OK();
      }
      slot->deadline = Clock::now() + std::chrono::milliseconds(dist_.lease_ms);
      if (!read->checksum_ok) {
        ++stats_->corrupt_results;
        LeaseFailed(slot, Status::IoError("corrupt result payload (checksum)"),
                    /*keep_alive=*/false);
        return Status::OK();
      }
      Frame& frame = read->frame;
      switch (frame.type) {
        case FrameType::kHeartbeat:
          break;
        case FrameType::kFail:
          if (slot->busy) {
            ++stats_->worker_failures;
            LeaseFailed(slot, Status::Internal(frame.payload),
                        /*keep_alive=*/true);
          }
          break;
        case FrameType::kResult: {
          if (!slot->busy || frame.batch_id != slot->lease.id) {
            LeaseFailed(slot, Status::IoError("result for a foreign lease"),
                        /*keep_alive=*/false);
            return Status::OK();
          }
          Result<ResultPayload> decoded = DecodeResult(frame.payload);
          Status merged = decoded.ok()
                              ? MergeResult(slot, *decoded)
                              : decoded.status();
          if (!merged.ok()) {
            if (merged.code() == StatusCode::kIoError) {
              ++stats_->corrupt_results;
              LeaseFailed(slot, merged, /*keep_alive=*/false);
            } else {
              return merged;  // sink error: the job itself fails
            }
            return Status::OK();
          }
          slot->busy = false;
          break;
        }
        default:
          LeaseFailed(slot, Status::IoError("unexpected frame from worker"),
                      /*keep_alive=*/false);
          return Status::OK();
      }
      // More buffered input? One zero-timeout poll per extra frame.
      struct pollfd probe{slot->fd, POLLIN, 0};
      if (::poll(&probe, 1, 0) <= 0 || (probe.revents & POLLIN) == 0) break;
    }
    return Status::OK();
  }

  void ExpireLeases() {
    const Clock::time_point now = Clock::now();
    for (WorkerSlot& slot : workers_) {
      if (!slot.busy || slot.deadline > now) continue;
      ++stats_->heartbeat_timeouts;
      LeaseFailed(&slot,
                  Status::IoError("lease deadline expired (worker " +
                                  std::to_string(WorkerIndex(&slot)) +
                                  " heartbeat missed)"),
                  /*keep_alive=*/false);
    }
  }

  void MaybeSnapshot() {
    if (!snapshot_) return;
    const Clock::time_point now = Clock::now();
    if (now - last_snapshot_ <
        std::chrono::milliseconds(dist_.checkpoint_interval_ms)) {
      return;
    }
    // The un-merged frontier: pool + every outstanding lease + every
    // batch waiting on backoff. Taken between merges, so the snapshot,
    // the cumulative counters, and the sink's durable prefix agree.
    EngineCheckpoint snap = pool_.SnapshotRemaining();
    for (const WorkerSlot& slot : workers_) {
      if (slot.busy) FrontierPool::Append(&snap, slot.lease.checkpoint);
    }
    for (const Batch& batch : pending_) {
      FrontierPool::Append(&snap, batch.checkpoint);
    }
    snapshot_(snap, cum_);
    last_snapshot_ = Clock::now();
  }

  Status DriveLeases() {
    while (true) {
      if (cancel_ != nullptr && cancel_->cancelled()) {
        return Status::Cancelled("distributed job cancelled");
      }
      SCPM_RETURN_IF_ERROR(DrainFallbacks());
      SCPM_RETURN_IF_ERROR(AssignWork());
      if (pending_.empty() && pool_.empty() && !AnyBusy()) break;
      MaybeSnapshot();

      std::vector<struct pollfd> fds;
      std::vector<WorkerSlot*> polled;
      const Clock::time_point now = Clock::now();
      std::uint64_t timeout = 1000;
      for (WorkerSlot& slot : workers_) {
        if (!slot.busy) continue;
        fds.push_back({slot.fd, POLLIN, 0});
        polled.push_back(&slot);
        timeout = std::min(timeout, MsUntil(slot.deadline, now));
      }
      for (const Batch& batch : pending_) {
        timeout = std::min(timeout, MsUntil(batch.not_before, now));
      }
      if (snapshot_) {
        timeout = std::min(
            timeout, MsUntil(last_snapshot_ + std::chrono::milliseconds(
                                                  dist_.checkpoint_interval_ms),
                             now));
      }
      if (!fds.empty()) {
        const int ready =
            ::poll(fds.data(), fds.size(), static_cast<int>(timeout));
        if (ready > 0) {
          for (std::size_t i = 0; i < fds.size(); ++i) {
            if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
              SCPM_RETURN_IF_ERROR(DrainWorker(polled[i]));
            }
          }
        }
      } else if (timeout > 0) {
        ::poll(nullptr, 0, static_cast<int>(std::min<std::uint64_t>(
                               timeout, 50)));
      }
      ExpireLeases();
    }
    return Status::OK();
  }

  const AttributedGraph& graph_;
  const ScpmOptions& options_;
  const DistOptions& dist_;
  PatternSink* sink_;
  ExpectationModel* null_model_;
  DistStats* stats_;
  DistStats local_stats_;
  CancelToken* cancel_;

  const EngineCheckpoint* resume_ = nullptr;
  std::function<void(const EngineCheckpoint&, const MiningRun&)> snapshot_;
  Clock::time_point last_snapshot_{};

  FrontierPool pool_;
  std::deque<Batch> pending_;
  std::vector<WorkerSlot> workers_;
  std::uint64_t next_batch_id_ = 1;
  MiningRun cum_;
};

Status ValidateCommon(const ScpmOptions& options, const DistOptions& dist) {
  SCPM_RETURN_IF_ERROR(options.Validate());
  return dist.Validate();
}

/// Truncates `path` after its first `lines` lines (the recovery
/// truncation idiom shared with the query server).
bool TruncateToLines(const std::string& path, std::uint64_t lines) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return lines == 0;
  std::uint64_t seen = 0;
  std::uint64_t offset = 0;
  char c;
  while (seen < lines && in.get(c)) {
    ++offset;
    if (c == '\n') ++seen;
  }
  in.close();
  if (seen < lines) return false;
  return ::truncate(path.c_str(), static_cast<off_t>(offset)) == 0;
}

std::string EncodeTrailer(const ScpmCounters& c) {
  std::ostringstream os;
  os << "scpm-dist-trailer 1";
  WriteScpmCountersFields(os, c) << '\n';
  return os.str();
}

bool DecodeTrailer(const std::string& text, ScpmCounters* c) {
  std::istringstream in(text);
  std::string magic;
  std::uint64_t version = 0;
  return static_cast<bool>(in >> magic >> version) &&
         magic == "scpm-dist-trailer" && version == 1 &&
         ReadScpmCountersFields(in, c);
}

}  // namespace

Status DistOptions::Validate() const {
  if (batch_entries == 0) {
    return Status::InvalidArgument("dist batch_entries must be >= 1");
  }
  if (batch_evals == 0) {
    return Status::InvalidArgument(
        "dist batch_evals must be >= 1 (it bounds lease runtime)");
  }
  if (worker_wave == 0) {
    return Status::InvalidArgument("dist worker_wave must be >= 1");
  }
  if (lease_ms == 0) {
    return Status::InvalidArgument("dist lease_ms must be >= 1");
  }
  if (backoff_ms == 0) {
    return Status::InvalidArgument("dist backoff_ms must be >= 1");
  }
  return Status::OK();
}

Result<MiningRun> MineToSink(const AttributedGraph& graph,
                             const ScpmOptions& options, PatternSink* sink,
                             const DistOptions& dist_options,
                             ExpectationModel* null_model, DistStats* stats,
                             CancelToken* cancel) {
  SCPM_RETURN_IF_ERROR(ValidateCommon(options, dist_options));
  if (!dist_options.state_dir.empty()) {
    return Status::InvalidArgument(
        "MineToSink does not manage durable state; use dist::Mine for "
        "state_dir support");
  }
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  std::unique_ptr<MaxExpectationModel> owned_model;
  if (null_model == nullptr && options.min_delta > 0.0) {
    owned_model = std::make_unique<MaxExpectationModel>(graph.graph(),
                                                        options.quasi_clique);
    null_model = owned_model.get();
  }
  Coordinator coordinator(graph, options, dist_options, sink, null_model,
                          stats, cancel);
  return coordinator.Run();
}

Result<MiningResponse> Mine(const AttributedGraph& graph,
                            const MiningRequest& request,
                            const DistOptions& dist_options,
                            ExpectationModel* null_model, DistStats* stats,
                            CancelToken* cancel) {
  SCPM_RETURN_IF_ERROR(request.Validate());
  if (!request.budget.unlimited()) {
    return Status::InvalidArgument(
        "distributed mining runs jobs to completion; budgets "
        "(max_evals/max_patterns/deadline) are not supported");
  }
  SCPM_RETURN_IF_ERROR(ValidateCommon(request.options, dist_options));

  std::unique_ptr<MaxExpectationModel> owned_model;
  if (null_model == nullptr && request.options.min_delta > 0.0) {
    owned_model = std::make_unique<MaxExpectationModel>(
        graph.graph(), request.options.quasi_clique);
    null_model = owned_model.get();
  }

  DistStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // ---- durable job state (optional) ----------------------------------
  std::unique_ptr<StateStore> store;
  EngineCheckpoint recovered;
  MiningRun seed;
  bool resume = false;
  std::uint64_t base_jsonl_lines = 0;
  std::vector<std::string> warnings;
  MiningRequest effective = request;
  const std::uint64_t fingerprint = ScpmEngine::OptionsFingerprint(
      request.options, null_model != nullptr);
  if (!dist_options.state_dir.empty()) {
    Result<std::unique_ptr<StateStore>> opened =
        StateStore::Open(dist_options.state_dir);
    if (!opened.ok()) return opened.status();
    store = std::move(opened).value();
    store->set_checkpoint_format(dist_options.ckpt_format);
    const RecoveryScan scan = store->Scan();
    std::uint64_t epoch = scan.epoch + 1;
    const bool shape_matches =
        scan.epoch != 0 &&
        scan.vertices == static_cast<std::uint64_t>(graph.NumVertices()) &&
        scan.edges == graph.graph().NumEdges() &&
        scan.attributes == graph.NumAttributes();
    if (shape_matches) {
      for (const RecoveredQuery& q : scan.queries) {
        if (q.id != 1 || !q.has_checkpoint) continue;
        const std::string stored_fp = q.query.StringOr("fingerprint", "");
        const std::string stored_out = q.query.StringOr("out", "");
        if (stored_fp != std::to_string(fingerprint) ||
            q.query.StringOr("sink", "") != "jsonl" ||
            request.sink != MiningRequest::Sink::kJsonl ||
            request.jsonl_path.empty() || stored_out != request.jsonl_path) {
          warnings.push_back(
              "dist job snapshot does not match this request "
              "(options/sink/output changed); restarting from scratch");
          continue;
        }
        if (q.checkpoint.options_fingerprint != fingerprint ||
            q.checkpoint.in_roots_phase) {
          warnings.push_back(
              "dist job snapshot does not bind to these options; "
              "restarting from scratch");
          continue;
        }
        ScpmCounters cum;
        if (!DecodeTrailer(q.trailer, &cum)) {
          warnings.push_back(
              "dist job snapshot has no readable counter trailer; "
              "restarting from scratch");
          continue;
        }
        if (!TruncateToLines(request.jsonl_path, q.jsonl_lines)) {
          warnings.push_back("dist job output " + request.jsonl_path +
                             " is shorter than its snapshot recorded; "
                             "restarting from scratch");
          continue;
        }
        recovered = q.checkpoint;
        seed.counters = cum;
        seed.emitted = q.emitted;
        seed.patterns_emitted = q.patterns_emitted;
        base_jsonl_lines = q.jsonl_lines;
        effective.jsonl_append = true;
        resume = true;
        epoch = scan.epoch;  // checkpoints stay valid: keep the epoch
        stats->recovered = true;
        break;
      }
    }
    (void)store->AppendServer(epoch,
                              static_cast<std::uint64_t>(graph.NumVertices()),
                              graph.graph().NumEdges(), graph.NumAttributes());
    if (!resume) {
      JsonValue admit = JsonValue::MakeObject();
      // The fingerprint travels as a string: JSON numbers are doubles
      // and cannot hold a full uint64.
      admit.Set("fingerprint", JsonValue(std::to_string(fingerprint)));
      admit.Set("sink",
                JsonValue(request.sink == MiningRequest::Sink::kJsonl
                              ? "jsonl"
                              : request.sink == MiningRequest::Sink::kTopK
                                    ? "topk"
                                    : "accumulate"));
      admit.Set("out", JsonValue(request.jsonl_path));
      (void)store->AppendAdmit(1, epoch, admit);
    }
  }

  Result<std::unique_ptr<RequestSinks>> sinks =
      RequestSinks::Create(effective, &graph);
  if (!sinks.ok()) return sinks.status();

  Coordinator coordinator(graph, effective.options, dist_options,
                          (*sinks)->sink(), null_model, stats, cancel);
  if (resume) coordinator.SeedRecovered(recovered, seed);
  if (store != nullptr) {
    RequestSinks* raw_sinks = sinks->get();
    StateStore* raw_store = store.get();
    coordinator.set_snapshot([raw_sinks, raw_store, base_jsonl_lines](
                                 const EngineCheckpoint& cp,
                                 const MiningRun& cum) {
      const std::uint64_t lines = base_jsonl_lines + raw_sinks->jsonl_lines();
      (void)raw_store->WriteCheckpoint(1, cp, cum.emitted,
                                       cum.patterns_emitted, lines,
                                       EncodeTrailer(cum.counters));
      (void)raw_store->AppendProgress(1, cum.emitted, lines);
    });
  }

  Result<MiningRun> run = coordinator.Run();
  if (!run.ok()) return run.status();

  if (store != nullptr) {
    (void)store->AppendTerminal(1, "done");
    store->RemoveCheckpoint(1);
  }

  MiningResponse response;
  response.run = std::move(run).value();
  (*sinks)->Harvest(effective, &response);
  response.jsonl_lines += base_jsonl_lines;
  return response;
}

}  // namespace dist
}  // namespace scpm
