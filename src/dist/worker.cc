#include "dist/worker.h"

#include <signal.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "core/engine.h"
#include "core/sink.h"
#include "dist/protocol.h"
#include "util/fault.h"

namespace scpm {
namespace dist {

namespace {

/// Consults both the bare point and its per-worker variant
/// ("worker-kill" and "worker-kill:2"): a bare spec hits every worker,
/// the suffixed form aims at one.
bool WorkerFault(const char* point, std::size_t worker_index) {
  FaultInjector& fi = FaultInjector::Instance();
  const std::string scoped = std::string(point) + ':' +
                             std::to_string(worker_index);
  // Evaluate both — each name keeps its own hit counter, and a test
  // scripting "heartbeat-drop:1=2" expects worker 1's third heartbeat
  // to count scoped hits 0,1,2 regardless of the bare point's state.
  const bool bare = fi.ShouldFail(point);
  const bool aimed = fi.ShouldFail(scoped.c_str());
  return bare || aimed;
}

}  // namespace

int WorkerMain(int fd, std::size_t worker_index, const AttributedGraph& graph,
               const ScpmOptions& base_options, ExpectationModel* null_model) {
  // Mining is strictly sequential in a worker: no ThreadPool is ever
  // created, which keeps fork + sanitizers happy and (by the engine's
  // determinism contract) changes no counter.
  ScpmOptions options = base_options;
  options.num_threads = 1;

  for (;;) {
    Result<ReadFrameResult> read = ReadFrame(fd);
    if (!read.ok()) return 0;  // coordinator gone or revoked us
    if (!read->checksum_ok) continue;  // corrupt command: wait for resend
    Frame& frame = read->frame;
    if (frame.type == FrameType::kExit) return 0;
    if (frame.type != FrameType::kBatch) continue;

    if (WorkerFault(fault::kWorkerKill, worker_index)) {
      // The injected crash: die the way a SIGKILL'd worker dies — no
      // goodbye frame, no flush.
      raise(SIGKILL);
    }

    Result<BatchPayload> batch = DecodeBatch(frame.payload);
    if (!batch.ok()) {
      Frame fail;
      fail.type = FrameType::kFail;
      fail.batch_id = frame.batch_id;
      fail.payload = batch.status().ToString();
      if (!WriteFrame(fd, fail).ok()) return 0;
      continue;
    }

    ResultPayload result;
    CallbackSink sink([&result](const SinkKey& key,
                                const AttributeSetOutput& output) {
      result.emissions.push_back(ResultPayload::Emission{key, output});
      return Status::OK();
    });

    ScpmEngine engine(options, null_model);
    EngineBudget budget;
    budget.max_evaluations = batch->max_evaluations;
    engine.set_budget(budget);
    engine.set_frontier_wave(batch->wave);
    // Cold batch checkpoints are a distribution artifact; rebuilding
    // their sets must not show up in the merged work counters.
    engine.set_uncounted_seeding(true);
    // The lease keep-alive: one heartbeat per engine wave. A send
    // failure means the coordinator revoked us (or died) — stop mining,
    // the lease's work will be redone elsewhere.
    CancelToken revoked;
    const std::uint64_t lease_ms = batch->lease_ms;
    engine.set_progress([fd, worker_index, lease_ms,
                         &revoked](const EngineProgress&) {
      if (WorkerFault(fault::kHeartbeatDrop, worker_index)) {
        // Simulate a hang: swallow the heartbeat and oversleep the
        // lease so the coordinator's revocation is guaranteed to fire.
        std::this_thread::sleep_for(std::chrono::milliseconds(3 * lease_ms));
        return;
      }
      Frame hb;
      hb.type = FrameType::kHeartbeat;
      if (!WriteFrame(fd, hb).ok()) revoked.RequestCancel();
    });
    engine.set_cancel_token(&revoked);

    Result<MiningRun> run = engine.Resume(graph, batch->checkpoint, &sink);
    if (revoked.cancelled()) return 0;
    if (!run.ok()) {
      Frame fail;
      fail.type = FrameType::kFail;
      fail.batch_id = frame.batch_id;
      fail.payload = run.status().ToString();
      if (!WriteFrame(fd, fail).ok()) return 0;
      continue;
    }

    result.exhausted = run->exhausted;
    result.counters = run->counters;
    // Mirror the coordinator's checkpoint format: the remainder goes
    // back the way the batch came in, so the format negotiates per
    // lease without a handshake.
    result.ckpt_format = batch->ckpt_format;
    if (!run->exhausted) result.remainder = std::move(run->checkpoint);

    Frame reply;
    reply.type = FrameType::kResult;
    reply.batch_id = frame.batch_id;
    reply.payload = EncodeResult(result);
    const bool corrupt = WorkerFault(fault::kResultCorrupt, worker_index);
    if (!WriteFrame(fd, reply, corrupt).ok()) return 0;
  }
}

}  // namespace dist
}  // namespace scpm
