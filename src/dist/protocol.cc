#include "dist/protocol.h"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "core/ckpt_codec.h"
#include "core/statistics.h"

namespace scpm {
namespace dist {

namespace {

const char* TypeName(FrameType type) {
  switch (type) {
    case FrameType::kBatch:
      return "batch";
    case FrameType::kExit:
      return "exit";
    case FrameType::kHeartbeat:
      return "heartbeat";
    case FrameType::kResult:
      return "result";
    case FrameType::kFail:
      return "fail";
  }
  return "?";
}

bool ParseType(const std::string& name, FrameType* out) {
  for (FrameType t : {FrameType::kBatch, FrameType::kExit,
                      FrameType::kHeartbeat, FrameType::kResult,
                      FrameType::kFail}) {
    if (name == TypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

Status SendAll(int fd, const char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::recv(fd, data + off, size - off, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) return Status::IoError("peer closed the connection");
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

std::uint64_t DoubleBits(double d) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

double BitsDouble(std::uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

}  // namespace

std::uint64_t Checksum(const std::string& data) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

Status WriteFrame(int fd, const Frame& frame, bool corrupt_payload) {
  std::string header = "scpm-dist ";
  header += TypeName(frame.type);
  header += ' ';
  header += std::to_string(frame.batch_id);
  header += ' ';
  header += std::to_string(frame.payload.size());
  header += ' ';
  header += std::to_string(Checksum(frame.payload));
  header += '\n';
  std::string payload = frame.payload;
  if (corrupt_payload && !payload.empty()) {
    payload[payload.size() / 2] ^= 0x40;
  }
  SCPM_RETURN_IF_ERROR(SendAll(fd, header.data(), header.size()));
  return SendAll(fd, payload.data(), payload.size());
}

Result<ReadFrameResult> ReadFrame(int fd) {
  // The header is one newline-terminated line; read it byte-wise (it is
  // tens of bytes against payloads of kilobytes, and keeps the payload
  // read exact).
  std::string header;
  for (;;) {
    char c;
    SCPM_RETURN_IF_ERROR(RecvAll(fd, &c, 1));
    if (c == '\n') break;
    header += c;
    if (header.size() > 256) {
      return Status::IoError("dist frame header overlong");
    }
  }
  std::istringstream in(header);
  std::string magic;
  std::string type_name;
  std::uint64_t batch_id = 0;
  std::uint64_t payload_size = 0;
  std::uint64_t checksum = 0;
  if (!(in >> magic >> type_name >> batch_id >> payload_size >> checksum) ||
      magic != "scpm-dist") {
    return Status::IoError("malformed dist frame header: " + header);
  }
  ReadFrameResult out;
  if (!ParseType(type_name, &out.frame.type)) {
    return Status::IoError("unknown dist frame type: " + type_name);
  }
  if (payload_size > (std::uint64_t{1} << 32)) {
    return Status::IoError("dist frame payload implausibly large");
  }
  out.frame.batch_id = batch_id;
  out.frame.payload.resize(payload_size);
  if (payload_size > 0) {
    SCPM_RETURN_IF_ERROR(RecvAll(fd, out.frame.payload.data(), payload_size));
  }
  out.checksum_ok = Checksum(out.frame.payload) == checksum;
  return out;
}

std::string EncodeBatch(const BatchPayload& batch) {
  std::ostringstream os;
  os << "dist-batch 1 " << batch.max_evaluations << ' ' << batch.wave << ' '
     << batch.lease_ms << '\n';
  (void)batch.checkpoint.Save(os, batch.ckpt_format);
  return os.str();
}

Result<BatchPayload> DecodeBatch(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  std::uint64_t version = 0;
  BatchPayload batch;
  if (!(in >> magic >> version >> batch.max_evaluations >> batch.wave >>
        batch.lease_ms) ||
      magic != "dist-batch" || version != 1) {
    return Status::IoError("malformed dist batch payload");
  }
  Result<EngineCheckpoint> cp = LoadCheckpoint(in, &batch.ckpt_format);
  if (!cp.ok()) return cp.status();
  batch.checkpoint = std::move(cp).value();
  return batch;
}

std::string EncodeResult(const ResultPayload& result) {
  std::ostringstream os;
  os << "dist-result 1\n";
  os << "exhausted " << (result.exhausted ? 1 : 0) << '\n';
  os << "counters";
  WriteScpmCountersFields(os, result.counters) << '\n';
  os << "emissions " << result.emissions.size() << '\n';
  for (const ResultPayload::Emission& e : result.emissions) {
    os << "key " << e.key.size();
    for (const std::uint32_t k : e.key) os << ' ' << k;
    os << '\n';
    const AttributeSetStats& s = e.output.stats;
    os << "stats " << s.attributes.size();
    for (const AttributeId a : s.attributes) os << ' ' << a;
    os << ' ' << s.support << ' ' << s.covered << ' '
       << DoubleBits(s.epsilon) << ' ' << DoubleBits(s.expected_epsilon)
       << ' ' << DoubleBits(s.delta) << '\n';
    // Pattern attribute sets equal the stats row's attributes by
    // construction, so they are reconstructed on decode, not sent.
    os << "patterns " << e.output.patterns.size() << '\n';
    for (const StructuralCorrelationPattern& p : e.output.patterns) {
      os << DoubleBits(p.min_degree_ratio) << ' '
         << DoubleBits(p.edge_density) << ' ' << p.vertices.size();
      for (const VertexId v : p.vertices) os << ' ' << v;
      os << '\n';
    }
  }
  os << "remainder " << (result.exhausted ? 0 : 1) << '\n';
  if (!result.exhausted) {
    (void)result.remainder.Save(os, result.ckpt_format);
  }
  os << "dist-end\n";
  return os.str();
}

Result<ResultPayload> DecodeResult(const std::string& text) {
  std::istringstream in(text);
  const auto bad = [](const char* what) {
    return Status::IoError(std::string("malformed dist result payload: ") +
                           what);
  };
  std::string tok;
  std::uint64_t version = 0;
  ResultPayload result;
  if (!(in >> tok >> version) || tok != "dist-result" || version != 1) {
    return bad("magic");
  }
  int exhausted = 0;
  if (!(in >> tok >> exhausted) || tok != "exhausted") return bad("exhausted");
  result.exhausted = exhausted != 0;
  if (!(in >> tok) || tok != "counters" ||
      !ReadScpmCountersFields(in, &result.counters)) {
    return bad("counters");
  }
  std::uint64_t emissions = 0;
  if (!(in >> tok >> emissions) || tok != "emissions") return bad("emissions");
  result.emissions.reserve(emissions);
  for (std::uint64_t i = 0; i < emissions; ++i) {
    ResultPayload::Emission e;
    std::uint64_t n = 0;
    if (!(in >> tok >> n) || tok != "key") return bad("key");
    e.key.resize(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      if (!(in >> e.key[k])) return bad("key item");
    }
    AttributeSetStats& s = e.output.stats;
    if (!(in >> tok >> n) || tok != "stats") return bad("stats");
    s.attributes.resize(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      if (!(in >> s.attributes[k])) return bad("stats attr");
    }
    std::uint64_t eps = 0;
    std::uint64_t expected = 0;
    std::uint64_t delta = 0;
    if (!(in >> s.support >> s.covered >> eps >> expected >> delta)) {
      return bad("stats fields");
    }
    s.epsilon = BitsDouble(eps);
    s.expected_epsilon = BitsDouble(expected);
    s.delta = BitsDouble(delta);
    std::uint64_t patterns = 0;
    if (!(in >> tok >> patterns) || tok != "patterns") return bad("patterns");
    e.output.patterns.resize(patterns);
    for (std::uint64_t p = 0; p < patterns; ++p) {
      StructuralCorrelationPattern& pat = e.output.patterns[p];
      std::uint64_t mdr = 0;
      std::uint64_t density = 0;
      std::uint64_t verts = 0;
      if (!(in >> mdr >> density >> verts)) return bad("pattern");
      pat.min_degree_ratio = BitsDouble(mdr);
      pat.edge_density = BitsDouble(density);
      pat.attributes = s.attributes;
      pat.vertices.resize(verts);
      for (std::uint64_t v = 0; v < verts; ++v) {
        if (!(in >> pat.vertices[v])) return bad("pattern vertex");
      }
    }
    result.emissions.push_back(std::move(e));
  }
  int remainder = 0;
  if (!(in >> tok >> remainder) || tok != "remainder") return bad("remainder");
  if ((remainder != 0) == result.exhausted) return bad("remainder flag");
  if (remainder != 0) {
    Result<EngineCheckpoint> cp = LoadCheckpoint(in, &result.ckpt_format);
    if (!cp.ok()) return cp.status();
    result.remainder = std::move(cp).value();
  }
  if (!(in >> tok) || tok != "dist-end") return bad("trailer");
  return result;
}

}  // namespace dist
}  // namespace scpm
