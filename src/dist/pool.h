// The coordinator's frontier pool: pending expansion entries between
// leases.
//
// The engine's EngineCheckpoint already factors the frontier into
// shared equivalence classes plus per-entry (class, sibling) pairs;
// the pool keeps exactly that factoring with the classes refcounted,
// so carving N entries into a batch copies only the classes that batch
// touches. Entries are independent units of work — which batch an
// entry lands in never changes what it mines (emissions are keyed,
// counters sum), so the pool hands them out FIFO.

#ifndef SCPM_DIST_POOL_H_
#define SCPM_DIST_POOL_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/engine.h"

namespace scpm {
namespace dist {

class FrontierPool {
 public:
  /// One evaluated class shared by its pending sibling entries.
  struct PoolClass {
    std::vector<std::uint32_t> path;
    std::vector<EngineCheckpoint::Member> members;
  };
  struct PoolEntry {
    std::shared_ptr<PoolClass> cls;
    std::uint32_t sibling = 0;
  };

  /// Adopts the binding fields (graph shape + options fingerprint) every
  /// batch checkpoint is stamped with. Call once, with the roots-phase
  /// cut checkpoint, before any Ingest.
  void BindTo(const EngineCheckpoint& cp);

  /// Moves a tree-phase checkpoint's entries into the pool (the roots
  /// cut, or a lease's unfinished remainder).
  void Ingest(const EngineCheckpoint& cp);

  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  /// Pops up to `max_entries` entries into a self-contained batch
  /// checkpoint (classes deduplicated, binding stamped).
  EngineCheckpoint MakeBatch(std::size_t max_entries);

  /// A checkpoint of every entry still in the pool, entries untouched —
  /// the durability snapshot's starting point (outstanding leases append
  /// their own batch checkpoints via Append).
  EngineCheckpoint SnapshotRemaining() const;

  /// Appends `src`'s classes and entries onto `dst` (index-shifted).
  /// Both must share dst's binding.
  static void Append(EngineCheckpoint* dst, const EngineCheckpoint& src);

 private:
  EngineCheckpoint BuildFrom(const std::vector<PoolEntry>& entries) const;

  EngineCheckpoint binding_;
  std::deque<PoolEntry> entries_;
};

}  // namespace dist
}  // namespace scpm

#endif  // SCPM_DIST_POOL_H_
