#include "dist/pool.h"

#include <unordered_map>
#include <utility>

namespace scpm {
namespace dist {

void FrontierPool::BindTo(const EngineCheckpoint& cp) {
  binding_.num_vertices = cp.num_vertices;
  binding_.num_attributes = cp.num_attributes;
  binding_.num_edges = cp.num_edges;
  binding_.options_fingerprint = cp.options_fingerprint;
  binding_.in_roots_phase = false;
  binding_.valid = true;
}

void FrontierPool::Ingest(const EngineCheckpoint& cp) {
  std::vector<std::shared_ptr<PoolClass>> classes;
  classes.reserve(cp.classes.size());
  for (const EngineCheckpoint::PendingClass& pc : cp.classes) {
    auto cls = std::make_shared<PoolClass>();
    cls->path = pc.path;
    cls->members = pc.members;
    // Hot members never cross a process boundary; drop any the engine
    // attached so the pool holds the cold form only.
    for (EngineCheckpoint::Member& m : cls->members) {
      m.hot_covered.reset();
      m.hot_tidset = HybridVertexSet();
    }
    classes.push_back(std::move(cls));
  }
  for (const EngineCheckpoint::PendingExpansion& e : cp.expansions) {
    if (e.class_index >= classes.size()) continue;  // validated upstream
    entries_.push_back(PoolEntry{classes[e.class_index], e.sibling});
  }
}

EngineCheckpoint FrontierPool::BuildFrom(
    const std::vector<PoolEntry>& entries) const {
  EngineCheckpoint cp = binding_;
  std::unordered_map<const PoolClass*, std::uint32_t> index;
  for (const PoolEntry& entry : entries) {
    auto [it, inserted] = index.emplace(
        entry.cls.get(), static_cast<std::uint32_t>(cp.classes.size()));
    if (inserted) {
      cp.classes.push_back(
          EngineCheckpoint::PendingClass{entry.cls->path, entry.cls->members});
    }
    cp.expansions.push_back(
        EngineCheckpoint::PendingExpansion{it->second, entry.sibling});
  }
  return cp;
}

EngineCheckpoint FrontierPool::MakeBatch(std::size_t max_entries) {
  std::vector<PoolEntry> batch;
  while (!entries_.empty() && batch.size() < max_entries) {
    batch.push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  return BuildFrom(batch);
}

EngineCheckpoint FrontierPool::SnapshotRemaining() const {
  return BuildFrom(std::vector<PoolEntry>(entries_.begin(), entries_.end()));
}

void FrontierPool::Append(EngineCheckpoint* dst, const EngineCheckpoint& src) {
  const std::uint32_t base = static_cast<std::uint32_t>(dst->classes.size());
  dst->classes.insert(dst->classes.end(), src.classes.begin(),
                      src.classes.end());
  for (const EngineCheckpoint::PendingExpansion& e : src.expansions) {
    dst->expansions.push_back(
        EngineCheckpoint::PendingExpansion{base + e.class_index, e.sibling});
  }
}

}  // namespace dist
}  // namespace scpm
