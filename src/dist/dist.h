// Fault-tolerant distributed frontier mining (docs/DIST.md).
//
// A coordinator process runs the cheap roots phase itself, then shards
// the remaining frontier into leased batches mined by forked worker
// processes over Unix socketpairs. Leases have deadlines kept alive by
// per-wave heartbeats; a missed heartbeat, worker death, or corrupt
// result revokes the lease and re-queues the batch with exponential
// backoff, falling back to inline execution on the coordinator after
// bounded retries — the job always terminates, and its rows, patterns,
// and summed work counters are byte-identical to a single-process
// ScpmMiner::Mine for any worker count, batch size, or kill schedule.

#ifndef SCPM_DIST_DIST_H_
#define SCPM_DIST_DIST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/request.h"
#include "core/scpm.h"
#include "core/sink.h"
#include "graph/attributed_graph.h"
#include "util/cancel.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {
namespace dist {

struct DistOptions {
  /// Worker processes forked at job start. Workers are never respawned:
  /// a revoked or dead worker's share shifts to the survivors, and with
  /// none left the coordinator mines inline.
  std::size_t workers = 2;
  /// Frontier entries leased per batch.
  std::size_t batch_entries = 8;
  /// Evaluation budget per lease: a worker cuts its batch at this many
  /// evaluations and returns the unfinished remainder for re-leasing,
  /// which bounds both lease runtime and result size.
  std::uint64_t batch_evals = 256;
  /// Worker frontier wave size = heartbeat granularity (one heartbeat
  /// per wave).
  std::size_t worker_wave = 4;
  /// Lease deadline: a leased worker silent for this long is revoked.
  std::uint64_t lease_ms = 2000;
  /// Re-queue attempts per batch before the coordinator mines it
  /// inline.
  std::uint32_t max_retries = 3;
  /// Backoff before a failed batch is re-leased: backoff_ms doubling
  /// per failed attempt.
  std::uint64_t backoff_ms = 50;
  /// Durable job state directory, "" = none. With it set, the
  /// coordinator journals the job and snapshots the un-merged frontier
  /// through a StateStore, and a coordinator started on the same
  /// directory after a SIGKILL resumes the job instead of restarting it
  /// (jsonl sinks only; see docs/DIST.md).
  std::string state_dir;
  /// Snapshot cadence under state_dir.
  std::uint64_t checkpoint_interval_ms = 200;
  /// Encoding for the EngineCheckpoint embedded in batch/result frames
  /// and in durable snapshots (readers auto-detect; workers mirror the
  /// format of the batch they received).
  CheckpointFormat ckpt_format = CheckpointFormat::kBinary;
  /// Called once per forked worker with (worker index, pid) — the CLI
  /// announces pids on stderr so harnesses can aim kill(2) at one.
  std::function<void(std::size_t, long)> on_worker_spawn;

  Status Validate() const;
};

/// One lease failure, typed and kept: code is kIoError for worker
/// death / heartbeat timeout / corrupt result, kInternal for a worker
/// that rejected its batch.
struct DistEvent {
  StatusCode code = StatusCode::kOk;
  std::string detail;
};

struct DistWorkerStats {
  std::uint64_t batches = 0;        // leases this worker completed
  std::uint64_t reassignments = 0;  // leases revoked from it
  std::uint64_t retries = 0;        // re-queued batches it picked up
  std::uint64_t backoff_ms = 0;     // backoff its failures charged
};

struct DistStats {
  std::vector<DistWorkerStats> workers;
  std::uint64_t batches = 0;   // leases completed by workers
  std::uint64_t heartbeat_timeouts = 0;
  std::uint64_t worker_exits = 0;    // EOF / death with a live lease
  std::uint64_t corrupt_results = 0;
  std::uint64_t worker_failures = 0;  // explicit fail frames
  std::uint64_t retries = 0;          // batch re-queues
  std::uint64_t backoff_ms_total = 0;
  std::uint64_t inline_fallbacks = 0;  // batches the coordinator mined
  bool recovered = false;  // job resumed from a state_dir journal
  std::vector<DistEvent> events;  // every lease failure, in order
};

/// Mines `request` distributed and returns the same MiningResponse a
/// single-process ExecuteRequest would. The request's budget must be
/// unlimited (a distributed run has no meaningful mid-job cut) —
/// kInvalidArgument otherwise. `null_model` may be nullptr (one is
/// built internally when options.min_delta > 0); `cancel` aborts the
/// job with kCancelled at the next coordinator step.
Result<MiningResponse> Mine(const AttributedGraph& graph,
                            const MiningRequest& request,
                            const DistOptions& dist_options,
                            ExpectationModel* null_model = nullptr,
                            DistStats* stats = nullptr,
                            CancelToken* cancel = nullptr);

/// Sink-level variant for callers that own their sinks (the query
/// server): mines into `sink` and returns the aggregate run
/// (exhausted, summed counters, emission totals). Durability is
/// Mine()-only — state_dir must be empty here.
Result<MiningRun> MineToSink(const AttributedGraph& graph,
                             const ScpmOptions& options, PatternSink* sink,
                             const DistOptions& dist_options,
                             ExpectationModel* null_model = nullptr,
                             DistStats* stats = nullptr,
                             CancelToken* cancel = nullptr);

}  // namespace dist
}  // namespace scpm

#endif  // SCPM_DIST_DIST_H_
