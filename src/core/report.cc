#include "core/report.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

namespace scpm {

std::string FormatStatsRow(const AttributedGraph& graph,
                           const AttributeSetStats& stats) {
  std::ostringstream os;
  os << graph.FormatAttributeSet(stats.attributes) << " sigma="
     << stats.support << " eps=" << std::fixed << std::setprecision(3)
     << stats.epsilon << " delta=" << std::setprecision(2) << stats.delta;
  return os.str();
}

void PrintTopAttributeSets(std::ostream& os, const AttributedGraph& graph,
                           const std::vector<AttributeSetStats>& stats,
                           std::size_t top_n) {
  struct Block {
    const char* title;
    AttributeSetOrder order;
  };
  const Block blocks[] = {
      {"top by support (sigma)", AttributeSetOrder::kBySupport},
      {"top by structural correlation (eps)", AttributeSetOrder::kByEpsilon},
      {"top by normalized structural correlation (delta)",
       AttributeSetOrder::kByDelta},
  };
  for (const Block& block : blocks) {
    os << "== " << block.title << " ==\n";
    const std::vector<AttributeSetStats> ranked =
        RankAttributeSets(stats, block.order);
    const std::size_t n = std::min(top_n, ranked.size());
    for (std::size_t i = 0; i < n; ++i) {
      os << "  " << std::setw(2) << (i + 1) << ". "
         << FormatStatsRow(graph, ranked[i]) << "\n";
    }
  }
}

void PrintPatternTable(std::ostream& os, const AttributedGraph& graph,
                       const ScpmResult& result) {
  // Index support/eps per attribute set for the sigma / eps columns.
  std::map<AttributeSet, const AttributeSetStats*> by_set;
  for (const AttributeSetStats& s : result.attribute_sets) {
    by_set[s.attributes] = &s;
  }
  os << std::left << std::setw(44) << "pattern" << std::right
     << std::setw(6) << "size" << std::setw(8) << "gamma" << std::setw(7)
     << "sigma" << std::setw(8) << "eps" << "\n";
  for (const StructuralCorrelationPattern& p : result.patterns) {
    std::ostringstream name;
    name << "(" << graph.FormatAttributeSet(p.attributes) << ", {";
    for (std::size_t i = 0; i < p.vertices.size(); ++i) {
      if (i > 0) name << ",";
      name << p.vertices[i];
    }
    name << "})";
    os << std::left << std::setw(44) << name.str() << std::right
       << std::setw(6) << p.size() << std::setw(8) << std::fixed
       << std::setprecision(2) << p.min_degree_ratio;
    auto it = by_set.find(p.attributes);
    if (it != by_set.end()) {
      os << std::setw(7) << it->second->support << std::setw(8)
         << std::setprecision(2) << it->second->epsilon;
    } else {
      os << std::setw(7) << "-" << std::setw(8) << "-";
    }
    os << "\n";
  }
}

}  // namespace scpm
