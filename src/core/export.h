// CSV export of mining results, for downstream analysis / plotting.

#ifndef SCPM_CORE_EXPORT_H_
#define SCPM_CORE_EXPORT_H_

#include <ostream>
#include <string>

#include "core/scpm.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace scpm {

/// Writes one row per reported attribute set:
///   attributes,support,covered,epsilon,expected_epsilon,delta
/// Attribute names are '|'-separated inside the first column; fields
/// containing commas/quotes are quoted per RFC 4180.
Status WriteAttributeSetsCsv(const AttributedGraph& graph,
                             const ScpmResult& result, std::ostream& os);
Status WriteAttributeSetsCsv(const AttributedGraph& graph,
                             const ScpmResult& result,
                             const std::string& path);

/// Writes one row per pattern:
///   attributes,vertices,size,min_degree_ratio,edge_density
/// Vertex ids are '|'-separated.
Status WritePatternsCsv(const AttributedGraph& graph,
                        const ScpmResult& result, std::ostream& os);
Status WritePatternsCsv(const AttributedGraph& graph,
                        const ScpmResult& result, const std::string& path);

/// Escapes one CSV field per RFC 4180 (quotes when it contains a comma,
/// quote, or newline).
std::string CsvEscape(const std::string& field);

}  // namespace scpm

#endif  // SCPM_CORE_EXPORT_H_
