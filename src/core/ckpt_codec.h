// Checkpoint wire/disk codecs for EngineCheckpoint.
//
// Two formats coexist behind EngineCheckpoint::Save/Serialize/Load/Parse:
//
//  * v1 text — the original whitespace-token form ("scpm-checkpoint 1").
//    Kept bit-for-bit so every checkpoint file written before the binary
//    codec landed still resumes; writers reach it via
//    CheckpointFormat::kText.
//  * v2 binary — a versioned, length-prefixed form ("SCPB") that interns
//    covered vertex sets and attribute sets in shared dictionary tables
//    so a set referenced by many frontier entries is stored once. Table
//    entries are sorted lexicographically and front-coded (longest
//    common prefix with the previous entry + delta-encoded suffix), ids
//    and all scalars are LEB128 varints, and the payload carries an
//    FNV-1a-64 checksum so truncation and bit flips fail parsing instead
//    of resuming from silently wrong state. The dictionary approach
//    follows ltsmin's tree-compressed state database: frontier entries
//    share most of their covered sets, so structural sharing — not
//    per-entry compression — is where the bytes go.
//
// Readers auto-detect the format from the first bytes; no caller ever
// declares what it expects. The length prefix lets embedders (the
// journal's q<id>.ckpt meta+trailer layout, the dist batch/result
// frames) read a checkpoint mid-stream and know exactly where it ends.

#ifndef SCPM_CORE_CKPT_CODEC_H_
#define SCPM_CORE_CKPT_CODEC_H_

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/engine.h"
#include "util/result.h"

namespace scpm {

/// Parses a CLI-facing format name ("text" | "binary").
Result<CheckpointFormat> ParseCheckpointFormat(const std::string& name);

/// Inverse of ParseCheckpointFormat, for help text and error messages.
const char* CheckpointFormatName(CheckpointFormat format);

/// EngineCheckpoint::Load, additionally reporting which format the bytes
/// were in. Dist workers use this to mirror the coordinator's format
/// when they encode the remainder checkpoint back into the result frame.
Result<EngineCheckpoint> LoadCheckpoint(std::istream& is,
                                        CheckpointFormat* detected);

/// Appends `value` as a LEB128 varint (7 data bits per byte, high bit =
/// continuation). Exposed for the codec tests and bench.
void AppendCheckpointVarint(std::string* out, std::uint64_t value);

}  // namespace scpm

#endif  // SCPM_CORE_CKPT_CODEC_H_
