// One request, one front door.
//
// The library (`ScpmMiner::Mine`), the CLI (`scpm_cli` flag parsing),
// and the wire protocol (`ParseQuerySpec` in src/server/session.cc) all
// historically built their own bundle of ScpmOptions + EngineBudget +
// sink choice + process toggles, each with its own validation holes.
// MiningRequest is the single struct they now all produce, with a
// single Validate(), and ExecuteRequest() is the single driver that
// turns a request into a MiningResponse.
//
// Layering: this header sits in core/ and knows nothing about JSON or
// sockets; the server's QuerySpec derives from MiningRequest and the
// wire binder fills in the base fields.

#ifndef SCPM_CORE_REQUEST_H_
#define SCPM_CORE_REQUEST_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/scpm.h"
#include "core/sink.h"
#include "graph/attributed_graph.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// Everything that defines one mining run: what to mine (options), how
/// long it may run (budget), where finalized sets go (sink selection),
/// and which process-wide kernel toggles to apply. Front doors differ
/// only in how they *fill* this struct.
struct MiningRequest {
  enum class Sink { kAccumulate, kJsonl, kTopK };

  ScpmOptions options;
  EngineBudget budget;

  Sink sink = Sink::kAccumulate;
  /// kJsonl destination: a borrowed stream wins over a path (the CLI
  /// streams to stdout); with neither, kJsonl is invalid.
  std::string jsonl_path;
  std::ostream* jsonl_stream = nullptr;
  /// Recovery plumbing, never wire-settable: open jsonl_path appending
  /// instead of truncating, so a resumed run extends the lines its
  /// earlier segments already made durable.
  bool jsonl_append = false;
  /// kTopK: patterns retained.
  std::size_t sink_k = 10;

  /// Process-wide kernel toggles (SIMD word-kernel dispatch, chunked
  /// mid-density sets). Unset means "leave the process defaults alone".
  /// They are process-global, so the CLI applies them and the server
  /// applies them once at startup — per-query requests must leave them
  /// unset (the wire binder rejects them).
  std::optional<bool> simd;
  std::optional<bool> chunked;

  /// Periodic durability: with both set, the engine hands `on_checkpoint`
  /// a cold (serializable) snapshot of the remaining frontier at wave
  /// boundaries at least `checkpoint_interval_ms` apart, while the run
  /// continues. This is the auto-checkpoint hook the CLI and the query
  /// server build crash recovery on; it never changes what is mined.
  std::uint64_t checkpoint_interval_ms = 0;
  std::function<void(const EngineCheckpoint&, const EngineProgress&)>
      on_checkpoint;

  /// The one validation gate for every front door: options.Validate()
  /// plus the request-level rules (jsonl needs a destination, sink_k
  /// and budget sanity).
  Status Validate() const;

  /// Applies the simd/chunked toggles to the process. Callers that own
  /// the process (CLIs) invoke this once before mining.
  void ApplyProcessToggles() const;
};

/// Outcome of one request: the engine run (counters, budget outcome,
/// checkpoint on a cut) plus the sink-specific payload.
struct MiningResponse {
  MiningRun run;
  /// Sink::kAccumulate — full result; counters mirror run.counters.
  ScpmResult result;
  /// Sink::kTopK.
  std::vector<StructuralCorrelationPattern> top_patterns;
  std::uint64_t top_sets_seen = 0;
  /// Sink::kJsonl.
  std::uint64_t jsonl_lines = 0;
};

/// The request's sink objects, owned by the caller for as many engine
/// segments as it drives — this is what lets a preempted server query
/// keep one sink alive across slices (no duplicate or lost finalized
/// sets) and harvest the payload exactly once at the end.
class RequestSinks {
 public:
  /// Builds the sink selected by `request`. `graph` annotates JSONL
  /// lines with attribute names; it may be nullptr.
  static Result<std::unique_ptr<RequestSinks>> Create(
      const MiningRequest& request, const AttributedGraph* graph);

  /// The sink to hand to ScpmEngine::Run/Resume.
  PatternSink* sink() { return active_; }

  /// Harvests the sink payload into `response` (whose `run` the caller
  /// has already filled). Call once, after the final segment.
  void Harvest(const MiningRequest& request, MiningResponse* response);

  /// Lines the jsonl sink has written so far (0 for other sinks); the
  /// server journals this at every durability snapshot.
  std::uint64_t jsonl_lines() const {
    return jsonl_ != nullptr ? jsonl_->lines_written() : 0;
  }

 private:
  RequestSinks() = default;

  AccumulatingSink accumulate_;
  std::unique_ptr<JsonlSink> jsonl_;
  std::unique_ptr<TopKPatternSink> topk_;
  PatternSink* active_ = nullptr;
};

/// Runs one request start-to-finish (or to its budget cut) on `graph`.
/// `null_model` is borrowed and may be nullptr; `resume` continues a
/// previous run's checkpoint instead of starting fresh. This is the
/// one-shot driver; the server drives slices itself with the same
/// RequestSinks machinery.
Result<MiningResponse> ExecuteRequest(const AttributedGraph& graph,
                                      const MiningRequest& request,
                                      ExpectationModel* null_model = nullptr,
                                      const EngineCheckpoint* resume = nullptr);

}  // namespace scpm

#endif  // SCPM_CORE_REQUEST_H_
