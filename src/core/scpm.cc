#include "core/scpm.h"

#include <algorithm>
#include <utility>

#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"

namespace scpm {

QuasiCliqueMinerOptions ScpmOptions::miner_options() const {
  QuasiCliqueMinerOptions out;
  out.params = quasi_clique;
  out.order = search_order;
  return out;
}

Status ScpmOptions::Validate() const {
  SCPM_RETURN_IF_ERROR(quasi_clique.Validate());
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (min_epsilon < 0.0 || min_epsilon > 1.0) {
    return Status::InvalidArgument("min_epsilon must be in [0, 1]");
  }
  if (min_delta < 0.0) {
    return Status::InvalidArgument("min_delta must be >= 0");
  }
  if (top_k < 1) return Status::InvalidArgument("top_k must be >= 1");
  if (min_report_size < 1) {
    return Status::InvalidArgument("min_report_size must be >= 1");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  return Status::OK();
}

namespace {

/// One node of the attribute-set enumeration tree.
struct Node {
  AttributeSet items;
  VertexSet tidset;   // V(S)
  VertexSet covered;  // K_S, for Theorem 3 restriction of children
};

/// Per-task mining state: its own quasi-clique miner and result shard.
/// Shards are merged deterministically (root order) at the end.
struct TaskContext {
  explicit TaskContext(const ScpmOptions& options)
      : miner(options.miner_options()) {}

  QuasiCliqueMiner miner;
  ScpmResult result;
};

/// Shared mining state across the (possibly parallel) enumeration.
class Mining {
 public:
  Mining(const AttributedGraph& graph, const ScpmOptions& options,
         ExpectationModel* null_model)
      : graph_(graph), options_(options), null_model_(null_model) {}

  /// Paper Algorithm 2: evaluate frequent single attributes, then extend
  /// (Algorithm 3). Root subtrees are independent given the roots'
  /// covered sets, so they can be fanned across a thread pool.
  Status Run() {
    std::vector<Node> candidates;
    for (AttributeId a = 0; a < graph_.NumAttributes(); ++a) {
      const VertexSet& tidset = graph_.VerticesWith(a);
      if (tidset.size() < options_.min_support) continue;
      Node node;
      node.items = {a};
      node.tidset = tidset;
      candidates.push_back(std::move(node));
    }

    // Phase 1: evaluate every frequent singleton.
    const std::size_t n = candidates.size();
    std::vector<TaskContext> contexts;
    contexts.reserve(n);
    for (std::size_t i = 0; i < n; ++i) contexts.emplace_back(options_);
    std::vector<Status> statuses(n);
    std::vector<char> extendable(n, 0);
    RunTasks(n, [&](std::size_t i) {
      bool flag = false;
      statuses[i] =
          Evaluate(&candidates[i], nullptr, nullptr, &flag, &contexts[i]);
      extendable[i] = flag ? 1 : 0;
    });
    std::vector<Node> roots;
    for (std::size_t i = 0; i < n; ++i) {
      SCPM_RETURN_IF_ERROR(statuses[i]);
      Merge(std::move(contexts[i].result));
      if (extendable[i]) roots.push_back(std::move(candidates[i]));
    }
    result_.counters.attribute_sets_extended += roots.size();
    if (options_.max_attribute_set_size <= 1 || roots.size() < 2) {
      return Status::OK();
    }

    // Phase 2: one independent subtree per root.
    const std::size_t r = roots.size();
    std::vector<TaskContext> subtree_contexts;
    subtree_contexts.reserve(r);
    for (std::size_t i = 0; i < r; ++i) subtree_contexts.emplace_back(options_);
    std::vector<Status> subtree_statuses(r);
    RunTasks(r, [&](std::size_t i) {
      subtree_statuses[i] = ProcessRoot(i, roots, &subtree_contexts[i]);
    });
    for (std::size_t i = 0; i < r; ++i) {
      SCPM_RETURN_IF_ERROR(subtree_statuses[i]);
      Merge(std::move(subtree_contexts[i].result));
    }
    return Status::OK();
  }

  ScpmResult TakeResult() {
    SortPatterns(&result_.patterns);
    return std::move(result_);
  }

 private:
  /// Runs `count` index tasks either inline or on a pool.
  template <typename Fn>
  void RunTasks(std::size_t count, Fn&& fn) {
    if (options_.num_threads <= 1 || count <= 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    ThreadPool pool(std::min<std::size_t>(options_.num_threads, count));
    for (std::size_t i = 0; i < count; ++i) {
      pool.Submit([&fn, i] { fn(i); });
    }
    pool.Wait();
  }

  void Merge(ScpmResult&& shard) {
    for (auto& s : shard.attribute_sets) {
      result_.attribute_sets.push_back(std::move(s));
    }
    for (auto& p : shard.patterns) {
      result_.patterns.push_back(std::move(p));
    }
    result_.counters.attribute_sets_evaluated +=
        shard.counters.attribute_sets_evaluated;
    result_.counters.attribute_sets_reported +=
        shard.counters.attribute_sets_reported;
    result_.counters.attribute_sets_extended +=
        shard.counters.attribute_sets_extended;
    result_.counters.coverage_candidates +=
        shard.counters.coverage_candidates;
  }

  /// Root i combined with its right siblings, then the recursive
  /// extension of the resulting class (paper Algorithm 3).
  Status ProcessRoot(std::size_t i, const std::vector<Node>& roots,
                     TaskContext* ctx) {
    std::vector<Node> children;
    SCPM_RETURN_IF_ERROR(CombineClass(roots, i, ctx, &children));
    ctx->result.counters.attribute_sets_extended += children.size();
    if (!children.empty() &&
        children.front().items.size() < options_.max_attribute_set_size) {
      SCPM_RETURN_IF_ERROR(ExtendClass(children, ctx));
    }
    return Status::OK();
  }

  /// Builds the extendable children of siblings[i] within its class.
  Status CombineClass(const std::vector<Node>& siblings, std::size_t i,
                      TaskContext* ctx, std::vector<Node>* children) {
    for (std::size_t j = i + 1; j < siblings.size(); ++j) {
      Node child;
      SortedUnion(siblings[i].items, siblings[j].items, &child.items);
      SortedIntersect(siblings[i].tidset, siblings[j].tidset,
                      &child.tidset);
      if (child.tidset.size() < options_.min_support) continue;
      bool extendable = false;
      SCPM_RETURN_IF_ERROR(
          Evaluate(&child, &siblings[i], &siblings[j], &extendable, ctx));
      if (extendable) children->push_back(std::move(child));
    }
    return Status::OK();
  }

  /// Sequential recursion over one equivalence class.
  Status ExtendClass(std::vector<Node>& siblings, TaskContext* ctx) {
    for (std::size_t i = 0; i < siblings.size(); ++i) {
      std::vector<Node> children;
      SCPM_RETURN_IF_ERROR(CombineClass(siblings, i, ctx, &children));
      ctx->result.counters.attribute_sets_extended += children.size();
      if (!children.empty() &&
          children.front().items.size() < options_.max_attribute_set_size) {
        SCPM_RETURN_IF_ERROR(ExtendClass(children, ctx));
      }
    }
    return Status::OK();
  }

  /// Computes K_S / eps / delta for a node, reports it (and its patterns)
  /// when it passes the thresholds, and decides extendability per
  /// Theorems 4 and 5.
  Status Evaluate(Node* node, const Node* parent_a, const Node* parent_b,
                  bool* extendable, TaskContext* ctx) {
    ++ctx->result.counters.attribute_sets_evaluated;

    // Theorem 3: quasi-cliques of G(S) live inside the parents' covered
    // sets, so the search universe can be restricted to them.
    VertexSet universe = node->tidset;
    if (options_.use_vertex_pruning) {
      VertexSet tmp;
      if (parent_a != nullptr) {
        SortedIntersect(universe, parent_a->covered, &tmp);
        universe.swap(tmp);
      }
      if (parent_b != nullptr) {
        SortedIntersect(universe, parent_b->covered, &tmp);
        universe.swap(tmp);
      }
    }

    Result<InducedSubgraph> sub =
        InducedSubgraph::Create(graph_.graph(), std::move(universe));
    if (!sub.ok()) return sub.status();
    Result<VertexSet> covered = ctx->miner.MineCoverage(sub->graph());
    if (!covered.ok()) return covered.status();
    ctx->result.counters.coverage_candidates +=
        ctx->miner.stats().candidates_processed;
    node->covered = sub->ToGlobal(*covered);

    const std::size_t support = node->tidset.size();
    const double eps = static_cast<double>(node->covered.size()) /
                       static_cast<double>(support);
    const double expected =
        null_model_ != nullptr ? null_model_->Expectation(support) : 1.0;
    const double delta =
        expected > 0.0 ? eps / expected : (eps > 0.0 ? 1e300 : 0.0);

    const bool passes = eps >= options_.min_epsilon &&
                        delta >= options_.min_delta;
    if (passes && node->items.size() >= options_.min_report_size) {
      ++ctx->result.counters.attribute_sets_reported;
      AttributeSetStats stats;
      stats.attributes = node->items;
      stats.support = support;
      stats.covered = node->covered.size();
      stats.epsilon = eps;
      stats.expected_epsilon = expected;
      stats.delta = delta;
      ctx->result.attribute_sets.push_back(std::move(stats));
      if (options_.collect_patterns && !node->covered.empty()) {
        SCPM_RETURN_IF_ERROR(CollectPatterns(*node, *sub, ctx));
      }
    }

    // Theorems 4 and 5: upper bounds on eps / delta of any extension.
    const double mass = eps * static_cast<double>(support);
    *extendable = true;
    if (options_.use_epsilon_pruning &&
        mass < options_.min_epsilon *
                   static_cast<double>(options_.min_support)) {
      *extendable = false;
    }
    if (*extendable && options_.use_delta_pruning && null_model_ != nullptr) {
      const double expected_at_min =
          null_model_->Expectation(options_.min_support);
      if (mass < options_.min_delta * expected_at_min *
                     static_cast<double>(options_.min_support)) {
        *extendable = false;
      }
    }
    return Status::OK();
  }

  /// Patterns of G(S): top-k (paper §3.2.3) or the complete maximal set
  /// (SCORP semantics), reported in global ids.
  Status CollectPatterns(const Node& node, const InducedSubgraph& sub,
                         TaskContext* ctx) {
    std::vector<RankedQuasiClique> found;
    if (options_.pattern_scope == PatternScope::kTopK) {
      Result<std::vector<RankedQuasiClique>> top =
          ctx->miner.MineTopK(sub.graph(), options_.top_k);
      if (!top.ok()) return top.status();
      found = std::move(top).value();
    } else {
      Result<std::vector<VertexSet>> all =
          ctx->miner.MineMaximal(sub.graph());
      if (!all.ok()) return all.status();
      found.reserve(all->size());
      for (VertexSet& q : *all) {
        RankedQuasiClique entry;
        entry.min_degree_ratio = MinDegreeRatio(sub.graph(), q);
        entry.vertices = std::move(q);
        found.push_back(std::move(entry));
      }
    }
    ctx->result.counters.coverage_candidates +=
        ctx->miner.stats().candidates_processed;
    for (RankedQuasiClique& q : found) {
      StructuralCorrelationPattern pattern;
      pattern.attributes = node.items;
      pattern.min_degree_ratio = q.min_degree_ratio;
      pattern.edge_density = SubsetDensity(sub.graph(), q.vertices);
      pattern.vertices = sub.ToGlobal(q.vertices);
      ctx->result.patterns.push_back(std::move(pattern));
    }
    return Status::OK();
  }

  const AttributedGraph& graph_;
  const ScpmOptions& options_;
  ExpectationModel* null_model_;
  ScpmResult result_;
};

}  // namespace

Result<ScpmResult> ScpmMiner::Mine(const AttributedGraph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  Mining mining(graph, options_, null_model_);
  SCPM_RETURN_IF_ERROR(mining.Run());
  return mining.TakeResult();
}

}  // namespace scpm
