#include "core/scpm.h"

#include <utility>

#include "core/engine.h"
#include "core/sink.h"

namespace scpm {

QuasiCliqueMinerOptions ScpmOptions::miner_options() const {
  QuasiCliqueMinerOptions out;
  out.params = quasi_clique;
  out.order = search_order;
  return out;
}

Status ScpmOptions::Validate() const {
  SCPM_RETURN_IF_ERROR(quasi_clique.Validate());
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (min_epsilon < 0.0 || min_epsilon > 1.0) {
    return Status::InvalidArgument("min_epsilon must be in [0, 1]");
  }
  if (min_delta < 0.0) {
    return Status::InvalidArgument("min_delta must be >= 0");
  }
  if (top_k < 1) return Status::InvalidArgument("top_k must be >= 1");
  if (min_report_size < 1) {
    return Status::InvalidArgument("min_report_size must be >= 1");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  // Each thread gets a worker state and an OS thread up front; an absurd
  // count (e.g. a negative CLI value wrapped to SIZE_MAX) must fail
  // cleanly here rather than abort inside an allocation.
  if (num_threads > 1024) {
    return Status::InvalidArgument("num_threads must be <= 1024");
  }
  // Branch-task keys grow one entry per decomposition level; anything
  // past a handful of levels only adds bookkeeping.
  if (intra_search_spawn_depth > 16) {
    return Status::InvalidArgument("intra_search_spawn_depth must be <= 16");
  }
  return Status::OK();
}

// The classic blocking API is a thin shell over the frontier engine: an
// unbudgeted run into the accumulating sink reproduces the historical
// fully-materialized result byte for byte (rows, patterns, counters) for
// any thread count.
Result<ScpmResult> ScpmMiner::Mine(const AttributedGraph& graph) {
  ScpmEngine engine(options_, null_model_);
  AccumulatingSink sink;
  Result<MiningRun> run = engine.Run(graph, &sink);
  if (!run.ok()) return run.status();
  ScpmResult result = sink.TakeResult();
  result.counters = run->counters;
  return result;
}

}  // namespace scpm
