#include "core/scpm.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "util/hybrid_set.h"
#include "util/logging.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"

namespace scpm {

QuasiCliqueMinerOptions ScpmOptions::miner_options() const {
  QuasiCliqueMinerOptions out;
  out.params = quasi_clique;
  out.order = search_order;
  return out;
}

Status ScpmOptions::Validate() const {
  SCPM_RETURN_IF_ERROR(quasi_clique.Validate());
  if (min_support < 1) {
    return Status::InvalidArgument("min_support must be >= 1");
  }
  if (min_epsilon < 0.0 || min_epsilon > 1.0) {
    return Status::InvalidArgument("min_epsilon must be in [0, 1]");
  }
  if (min_delta < 0.0) {
    return Status::InvalidArgument("min_delta must be >= 0");
  }
  if (top_k < 1) return Status::InvalidArgument("top_k must be >= 1");
  if (min_report_size < 1) {
    return Status::InvalidArgument("min_report_size must be >= 1");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  // Each thread gets a worker state and an OS thread up front; an absurd
  // count (e.g. a negative CLI value wrapped to SIZE_MAX) must fail
  // cleanly here rather than abort inside an allocation.
  if (num_threads > 1024) {
    return Status::InvalidArgument("num_threads must be <= 1024");
  }
  // Branch-task keys grow one entry per decomposition level; anything
  // past a handful of levels only adds bookkeeping.
  if (intra_search_spawn_depth > 16) {
    return Status::InvalidArgument("intra_search_spawn_depth must be <= 16");
  }
  return Status::OK();
}

namespace {

/// One node of the attribute-set enumeration tree. The covered set K_S is
/// not stored here: it lives in the shared CoveredSetCache while children
/// may still need it for Theorem-3 pruning. Tidsets are hybrid: root
/// classes borrow the graph-owned attribute tidsets, dense sets live as
/// bitmaps, and intersections dispatch to the matching kernel.
struct Node {
  AttributeSet items;
  HybridVertexSet tidset;  // V(S)
};

/// FNV-1a over the attribute ids.
struct AttributeSetHash {
  std::size_t operator()(const AttributeSet& items) const {
    std::uint64_t h = 1469598103934665603ull;
    for (AttributeId a : items) {
      h ^= a;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Concurrent map S -> K_S sharing Theorem-3 covered-vertex sets across
/// workers. Mutex-striped so unrelated attribute sets do not contend.
///
/// Usage is deterministic by construction: an entry is inserted before any
/// task that reads it is spawned (children of an equivalence class are
/// spawned only after every class member is evaluated), and only the two
/// generating parents of a child are consulted — never whichever other
/// subsets happen to be resident. That keeps the mined output and every
/// counter independent of thread timing.
class CoveredSetCache {
 public:
  using Entry = std::shared_ptr<const HybridVertexSet>;

  void Insert(const AttributeSet& items, Entry covered) {
    Shard& shard = ShardFor(items);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map[items] = std::move(covered);
  }

  Entry Lookup(const AttributeSet& items) {
    Shard& shard = ShardFor(items);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(items);
    return it == shard.map.end() ? nullptr : it->second;
  }

  void Erase(const AttributeSet& items) {
    Shard& shard = ShardFor(items);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.erase(items);
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<AttributeSet, Entry, AttributeSetHash> map;
  };

  Shard& ShardFor(const AttributeSet& items) {
    return shards_[AttributeSetHash{}(items) % shards_.size()];
  }

  std::array<Shard, 16> shards_;
};

/// An evaluated equivalence class whose members may still be extended.
/// Destruction (when the last subtree task referencing the class finishes)
/// evicts the members' covered sets from the cache.
struct ClassNode {
  explicit ClassNode(CoveredSetCache* cache) : cache(cache) {}
  ~ClassNode() {
    for (const Node& s : siblings) cache->Erase(s.items);
  }
  ClassNode(const ClassNode&) = delete;
  ClassNode& operator=(const ClassNode&) = delete;

  std::vector<Node> siblings;
  CoveredSetCache* cache;
};

/// Mutable per-worker state: a reusable quasi-clique miner, the induced-
/// subgraph workspace feeding it, and this worker's share of the counters
/// (summed on join).
struct WorkerState {
  explicit WorkerState(const ScpmOptions& options)
      : miner(options.miner_options()) {
    miner.set_workspace(&workspace);
  }

  SubgraphWorkspace workspace;  // before miner: it must outlive it
  QuasiCliqueMiner miner;
  ScpmCounters counters;
  SetOpStats set_ops;  // this worker's hybrid-kernel dispatches
};

/// Evaluation output a parent task needs from a child-evaluation task.
struct EvalSlot {
  Node node;
  CoveredSetCache::Entry covered;  // set only when extendable
  bool extendable = false;
};

/// Reported stats/patterns of one attribute set, tagged with its position
/// in the sequential enumeration order (see Key below).
struct ResultShard {
  std::vector<std::uint32_t> key;
  std::vector<AttributeSetStats> attribute_sets;
  std::vector<StructuralCorrelationPattern> patterns;
};

/// Shared mining state across the (possibly parallel) enumeration.
///
/// Parallel structure: every sibling of every equivalence class is a task
/// that (a) forks one evaluation task per child attribute set, (b) waits
/// for them — helping the pool, so fork/join nests freely — and (c) forks
/// subtree tasks for the extendable children. Work stealing balances
/// heavy subtrees across workers at every lattice level.
///
/// Determinism: each reported attribute set carries a key encoding its
/// position in the sequential depth-first order. A class at key prefix P
/// emits sibling i's child evaluations under P+{i,0,j} and its descendant
/// subtree under P+{i,1,...}; singleton roots use {0,idx} and root
/// subtrees {1,...}. Lexicographic order of the keys therefore equals the
/// exact sequential emission order, so sorting the shards at the end makes
/// the output byte-identical to a single-threaded run.
class Mining {
 public:
  using Key = std::vector<std::uint32_t>;

  Mining(const AttributedGraph& graph, const ScpmOptions& options,
         ExpectationModel* null_model)
      : graph_(graph),
        options_(options),
        null_model_(null_model),
        // Slot count caps the intra-search branch tasks outstanding at
        // once across ALL evaluations: a huge-G(S) evaluation that grabs
        // slots is borrowing parallelism its sibling evaluations (and
        // other searches) would otherwise spend, and returns it as its
        // subtasks drain. 2x threads keeps the queues fed without
        // flooding the pool with fine-grained tasks.
        intra_budget_(options.num_threads > 1 ? 2 * options.num_threads : 0) {
    const std::size_t workers = std::max<std::size_t>(1, options_.num_threads);
    states_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      states_.push_back(std::make_unique<WorkerState>(options_));
    }
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    }
    for (const std::unique_ptr<WorkerState>& ws : states_) {
      ws->miner.set_parallel_context(pool_.get(), &intra_budget_);
    }
  }

  /// Paper Algorithm 2: evaluate frequent single attributes, then extend
  /// (Algorithm 3) with one task per class sibling.
  Status Run() {
    std::vector<EvalSlot> singles;
    for (AttributeId a = 0; a < graph_.NumAttributes(); ++a) {
      const VertexSet& tidset = graph_.VerticesWith(a);
      if (tidset.size() < options_.min_support) continue;
      EvalSlot slot;
      slot.node.items = {a};
      // Borrow the graph-owned tidset: the O(size) work of promoting a
      // dense root to its bitmap happens inside the evaluation tasks
      // below, sharding the root-class build across the pool instead of
      // serializing one copy-everything pass here.
      slot.node.tidset = HybridVertexSet::View(&tidset, SetUniverse());
      singles.push_back(std::move(slot));
    }

    // Phase 1: evaluate every frequent singleton (keys {0, idx}), tiny
    // tidsets batched several per task. The batch count is recorded
    // before the first Launch: once tasks run, worker 0 shares slot 0
    // with this coordinating thread.
    const auto single_ranges = BatchRanges(singles);
    State().counters.evaluation_batches += single_ranges.size();
    ThreadPool::TaskGroup phase1;
    for (const auto& [begin, end] : single_ranges) {
      Launch(&phase1, [this, &singles, begin = begin, end = end] {
        for (std::size_t i = begin; i < end; ++i) {
          EvaluateNode(&singles[i], nullptr, nullptr,
                       Key{0, static_cast<std::uint32_t>(i)});
        }
      });
    }
    Await(&phase1);
    SCPM_RETURN_IF_ERROR(FirstError());

    auto roots = std::make_shared<ClassNode>(&cache_);
    for (EvalSlot& slot : singles) {
      if (!slot.extendable) continue;
      cache_.Insert(slot.node.items, std::move(slot.covered));
      roots->siblings.push_back(std::move(slot.node));
    }
    states_[0]->counters.attribute_sets_extended += roots->siblings.size();
    if (options_.max_attribute_set_size <= 1 || roots->siblings.size() < 2) {
      return FirstError();
    }

    // Phase 2: one subtree task per root (keys {1, i, ...}); every
    // descendant class sibling forks its own task into the same group.
    for (std::size_t i = 0; i < roots->siblings.size(); ++i) {
      Launch(&tree_, [this, roots, i] { ProcessSibling(roots, i, Key{1}); });
    }
    Await(&tree_);
    return FirstError();
  }

  ScpmResult TakeResult() {
    std::sort(shards_.begin(), shards_.end(),
              [](const ResultShard& a, const ResultShard& b) {
                return a.key < b.key;
              });
    for (ResultShard& shard : shards_) {
      for (auto& s : shard.attribute_sets) {
        result_.attribute_sets.push_back(std::move(s));
      }
      for (auto& p : shard.patterns) {
        result_.patterns.push_back(std::move(p));
      }
    }
    for (const std::unique_ptr<WorkerState>& ws : states_) {
      result_.counters.attribute_sets_evaluated +=
          ws->counters.attribute_sets_evaluated;
      result_.counters.attribute_sets_reported +=
          ws->counters.attribute_sets_reported;
      result_.counters.attribute_sets_extended +=
          ws->counters.attribute_sets_extended;
      result_.counters.coverage_candidates += ws->counters.coverage_candidates;
      result_.counters.evaluation_batches += ws->counters.evaluation_batches;
      result_.counters.intra_search_evaluations +=
          ws->counters.intra_search_evaluations;
      result_.counters.intra_branch_tasks += ws->counters.intra_branch_tasks;
      result_.counters.bitmap_intersections +=
          ws->set_ops.bitmap_intersections;
      result_.counters.galloping_intersections +=
          ws->set_ops.galloping_intersections;
      result_.counters.chunked_intersections +=
          ws->set_ops.chunked_intersections;
      result_.counters.dense_conversions += ws->set_ops.dense_conversions;
      result_.counters.chunked_conversions += ws->set_ops.chunked_conversions;
    }
    SortPatterns(&result_.patterns);
    return std::move(result_);
  }

 private:
  /// Runs `fn` inline (sequential mode) or as a pool task.
  void Launch(ThreadPool::TaskGroup* group, std::function<void()> fn) {
    if (pool_ != nullptr) {
      pool_->Spawn(group, std::move(fn));
    } else {
      fn();
    }
  }

  void Await(ThreadPool::TaskGroup* group) {
    if (pool_ != nullptr) pool_->WaitFor(group);
  }

  /// Greedy pack of evaluation slots into per-task index ranges:
  /// consecutive slots share a task until their tidset sizes reach
  /// eval_batch_grain. A pure function of the slot sizes, so the launch
  /// plan — and every counter it feeds — is identical for every thread
  /// count.
  std::vector<std::pair<std::size_t, std::size_t>> BatchRanges(
      const std::vector<EvalSlot>& slots) const {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const std::size_t grain = options_.eval_batch_grain;
    std::size_t begin = 0;
    std::size_t weight = 0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      weight += std::max<std::size_t>(1, slots[s].node.tidset.size());
      if (grain == 0 || weight >= grain) {
        ranges.emplace_back(begin, s + 1);
        begin = s + 1;
        weight = 0;
      }
    }
    if (begin < slots.size()) ranges.emplace_back(begin, slots.size());
    return ranges;
  }

  /// The calling worker's state (slot 0 in sequential mode and for the
  /// coordinating thread, which only touches it while no task is live).
  WorkerState& State() {
    const int index = pool_ != nullptr ? pool_->current_worker_index() : -1;
    return *states_[index < 0 ? 0 : static_cast<std::size_t>(index)];
  }

  /// Universe passed to every hybrid set: the vertex count with hybrid
  /// storage on, 0 (never dense, pure merge path) with it off.
  VertexId SetUniverse() const {
    return options_.use_hybrid_sets ? graph_.NumVertices() : 0;
  }

  /// The calling worker's kernel-counter sink, or null when the hybrid
  /// representation (and its counters) is disabled.
  SetOpStats* SetStats() {
    return options_.use_hybrid_sets ? &State().set_ops : nullptr;
  }

  void RecordError(Status status) {
    std::lock_guard<std::mutex> lock(error_mutex_);
    if (first_error_.ok()) first_error_ = std::move(status);
    has_error_.store(true);
  }

  Status FirstError() {
    std::lock_guard<std::mutex> lock(error_mutex_);
    return first_error_;
  }

  /// Task body for sibling i of the class `cls` (whose key prefix is
  /// `cls_path`): evaluates the children of cls->siblings[i] within its
  /// class, then forks one task per extendable child (paper Algorithm 3).
  void ProcessSibling(const std::shared_ptr<ClassNode>& cls, std::size_t i,
                      const Key& cls_path) {
    if (has_error_.load()) return;
    const std::vector<Node>& siblings = cls->siblings;

    std::vector<EvalSlot> slots;
    std::vector<std::size_t> js;
    SetOpStats* set_stats = SetStats();
    for (std::size_t j = i + 1; j < siblings.size(); ++j) {
      EvalSlot slot;
      SortedUnion(siblings[i].items, siblings[j].items, &slot.node.items);
      HybridVertexSet::Intersect(siblings[i].tidset, siblings[j].tidset,
                                 &slot.node.tidset, set_stats);
      if (slot.node.tidset.size() < options_.min_support) continue;
      slots.push_back(std::move(slot));
      js.push_back(j);
    }
    if (slots.empty()) return;

    const auto ranges = BatchRanges(slots);
    State().counters.evaluation_batches += ranges.size();
    ThreadPool::TaskGroup evals;
    for (const auto& [begin, end] : ranges) {
      Launch(&evals, [this, &cls, &cls_path, i, &slots, &js, begin = begin,
                      end = end] {
        for (std::size_t s = begin; s < end; ++s) {
          Key key = cls_path;
          key.reserve(key.size() + 3);
          key.push_back(static_cast<std::uint32_t>(i));
          key.push_back(0);
          key.push_back(static_cast<std::uint32_t>(js[s]));
          EvaluateNode(&slots[s], &cls->siblings[i].items,
                       &cls->siblings[js[s]].items, key);
        }
      });
    }
    Await(&evals);
    if (has_error_.load()) return;

    auto child_class = std::make_shared<ClassNode>(&cache_);
    for (EvalSlot& slot : slots) {
      if (!slot.extendable) continue;
      cache_.Insert(slot.node.items, std::move(slot.covered));
      child_class->siblings.push_back(std::move(slot.node));
    }
    State().counters.attribute_sets_extended += child_class->siblings.size();
    if (child_class->siblings.empty() ||
        child_class->siblings.front().items.size() >=
            options_.max_attribute_set_size) {
      return;
    }
    Key child_path = cls_path;
    child_path.push_back(static_cast<std::uint32_t>(i));
    child_path.push_back(1);
    for (std::size_t c = 0; c < child_class->siblings.size(); ++c) {
      Launch(&tree_, [this, child_class, c, child_path] {
        ProcessSibling(child_class, c, child_path);
      });
    }
  }

  /// Computes K_S / eps / delta for a node, reports it (and its patterns)
  /// into a keyed shard when it passes the thresholds, and decides
  /// extendability per Theorems 4 and 5.
  void EvaluateNode(EvalSlot* slot, const AttributeSet* parent_a,
                    const AttributeSet* parent_b, const Key& key) {
    if (has_error_.load()) return;
    WorkerState& ws = State();
    SetOpStats* set_stats = SetStats();
    ++ws.counters.attribute_sets_evaluated;
    Node& node = slot->node;
    // Root tidsets arrive as borrowed views; promote the dense ones to
    // bitmaps here, inside the (parallel) evaluation task. Intersection
    // results are already in canonical representation, so this is a
    // cheap no-op for every deeper node.
    node.tidset.Normalize(set_stats);

    // Theorem 3: quasi-cliques of G(S) live inside the parents' covered
    // sets, so the search universe can be restricted to them.
    HybridVertexSet universe = node.tidset;
    if (options_.use_vertex_pruning) {
      HybridVertexSet tmp;
      for (const AttributeSet* parent : {parent_a, parent_b}) {
        if (parent == nullptr) continue;
        CoveredSetCache::Entry covered = cache_.Lookup(*parent);
        SCPM_CHECK(covered != nullptr)
            << "parent covered set evicted before its children finished";
        HybridVertexSet::Intersect(universe, *covered, &tmp, set_stats);
        universe = std::move(tmp);
        tmp = HybridVertexSet();
      }
    }

    // Adaptive granularity, subgraph side: a huge G(S) decomposes its own
    // quasi-clique search into branch tasks, borrowing pool slots from
    // the shared budget. The trigger compares deterministic sizes only,
    // so the decision (and all counters downstream of it) is identical
    // for every num_threads — with one thread the decomposed search
    // simply runs inline.
    const bool intra_search =
        options_.intra_search_min_universe != 0 &&
        universe.size() >= options_.intra_search_min_universe;
    ws.miner.set_spawn_depth(intra_search ? options_.intra_search_spawn_depth
                                          : 0);
    if (intra_search) ++ws.counters.intra_search_evaluations;

    Result<InducedSubgraph> sub =
        ws.workspace.Build(graph_.graph(), std::move(universe));
    if (!sub.ok()) return RecordError(sub.status());
    Result<VertexSet> covered = ws.miner.MineCoverage(sub->graph());
    if (!covered.ok()) return RecordError(covered.status());
    ws.counters.coverage_candidates += ws.miner.stats().candidates_processed;
    ws.counters.intra_branch_tasks += ws.miner.stats().branch_tasks;
    VertexSet covered_global = sub->ToGlobal(*covered);
    const std::size_t covered_size = covered_global.size();

    const std::size_t support = node.tidset.size();
    const double eps = static_cast<double>(covered_size) /
                       static_cast<double>(support);
    const double expected =
        null_model_ != nullptr ? null_model_->Expectation(support) : 1.0;
    const double delta =
        expected > 0.0 ? eps / expected : (eps > 0.0 ? 1e300 : 0.0);

    const bool passes =
        eps >= options_.min_epsilon && delta >= options_.min_delta;
    if (passes && node.items.size() >= options_.min_report_size) {
      ++ws.counters.attribute_sets_reported;
      ResultShard shard;
      shard.key = key;
      AttributeSetStats stats;
      stats.attributes = node.items;
      stats.support = support;
      stats.covered = covered_size;
      stats.epsilon = eps;
      stats.expected_epsilon = expected;
      stats.delta = delta;
      shard.attribute_sets.push_back(std::move(stats));
      if (options_.collect_patterns && covered_size > 0) {
        Status status = CollectPatterns(node, *sub, &ws, &shard);
        if (!status.ok()) return RecordError(std::move(status));
      }
      std::lock_guard<std::mutex> lock(shards_mutex_);
      shards_.push_back(std::move(shard));
    }
    ws.workspace.Recycle(std::move(sub).value());

    // Theorems 4 and 5: upper bounds on eps / delta of any extension.
    const double mass = eps * static_cast<double>(support);
    bool extendable = true;
    if (options_.use_epsilon_pruning &&
        mass <
            options_.min_epsilon * static_cast<double>(options_.min_support)) {
      extendable = false;
    }
    if (extendable && options_.use_delta_pruning && null_model_ != nullptr) {
      const double expected_at_min =
          null_model_->Expectation(options_.min_support);
      if (mass < options_.min_delta * expected_at_min *
                     static_cast<double>(options_.min_support)) {
        extendable = false;
      }
    }
    slot->extendable = extendable;
    if (extendable) {
      // Stored for the children's Theorem-3 intersection, so it goes in
      // hybrid form (dense covered sets intersect by word-AND).
      slot->covered = std::make_shared<const HybridVertexSet>(
          HybridVertexSet::FromVector(std::move(covered_global),
                                      SetUniverse(), set_stats));
    }
  }

  /// Patterns of G(S): top-k (paper §3.2.3) or the complete maximal set
  /// (SCORP semantics), reported in global ids.
  Status CollectPatterns(const Node& node, const InducedSubgraph& sub,
                         WorkerState* ws, ResultShard* shard) {
    std::vector<RankedQuasiClique> found;
    if (options_.pattern_scope == PatternScope::kTopK) {
      Result<std::vector<RankedQuasiClique>> top =
          ws->miner.MineTopK(sub.graph(), options_.top_k);
      if (!top.ok()) return top.status();
      found = std::move(top).value();
    } else {
      Result<std::vector<VertexSet>> all = ws->miner.MineMaximal(sub.graph());
      if (!all.ok()) return all.status();
      found.reserve(all->size());
      for (VertexSet& q : *all) {
        RankedQuasiClique entry;
        entry.min_degree_ratio = MinDegreeRatio(sub.graph(), q);
        entry.vertices = std::move(q);
        found.push_back(std::move(entry));
      }
    }
    ws->counters.coverage_candidates += ws->miner.stats().candidates_processed;
    ws->counters.intra_branch_tasks += ws->miner.stats().branch_tasks;
    for (RankedQuasiClique& q : found) {
      StructuralCorrelationPattern pattern;
      pattern.attributes = node.items;
      pattern.min_degree_ratio = q.min_degree_ratio;
      pattern.edge_density = SubsetDensity(sub.graph(), q.vertices);
      pattern.vertices = sub.ToGlobal(q.vertices);
      shard->patterns.push_back(std::move(pattern));
    }
    return Status::OK();
  }

  const AttributedGraph& graph_;
  const ScpmOptions& options_;
  ExpectationModel* null_model_;
  // Shared by every worker's miner; must outlive pool_ (declared later,
  // destroyed first) because draining tasks may still release slots.
  ParallelismBudget intra_budget_;

  std::vector<std::unique_ptr<WorkerState>> states_;
  ThreadPool::TaskGroup tree_;
  CoveredSetCache cache_;

  std::mutex shards_mutex_;
  std::vector<ResultShard> shards_;

  std::mutex error_mutex_;
  Status first_error_;
  std::atomic<bool> has_error_{false};

  ScpmResult result_;

  // Declared last, destroyed first: joining the workers destroys every
  // outstanding task closure, whose captured ClassNode references erase
  // cache entries — all of which must still be alive at that point.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace

Result<ScpmResult> ScpmMiner::Mine(const AttributedGraph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  Mining mining(graph, options_, null_model_);
  SCPM_RETURN_IF_ERROR(mining.Run());
  return mining.TakeResult();
}

}  // namespace scpm
