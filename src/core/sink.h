// Streaming output sinks for the frontier-driven mining engine.
//
// The engine finalizes attribute sets one frontier entry at a time: once
// an entry's child evaluations complete, every reported child — its stats
// and its patterns — is handed to the run's PatternSink and never touched
// again. A sink therefore chooses the memory profile of a run:
//
//   AccumulatingSink   everything resident, byte-identical ScpmResult
//                      (what ScpmMiner::Mine uses) — O(output) memory.
//   JsonlSink          one JSON line per attribute set, written the
//                      moment the set finalizes — O(frontier) memory.
//   TopKPatternSink    a bounded best-k pattern list — O(k) memory.
//   CallbackSink       user code per finalized set — caller's choice.
//
// Emission keys: every finalized set carries its position in the
// canonical sequential enumeration order (the same lexicographic key the
// parallel engine has always used to make output thread-count
// independent). AccumulatingSink sorts by it; streaming sinks may emit in
// completion order — the *multiset* of emitted sets is deterministic, the
// interleaving across concurrent frontier entries is not (with one worker
// it is exactly the sequential order).
//
// Threading contract: Emit may be called concurrently from pool workers;
// every sink here synchronizes internally. A non-OK Emit status aborts
// the mining run and surfaces from ScpmEngine::Run.

#ifndef SCPM_CORE_SINK_H_
#define SCPM_CORE_SINK_H_

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "core/scpm.h"
#include "util/status.h"

namespace scpm {

/// Position of a finalized attribute set in the canonical sequential
/// enumeration order; lexicographic comparison reproduces that order.
using SinkKey = std::vector<std::uint32_t>;

/// One finalized attribute set: its stats row plus its patterns (empty
/// when collect_patterns is off or nothing was covered).
struct AttributeSetOutput {
  AttributeSetStats stats;
  std::vector<StructuralCorrelationPattern> patterns;
};

class PatternSink {
 public:
  virtual ~PatternSink() = default;

  /// Called exactly once per reported attribute set, possibly from
  /// several pool workers at once. Implementations synchronize
  /// internally; a non-OK return aborts the run.
  virtual Status Emit(const SinkKey& key, AttributeSetOutput output) = 0;
};

/// Default sink: buffers every emission and reassembles the classic
/// ScpmResult, byte-identical to the pre-engine recursive miner for any
/// thread count (key sort = sequential emission order, then the global
/// pattern ranking).
class AccumulatingSink : public PatternSink {
 public:
  Status Emit(const SinkKey& key, AttributeSetOutput output) override;

  /// Sorts and flattens the buffered emissions. Counters are the
  /// engine's, not the sink's: ScpmMiner::Mine copies them from the run.
  /// The sink is left empty.
  ScpmResult TakeResult();

 private:
  struct Shard {
    SinkKey key;
    AttributeSetOutput output;
  };
  std::mutex mutex_;
  std::vector<Shard> shards_;
};

/// Streams one self-contained JSON object per attribute set to an
/// ostream, flushing per line so a budget cut (or a crash) loses at most
/// the line being written. With a graph attached, attribute names ride
/// along; vertex ids are always raw.
class JsonlSink : public PatternSink {
 public:
  /// Borrowed stream; must outlive the sink.
  explicit JsonlSink(std::ostream* os, const AttributedGraph* graph = nullptr)
      : os_(os), graph_(graph) {}

  /// Owning variant: opens `path` for truncating write — or, with
  /// `append` set, appends after the lines already there (crash
  /// recovery resumes a cut run into its own output file).
  static Result<std::unique_ptr<JsonlSink>> Create(
      const std::string& path, const AttributedGraph* graph = nullptr,
      bool append = false);

  Status Emit(const SinkKey& key, AttributeSetOutput output) override;

  /// Attribute sets emitted so far.
  std::uint64_t lines_written() const { return lines_; }

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ofstream> owned_;  // set by Create
  std::ostream* os_;
  const AttributedGraph* graph_;
  std::uint64_t lines_ = 0;
};

/// Keeps only the k globally best patterns under the paper's top-k
/// ranking (size desc, min-degree ratio desc, then attributes/vertices),
/// plus a count of sets seen — O(k) resident regardless of output size.
class TopKPatternSink : public PatternSink {
 public:
  explicit TopKPatternSink(std::size_t k) : k_(k == 0 ? 1 : k) {}

  Status Emit(const SinkKey& key, AttributeSetOutput output) override;

  /// The best patterns seen, in ranking order. The sink keeps running.
  std::vector<StructuralCorrelationPattern> best() const;

  std::uint64_t sets_seen() const;

 private:
  const std::size_t k_;
  mutable std::mutex mutex_;
  std::vector<StructuralCorrelationPattern> best_;  // sorted, size <= k_
  std::uint64_t sets_seen_ = 0;
};

/// Forwards each finalized set to a callback (serialized under a mutex,
/// so the callback need not be thread-safe).
class CallbackSink : public PatternSink {
 public:
  using Callback =
      std::function<Status(const SinkKey&, const AttributeSetOutput&)>;
  explicit CallbackSink(Callback callback)
      : callback_(std::move(callback)) {}

  Status Emit(const SinkKey& key, AttributeSetOutput output) override;

 private:
  std::mutex mutex_;
  Callback callback_;
};

}  // namespace scpm

#endif  // SCPM_CORE_SINK_H_
