#include "core/naive.h"

#include <algorithm>
#include <utility>

#include "fim/eclat.h"
#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "qclique/quasi_clique.h"

namespace scpm {

Result<ScpmResult> NaiveMiner::Mine(const AttributedGraph& graph) {
  SCPM_RETURN_IF_ERROR(options_.Validate());

  EclatOptions eclat_options;
  eclat_options.min_support = options_.min_support;
  eclat_options.max_itemset_size = options_.max_attribute_set_size;
  Eclat eclat(eclat_options);
  Result<std::vector<FrequentItemset>> frequent = eclat.MineAll(graph);
  if (!frequent.ok()) return frequent.status();

  // Full quasi-clique enumeration: coverage/top-k shortcuts disabled.
  QuasiCliqueMinerOptions miner_options;
  miner_options.params = options_.quasi_clique;
  QuasiCliqueMiner miner(miner_options);

  ScpmResult result;
  for (const FrequentItemset& itemset : *frequent) {
    ++result.counters.attribute_sets_evaluated;
    Result<InducedSubgraph> sub =
        InducedSubgraph::Create(graph.graph(), itemset.tidset);
    if (!sub.ok()) return sub.status();
    std::vector<bool> covered(sub->NumVertices(), false);
    std::vector<VertexSet> cliques;
    if (options_.collect_patterns) {
      Result<std::vector<VertexSet>> maximal = miner.MineMaximal(sub->graph());
      if (!maximal.ok()) return maximal.status();
      cliques = std::move(maximal).value();
      for (const VertexSet& q : cliques) {
        for (VertexId v : q) covered[v] = true;
      }
    } else {
      // Coverage only: the union over all reported sets equals the
      // union over the maximal ones, so stream them as found instead of
      // materializing the maximal list.
      Status streamed = miner.MineMaximalInto(
          sub->graph(), [&covered](const VertexSet& q) {
            for (VertexId v : q) covered[v] = true;
          });
      if (!streamed.ok()) return streamed;
    }
    result.counters.coverage_candidates +=
        miner.stats().candidates_processed;
    std::size_t covered_count = 0;
    for (bool c : covered) covered_count += c ? 1 : 0;

    const std::size_t support = itemset.support();
    const double eps = static_cast<double>(covered_count) /
                       static_cast<double>(support);
    const double expected =
        null_model_ != nullptr ? null_model_->Expectation(support) : 1.0;
    const double delta =
        expected > 0.0 ? eps / expected : (eps > 0.0 ? 1e300 : 0.0);

    if (eps < options_.min_epsilon || delta < options_.min_delta) continue;
    if (itemset.items.size() < options_.min_report_size) continue;

    ++result.counters.attribute_sets_reported;
    AttributeSetStats stats;
    stats.attributes = itemset.items;
    stats.support = support;
    stats.covered = covered_count;
    stats.epsilon = eps;
    stats.expected_epsilon = expected;
    stats.delta = delta;
    result.attribute_sets.push_back(std::move(stats));

    if (options_.collect_patterns && covered_count > 0) {
      // Select the top-k patterns after the fact from the complete set.
      std::vector<StructuralCorrelationPattern> local;
      local.reserve(cliques.size());
      for (const VertexSet& q : cliques) {
        StructuralCorrelationPattern pattern;
        pattern.attributes = itemset.items;
        pattern.min_degree_ratio = MinDegreeRatio(sub->graph(), q);
        pattern.edge_density = SubsetDensity(sub->graph(), q);
        pattern.vertices = sub->ToGlobal(q);
        local.push_back(std::move(pattern));
      }
      SortPatterns(&local);
      if (local.size() > options_.top_k) local.resize(options_.top_k);
      for (auto& p : local) result.patterns.push_back(std::move(p));
    }
  }
  SortPatterns(&result.patterns);
  return result;
}

}  // namespace scpm
