// Frontier-driven SCPM mining engine.
//
// The paper's Algorithm 2 walks the attribute-set lattice; the original
// implementation expressed that walk as recursive task spawning, which
// ties the run's lifetime and memory to the whole lattice. This engine
// makes the walk's state explicit — a deterministic work-list (the
// *frontier*) of expansion entries, in the style of Galois worklists and
// LTSmin exploration frontiers — and drains it in fixed-size waves on the
// existing work-stealing pool. An entry expands one member of one
// evaluated equivalence class: it evaluates the member's children,
// finalizes the reported ones into the run's PatternSink, and appends the
// extendable children's class back onto the frontier.
//
// What the explicit frontier buys:
//
//  * Streaming output — a finalized attribute set leaves the engine
//    immediately through the sink; with a streaming sink, resident memory
//    is O(frontier), not O(output).
//  * Budgets / anytime mining — evaluation-count and pattern-count
//    budgets cut the run at the next wave boundary (a deterministic,
//    thread-count-independent point); a wall-clock deadline additionally
//    latches a CancelToken that the quasi-clique searches poll, so even
//    one long coverage search stops within a candidate's work. Entries in
//    flight at a deadline cut are discarded whole and re-queued (their
//    output was never emitted), so no attribute set is ever emitted
//    twice.
//  * Checkpoint / resume — a cut run serializes the remaining frontier
//    (pending entries, their classes' attribute sets, and the Theorem-3
//    covered sets children still need). Resume(checkpoint) recomputes the
//    cheap derived state (tidsets) and continues; the union of emissions
//    across the cut run and its resumes equals an uncut run's output
//    exactly.
//
// Determinism contract: with no budget, the engine's output through an
// AccumulatingSink is byte-identical — rows, patterns, and every counter
// — to the pre-engine recursive miner, for any thread count and any
// frontier wave size. Traversal order changes; the keyed emission order
// and the per-evaluation arithmetic do not.

#ifndef SCPM_CORE_ENGINE_H_
#define SCPM_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/scpm.h"
#include "core/sink.h"
#include "graph/attributed_graph.h"
#include "graph/types.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// Anytime budgets. All default to "unlimited"; the evaluation and
/// pattern budgets are enforced at wave boundaries only, so their cut
/// point is a pure function of the input (never of thread count or
/// timing). The deadline is wall-clock and therefore cuts at whichever
/// boundary the clock picks — still an entry-consistent state.
struct EngineBudget {
  /// Cut once this many attribute-set evaluations have completed
  /// (0 = unlimited).
  std::uint64_t max_evaluations = 0;
  /// Cut once this many patterns have been emitted to the sink
  /// (0 = unlimited).
  std::uint64_t max_patterns = 0;
  /// Wall-clock deadline in milliseconds from Run/Resume entry
  /// (0 = none).
  std::uint64_t deadline_ms = 0;

  bool unlimited() const {
    return max_evaluations == 0 && max_patterns == 0 && deadline_ms == 0;
  }
};

/// Serializable snapshot of a cut run: everything a later process needs
/// to finish the walk. Tidsets are deliberately absent — they are
/// recomputed from the graph's attribute index on resume, which keeps the
/// checkpoint O(frontier) in the covered sets only.
class EngineCheckpoint {
 public:
  /// One evaluated, extendable attribute set still referenced by pending
  /// expansion entries.
  struct Member {
    AttributeSet items;
    VertexSet covered;  // K_S, for the children's Theorem-3 pruning
  };
  /// An equivalence class with at least one unexpanded member.
  struct PendingClass {
    std::vector<std::uint32_t> path;  // emission-key prefix of the class
    std::vector<Member> members;
  };
  /// One pending expansion entry: class index + member index.
  struct PendingExpansion {
    std::uint32_t class_index = 0;
    std::uint32_t sibling = 0;
  };
  /// One pending root (singleton) evaluation batch; `indices` are the
  /// positions in the frequent-singleton list (they fix emission keys).
  struct PendingRootBatch {
    std::vector<std::uint32_t> indices;
    std::vector<AttributeId> attrs;
  };
  /// An already-evaluated, extendable singleton awaiting root-class
  /// formation (roots phase only).
  struct DoneRoot {
    std::uint32_t index = 0;
    AttributeId attr = 0;
    VertexSet covered;
  };

  bool empty() const {
    return root_batches.empty() && classes.empty() && !valid;
  }

  Status Save(std::ostream& os) const;
  std::string Serialize() const;
  static Result<EngineCheckpoint> Load(std::istream& is);
  static Result<EngineCheckpoint> Parse(const std::string& text);

  // Binding: a checkpoint only resumes against the same graph shape and
  // the same output-relevant options (perf knobs may differ).
  VertexId num_vertices = 0;
  std::uint64_t num_attributes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t options_fingerprint = 0;

  bool in_roots_phase = false;
  std::vector<DoneRoot> done_roots;            // roots phase
  std::vector<PendingRootBatch> root_batches;  // roots phase, frontier order
  std::vector<PendingClass> classes;           // tree phase
  std::vector<PendingExpansion> expansions;    // tree phase, frontier order
  bool valid = false;  // set by the engine / a successful parse
};

/// Outcome of one Run/Resume segment.
struct MiningRun {
  /// True when the lattice walk completed; false when a budget cut it.
  bool exhausted = true;
  /// Engine counters for THIS segment (cancelled in-flight entries
  /// contribute nothing, so deterministic budgets yield deterministic
  /// counters). A resumed run's counters do not include prior segments.
  ScpmCounters counters;
  /// Attribute sets / patterns emitted to the sink during this segment.
  std::uint64_t emitted = 0;
  std::uint64_t patterns_emitted = 0;
  /// Frontier entries remaining at the cut (0 when exhausted).
  std::size_t frontier_entries = 0;
  /// Set when exhausted is false.
  EngineCheckpoint checkpoint;
};

/// Wave-boundary progress snapshot for observers.
struct EngineProgress {
  std::uint64_t evaluations = 0;
  std::uint64_t emitted = 0;
  std::size_t frontier_entries = 0;
};

/// The engine. Stateless between calls apart from configuration; each
/// Run/Resume builds its own pool, worker states, and frontier. The
/// optional null model is borrowed and must be the same (semantically)
/// across a checkpoint's segments — the fingerprint only records its
/// presence.
class ScpmEngine {
 public:
  explicit ScpmEngine(ScpmOptions options,
                      ExpectationModel* null_model = nullptr)
      : options_(options), null_model_(null_model) {}

  const ScpmOptions& options() const { return options_; }

  void set_budget(EngineBudget budget) { budget_ = budget; }
  const EngineBudget& budget() const { return budget_; }

  /// Entries drained per frontier wave. Budget checks happen between
  /// waves, so this is the cut granularity; it never affects what an
  /// uncut run mines. Thread-count independent by default on purpose.
  void set_frontier_wave(std::size_t wave) {
    frontier_wave_ = wave == 0 ? 1 : wave;
  }

  /// Observer invoked at every wave boundary (from the driving thread).
  void set_progress(std::function<void(const EngineProgress&)> progress) {
    progress_ = std::move(progress);
  }

  /// Walks the whole lattice (or up to the budget), emitting every
  /// reported attribute set into `sink`.
  Result<MiningRun> Run(const AttributedGraph& graph, PatternSink* sink);

  /// Continues a cut run. The checkpoint must have been produced against
  /// the same graph and output-relevant options. Emits only sets not yet
  /// emitted by earlier segments.
  Result<MiningRun> Resume(const AttributedGraph& graph,
                           const EngineCheckpoint& checkpoint,
                           PatternSink* sink);

  /// Fingerprint of the output-relevant options (thresholds, scope,
  /// ordering, pruning toggles, null-model presence) used to bind
  /// checkpoints. Perf knobs (threads, grains, hybrid/simd toggles) are
  /// excluded: they never change what is mined.
  static std::uint64_t OptionsFingerprint(const ScpmOptions& options,
                                          bool has_null_model);

 private:
  ScpmOptions options_;
  ExpectationModel* null_model_;
  EngineBudget budget_;
  std::size_t frontier_wave_ = 16;
  std::function<void(const EngineProgress&)> progress_;
};

}  // namespace scpm

#endif  // SCPM_CORE_ENGINE_H_
