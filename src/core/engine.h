// Frontier-driven SCPM mining engine.
//
// The paper's Algorithm 2 walks the attribute-set lattice; the original
// implementation expressed that walk as recursive task spawning, which
// ties the run's lifetime and memory to the whole lattice. This engine
// makes the walk's state explicit — a deterministic work-list (the
// *frontier*) of expansion entries, in the style of Galois worklists and
// LTSmin exploration frontiers — and drains it in fixed-size waves on the
// existing work-stealing pool. An entry expands one member of one
// evaluated equivalence class: it evaluates the member's children,
// finalizes the reported ones into the run's PatternSink, and appends the
// extendable children's class back onto the frontier.
//
// What the explicit frontier buys:
//
//  * Streaming output — a finalized attribute set leaves the engine
//    immediately through the sink; with a streaming sink, resident memory
//    is O(frontier), not O(output).
//  * Budgets / anytime mining — evaluation-count and pattern-count
//    budgets cut the run at the next wave boundary (a deterministic,
//    thread-count-independent point); a wall-clock deadline additionally
//    latches a CancelToken that the quasi-clique searches poll, so even
//    one long coverage search stops within a candidate's work. Entries in
//    flight at a deadline cut are discarded whole and re-queued (their
//    output was never emitted), so no attribute set is ever emitted
//    twice.
//  * Checkpoint / resume — a cut run serializes the remaining frontier
//    (pending entries, their classes' attribute sets, and the Theorem-3
//    covered sets children still need). Resume(checkpoint) recomputes the
//    cheap derived state (tidsets) and continues; the union of emissions
//    across the cut run and its resumes equals an uncut run's output
//    exactly.
//
// Determinism contract: with no budget, the engine's output through an
// AccumulatingSink is byte-identical — rows, patterns, and every counter
// — to the pre-engine recursive miner, for any thread count and any
// frontier wave size. Traversal order changes; the keyed emission order
// and the per-evaluation arithmetic do not.

#ifndef SCPM_CORE_ENGINE_H_
#define SCPM_CORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/scpm.h"
#include "core/sink.h"
#include "graph/attributed_graph.h"
#include "graph/types.h"
#include "util/cancel.h"
#include "util/hybrid_set.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

class ParallelismBudget;
class ThreadPool;

/// On-disk / on-wire encoding for EngineCheckpoint (see
/// core/ckpt_codec.h for the layouts).
///  kText   — format version 1, the original whitespace-token form.
///  kBinary — format version 2, length-prefixed with interned set
///            tables; several times smaller and the default everywhere.
/// Readers auto-detect; the enum only selects what writers emit.
enum class CheckpointFormat : std::uint8_t { kText = 1, kBinary = 2 };

/// Cross-run evaluation memo consulted by the engine, one lookup per
/// attribute-set evaluation. The stored value is the complete outcome of
/// evaluating an attribute set — its Theorem-3 covered set, whether it
/// passed the report thresholds (and with what stats/patterns), and
/// whether it is extendable — all of which are pure functions of (graph,
/// output-relevant options, attribute set). A hit skips the induced
/// subgraph build and both quasi-clique searches and replays the stored
/// outcome, so the emitted rows and patterns are byte-identical to a
/// cold evaluation; only the work counters (coverage candidates, kernel
/// dispatches) shrink to reflect the work actually done.
///
/// The caller is responsible for binding: an implementation must never
/// serve a value recorded under a different graph or a different
/// OptionsFingerprint (the server wraps its cache in a per-query view
/// keyed by graph epoch + fingerprint; see server/memo.h). Lookup and
/// Insert may be called concurrently from pool workers.
class EvalMemo {
 public:
  struct Evaluation {
    VertexSet covered;  // K_S in global ids (sorted)
    bool extendable = false;
    bool reported = false;
    AttributeSetOutput output;  // valid when reported
  };

  virtual ~EvalMemo() = default;

  /// Returns the memoized evaluation of `items`, or nullptr on miss.
  virtual std::shared_ptr<const Evaluation> Lookup(
      const AttributeSet& items) = 0;

  /// Publishes a finished evaluation. Implementations may drop it (size
  /// cap) or keep an existing entry — concurrent inserts for the same
  /// key carry identical values by construction.
  virtual void Insert(const AttributeSet& items,
                      std::shared_ptr<const Evaluation> eval) = 0;
};

/// Anytime budgets. All default to "unlimited"; the evaluation and
/// pattern budgets are enforced at wave boundaries only, so their cut
/// point is a pure function of the input (never of thread count or
/// timing). The deadline is wall-clock and therefore cuts at whichever
/// boundary the clock picks — still an entry-consistent state.
struct EngineBudget {
  /// Cut once this many attribute-set evaluations have completed
  /// (0 = unlimited).
  std::uint64_t max_evaluations = 0;
  /// Cut once this many patterns have been emitted to the sink
  /// (0 = unlimited).
  std::uint64_t max_patterns = 0;
  /// Wall-clock deadline in milliseconds from Run/Resume entry
  /// (0 = none).
  std::uint64_t deadline_ms = 0;

  bool unlimited() const {
    return max_evaluations == 0 && max_patterns == 0 && deadline_ms == 0;
  }
};

/// Serializable snapshot of a cut run: everything a later process needs
/// to finish the walk. Tidsets are deliberately absent — they are
/// recomputed from the graph's attribute index on resume, which keeps the
/// checkpoint O(frontier) in the covered sets only.
class EngineCheckpoint {
 public:
  /// One evaluated, extendable attribute set still referenced by pending
  /// expansion entries.
  struct Member {
    AttributeSet items;
    VertexSet covered;  // K_S, for the children's Theorem-3 pruning
    // In-memory fast path (hot checkpoints): the live sets carried
    // across same-process segments so resume skips re-validation,
    // re-normalization, and tidset recomputation — required for sliced
    // runs to keep byte-identical work counters, not just identical
    // output. Never serialized; Save() falls back to the cold form.
    // hot_tidset may borrow graph-owned storage, so a hot checkpoint
    // only resumes against the same live graph object.
    std::shared_ptr<const HybridVertexSet> hot_covered;
    HybridVertexSet hot_tidset;
  };
  /// An equivalence class with at least one unexpanded member.
  struct PendingClass {
    std::vector<std::uint32_t> path;  // emission-key prefix of the class
    std::vector<Member> members;
  };
  /// One pending expansion entry: class index + member index.
  struct PendingExpansion {
    std::uint32_t class_index = 0;
    std::uint32_t sibling = 0;
  };
  /// One pending root (singleton) evaluation batch; `indices` are the
  /// positions in the frequent-singleton list (they fix emission keys).
  struct PendingRootBatch {
    std::vector<std::uint32_t> indices;
    std::vector<AttributeId> attrs;
  };
  /// An already-evaluated, extendable singleton awaiting root-class
  /// formation (roots phase only).
  struct DoneRoot {
    std::uint32_t index = 0;
    AttributeId attr = 0;
    VertexSet covered;
    // Hot fast path; see Member.
    std::shared_ptr<const HybridVertexSet> hot_covered;
    HybridVertexSet hot_tidset;
  };

  bool empty() const {
    return root_batches.empty() && classes.empty() && !valid;
  }

  Status Save(std::ostream& os,
              CheckpointFormat format = CheckpointFormat::kBinary) const;
  std::string Serialize(
      CheckpointFormat format = CheckpointFormat::kBinary) const;
  /// Load/Parse detect the format from the leading bytes; v1 text files
  /// written before the binary codec landed keep resuming unchanged.
  static Result<EngineCheckpoint> Load(std::istream& is);
  static Result<EngineCheckpoint> Parse(const std::string& text);

  // Binding: a checkpoint only resumes against the same graph shape and
  // the same output-relevant options (perf knobs may differ).
  VertexId num_vertices = 0;
  std::uint64_t num_attributes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t options_fingerprint = 0;

  bool in_roots_phase = false;
  std::vector<DoneRoot> done_roots;            // roots phase
  std::vector<PendingRootBatch> root_batches;  // roots phase, frontier order
  std::vector<PendingClass> classes;           // tree phase
  std::vector<PendingExpansion> expansions;    // tree phase, frontier order
  bool valid = false;  // set by the engine / a successful parse
};

/// Outcome of one Run/Resume segment.
struct MiningRun {
  /// True when the lattice walk completed; false when a budget cut it.
  bool exhausted = true;
  /// Engine counters for THIS segment (cancelled in-flight entries
  /// contribute nothing, so deterministic budgets yield deterministic
  /// counters). A resumed run's counters do not include prior segments.
  ScpmCounters counters;
  /// Attribute sets / patterns emitted to the sink during this segment.
  std::uint64_t emitted = 0;
  std::uint64_t patterns_emitted = 0;
  /// Frontier entries remaining at the cut (0 when exhausted).
  std::size_t frontier_entries = 0;
  /// Evaluation-memo outcomes for this segment (both zero when no memo
  /// is attached). Hits replay a stored evaluation; misses did the work
  /// and published it. hits + misses = attribute_sets_evaluated.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  /// Set when exhausted is false.
  EngineCheckpoint checkpoint;
};

/// Wave-boundary progress snapshot for observers.
struct EngineProgress {
  std::uint64_t evaluations = 0;
  std::uint64_t emitted = 0;
  std::uint64_t patterns_emitted = 0;
  std::size_t frontier_entries = 0;
};

/// The engine. Stateless between calls apart from configuration; each
/// Run/Resume builds its own pool, worker states, and frontier. The
/// optional null model is borrowed and must be the same (semantically)
/// across a checkpoint's segments — the fingerprint only records its
/// presence.
class ScpmEngine {
 public:
  explicit ScpmEngine(ScpmOptions options,
                      ExpectationModel* null_model = nullptr)
      : options_(options), null_model_(null_model) {}

  const ScpmOptions& options() const { return options_; }

  void set_budget(EngineBudget budget) { budget_ = budget; }
  const EngineBudget& budget() const { return budget_; }

  /// Entries drained per frontier wave. Budget checks happen between
  /// waves, so this is the cut granularity; it never affects what an
  /// uncut run mines. Thread-count independent by default on purpose.
  void set_frontier_wave(std::size_t wave) {
    frontier_wave_ = wave == 0 ? 1 : wave;
  }

  /// Observer invoked at every wave boundary (from the driving thread).
  void set_progress(std::function<void(const EngineProgress&)> progress) {
    progress_ = std::move(progress);
  }

  /// Periodic durability observer: at the first wave boundary at least
  /// `interval_ms` after the previous snapshot (and after Run/Resume
  /// entry), the observer receives a cold — serializable — checkpoint
  /// of the remaining frontier plus the segment's progress so far, then
  /// the run continues. The snapshot is a copy; hot checkpoints never
  /// leak into it, so it may outlive the run and the process. The
  /// observer runs on the driving thread between waves (workers are
  /// parked), so it may do I/O without racing the engine. interval_ms
  /// == 0 or a null observer disables periodic snapshots; neither
  /// affects what is mined or the budget-cut checkpoint in MiningRun.
  void set_checkpoint_observer(
      std::uint64_t interval_ms,
      std::function<void(const EngineCheckpoint&, const EngineProgress&)>
          observer) {
    checkpoint_interval_ms_ = interval_ms;
    checkpoint_observer_ = std::move(observer);
  }

  /// Runs waves on a caller-owned pool instead of building one per
  /// Run/Resume, with intra-search decomposition drawing slots from the
  /// caller's budget. Both pointers are borrowed and must outlive every
  /// Run/Resume; pass nullptrs to return to per-run pools. Placement
  /// only: the shared pool overrides options.num_threads for *where*
  /// tasks execute, never for what is mined, so output stays
  /// byte-identical. This is what lets one resident server multiplex
  /// many concurrent engine runs over one set of worker threads.
  void set_shared_pool(ThreadPool* pool, ParallelismBudget* intra_budget) {
    shared_pool_ = pool;
    shared_intra_budget_ = intra_budget;
  }

  /// Attaches a cross-run evaluation memo (borrowed; may be nullptr).
  /// The caller must guarantee the memo only serves values recorded
  /// under this engine's graph and OptionsFingerprint.
  void set_eval_memo(EvalMemo* memo) { memo_ = memo; }

  /// Borrows an external cancel token for the next Run/Resume (nullptr
  /// reverts to a per-run internal token). RequestCancel() from any
  /// thread cuts the run at the next wave boundary exactly like a
  /// deadline: in-flight entries are discarded whole and re-queued, the
  /// run returns exhausted=false with a valid checkpoint, and nothing is
  /// ever emitted twice. The engine arms budget().deadline_ms on this
  /// token before the first wave; the caller must only RequestCancel,
  /// never SetDeadline. One token serves one run at a time.
  void set_cancel_token(CancelToken* token) { cancel_ = token; }

  /// Hot checkpoints: a budget-cut run's EngineCheckpoint additionally
  /// carries the live covered/tidset hybrid sets (Member::hot_covered
  /// etc.), and Resume() seeds from them directly instead of rebuilding
  /// from the cold vectors. This skips the resume-side validation,
  /// normalization, and tidset recomputation entirely, so a run chopped
  /// into N same-process segments reports byte-identical summed work
  /// counters to an uncut run. Hot checkpoints are memory-only: they
  /// must resume in the same process against the same graph object
  /// (Save() materializes the cold form for anything else).
  void set_hot_checkpoints(bool on) { hot_checkpoints_ = on; }

  /// Uncounted seeding: Resume() rebuilds covered sets and tidsets from
  /// a cold checkpoint without charging those set operations to the
  /// run's work counters. Distributed workers switch this on — each
  /// batch checkpoint is a cold serialization that a single-process run
  /// never pays for, so leaving the reconstruction uncounted is what
  /// makes summed worker counters byte-identical to one process mining
  /// the same lattice. Never changes what is mined.
  void set_uncounted_seeding(bool on) { uncounted_seeding_ = on; }

  /// Walks the whole lattice (or up to the budget), emitting every
  /// reported attribute set into `sink`.
  Result<MiningRun> Run(const AttributedGraph& graph, PatternSink* sink);

  /// Continues a cut run. The checkpoint must have been produced against
  /// the same graph and output-relevant options. Emits only sets not yet
  /// emitted by earlier segments.
  Result<MiningRun> Resume(const AttributedGraph& graph,
                           const EngineCheckpoint& checkpoint,
                           PatternSink* sink);

  /// Fingerprint of the output-relevant options (thresholds, scope,
  /// ordering, pruning toggles, null-model presence) used to bind
  /// checkpoints. Perf knobs (threads, grains, hybrid/simd toggles) are
  /// excluded: they never change what is mined.
  static std::uint64_t OptionsFingerprint(const ScpmOptions& options,
                                          bool has_null_model);

 private:
  ScpmOptions options_;
  ExpectationModel* null_model_;
  EngineBudget budget_;
  std::size_t frontier_wave_ = 16;
  std::function<void(const EngineProgress&)> progress_;
  std::uint64_t checkpoint_interval_ms_ = 0;
  std::function<void(const EngineCheckpoint&, const EngineProgress&)>
      checkpoint_observer_;
  ThreadPool* shared_pool_ = nullptr;
  ParallelismBudget* shared_intra_budget_ = nullptr;
  EvalMemo* memo_ = nullptr;
  CancelToken* cancel_ = nullptr;
  bool hot_checkpoints_ = false;
  bool uncounted_seeding_ = false;
};

}  // namespace scpm

#endif  // SCPM_CORE_ENGINE_H_
