#include "core/request.h"

#include <utility>

#include "util/fault.h"
#include "util/hybrid_set.h"
#include "util/simd_ops.h"

namespace scpm {

Status MiningRequest::Validate() const {
  SCPM_RETURN_IF_ERROR(options.Validate());
  if (sink == Sink::kJsonl && jsonl_stream == nullptr && jsonl_path.empty()) {
    return Status::InvalidArgument(
        "sink \"jsonl\" requires an output path or stream");
  }
  if (sink == Sink::kTopK && sink_k == 0) {
    return Status::InvalidArgument("sink_k must be >= 1");
  }
  if (checkpoint_interval_ms != 0 && on_checkpoint == nullptr) {
    return Status::InvalidArgument(
        "checkpoint_interval_ms requires an on_checkpoint callback");
  }
  return Status::OK();
}

void MiningRequest::ApplyProcessToggles() const {
  if (simd.has_value()) SetSimdDispatch(*simd);
  if (chunked.has_value()) HybridVertexSet::SetChunkedEnabled(*chunked);
}

Result<std::unique_ptr<RequestSinks>> RequestSinks::Create(
    const MiningRequest& request, const AttributedGraph* graph) {
  if (FaultInjector::Instance().ShouldFail(fault::kAlloc)) {
    return Status::ResourceExhausted("injected fault: sink allocation");
  }
  auto sinks = std::unique_ptr<RequestSinks>(new RequestSinks());
  switch (request.sink) {
    case MiningRequest::Sink::kAccumulate:
      sinks->active_ = &sinks->accumulate_;
      break;
    case MiningRequest::Sink::kJsonl:
      if (request.jsonl_stream != nullptr) {
        sinks->jsonl_ =
            std::make_unique<JsonlSink>(request.jsonl_stream, graph);
      } else {
        Result<std::unique_ptr<JsonlSink>> opened = JsonlSink::Create(
            request.jsonl_path, graph, request.jsonl_append);
        SCPM_RETURN_IF_ERROR(opened.status());
        sinks->jsonl_ = std::move(opened).value();
      }
      sinks->active_ = sinks->jsonl_.get();
      break;
    case MiningRequest::Sink::kTopK:
      sinks->topk_ = std::make_unique<TopKPatternSink>(request.sink_k);
      sinks->active_ = sinks->topk_.get();
      break;
  }
  return sinks;
}

void RequestSinks::Harvest(const MiningRequest& request,
                           MiningResponse* response) {
  switch (request.sink) {
    case MiningRequest::Sink::kAccumulate:
      response->result = accumulate_.TakeResult();
      response->result.counters = response->run.counters;
      break;
    case MiningRequest::Sink::kJsonl:
      response->jsonl_lines = jsonl_->lines_written();
      break;
    case MiningRequest::Sink::kTopK:
      response->top_patterns = topk_->best();
      response->top_sets_seen = topk_->sets_seen();
      break;
  }
}

Result<MiningResponse> ExecuteRequest(const AttributedGraph& graph,
                                      const MiningRequest& request,
                                      ExpectationModel* null_model,
                                      const EngineCheckpoint* resume) {
  SCPM_RETURN_IF_ERROR(request.Validate());
  Result<std::unique_ptr<RequestSinks>> sinks =
      RequestSinks::Create(request, &graph);
  SCPM_RETURN_IF_ERROR(sinks.status());

  ScpmEngine engine(request.options, null_model);
  engine.set_budget(request.budget);
  if (request.checkpoint_interval_ms != 0) {
    engine.set_checkpoint_observer(request.checkpoint_interval_ms,
                                   request.on_checkpoint);
  }
  Result<MiningRun> run =
      resume != nullptr ? engine.Resume(graph, *resume, (*sinks)->sink())
                        : engine.Run(graph, (*sinks)->sink());
  SCPM_RETURN_IF_ERROR(run.status());

  MiningResponse response;
  response.run = std::move(run).value();
  (*sinks)->Harvest(request, &response);
  return response;
}

Result<MiningResponse> ScpmMiner::Mine(const AttributedGraph& graph,
                                       const MiningRequest& request) {
  return ExecuteRequest(graph, request, null_model_);
}

}  // namespace scpm
