#include "core/validation.h"

#include <cmath>
#include <map>

#include "graph/subgraph.h"
#include "qclique/quasi_clique.h"
#include "util/sorted_ops.h"

namespace scpm {
namespace {

std::string Describe(const AttributedGraph& graph, const AttributeSet& s) {
  return graph.FormatAttributeSet(s);
}

}  // namespace

Status ValidateResult(const AttributedGraph& graph,
                      const ScpmOptions& options, const ScpmResult& result) {
  SCPM_RETURN_IF_ERROR(options.Validate());

  std::map<AttributeSet, const AttributeSetStats*> reported;
  for (const AttributeSetStats& s : result.attribute_sets) {
    if (!IsStrictlySorted(s.attributes)) {
      return Status::Internal("attribute set not sorted: " +
                              Describe(graph, s.attributes));
    }
    const VertexSet induced = graph.VerticesWithAll(s.attributes);
    if (induced.size() != s.support) {
      return Status::Internal("support mismatch for " +
                              Describe(graph, s.attributes));
    }
    if (s.support < options.min_support) {
      return Status::Internal("support below sigma_min for " +
                              Describe(graph, s.attributes));
    }
    if (s.covered > s.support) {
      return Status::Internal("covered exceeds support for " +
                              Describe(graph, s.attributes));
    }
    const double eps = static_cast<double>(s.covered) /
                       static_cast<double>(s.support);
    if (std::abs(eps - s.epsilon) > 1e-9) {
      return Status::Internal("eps != covered/support for " +
                              Describe(graph, s.attributes));
    }
    if (s.epsilon < options.min_epsilon - 1e-12) {
      return Status::Internal("eps below eps_min for " +
                              Describe(graph, s.attributes));
    }
    if (s.expected_epsilon > 0.0 &&
        std::abs(s.delta - s.epsilon / s.expected_epsilon) >
            1e-6 * std::max(1.0, s.delta)) {
      return Status::Internal("delta != eps/expected for " +
                              Describe(graph, s.attributes));
    }
    if (s.attributes.size() < options.min_report_size) {
      return Status::Internal("attribute set below min_report_size: " +
                              Describe(graph, s.attributes));
    }
    reported[s.attributes] = &s;
  }

  for (const StructuralCorrelationPattern& p : result.patterns) {
    auto it = reported.find(p.attributes);
    if (it == reported.end()) {
      return Status::Internal("pattern for unreported attribute set " +
                              Describe(graph, p.attributes));
    }
    if (!IsStrictlySorted(p.vertices)) {
      return Status::Internal("pattern vertex set not sorted");
    }
    const VertexSet induced = graph.VerticesWithAll(p.attributes);
    if (!SortedIsSubset(p.vertices, induced)) {
      return Status::Internal("pattern vertices outside V(S) for " +
                              Describe(graph, p.attributes));
    }
    if (p.vertices.size() < options.quasi_clique.min_size) {
      return Status::Internal("pattern below min_size for " +
                              Describe(graph, p.attributes));
    }
    Result<InducedSubgraph> sub =
        InducedSubgraph::Create(graph.graph(), induced);
    if (!sub.ok()) return sub.status();
    VertexSet local;
    local.reserve(p.vertices.size());
    for (VertexId v : p.vertices) local.push_back(sub->ToLocal(v));
    if (!SatisfiesDegreeConstraint(sub->graph(), local,
                                   options.quasi_clique)) {
      return Status::Internal("pattern violates degree constraint for " +
                              Describe(graph, p.attributes));
    }
    const double ratio = MinDegreeRatio(sub->graph(), local);
    if (std::abs(ratio - p.min_degree_ratio) > 1e-9) {
      return Status::Internal("min_degree_ratio mismatch for " +
                              Describe(graph, p.attributes));
    }
  }
  return Status::OK();
}

}  // namespace scpm
