#include "core/export.h"

#include <fstream>
#include <iomanip>

namespace scpm {
namespace {

std::string JoinAttributeNames(const AttributedGraph& graph,
                               const AttributeSet& attrs) {
  std::string out;
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += "|";
    out += graph.AttributeName(attrs[i]);
  }
  return out;
}

std::string JoinVertices(const VertexSet& vertices) {
  std::string out;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    if (i > 0) out += "|";
    out += std::to_string(vertices[i]);
  }
  return out;
}

}  // namespace

std::string CsvEscape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += "\"";
  return out;
}

Status WriteAttributeSetsCsv(const AttributedGraph& graph,
                             const ScpmResult& result, std::ostream& os) {
  os << "attributes,support,covered,epsilon,expected_epsilon,delta\n";
  os << std::setprecision(12);
  for (const AttributeSetStats& s : result.attribute_sets) {
    os << CsvEscape(JoinAttributeNames(graph, s.attributes)) << ","
       << s.support << "," << s.covered << "," << s.epsilon << ","
       << s.expected_epsilon << "," << s.delta << "\n";
  }
  if (!os) return Status::IoError("attribute-set CSV write failed");
  return Status::OK();
}

Status WriteAttributeSetsCsv(const AttributedGraph& graph,
                             const ScpmResult& result,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteAttributeSetsCsv(graph, result, out);
}

Status WritePatternsCsv(const AttributedGraph& graph,
                        const ScpmResult& result, std::ostream& os) {
  os << "attributes,vertices,size,min_degree_ratio,edge_density\n";
  os << std::setprecision(12);
  for (const StructuralCorrelationPattern& p : result.patterns) {
    os << CsvEscape(JoinAttributeNames(graph, p.attributes)) << ","
       << JoinVertices(p.vertices) << "," << p.size() << ","
       << p.min_degree_ratio << "," << p.edge_density << "\n";
  }
  if (!os) return Status::IoError("pattern CSV write failed");
  return Status::OK();
}

Status WritePatternsCsv(const AttributedGraph& graph,
                        const ScpmResult& result, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WritePatternsCsv(graph, result, out);
}

}  // namespace scpm
