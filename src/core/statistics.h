// Output summaries for the parameter-sensitivity experiments (Figure 10).

#ifndef SCPM_CORE_STATISTICS_H_
#define SCPM_CORE_STATISTICS_H_

#include <cstddef>
#include <vector>

#include "core/pattern.h"

namespace scpm {

/// Averages of eps / delta over the complete output ("global") and over
/// the top 10% of attribute sets by the respective metric (paper §4.3).
struct OutputSummary {
  std::size_t num_attribute_sets = 0;
  double avg_epsilon_global = 0.0;
  double avg_epsilon_top10 = 0.0;
  double avg_delta_global = 0.0;
  double avg_delta_top10 = 0.0;
};

/// Computes the Figure-10 summary statistics.
OutputSummary SummarizeOutput(const std::vector<AttributeSetStats>& stats);

}  // namespace scpm

#endif  // SCPM_CORE_STATISTICS_H_
