// Output summaries for the parameter-sensitivity experiments (Figure 10)
// and engine-effort reporting shared by the CLI and the benches.

#ifndef SCPM_CORE_STATISTICS_H_
#define SCPM_CORE_STATISTICS_H_

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "core/scpm.h"

namespace scpm {

/// Averages of eps / delta over the complete output ("global") and over
/// the top 10% of attribute sets by the respective metric (paper §4.3).
struct OutputSummary {
  std::size_t num_attribute_sets = 0;
  double avg_epsilon_global = 0.0;
  double avg_epsilon_top10 = 0.0;
  double avg_delta_global = 0.0;
  double avg_delta_top10 = 0.0;
};

/// Computes the Figure-10 summary statistics.
OutputSummary SummarizeOutput(const std::vector<AttributeSetStats>& stats);

/// One-line human-readable rendering of the engine counters, e.g.
/// "evaluated=12 reported=7 extended=5 candidates=3301 batches=4
/// intra_evals=1 intra_tasks=33 bitmap_isects=90 gallop_isects=2
/// chunked_isects=4 dense_convs=7 chunked_convs=2".
std::string FormatScpmCounters(const ScpmCounters& counters);

/// The same counters as a flat JSON object (keys match the field names)
/// plus the active "simd_dispatch" tag; the bench smoke jobs embed this
/// in their BENCH_*.json artifacts so the effort trajectory is tracked
/// alongside the timings and attributable to a kernel variant.
std::string ScpmCountersJson(const ScpmCounters& counters);

/// Appends every ScpmCounters field to `os` as " <value>" in declaration
/// order — the one stream encoding shared by the dist result payload and
/// the coordinator's durable counter trailer (the caller writes its own
/// leading token/version). The field count is pinned by a static_assert
/// in statistics.cc so adding a counter cannot silently desync the two.
std::ostream& WriteScpmCountersFields(std::ostream& os,
                                      const ScpmCounters& counters);

/// Inverse of WriteScpmCountersFields; returns false when any field
/// fails to parse (the stream is left failed).
bool ReadScpmCountersFields(std::istream& is, ScpmCounters* counters);

}  // namespace scpm

#endif  // SCPM_CORE_STATISTICS_H_
