// EngineCheckpoint codecs: v1 text and v2 binary (see ckpt_codec.h for
// the format rationale). Both live here so the two encoders and the
// auto-detecting reader stay in one translation unit; engine.cc owns
// only the mining machinery.

#include "core/ckpt_codec.h"

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <istream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "util/hybrid_set.h"
#include "util/status.h"

namespace scpm {
namespace {

// ------------------------------------------------------------ shared

// Hot checkpoints carry live hybrid sets and leave the cold vector
// empty; serialization materializes the cold form so a saved file is
// identical either way.
VertexSet ColdCovered(const VertexSet& cold,
                      const std::shared_ptr<const HybridVertexSet>& hot) {
  if (hot != nullptr && cold.empty()) return hot->ToVector();
  return cold;
}

// --------------------------------------------------------- text (v1)

void WriteVertexSet(std::ostream& os, const VertexSet& v) {
  os << v.size();
  for (VertexId x : v) os << ' ' << x;
}

bool ReadCount(std::istream& is, std::uint64_t limit, std::uint64_t* out) {
  if (!(is >> *out)) return false;
  return *out <= limit;
}

bool ReadVertexSet(std::istream& is, VertexSet* out) {
  std::uint64_t count = 0;
  if (!ReadCount(is, std::uint64_t{1} << 32, &count)) return false;
  out->clear();
  // The count is untrusted until the elements actually parse: cap the
  // up-front reservation so a tiny file claiming 2^32 elements fails at
  // the first missing token instead of in a giant allocation.
  out->reserve(static_cast<std::size_t>(std::min<std::uint64_t>(count, 4096)));
  for (std::uint64_t k = 0; k < count; ++k) {
    VertexId v;
    if (!(is >> v)) return false;
    out->push_back(v);
  }
  return true;
}

bool ExpectToken(std::istream& is, const char* token) {
  std::string word;
  return (is >> word) && word == token;
}

Status SaveText(const EngineCheckpoint& cp, std::ostream& os) {
  os << "scpm-checkpoint 1\n";
  os << "graph " << cp.num_vertices << ' ' << cp.num_attributes << ' '
     << cp.num_edges << "\n";
  os << "options " << cp.options_fingerprint << "\n";
  os << "phase " << (cp.in_roots_phase ? "roots" : "tree") << "\n";
  os << "done-roots " << cp.done_roots.size() << "\n";
  for (const EngineCheckpoint::DoneRoot& dr : cp.done_roots) {
    os << "root " << dr.index << ' ' << dr.attr << ' ';
    WriteVertexSet(os, ColdCovered(dr.covered, dr.hot_covered));
    os << "\n";
  }
  os << "root-batches " << cp.root_batches.size() << "\n";
  for (const EngineCheckpoint::PendingRootBatch& batch : cp.root_batches) {
    os << "batch " << batch.attrs.size();
    for (std::size_t k = 0; k < batch.attrs.size(); ++k) {
      os << ' ' << batch.indices[k] << ' ' << batch.attrs[k];
    }
    os << "\n";
  }
  os << "classes " << cp.classes.size() << "\n";
  for (const EngineCheckpoint::PendingClass& pc : cp.classes) {
    os << "class " << pc.path.size();
    for (std::uint32_t p : pc.path) os << ' ' << p;
    os << ' ' << pc.members.size() << "\n";
    for (const EngineCheckpoint::Member& m : pc.members) {
      os << "member " << m.items.size();
      for (AttributeId a : m.items) os << ' ' << a;
      os << ' ';
      WriteVertexSet(os, ColdCovered(m.covered, m.hot_covered));
      os << "\n";
    }
  }
  os << "expansions " << cp.expansions.size() << "\n";
  for (const EngineCheckpoint::PendingExpansion& e : cp.expansions) {
    os << e.class_index << ' ' << e.sibling << "\n";
  }
  os << "end\n";
  if (!os.good()) return Status::IoError("checkpoint write failed");
  return Status::OK();
}

// The caller already consumed the "scpm-checkpoint" magic token while
// detecting the format; parsing continues at the version number.
Result<EngineCheckpoint> LoadTextBody(std::istream& is) {
  const Status malformed = Status::InvalidArgument("malformed checkpoint");
  EngineCheckpoint cp;
  std::string word;
  std::uint64_t version = 0;
  if (!(is >> version)) return malformed;
  if (version != 1) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ExpectToken(is, "graph") || !(is >> cp.num_vertices) ||
      !(is >> cp.num_attributes) || !(is >> cp.num_edges)) {
    return malformed;
  }
  if (!ExpectToken(is, "options") || !(is >> cp.options_fingerprint)) {
    return malformed;
  }
  if (!ExpectToken(is, "phase") || !(is >> word)) return malformed;
  if (word == "roots") {
    cp.in_roots_phase = true;
  } else if (word == "tree") {
    cp.in_roots_phase = false;
  } else {
    return malformed;
  }

  constexpr std::uint64_t kMaxItems = std::uint64_t{1} << 32;
  std::uint64_t count = 0;
  if (!ExpectToken(is, "done-roots") || !ReadCount(is, kMaxItems, &count)) {
    return malformed;
  }
  for (std::uint64_t k = 0; k < count; ++k) {
    EngineCheckpoint::DoneRoot dr;
    if (!ExpectToken(is, "root") || !(is >> dr.index) || !(is >> dr.attr) ||
        !ReadVertexSet(is, &dr.covered)) {
      return malformed;
    }
    cp.done_roots.push_back(std::move(dr));
  }

  if (!ExpectToken(is, "root-batches") || !ReadCount(is, kMaxItems, &count)) {
    return malformed;
  }
  for (std::uint64_t k = 0; k < count; ++k) {
    EngineCheckpoint::PendingRootBatch batch;
    std::uint64_t size = 0;
    if (!ExpectToken(is, "batch") || !ReadCount(is, kMaxItems, &size)) {
      return malformed;
    }
    for (std::uint64_t j = 0; j < size; ++j) {
      std::uint32_t index = 0;
      AttributeId attr = 0;
      if (!(is >> index) || !(is >> attr)) return malformed;
      batch.indices.push_back(index);
      batch.attrs.push_back(attr);
    }
    cp.root_batches.push_back(std::move(batch));
  }

  if (!ExpectToken(is, "classes") || !ReadCount(is, kMaxItems, &count)) {
    return malformed;
  }
  for (std::uint64_t k = 0; k < count; ++k) {
    EngineCheckpoint::PendingClass pc;
    std::uint64_t path_len = 0;
    std::uint64_t members = 0;
    if (!ExpectToken(is, "class") || !ReadCount(is, kMaxItems, &path_len)) {
      return malformed;
    }
    for (std::uint64_t j = 0; j < path_len; ++j) {
      std::uint32_t p = 0;
      if (!(is >> p)) return malformed;
      pc.path.push_back(p);
    }
    if (!ReadCount(is, kMaxItems, &members)) return malformed;
    for (std::uint64_t j = 0; j < members; ++j) {
      EngineCheckpoint::Member m;
      std::uint64_t attrs = 0;
      if (!ExpectToken(is, "member") || !ReadCount(is, kMaxItems, &attrs)) {
        return malformed;
      }
      for (std::uint64_t a = 0; a < attrs; ++a) {
        AttributeId id = 0;
        if (!(is >> id)) return malformed;
        m.items.push_back(id);
      }
      if (!ReadVertexSet(is, &m.covered)) return malformed;
      pc.members.push_back(std::move(m));
    }
    cp.classes.push_back(std::move(pc));
  }

  if (!ExpectToken(is, "expansions") || !ReadCount(is, kMaxItems, &count)) {
    return malformed;
  }
  for (std::uint64_t k = 0; k < count; ++k) {
    EngineCheckpoint::PendingExpansion e;
    if (!(is >> e.class_index) || !(is >> e.sibling)) return malformed;
    cp.expansions.push_back(e);
  }
  if (!ExpectToken(is, "end")) return malformed;
  cp.valid = true;
  return cp;
}

// ------------------------------------------------------- binary (v2)
//
// Layout ("fixed64" = 8 bytes little-endian, everything else varint):
//
//   "SCPB"  varint version=2  fixed64 fnv1a64(payload)  varint |payload|
//   payload:
//     num_vertices  num_attributes  num_edges   fixed64 options_fp
//     byte phase (1 = roots, 0 = tree)
//     vertex-set table     (front-coded, see AppendSetTable)
//     attribute-set table  (same encoding)
//     done-roots:    count, then per root  (index, attr, vset-id)
//     root-batches:  count, then per batch (n, then n x (index, attr))
//     classes:       count, then per class (path-len, path...,
//                    member-count, then per member (aset-id, vset-id))
//     expansions:    count, then per entry (class-index, sibling)
//
// The checksum covers the payload only; the prefix fields protect
// themselves (a corrupt length or version fails structurally). Decoding
// must consume the payload exactly, which together with the
// deterministic table order makes decode(encode(x)) re-encode
// byte-identically.

constexpr char kBinaryMagic[4] = {'S', 'C', 'P', 'B'};
constexpr std::uint64_t kBinaryVersion = 2;

std::uint64_t Fnv1a64(const char* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void AppendVarint(std::string* out, std::uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(0x80u | (value & 0x7fu)));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

void AppendFixed64(std::string* out, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xffu));
  }
}

// Bounds-checked cursor over the decoded payload. All Read* methods
// latch `ok` false on underflow / overlong input and then read zeros,
// so decode loops can check once per structure instead of per field.
struct ByteReader {
  const char* p = nullptr;
  const char* end = nullptr;
  bool ok = true;

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  std::uint64_t ReadVarint() {
    std::uint64_t value = 0;
    int shift = 0;
    while (ok && p < end) {
      const unsigned char byte = static_cast<unsigned char>(*p++);
      if (shift == 63 && byte > 1) break;  // would overflow 64 bits
      value |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
      if ((byte & 0x80u) == 0) return value;
      shift += 7;
      if (shift > 63) break;
    }
    ok = false;
    return 0;
  }

  std::uint64_t ReadFixed64() {
    if (remaining() < 8) {
      ok = false;
      return 0;
    }
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<std::uint64_t>(static_cast<unsigned char>(*p++))
               << (8 * i);
    }
    return value;
  }

  std::uint8_t ReadByte() {
    if (p >= end) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(*p++);
  }

  // Varint that must fit the given structural bound (counts are capped
  // by the bytes actually present: every encoded element costs >= 1
  // byte, so a count beyond `remaining` is malformed by construction).
  std::uint64_t ReadCount(std::uint64_t limit) {
    const std::uint64_t value = ReadVarint();
    if (value > limit || value > remaining()) ok = false;
    return ok ? value : 0;
  }
};

// Interns sorted u32 sets; ids are assigned in lexicographic order so
// the encoded table is deterministic and front-coding sees maximally
// similar neighbors. Keys are pointers into the caller's materialized
// sets (which outlive the interner) compared by value — encode never
// copies a covered set.
class SetInterner {
 public:
  void Add(const std::vector<std::uint32_t>& set) { ids_.emplace(&set, 0); }

  void Freeze() {
    std::uint64_t id = 0;
    for (auto& entry : ids_) entry.second = id++;
  }

  std::uint64_t IdOf(const std::vector<std::uint32_t>& set) const {
    return ids_.find(&set)->second;
  }

  // Front-coded table: per entry a header varint (lcp << 1 | raw), then
  // the suffix count and suffix values. For the sorted-unique fast path
  // (raw = 0) suffix values are deltas against the previous element of
  // the entry (the first suffix element is absolute when lcp == 0). A
  // non-monotone set — impossible for engine-produced checkpoints but
  // cheap to stay total over — is stored raw with lcp 0.
  void AppendTable(std::string* out) const {
    AppendVarint(out, ids_.size());
    const std::vector<std::uint32_t>* prev = nullptr;
    for (const auto& entry : ids_) {
      const std::vector<std::uint32_t>& set = *entry.first;
      bool sorted = true;
      for (std::size_t j = 1; j < set.size(); ++j) {
        if (set[j] <= set[j - 1]) {
          sorted = false;
          break;
        }
      }
      std::size_t lcp = 0;
      if (sorted && prev != nullptr) {
        const std::size_t max = std::min(prev->size(), set.size());
        while (lcp < max && (*prev)[lcp] == set[lcp]) ++lcp;
      }
      AppendVarint(out, (static_cast<std::uint64_t>(lcp) << 1) |
                            (sorted ? 0u : 1u));
      AppendVarint(out, set.size() - lcp);
      for (std::size_t j = lcp; j < set.size(); ++j) {
        if (!sorted || j == 0) {
          AppendVarint(out, set[j]);
        } else {
          AppendVarint(out, set[j] - set[j - 1]);
        }
      }
      prev = &set;
    }
  }

 private:
  struct DerefLess {
    bool operator()(const std::vector<std::uint32_t>* a,
                    const std::vector<std::uint32_t>* b) const {
      return *a < *b;
    }
  };
  std::map<const std::vector<std::uint32_t>*, std::uint64_t, DerefLess> ids_;
};

bool ReadSetTable(ByteReader* r, std::vector<std::vector<std::uint32_t>>* out) {
  const std::uint64_t count = r->ReadCount(std::uint64_t{1} << 32);
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (std::uint64_t k = 0; k < count && r->ok; ++k) {
    const std::uint64_t header = r->ReadVarint();
    const bool raw = (header & 1) != 0;
    const std::uint64_t lcp = header >> 1;
    if (raw && lcp != 0) r->ok = false;
    if (out->empty() ? lcp != 0 : lcp > out->back().size()) r->ok = false;
    const std::uint64_t suffix = r->ReadCount(std::uint64_t{1} << 32);
    if (!r->ok) break;
    std::vector<std::uint32_t> set;
    set.reserve(static_cast<std::size_t>(lcp + suffix));
    if (lcp > 0) {
      const std::vector<std::uint32_t>& prev = out->back();
      set.assign(prev.begin(), prev.begin() + static_cast<std::size_t>(lcp));
    }
    for (std::uint64_t j = 0; j < suffix && r->ok; ++j) {
      const std::uint64_t v = r->ReadVarint();
      std::uint64_t value = v;
      if (!raw && !set.empty()) value = set.back() + v;
      if (value > 0xffffffffull) r->ok = false;
      if (r->ok) set.push_back(static_cast<std::uint32_t>(value));
    }
    out->push_back(std::move(set));
  }
  return r->ok;
}

std::string EncodeBinary(const EngineCheckpoint& cp) {
  // Materialize hot covered sets once; reused for interning and for the
  // id lookups below.
  std::vector<VertexSet> root_covered;
  root_covered.reserve(cp.done_roots.size());
  for (const EngineCheckpoint::DoneRoot& dr : cp.done_roots) {
    root_covered.push_back(ColdCovered(dr.covered, dr.hot_covered));
  }
  std::vector<std::vector<VertexSet>> member_covered(cp.classes.size());
  SetInterner vsets;
  SetInterner asets;
  for (const VertexSet& v : root_covered) vsets.Add(v);
  for (std::size_t c = 0; c < cp.classes.size(); ++c) {
    member_covered[c].reserve(cp.classes[c].members.size());
    for (const EngineCheckpoint::Member& m : cp.classes[c].members) {
      member_covered[c].push_back(ColdCovered(m.covered, m.hot_covered));
      vsets.Add(member_covered[c].back());
      asets.Add(m.items);
    }
  }
  vsets.Freeze();
  asets.Freeze();

  std::string payload;
  AppendVarint(&payload, cp.num_vertices);
  AppendVarint(&payload, cp.num_attributes);
  AppendVarint(&payload, cp.num_edges);
  AppendFixed64(&payload, cp.options_fingerprint);
  payload.push_back(cp.in_roots_phase ? '\x01' : '\x00');
  vsets.AppendTable(&payload);
  asets.AppendTable(&payload);

  AppendVarint(&payload, cp.done_roots.size());
  for (std::size_t k = 0; k < cp.done_roots.size(); ++k) {
    AppendVarint(&payload, cp.done_roots[k].index);
    AppendVarint(&payload, cp.done_roots[k].attr);
    AppendVarint(&payload, vsets.IdOf(root_covered[k]));
  }
  AppendVarint(&payload, cp.root_batches.size());
  for (const EngineCheckpoint::PendingRootBatch& batch : cp.root_batches) {
    AppendVarint(&payload, batch.attrs.size());
    for (std::size_t k = 0; k < batch.attrs.size(); ++k) {
      AppendVarint(&payload, batch.indices[k]);
      AppendVarint(&payload, batch.attrs[k]);
    }
  }
  AppendVarint(&payload, cp.classes.size());
  for (std::size_t c = 0; c < cp.classes.size(); ++c) {
    const EngineCheckpoint::PendingClass& pc = cp.classes[c];
    AppendVarint(&payload, pc.path.size());
    for (std::uint32_t p : pc.path) AppendVarint(&payload, p);
    AppendVarint(&payload, pc.members.size());
    for (std::size_t k = 0; k < pc.members.size(); ++k) {
      AppendVarint(&payload, asets.IdOf(pc.members[k].items));
      AppendVarint(&payload, vsets.IdOf(member_covered[c][k]));
    }
  }
  AppendVarint(&payload, cp.expansions.size());
  for (const EngineCheckpoint::PendingExpansion& e : cp.expansions) {
    AppendVarint(&payload, e.class_index);
    AppendVarint(&payload, e.sibling);
  }

  std::string out;
  out.reserve(payload.size() + 24);
  out.append(kBinaryMagic, sizeof(kBinaryMagic));
  AppendVarint(&out, kBinaryVersion);
  AppendFixed64(&out, Fnv1a64(payload.data(), payload.size()));
  AppendVarint(&out, payload.size());
  out.append(payload);
  return out;
}

// The caller already consumed the 4-byte magic while detecting the
// format; `is` is positioned at the version varint.
Result<EngineCheckpoint> LoadBinaryBody(std::istream& is) {
  const Status malformed = Status::InvalidArgument("malformed checkpoint");
  // Prefix fields (version, checksum, length) are read byte-by-byte off
  // the stream; the payload is then pulled in one read of exactly the
  // declared length, leaving any trailer bytes unconsumed.
  auto read_prefix_varint = [&is](std::uint64_t* out) {
    std::uint64_t value = 0;
    int shift = 0;
    for (;;) {
      const int c = is.get();
      if (c == std::char_traits<char>::eof() || shift > 63) return false;
      value |= static_cast<std::uint64_t>(c & 0x7f) << shift;
      if ((c & 0x80) == 0) break;
      shift += 7;
    }
    *out = value;
    return true;
  };
  std::uint64_t version = 0;
  if (!read_prefix_varint(&version)) return malformed;
  if (version != kBinaryVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  char checksum_bytes[8];
  if (!is.read(checksum_bytes, 8)) return malformed;
  std::uint64_t checksum = 0;
  for (int i = 0; i < 8; ++i) {
    checksum |= static_cast<std::uint64_t>(
                    static_cast<unsigned char>(checksum_bytes[i]))
                << (8 * i);
  }
  std::uint64_t payload_len = 0;
  if (!read_prefix_varint(&payload_len)) return malformed;
  if (payload_len > (std::uint64_t{1} << 40)) return malformed;
  std::string payload(static_cast<std::size_t>(payload_len), '\0');
  if (payload_len > 0 &&
      !is.read(payload.data(), static_cast<std::streamsize>(payload_len))) {
    return malformed;
  }
  if (Fnv1a64(payload.data(), payload.size()) != checksum) {
    return Status::InvalidArgument("checkpoint checksum mismatch");
  }

  ByteReader r{payload.data(), payload.data() + payload.size(), true};
  EngineCheckpoint cp;
  cp.num_vertices = static_cast<VertexId>(r.ReadVarint());
  cp.num_attributes = r.ReadVarint();
  cp.num_edges = r.ReadVarint();
  cp.options_fingerprint = r.ReadFixed64();
  const std::uint8_t phase = r.ReadByte();
  if (phase > 1) r.ok = false;
  cp.in_roots_phase = phase == 1;

  std::vector<std::vector<std::uint32_t>> vsets;
  std::vector<std::vector<std::uint32_t>> asets;
  if (!r.ok || !ReadSetTable(&r, &vsets) || !ReadSetTable(&r, &asets)) {
    return malformed;
  }

  std::uint64_t count = r.ReadCount(std::uint64_t{1} << 32);
  for (std::uint64_t k = 0; k < count && r.ok; ++k) {
    EngineCheckpoint::DoneRoot dr;
    dr.index = static_cast<std::uint32_t>(r.ReadVarint());
    dr.attr = static_cast<AttributeId>(r.ReadVarint());
    const std::uint64_t id = r.ReadVarint();
    if (id >= vsets.size()) {
      r.ok = false;
      break;
    }
    dr.covered = vsets[static_cast<std::size_t>(id)];
    cp.done_roots.push_back(std::move(dr));
  }

  count = r.ReadCount(std::uint64_t{1} << 32);
  for (std::uint64_t k = 0; k < count && r.ok; ++k) {
    EngineCheckpoint::PendingRootBatch batch;
    const std::uint64_t n = r.ReadCount(std::uint64_t{1} << 32);
    for (std::uint64_t j = 0; j < n && r.ok; ++j) {
      batch.indices.push_back(static_cast<std::uint32_t>(r.ReadVarint()));
      batch.attrs.push_back(static_cast<AttributeId>(r.ReadVarint()));
    }
    cp.root_batches.push_back(std::move(batch));
  }

  count = r.ReadCount(std::uint64_t{1} << 32);
  for (std::uint64_t k = 0; k < count && r.ok; ++k) {
    EngineCheckpoint::PendingClass pc;
    const std::uint64_t path_len = r.ReadCount(std::uint64_t{1} << 32);
    for (std::uint64_t j = 0; j < path_len && r.ok; ++j) {
      pc.path.push_back(static_cast<std::uint32_t>(r.ReadVarint()));
    }
    const std::uint64_t members = r.ReadCount(std::uint64_t{1} << 32);
    for (std::uint64_t j = 0; j < members && r.ok; ++j) {
      EngineCheckpoint::Member m;
      const std::uint64_t aid = r.ReadVarint();
      const std::uint64_t vid = r.ReadVarint();
      if (aid >= asets.size() || vid >= vsets.size()) {
        r.ok = false;
        break;
      }
      m.items = asets[static_cast<std::size_t>(aid)];
      m.covered = vsets[static_cast<std::size_t>(vid)];
      pc.members.push_back(std::move(m));
    }
    cp.classes.push_back(std::move(pc));
  }

  count = r.ReadCount(std::uint64_t{1} << 32);
  for (std::uint64_t k = 0; k < count && r.ok; ++k) {
    EngineCheckpoint::PendingExpansion e;
    e.class_index = static_cast<std::uint32_t>(r.ReadVarint());
    e.sibling = static_cast<std::uint32_t>(r.ReadVarint());
    cp.expansions.push_back(e);
  }

  // The payload must be consumed exactly: trailing garbage would break
  // the re-encode byte-identity guarantee, so it is malformed too.
  if (!r.ok || r.p != r.end) return malformed;
  cp.valid = true;
  return cp;
}

}  // namespace

// ----------------------------------------------- EngineCheckpoint API

Status EngineCheckpoint::Save(std::ostream& os, CheckpointFormat format) const {
  if (format == CheckpointFormat::kText) return SaveText(*this, os);
  const std::string encoded = EncodeBinary(*this);
  os.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  if (!os.good()) return Status::IoError("checkpoint write failed");
  return Status::OK();
}

std::string EngineCheckpoint::Serialize(CheckpointFormat format) const {
  if (format == CheckpointFormat::kBinary) return EncodeBinary(*this);
  std::ostringstream os;
  SaveText(*this, os).ok();
  return os.str();
}

Result<EngineCheckpoint> EngineCheckpoint::Load(std::istream& is) {
  return LoadCheckpoint(is, nullptr);
}

Result<EngineCheckpoint> EngineCheckpoint::Parse(const std::string& text) {
  std::istringstream is(text);
  return Load(is);
}

Result<EngineCheckpoint> LoadCheckpoint(std::istream& is,
                                        CheckpointFormat* detected) {
  const Status malformed = Status::InvalidArgument("malformed checkpoint");
  // Both formats tolerate leading whitespace (the journal and the dist
  // frames terminate the preceding meta line with '\n').
  is >> std::ws;
  char magic[4];
  if (!is.read(magic, 4)) return malformed;
  if (std::memcmp(magic, kBinaryMagic, 4) == 0) {
    if (detected != nullptr) *detected = CheckpointFormat::kBinary;
    return LoadBinaryBody(is);
  }
  if (detected != nullptr) *detected = CheckpointFormat::kText;
  // Text magic is the token "scpm-checkpoint": re-attach the 4 consumed
  // bytes to the token read.
  std::string word(magic, 4);
  std::string rest;
  if (!(is >> rest)) return malformed;
  word += rest;
  if (word != "scpm-checkpoint") return malformed;
  return LoadTextBody(is);
}

Result<CheckpointFormat> ParseCheckpointFormat(const std::string& name) {
  if (name == "text") return CheckpointFormat::kText;
  if (name == "binary") return CheckpointFormat::kBinary;
  return Status::InvalidArgument("unknown checkpoint format: " + name);
}

const char* CheckpointFormatName(CheckpointFormat format) {
  return format == CheckpointFormat::kText ? "text" : "binary";
}

void AppendCheckpointVarint(std::string* out, std::uint64_t value) {
  AppendVarint(out, value);
}

}  // namespace scpm
