// Output types of structural correlation pattern mining.

#ifndef SCPM_CORE_PATTERN_H_
#define SCPM_CORE_PATTERN_H_

#include <cstddef>
#include <string>
#include <vector>

#include "graph/attributed_graph.h"
#include "graph/types.h"

namespace scpm {

/// A structural correlation pattern (paper Definition 3): a quasi-clique Q
/// from the subgraph induced by attribute set S.
struct StructuralCorrelationPattern {
  AttributeSet attributes;       // S, sorted
  VertexSet vertices;            // Q, sorted global vertex ids
  double min_degree_ratio = 0;   // the paper's per-pattern "gamma" column
  double edge_density = 0;       // 2|E(Q)| / (|Q| (|Q|-1))

  std::size_t size() const { return vertices.size(); }
};

/// Per-attribute-set statistics (the paper's sigma, epsilon, delta columns).
struct AttributeSetStats {
  AttributeSet attributes;        // S, sorted
  std::size_t support = 0;        // sigma(S) = |V(S)|
  std::size_t covered = 0;        // |K_S|
  double epsilon = 0.0;           // eps(S) = covered / support
  double expected_epsilon = 1.0;  // exp(sigma(S)) under the null model
  double delta = 0.0;             // eps / expected (delta_lb or delta_sim)
};

/// Ranking keys for reporting tables.
enum class AttributeSetOrder { kBySupport, kByEpsilon, kByDelta };

/// Returns a copy of `stats` sorted descending by the requested key
/// (ties: larger support first, then lexicographic attribute set).
std::vector<AttributeSetStats> RankAttributeSets(
    const std::vector<AttributeSetStats>& stats, AttributeSetOrder order);

/// The paper's top-k ranking: (size desc, min_degree_ratio desc,
/// attributes, vertices). The single source of truth — SortPatterns and
/// the streaming TopKPatternSink both order by it.
bool PatternRankLess(const StructuralCorrelationPattern& a,
                     const StructuralCorrelationPattern& b);

/// Sorts patterns by PatternRankLess.
void SortPatterns(std::vector<StructuralCorrelationPattern>* patterns);

/// One-line rendering, e.g. "({A, B}, {6,7,8}) size=3 gamma=0.67".
std::string FormatPattern(const AttributedGraph& graph,
                          const StructuralCorrelationPattern& pattern);

}  // namespace scpm

#endif  // SCPM_CORE_PATTERN_H_
