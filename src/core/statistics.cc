#include "core/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/simd_ops.h"

namespace scpm {
namespace {

double Mean(const std::vector<double>& values, std::size_t count) {
  if (count == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += values[i];
  return sum / static_cast<double>(count);
}

}  // namespace

OutputSummary SummarizeOutput(const std::vector<AttributeSetStats>& stats) {
  OutputSummary out;
  out.num_attribute_sets = stats.size();
  if (stats.empty()) return out;

  std::vector<double> eps, delta;
  eps.reserve(stats.size());
  delta.reserve(stats.size());
  for (const AttributeSetStats& s : stats) {
    eps.push_back(s.epsilon);
    delta.push_back(s.delta);
  }
  std::sort(eps.rbegin(), eps.rend());
  std::sort(delta.rbegin(), delta.rend());

  const std::size_t top = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(0.1 * static_cast<double>(stats.size()))));
  out.avg_epsilon_global = Mean(eps, eps.size());
  out.avg_epsilon_top10 = Mean(eps, top);
  out.avg_delta_global = Mean(delta, delta.size());
  out.avg_delta_top10 = Mean(delta, top);
  return out;
}

std::string FormatScpmCounters(const ScpmCounters& counters) {
  std::ostringstream os;
  os << "evaluated=" << counters.attribute_sets_evaluated
     << " reported=" << counters.attribute_sets_reported
     << " extended=" << counters.attribute_sets_extended
     << " candidates=" << counters.coverage_candidates
     << " batches=" << counters.evaluation_batches
     << " intra_evals=" << counters.intra_search_evaluations
     << " intra_tasks=" << counters.intra_branch_tasks
     << " bitmap_isects=" << counters.bitmap_intersections
     << " gallop_isects=" << counters.galloping_intersections
     << " chunked_isects=" << counters.chunked_intersections
     << " dense_convs=" << counters.dense_conversions
     << " chunked_convs=" << counters.chunked_conversions;
  return os.str();
}

std::string ScpmCountersJson(const ScpmCounters& counters) {
  std::ostringstream os;
  os << "{\"attribute_sets_evaluated\":" << counters.attribute_sets_evaluated
     << ",\"attribute_sets_reported\":" << counters.attribute_sets_reported
     << ",\"attribute_sets_extended\":" << counters.attribute_sets_extended
     << ",\"coverage_candidates\":" << counters.coverage_candidates
     << ",\"evaluation_batches\":" << counters.evaluation_batches
     << ",\"intra_search_evaluations\":" << counters.intra_search_evaluations
     << ",\"intra_branch_tasks\":" << counters.intra_branch_tasks
     << ",\"bitmap_intersections\":" << counters.bitmap_intersections
     << ",\"galloping_intersections\":" << counters.galloping_intersections
     << ",\"chunked_intersections\":" << counters.chunked_intersections
     << ",\"dense_conversions\":" << counters.dense_conversions
     << ",\"chunked_conversions\":" << counters.chunked_conversions
     // The active kernel variant, so every bench JSON row carrying these
     // counters is attributable to a dispatch path.
     << ",\"simd_dispatch\":\"" << SimdDispatchName() << "\"}";
  return os.str();
}

// Both stream codecs below walk the counters in declaration order; if
// this assert fires, a field was added or removed — update the two
// functions together and bump the versions of the formats that embed
// them (dist-result and scpm-dist-trailer).
static_assert(sizeof(ScpmCounters) == 12 * sizeof(std::uint64_t),
              "ScpmCounters field list changed: update "
              "Write/ReadScpmCountersFields and the embedding formats");

std::ostream& WriteScpmCountersFields(std::ostream& os,
                                      const ScpmCounters& c) {
  return os << ' ' << c.attribute_sets_evaluated << ' '
            << c.attribute_sets_reported << ' ' << c.attribute_sets_extended
            << ' ' << c.coverage_candidates << ' ' << c.evaluation_batches
            << ' ' << c.intra_search_evaluations << ' '
            << c.intra_branch_tasks << ' ' << c.bitmap_intersections << ' '
            << c.galloping_intersections << ' ' << c.chunked_intersections
            << ' ' << c.dense_conversions << ' ' << c.chunked_conversions;
}

bool ReadScpmCountersFields(std::istream& is, ScpmCounters* c) {
  return static_cast<bool>(
      is >> c->attribute_sets_evaluated >> c->attribute_sets_reported >>
      c->attribute_sets_extended >> c->coverage_candidates >>
      c->evaluation_batches >> c->intra_search_evaluations >>
      c->intra_branch_tasks >> c->bitmap_intersections >>
      c->galloping_intersections >> c->chunked_intersections >>
      c->dense_conversions >> c->chunked_conversions);
}

}  // namespace scpm
