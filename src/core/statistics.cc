#include "core/statistics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/simd_ops.h"

namespace scpm {
namespace {

double Mean(const std::vector<double>& values, std::size_t count) {
  if (count == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += values[i];
  return sum / static_cast<double>(count);
}

}  // namespace

OutputSummary SummarizeOutput(const std::vector<AttributeSetStats>& stats) {
  OutputSummary out;
  out.num_attribute_sets = stats.size();
  if (stats.empty()) return out;

  std::vector<double> eps, delta;
  eps.reserve(stats.size());
  delta.reserve(stats.size());
  for (const AttributeSetStats& s : stats) {
    eps.push_back(s.epsilon);
    delta.push_back(s.delta);
  }
  std::sort(eps.rbegin(), eps.rend());
  std::sort(delta.rbegin(), delta.rend());

  const std::size_t top = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(0.1 * static_cast<double>(stats.size()))));
  out.avg_epsilon_global = Mean(eps, eps.size());
  out.avg_epsilon_top10 = Mean(eps, top);
  out.avg_delta_global = Mean(delta, delta.size());
  out.avg_delta_top10 = Mean(delta, top);
  return out;
}

std::string FormatScpmCounters(const ScpmCounters& counters) {
  std::ostringstream os;
  os << "evaluated=" << counters.attribute_sets_evaluated
     << " reported=" << counters.attribute_sets_reported
     << " extended=" << counters.attribute_sets_extended
     << " candidates=" << counters.coverage_candidates
     << " batches=" << counters.evaluation_batches
     << " intra_evals=" << counters.intra_search_evaluations
     << " intra_tasks=" << counters.intra_branch_tasks
     << " bitmap_isects=" << counters.bitmap_intersections
     << " gallop_isects=" << counters.galloping_intersections
     << " chunked_isects=" << counters.chunked_intersections
     << " dense_convs=" << counters.dense_conversions
     << " chunked_convs=" << counters.chunked_conversions;
  return os.str();
}

std::string ScpmCountersJson(const ScpmCounters& counters) {
  std::ostringstream os;
  os << "{\"attribute_sets_evaluated\":" << counters.attribute_sets_evaluated
     << ",\"attribute_sets_reported\":" << counters.attribute_sets_reported
     << ",\"attribute_sets_extended\":" << counters.attribute_sets_extended
     << ",\"coverage_candidates\":" << counters.coverage_candidates
     << ",\"evaluation_batches\":" << counters.evaluation_batches
     << ",\"intra_search_evaluations\":" << counters.intra_search_evaluations
     << ",\"intra_branch_tasks\":" << counters.intra_branch_tasks
     << ",\"bitmap_intersections\":" << counters.bitmap_intersections
     << ",\"galloping_intersections\":" << counters.galloping_intersections
     << ",\"chunked_intersections\":" << counters.chunked_intersections
     << ",\"dense_conversions\":" << counters.dense_conversions
     << ",\"chunked_conversions\":" << counters.chunked_conversions
     // The active kernel variant, so every bench JSON row carrying these
     // counters is attributable to a dispatch path.
     << ",\"simd_dispatch\":\"" << SimdDispatchName() << "\"}";
  return os.str();
}

}  // namespace scpm
