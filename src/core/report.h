// Text reports mirroring the paper's tables.

#ifndef SCPM_CORE_REPORT_H_
#define SCPM_CORE_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/pattern.h"
#include "core/scpm.h"
#include "graph/attributed_graph.h"

namespace scpm {

/// Prints the paper's Tables 2/3/4 layout: the top `top_n` attribute sets
/// by support, epsilon, and delta side by side (three blocks).
void PrintTopAttributeSets(std::ostream& os, const AttributedGraph& graph,
                           const std::vector<AttributeSetStats>& stats,
                           std::size_t top_n);

/// Prints the paper's Table 1 layout: one row per pattern with
/// size / gamma / sigma / eps columns.
void PrintPatternTable(std::ostream& os, const AttributedGraph& graph,
                       const ScpmResult& result);

/// Renders "{a, b}" attribute sets for one stats row plus its metrics.
std::string FormatStatsRow(const AttributedGraph& graph,
                           const AttributeSetStats& stats);

}  // namespace scpm

#endif  // SCPM_CORE_REPORT_H_
