#include "core/engine.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/metrics.h"
#include "graph/subgraph.h"
#include "util/cancel.h"
#include "util/hybrid_set.h"
#include "util/logging.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"

namespace scpm {

namespace {

using Key = std::vector<std::uint32_t>;

/// One node of the attribute-set enumeration tree. The covered set K_S is
/// not stored here: it lives in the shared CoveredSetCache while children
/// may still need it for Theorem-3 pruning. Tidsets are hybrid: root
/// classes borrow the graph-owned attribute tidsets, dense sets live as
/// bitmaps, and intersections dispatch to the matching kernel.
struct Node {
  AttributeSet items;
  HybridVertexSet tidset;  // V(S)
};

/// FNV-1a over the attribute ids.
struct AttributeSetHash {
  std::size_t operator()(const AttributeSet& items) const {
    std::uint64_t h = 1469598103934665603ull;
    for (AttributeId a : items) {
      h ^= a;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

/// Concurrent map S -> K_S sharing Theorem-3 covered-vertex sets across
/// workers. Mutex-striped so unrelated attribute sets do not contend.
///
/// Usage is deterministic by construction: an entry is inserted before any
/// frontier entry that reads it exists (children of an equivalence class
/// are created only after every class member is evaluated), and only the
/// two generating parents of a child are consulted — never whichever
/// other subsets happen to be resident. That keeps the mined output and
/// every counter independent of thread timing.
class CoveredSetCache {
 public:
  using Entry = std::shared_ptr<const HybridVertexSet>;

  void Insert(const AttributeSet& items, Entry covered) {
    Shard& shard = ShardFor(items);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map[items] = std::move(covered);
  }

  Entry Lookup(const AttributeSet& items) {
    Shard& shard = ShardFor(items);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.map.find(items);
    return it == shard.map.end() ? nullptr : it->second;
  }

  void Erase(const AttributeSet& items) {
    Shard& shard = ShardFor(items);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.erase(items);
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::unordered_map<AttributeSet, Entry, AttributeSetHash> map;
  };

  Shard& ShardFor(const AttributeSet& items) {
    return shards_[AttributeSetHash{}(items) % shards_.size()];
  }

  std::array<Shard, 16> shards_;
};

/// An evaluated equivalence class whose members may still be extended.
/// Destruction (when the last frontier entry referencing the class is
/// consumed) evicts the members' covered sets from the cache.
struct ClassNode {
  explicit ClassNode(CoveredSetCache* cache) : cache(cache) {}
  ~ClassNode() {
    for (const Node& s : siblings) cache->Erase(s.items);
  }
  ClassNode(const ClassNode&) = delete;
  ClassNode& operator=(const ClassNode&) = delete;

  std::vector<Node> siblings;
  CoveredSetCache* cache;
};

/// Mutable per-worker scratch: a reusable quasi-clique miner and the
/// induced-subgraph workspace feeding it. Counters do NOT live here —
/// they flow through per-entry bundles so a cancelled entry's partial
/// work leaves no trace.
struct WorkerState {
  explicit WorkerState(const ScpmOptions& options)
      : miner(options.miner_options()) {
    miner.set_workspace(&workspace);
  }

  SubgraphWorkspace workspace;  // before miner: it must outlive it
  QuasiCliqueMiner miner;
};

/// Deterministic counter deltas of one evaluation batch or one frontier
/// entry, folded up the tree at barriers (batch -> entry -> engine
/// totals) in a fixed order. Cancelled entries discard theirs, so engine
/// totals reflect exactly the completed entries.
struct CounterBundle {
  ScpmCounters counters;
  SetOpStats set_ops;
  // Cross-run memo outcomes; not part of ScpmCounters (they describe
  // the cache, not the mining effort) but folded with the same
  // cancelled-entries-leave-no-trace discipline.
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;

  void MergeFrom(const CounterBundle& other) {
    memo_hits += other.memo_hits;
    memo_misses += other.memo_misses;
    // Kernel counters ride in set_ops within a run (folded into
    // counters at TakeRun), so other.counters' kernel fields are zero
    // here and the field-wise merge is exact.
    counters.MergeFrom(other.counters);
    set_ops.MergeFrom(other.set_ops);
  }
};

/// Evaluation output and bookkeeping of one child attribute set.
struct EvalSlot {
  Node node;
  Key key;                         // emission key, set by the producer
  CoveredSetCache::Entry covered;  // set only when extendable
  bool extendable = false;
  bool reported = false;
  AttributeSetOutput output;  // valid when reported
};

/// A frequent singleton: its fixed emission index plus its evaluation
/// slot, filled by the root-batch entry covering it.
struct RootSlot {
  std::uint32_t index = 0;  // position in the frequent-singleton list
  AttributeId attr = 0;
  bool done = false;  // marked by the driver at the wave barrier
  EvalSlot slot;
};

/// One unit of frontier work. cls == nullptr marks a root batch
/// (evaluate singles[begin, end)); otherwise the entry expands
/// cls->siblings[sibling] under emission-key prefix `path`.
struct FrontierEntry {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::shared_ptr<ClassNode> cls;
  std::uint32_t sibling = 0;
  Key path;
};

/// What one processed entry hands back to the driver at the wave barrier.
struct EntryResult {
  bool cancelled = false;  // discard everything, re-queue the entry
  CounterBundle bundle;
  std::uint64_t emitted = 0;           // attribute sets
  std::uint64_t patterns_emitted = 0;  // patterns across those sets
  std::vector<FrontierEntry> children;  // in sibling (key) order
};

/// Entry-scoped cancellation latch shared by an entry's evaluation tasks.
struct EntryCtx {
  std::atomic<bool> cancelled{false};
};

/// One Run/Resume segment: owns the frontier, the pool, the caches, and
/// the wave loop.
class EngineRunner {
 public:
  EngineRunner(
      const AttributedGraph& graph, const ScpmOptions& options,
      const EngineBudget& budget, std::size_t wave,
      ExpectationModel* null_model, PatternSink* sink,
      const std::function<void(const EngineProgress&)>& progress,
      std::uint64_t checkpoint_interval_ms,
      const std::function<void(const EngineCheckpoint&, const EngineProgress&)>&
          checkpoint_observer,
      ThreadPool* shared_pool, ParallelismBudget* shared_intra_budget,
      EvalMemo* memo, CancelToken* cancel, bool hot_checkpoints,
      bool uncounted_seeding)
      : graph_(graph),
        options_(options),
        budget_(budget),
        wave_(wave),
        null_model_(null_model),
        sink_(sink),
        progress_(progress),
        checkpoint_interval_ms_(checkpoint_interval_ms),
        checkpoint_observer_(checkpoint_observer),
        memo_(memo),
        hot_checkpoints_(hot_checkpoints),
        uncounted_seeding_(uncounted_seeding),
        // Slot count caps the intra-search branch tasks outstanding at
        // once across ALL evaluations: a huge-G(S) evaluation that grabs
        // slots is borrowing parallelism its sibling evaluations would
        // otherwise spend, and returns it as its subtasks drain. With a
        // shared pool the caller's budget plays that role server-wide.
        own_intra_budget_(options.num_threads > 1 ? 2 * options.num_threads
                                                  : 0),
        intra_budget_(shared_intra_budget != nullptr ? shared_intra_budget
                                                     : &own_intra_budget_),
        token_(cancel != nullptr ? *cancel : own_token_) {
    if (shared_pool != nullptr) {
      pool_ = shared_pool;
    } else if (options_.num_threads > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
      pool_ = owned_pool_.get();
    }
    // One scratch per thread that can run evaluation tasks: the pool's
    // workers (a shared pool may have more than options.num_threads),
    // slot 0 doubling for the driving thread in sequential mode.
    const std::size_t workers =
        pool_ != nullptr ? pool_->num_threads()
                         : std::max<std::size_t>(1, options_.num_threads);
    states_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
      states_.push_back(std::make_unique<WorkerState>(options_));
    }
    for (const std::unique_ptr<WorkerState>& ws : states_) {
      ws->miner.set_parallel_context(pool_, intra_budget_);
      ws->miner.set_cancel_token(&token_);
    }
  }

  /// Seeds the frontier with the frequent singletons (paper Algorithm 2
  /// line 1), pre-batched into root entries.
  void SeedFresh() {
    phase_roots_ = true;
    for (AttributeId a = 0; a < graph_.NumAttributes(); ++a) {
      if (graph_.VerticesWith(a).size() < options_.min_support) continue;
      RootSlot rs;
      rs.index = static_cast<std::uint32_t>(singles_.size());
      rs.attr = a;
      singles_.push_back(std::move(rs));
    }
    // Batch by tidset mass exactly like child evaluations, one frontier
    // entry per batch.
    const std::size_t grain = options_.eval_batch_grain;
    std::size_t begin = 0;
    std::size_t weight = 0;
    for (std::size_t s = 0; s < singles_.size(); ++s) {
      weight += std::max<std::size_t>(
          1, graph_.VerticesWith(singles_[s].attr).size());
      if (grain == 0 || weight >= grain) {
        PushRootEntry(begin, s + 1);
        begin = s + 1;
        weight = 0;
      }
    }
    if (begin < singles_.size()) PushRootEntry(begin, singles_.size());
  }

  Status SeedFromCheckpoint(const EngineCheckpoint& cp) {
    if (!cp.valid) {
      return Status::InvalidArgument("checkpoint is empty or unparsed");
    }
    if (cp.num_vertices != graph_.NumVertices() ||
        cp.num_attributes != graph_.NumAttributes() ||
        cp.num_edges != graph_.graph().NumEdges()) {
      return Status::InvalidArgument(
          "checkpoint was taken against a different graph");
    }
    if (cp.options_fingerprint !=
        ScpmEngine::OptionsFingerprint(options_, null_model_ != nullptr)) {
      return Status::InvalidArgument(
          "checkpoint was taken under different mining options");
    }
    // Covered sets are the one bulky untrusted input: everything
    // downstream (bitmap promotion, Theorem-3 word kernels) assumes
    // sorted, duplicate-free, in-range vertex ids.
    const auto valid_covered = [this](const VertexSet& covered) {
      return IsStrictlySorted(covered) &&
             (covered.empty() || covered.back() < graph_.NumVertices());
    };
    SetOpStats* stats = SeedSetStats();
    if (cp.in_roots_phase) {
      phase_roots_ = true;
      for (const EngineCheckpoint::DoneRoot& dr : cp.done_roots) {
        if (dr.attr >= graph_.NumAttributes()) {
          return Status::InvalidArgument("checkpoint root attr out of range");
        }
        RootSlot rs;
        rs.index = dr.index;
        rs.attr = dr.attr;
        rs.done = true;
        rs.slot.node.items = {dr.attr};
        rs.slot.extendable = true;
        if (dr.hot_covered != nullptr) {
          // Hot path: adopt the live sets verbatim. They were produced
          // by this process, so no re-validation, no re-normalization,
          // no conversion counting — summed counters across segments
          // stay equal to an uncut run's.
          rs.slot.node.tidset = dr.hot_tidset;
          rs.slot.covered = dr.hot_covered;
        } else {
          if (!valid_covered(dr.covered)) {
            return Status::InvalidArgument(
                "checkpoint root covered set malformed");
          }
          rs.slot.node.tidset = HybridVertexSet::View(
              &graph_.VerticesWith(dr.attr), SetUniverse());
          rs.slot.node.tidset.Normalize(stats);
          rs.slot.covered = std::make_shared<const HybridVertexSet>(
              HybridVertexSet::FromVector(dr.covered, SetUniverse(), stats));
        }
        singles_.push_back(std::move(rs));
      }
      for (const EngineCheckpoint::PendingRootBatch& batch : cp.root_batches) {
        if (batch.indices.size() != batch.attrs.size()) {
          return Status::InvalidArgument("checkpoint root batch malformed");
        }
        const std::size_t begin = singles_.size();
        for (std::size_t k = 0; k < batch.attrs.size(); ++k) {
          if (batch.attrs[k] >= graph_.NumAttributes()) {
            return Status::InvalidArgument(
                "checkpoint root attr out of range");
          }
          RootSlot rs;
          rs.index = batch.indices[k];
          rs.attr = batch.attrs[k];
          singles_.push_back(std::move(rs));
        }
        PushRootEntry(begin, singles_.size());
      }
      return Status::OK();
    }

    phase_roots_ = false;
    std::vector<std::shared_ptr<ClassNode>> classes;
    std::vector<const Key*> paths;
    classes.reserve(cp.classes.size());
    for (const EngineCheckpoint::PendingClass& pc : cp.classes) {
      auto cls = std::make_shared<ClassNode>(&cache_);
      for (const EngineCheckpoint::Member& m : pc.members) {
        if (m.items.empty()) {
          return Status::InvalidArgument("checkpoint class member is empty");
        }
        for (AttributeId a : m.items) {
          if (a >= graph_.NumAttributes()) {
            return Status::InvalidArgument(
                "checkpoint member attr out of range");
          }
        }
        Node node;
        node.items = m.items;
        if (m.hot_covered != nullptr) {
          // Hot path: see the roots-phase comment above.
          node.tidset = m.hot_tidset;
          cache_.Insert(m.items, m.hot_covered);
        } else {
          if (!valid_covered(m.covered)) {
            return Status::InvalidArgument(
                "checkpoint member covered set malformed");
          }
          node.tidset = RecomputeTidset(m.items, stats);
          cache_.Insert(m.items, std::make_shared<const HybridVertexSet>(
                                     HybridVertexSet::FromVector(
                                         m.covered, SetUniverse(), stats)));
        }
        cls->siblings.push_back(std::move(node));
      }
      classes.push_back(std::move(cls));
      paths.push_back(&pc.path);
    }
    for (const EngineCheckpoint::PendingExpansion& e : cp.expansions) {
      if (e.class_index >= classes.size() ||
          e.sibling >= classes[e.class_index]->siblings.size()) {
        return Status::InvalidArgument("checkpoint expansion out of range");
      }
      FrontierEntry entry;
      entry.cls = classes[e.class_index];
      entry.sibling = e.sibling;
      entry.path = *paths[e.class_index];
      frontier_.push_back(std::move(entry));
    }
    return Status::OK();
  }

  /// The wave loop: drain the frontier until exhausted, cut, or error.
  Status Drive() {
    if (budget_.deadline_ms != 0) {
      deadline_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(budget_.deadline_ms);
      token_.SetDeadline(deadline_);
    }
    auto last_snapshot = std::chrono::steady_clock::now();
    while (true) {
      if (has_error_.load()) return FirstError();
      if (frontier_.empty()) {
        if (phase_roots_) {
          FormRootClass();
          phase_roots_ = false;
          continue;
        }
        exhausted_ = true;
        return FirstError();
      }
      if (BudgetHit()) {
        exhausted_ = false;
        return Status::OK();
      }
      RunWave();
      if (progress_ || checkpoint_observer_) {
        EngineProgress p;
        p.evaluations = total_.counters.attribute_sets_evaluated;
        p.emitted = emitted_;
        p.patterns_emitted = patterns_emitted_;
        p.frontier_entries = frontier_.size();
        if (progress_) progress_(p);
        // Periodic durability snapshot: a cold checkpoint copy handed
        // out between waves, when the workers are parked and the
        // frontier is entry-consistent. Skipped when the walk just
        // finished — TakeRun() reports exhaustion instead.
        if (checkpoint_observer_ && checkpoint_interval_ms_ != 0 &&
            !(frontier_.empty() && !phase_roots_)) {
          const auto now = std::chrono::steady_clock::now();
          if (now - last_snapshot >=
              std::chrono::milliseconds(checkpoint_interval_ms_)) {
            checkpoint_observer_(BuildCheckpoint(/*hot=*/false), p);
            last_snapshot = std::chrono::steady_clock::now();
          }
        }
      }
    }
  }

  MiningRun TakeRun() {
    MiningRun run;
    run.exhausted = exhausted_;
    run.counters = total_.counters;
    run.counters.bitmap_intersections += total_.set_ops.bitmap_intersections;
    run.counters.galloping_intersections +=
        total_.set_ops.galloping_intersections;
    run.counters.chunked_intersections +=
        total_.set_ops.chunked_intersections;
    run.counters.dense_conversions += total_.set_ops.dense_conversions;
    run.counters.chunked_conversions += total_.set_ops.chunked_conversions;
    run.memo_hits = total_.memo_hits;
    run.memo_misses = total_.memo_misses;
    run.emitted = emitted_;
    run.patterns_emitted = patterns_emitted_;
    run.frontier_entries = frontier_.size();
    if (!exhausted_) run.checkpoint = BuildCheckpoint(hot_checkpoints_);
    return run;
  }

 private:
  /// Runs `fn` inline (sequential mode) or as a pool task.
  void Launch(ThreadPool::TaskGroup* group, std::function<void()> fn) {
    if (pool_ != nullptr) {
      pool_->Spawn(group, std::move(fn));
    } else {
      fn();
    }
  }

  void Await(ThreadPool::TaskGroup* group) {
    if (pool_ != nullptr) pool_->WaitFor(group);
  }

  /// Waits out one wave. With a deadline, the wait is bounded: on timeout
  /// the token latches and the wait resumes — every search polls the
  /// token, so the remaining tasks unwind within a candidate's work each.
  void AwaitWave(ThreadPool::TaskGroup* group) {
    if (pool_ == nullptr) return;
    if (budget_.deadline_ms != 0) {
      if (!pool_->WaitForUntil(group, deadline_)) {
        token_.RequestCancel();
        pool_->WaitFor(group);
      }
    } else {
      pool_->WaitFor(group);
    }
  }

  void PushRootEntry(std::size_t begin, std::size_t end) {
    FrontierEntry entry;
    entry.begin = begin;
    entry.end = end;
    frontier_.push_back(std::move(entry));
  }

  /// The calling worker's scratch (slot 0 in sequential mode and for the
  /// driving thread, which only runs work while no task is live).
  WorkerState& State() {
    const int index = pool_ != nullptr ? pool_->current_worker_index() : -1;
    return *states_[index < 0 ? 0 : static_cast<std::size_t>(index)];
  }

  /// Universe passed to every hybrid set: the vertex count with hybrid
  /// storage on, 0 (never dense, pure merge path) with it off.
  VertexId SetUniverse() const {
    return options_.use_hybrid_sets ? graph_.NumVertices() : 0;
  }

  SetOpStats* BundleSetStats(CounterBundle* bundle) {
    return options_.use_hybrid_sets ? &bundle->set_ops : nullptr;
  }

  /// Kernel-counter sink for driver-side seeding work (resume tidset
  /// recomputation); folds into the engine totals like everything else.
  SetOpStats* SeedSetStats() {
    // Distributed workers resume from cold batch checkpoints whose set
    // representations a single-process run would never rebuild; leaving
    // that reconstruction uncounted keeps summed worker counters
    // byte-identical to one process mining the same lattice.
    return uncounted_seeding_ ? nullptr : BundleSetStats(&total_);
  }

  void RecordError(Status status) {
    {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (first_error_.ok()) first_error_ = std::move(status);
    }
    has_error_.store(true);
    // Abort in-flight searches quickly; nothing will be emitted or
    // checkpointed after an error anyway.
    token_.RequestCancel();
  }

  Status FirstError() {
    std::lock_guard<std::mutex> lock(error_mutex_);
    return first_error_;
  }

  bool BudgetHit() {
    if (budget_.max_evaluations != 0 &&
        total_.counters.attribute_sets_evaluated >= budget_.max_evaluations) {
      return true;
    }
    if (budget_.max_patterns != 0 &&
        patterns_emitted_ >= budget_.max_patterns) {
      return true;
    }
    if (budget_.deadline_ms != 0 && token_.CheckNow()) return true;
    // An externally latched token (no deadline armed) must also cut,
    // or cancelled entries would re-queue forever.
    if (token_.cancelled()) return true;
    return false;
  }

  /// Pops up to wave_ entries off the frontier's back, processes them in
  /// parallel, and folds the survivors at the barrier (in wave order, so
  /// every fold is deterministic). Cancelled entries go back whole.
  void RunWave() {
    const std::size_t n = std::min(frontier_.size(), wave_);
    const std::size_t base = frontier_.size() - n;
    std::vector<FrontierEntry> entries(
        std::make_move_iterator(frontier_.begin() + base),
        std::make_move_iterator(frontier_.end()));
    frontier_.resize(base);

    std::vector<EntryResult> results(n);
    ThreadPool::TaskGroup group;
    for (std::size_t i = 0; i < n; ++i) {
      Launch(&group, [this, &entries, &results, i] {
        ProcessEntry(&entries[i], &results[i]);
      });
    }
    AwaitWave(&group);

    for (std::size_t i = 0; i < n; ++i) {
      EntryResult& r = results[i];
      if (r.cancelled) {
        frontier_.push_back(std::move(entries[i]));
        continue;
      }
      if (entries[i].cls == nullptr) {
        for (std::size_t s = entries[i].begin; s < entries[i].end; ++s) {
          singles_[s].done = true;
        }
      }
      total_.MergeFrom(r.bundle);
      emitted_ += r.emitted;
      patterns_emitted_ += r.patterns_emitted;
      for (FrontierEntry& child : r.children) {
        frontier_.push_back(std::move(child));
      }
    }
  }

  void ProcessEntry(FrontierEntry* entry, EntryResult* result) {
    if (has_error_.load() || token_.cancelled()) {
      result->cancelled = true;
      return;
    }
    if (entry->cls == nullptr) {
      ProcessRootBatch(*entry, result);
    } else {
      ProcessExpansion(*entry, result);
    }
  }

  /// Evaluates one pre-batched range of frequent singletons (emission
  /// keys {0, index}) and flushes the reported ones.
  void ProcessRootBatch(const FrontierEntry& entry, EntryResult* result) {
    EntryCtx ctx;
    result->bundle.counters.evaluation_batches += 1;
    for (std::size_t s = entry.begin; s < entry.end; ++s) {
      if (token_.cancelled() || has_error_.load()) {
        ctx.cancelled.store(true, std::memory_order_relaxed);
        break;
      }
      RootSlot& rs = singles_[s];
      rs.slot = EvalSlot();  // reset: the entry may be a re-run after a cut
      rs.slot.node.items = {rs.attr};
      // Borrow the graph-owned tidset: promoting a dense root to its
      // bitmap happens inside this (parallel) entry, sharding the
      // root-class build across the pool.
      rs.slot.node.tidset =
          HybridVertexSet::View(&graph_.VerticesWith(rs.attr), SetUniverse());
      rs.slot.key = Key{0, rs.index};
      EvaluateNode(&rs.slot, nullptr, nullptr, &result->bundle, &ctx);
      if (ctx.cancelled.load(std::memory_order_relaxed)) break;
    }
    if (has_error_.load() || ctx.cancelled.load(std::memory_order_relaxed) ||
        token_.cancelled()) {
      result->cancelled = true;
      return;
    }
    for (std::size_t s = entry.begin; s < entry.end; ++s) {
      if (!FlushSlot(&singles_[s].slot, result)) return;
    }
  }

  /// Expands sibling i of class `entry.cls` (paper Algorithm 3):
  /// evaluates the children it generates with later siblings, flushes the
  /// reported ones, and hands the extendable children back as a new class
  /// worth of frontier entries.
  void ProcessExpansion(const FrontierEntry& entry, EntryResult* result) {
    EntryCtx ctx;
    const std::vector<Node>& siblings = entry.cls->siblings;
    const std::size_t i = entry.sibling;

    std::vector<EvalSlot> slots;
    std::vector<std::size_t> js;
    SetOpStats* set_stats = BundleSetStats(&result->bundle);
    for (std::size_t j = i + 1; j < siblings.size(); ++j) {
      EvalSlot slot;
      SortedUnion(siblings[i].items, siblings[j].items, &slot.node.items);
      HybridVertexSet::Intersect(siblings[i].tidset, siblings[j].tidset,
                                 &slot.node.tidset, set_stats);
      if (slot.node.tidset.size() < options_.min_support) continue;
      slot.key = entry.path;
      slot.key.reserve(slot.key.size() + 3);
      slot.key.push_back(static_cast<std::uint32_t>(i));
      slot.key.push_back(0);
      slot.key.push_back(static_cast<std::uint32_t>(j));
      slots.push_back(std::move(slot));
      js.push_back(j);
    }
    if (slots.empty()) return;

    const auto ranges = BatchRanges(slots);
    result->bundle.counters.evaluation_batches += ranges.size();
    std::vector<CounterBundle> batch_bundles(ranges.size());
    ThreadPool::TaskGroup evals;
    for (std::size_t r = 0; r < ranges.size(); ++r) {
      Launch(&evals, [this, &siblings, &slots, &js, &batch_bundles, &ctx, i,
                      r, begin = ranges[r].first, end = ranges[r].second] {
        for (std::size_t s = begin; s < end; ++s) {
          if (token_.cancelled() || has_error_.load() ||
              ctx.cancelled.load(std::memory_order_relaxed)) {
            ctx.cancelled.store(true, std::memory_order_relaxed);
            return;
          }
          EvaluateNode(&slots[s], &siblings[i].items, &siblings[js[s]].items,
                       &batch_bundles[r], &ctx);
        }
      });
    }
    Await(&evals);
    if (has_error_.load() || ctx.cancelled.load(std::memory_order_relaxed) ||
        token_.cancelled()) {
      result->cancelled = true;
      return;
    }
    for (const CounterBundle& b : batch_bundles) result->bundle.MergeFrom(b);
    for (EvalSlot& slot : slots) {
      if (!FlushSlot(&slot, result)) return;
    }

    auto child_class = std::make_shared<ClassNode>(&cache_);
    for (EvalSlot& slot : slots) {
      if (!slot.extendable) continue;
      cache_.Insert(slot.node.items, std::move(slot.covered));
      child_class->siblings.push_back(std::move(slot.node));
    }
    result->bundle.counters.attribute_sets_extended +=
        child_class->siblings.size();
    if (child_class->siblings.empty() ||
        child_class->siblings.front().items.size() >=
            options_.max_attribute_set_size) {
      return;
    }
    Key child_path = entry.path;
    child_path.push_back(static_cast<std::uint32_t>(i));
    child_path.push_back(1);
    result->children.reserve(child_class->siblings.size());
    for (std::size_t c = 0; c < child_class->siblings.size(); ++c) {
      FrontierEntry child;
      child.cls = child_class;
      child.sibling = static_cast<std::uint32_t>(c);
      child.path = child_path;
      result->children.push_back(std::move(child));
    }
  }

  /// Emits a reported slot to the sink. Returns false after recording an
  /// error (the run aborts; the entry is marked cancelled so the driver
  /// folds nothing from it).
  bool FlushSlot(EvalSlot* slot, EntryResult* result) {
    if (!slot->reported) return true;
    const std::uint64_t patterns = slot->output.patterns.size();
    Status status = sink_->Emit(slot->key, std::move(slot->output));
    slot->reported = false;
    if (!status.ok()) {
      RecordError(std::move(status));
      result->cancelled = true;
      return false;
    }
    ++result->emitted;
    result->patterns_emitted += patterns;
    return true;
  }

  /// Greedy pack of evaluation slots into per-task index ranges:
  /// consecutive slots share a task until their tidset sizes reach
  /// eval_batch_grain. A pure function of the slot sizes, so the launch
  /// plan — and every counter it feeds — is identical for every thread
  /// count.
  std::vector<std::pair<std::size_t, std::size_t>> BatchRanges(
      const std::vector<EvalSlot>& slots) const {
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    const std::size_t grain = options_.eval_batch_grain;
    std::size_t begin = 0;
    std::size_t weight = 0;
    for (std::size_t s = 0; s < slots.size(); ++s) {
      weight += std::max<std::size_t>(1, slots[s].node.tidset.size());
      if (grain == 0 || weight >= grain) {
        ranges.emplace_back(begin, s + 1);
        begin = s + 1;
        weight = 0;
      }
    }
    if (begin < slots.size()) ranges.emplace_back(begin, slots.size());
    return ranges;
  }

  /// Computes K_S / eps / delta for a node, records it (and its patterns)
  /// into the slot when it passes the thresholds, and decides
  /// extendability per Theorems 4 and 5. A cancelled quasi-clique search
  /// latches ctx->cancelled instead of erroring.
  void EvaluateNode(EvalSlot* slot, const AttributeSet* parent_a,
                    const AttributeSet* parent_b, CounterBundle* bundle,
                    EntryCtx* ctx) {
    if (has_error_.load()) return;
    WorkerState& ws = State();
    SetOpStats* set_stats = BundleSetStats(bundle);
    ++bundle->counters.attribute_sets_evaluated;
    Node& node = slot->node;
    // Root tidsets arrive as borrowed views; promote the dense ones to
    // bitmaps here, inside the (parallel) evaluation task. Intersection
    // results are already in canonical representation, so this is a
    // cheap no-op for every deeper node.
    node.tidset.Normalize(set_stats);

    // Cross-run memo: a hit replays the stored outcome — same report
    // decision, same stats and patterns, same extendability, same
    // covered set for the children — without building G(S) or running
    // either quasi-clique search. The caller bound the memo to this
    // graph and options fingerprint, so the replay is byte-identical to
    // evaluating; the evaluated/reported counters advance exactly as on
    // a cold evaluation (budget cut points do not move between hot and
    // cold runs), only the work counters shrink.
    if (memo_ != nullptr) {
      std::shared_ptr<const EvalMemo::Evaluation> hit =
          memo_->Lookup(node.items);
      if (hit != nullptr) {
        ++bundle->memo_hits;
        if (hit->reported) {
          ++bundle->counters.attribute_sets_reported;
          slot->output = hit->output;
          slot->reported = true;
        }
        slot->extendable = hit->extendable;
        if (hit->extendable) {
          slot->covered = std::make_shared<const HybridVertexSet>(
              HybridVertexSet::FromVector(hit->covered, SetUniverse(),
                                          set_stats));
        }
        return;
      }
      ++bundle->memo_misses;
    }

    // Theorem 3: quasi-cliques of G(S) live inside the parents' covered
    // sets, so the search universe can be restricted to them.
    HybridVertexSet universe = node.tidset;
    if (options_.use_vertex_pruning) {
      HybridVertexSet tmp;
      for (const AttributeSet* parent : {parent_a, parent_b}) {
        if (parent == nullptr) continue;
        CoveredSetCache::Entry covered = cache_.Lookup(*parent);
        SCPM_CHECK(covered != nullptr)
            << "parent covered set evicted before its children finished";
        HybridVertexSet::Intersect(universe, *covered, &tmp, set_stats);
        universe = std::move(tmp);
        tmp = HybridVertexSet();
      }
    }

    // Adaptive granularity, subgraph side: a huge G(S) decomposes its own
    // quasi-clique search into branch tasks, borrowing pool slots from
    // the shared budget. The trigger compares deterministic sizes only,
    // so the decision (and all counters downstream of it) is identical
    // for every num_threads.
    const bool intra_search =
        options_.intra_search_min_universe != 0 &&
        universe.size() >= options_.intra_search_min_universe;
    ws.miner.set_spawn_depth(intra_search ? options_.intra_search_spawn_depth
                                          : 0);
    if (intra_search) ++bundle->counters.intra_search_evaluations;

    Result<InducedSubgraph> sub =
        ws.workspace.Build(graph_.graph(), std::move(universe));
    if (!sub.ok()) return RecordError(sub.status());
    Result<VertexSet> covered = ws.miner.MineCoverage(sub->graph());
    if (!covered.ok()) {
      ws.workspace.Recycle(std::move(sub).value());
      if (covered.status().code() == StatusCode::kCancelled) {
        ctx->cancelled.store(true, std::memory_order_relaxed);
      } else {
        RecordError(covered.status());
      }
      return;
    }
    bundle->counters.coverage_candidates +=
        ws.miner.stats().candidates_processed;
    bundle->counters.intra_branch_tasks += ws.miner.stats().branch_tasks;
    VertexSet covered_global = sub->ToGlobal(*covered);
    const std::size_t covered_size = covered_global.size();

    const std::size_t support = node.tidset.size();
    const double eps =
        static_cast<double>(covered_size) / static_cast<double>(support);
    const double expected =
        null_model_ != nullptr ? null_model_->Expectation(support) : 1.0;
    const double delta =
        expected > 0.0 ? eps / expected : (eps > 0.0 ? 1e300 : 0.0);

    const bool passes =
        eps >= options_.min_epsilon && delta >= options_.min_delta;
    if (passes && node.items.size() >= options_.min_report_size) {
      ++bundle->counters.attribute_sets_reported;
      slot->output.stats.attributes = node.items;
      slot->output.stats.support = support;
      slot->output.stats.covered = covered_size;
      slot->output.stats.epsilon = eps;
      slot->output.stats.expected_epsilon = expected;
      slot->output.stats.delta = delta;
      if (options_.collect_patterns && covered_size > 0) {
        Status status = CollectPatterns(node, *sub, &ws, bundle, slot);
        if (!status.ok()) {
          ws.workspace.Recycle(std::move(sub).value());
          if (status.code() == StatusCode::kCancelled) {
            ctx->cancelled.store(true, std::memory_order_relaxed);
          } else {
            RecordError(std::move(status));
          }
          return;
        }
      }
      slot->reported = true;
    }
    ws.workspace.Recycle(std::move(sub).value());

    // Theorems 4 and 5: upper bounds on eps / delta of any extension.
    const double mass = eps * static_cast<double>(support);
    bool extendable = true;
    if (options_.use_epsilon_pruning &&
        mass <
            options_.min_epsilon * static_cast<double>(options_.min_support)) {
      extendable = false;
    }
    if (extendable && options_.use_delta_pruning && null_model_ != nullptr) {
      const double expected_at_min =
          null_model_->Expectation(options_.min_support);
      if (mass < options_.min_delta * expected_at_min *
                     static_cast<double>(options_.min_support)) {
        extendable = false;
      }
    }
    slot->extendable = extendable;
    if (memo_ != nullptr) {
      auto entry = std::make_shared<EvalMemo::Evaluation>();
      // The covered set is only consulted on a hit when the set is
      // extendable (children's Theorem-3 pruning); skip the copy
      // otherwise — the stats row already carries |K_S|.
      if (extendable) entry->covered = covered_global;
      entry->extendable = extendable;
      entry->reported = slot->reported;
      if (slot->reported) entry->output = slot->output;
      memo_->Insert(node.items, std::move(entry));
    }
    if (extendable) {
      // Stored for the children's Theorem-3 intersection, so it goes in
      // hybrid form (dense covered sets intersect by word-AND).
      slot->covered = std::make_shared<const HybridVertexSet>(
          HybridVertexSet::FromVector(std::move(covered_global),
                                      SetUniverse(), set_stats));
    }
  }

  /// Patterns of G(S): top-k (paper §3.2.3) or the complete maximal set
  /// (SCORP semantics), reported in global ids into the slot.
  Status CollectPatterns(const Node& node, const InducedSubgraph& sub,
                         WorkerState* ws, CounterBundle* bundle,
                         EvalSlot* slot) {
    std::vector<RankedQuasiClique> found;
    if (options_.pattern_scope == PatternScope::kTopK) {
      Result<std::vector<RankedQuasiClique>> top =
          ws->miner.MineTopK(sub.graph(), options_.top_k);
      if (!top.ok()) return top.status();
      found = std::move(top).value();
    } else {
      Result<std::vector<VertexSet>> all = ws->miner.MineMaximal(sub.graph());
      if (!all.ok()) return all.status();
      found.reserve(all->size());
      for (VertexSet& q : *all) {
        RankedQuasiClique entry;
        entry.min_degree_ratio = MinDegreeRatio(sub.graph(), q);
        entry.vertices = std::move(q);
        found.push_back(std::move(entry));
      }
    }
    bundle->counters.coverage_candidates +=
        ws->miner.stats().candidates_processed;
    bundle->counters.intra_branch_tasks += ws->miner.stats().branch_tasks;
    for (RankedQuasiClique& q : found) {
      StructuralCorrelationPattern pattern;
      pattern.attributes = node.items;
      pattern.min_degree_ratio = q.min_degree_ratio;
      pattern.edge_density = SubsetDensity(sub.graph(), q.vertices);
      pattern.vertices = sub.ToGlobal(q.vertices);
      slot->output.patterns.push_back(std::move(pattern));
    }
    return Status::OK();
  }

  /// Frontier boundary between the roots phase and the lattice walk:
  /// forms the root equivalence class from the extendable singletons (in
  /// emission-index order, so the class layout — and every key derived
  /// from it — matches the sequential enumeration) and seeds one
  /// expansion entry per member under key prefix {1}.
  void FormRootClass() {
    std::vector<RootSlot*> extendable;
    for (RootSlot& rs : singles_) {
      if (rs.slot.extendable) extendable.push_back(&rs);
    }
    std::sort(extendable.begin(), extendable.end(),
              [](const RootSlot* a, const RootSlot* b) {
                return a->index < b->index;
              });
    auto roots = std::make_shared<ClassNode>(&cache_);
    for (RootSlot* rs : extendable) {
      cache_.Insert(rs->slot.node.items, std::move(rs->slot.covered));
      roots->siblings.push_back(std::move(rs->slot.node));
    }
    total_.counters.attribute_sets_extended += roots->siblings.size();
    if (options_.max_attribute_set_size <= 1 || roots->siblings.size() < 2) {
      return;
    }
    for (std::size_t i = 0; i < roots->siblings.size(); ++i) {
      FrontierEntry entry;
      entry.cls = roots;
      entry.sibling = static_cast<std::uint32_t>(i);
      entry.path = Key{1};
      frontier_.push_back(std::move(entry));
    }
  }

  /// Recomputes V(S) from the graph's attribute index (resume path): the
  /// elements are exactly the original lattice tidset, and the
  /// representation is the same pure function of (size, universe).
  HybridVertexSet RecomputeTidset(const AttributeSet& items,
                                  SetOpStats* stats) {
    HybridVertexSet t =
        HybridVertexSet::View(&graph_.VerticesWith(items[0]), SetUniverse());
    if (items.size() == 1) {
      t.Normalize(stats);
      return t;
    }
    for (std::size_t k = 1; k < items.size(); ++k) {
      HybridVertexSet next =
          HybridVertexSet::View(&graph_.VerticesWith(items[k]), SetUniverse());
      HybridVertexSet out;
      HybridVertexSet::Intersect(t, next, &out, stats);
      t = std::move(out);
    }
    return t;
  }

  EngineCheckpoint BuildCheckpoint(bool hot) {
    EngineCheckpoint cp;
    cp.num_vertices = graph_.NumVertices();
    cp.num_attributes = graph_.NumAttributes();
    cp.num_edges = graph_.graph().NumEdges();
    cp.options_fingerprint =
        ScpmEngine::OptionsFingerprint(options_, null_model_ != nullptr);
    cp.valid = true;
    if (phase_roots_) {
      cp.in_roots_phase = true;
      for (const RootSlot& rs : singles_) {
        if (!rs.done || !rs.slot.extendable) continue;
        EngineCheckpoint::DoneRoot dr;
        dr.index = rs.index;
        dr.attr = rs.attr;
        if (hot) {
          dr.hot_covered = rs.slot.covered;
          dr.hot_tidset = rs.slot.node.tidset;
        } else {
          dr.covered = rs.slot.covered->ToVector();
        }
        cp.done_roots.push_back(std::move(dr));
      }
      for (const FrontierEntry& entry : frontier_) {
        EngineCheckpoint::PendingRootBatch batch;
        for (std::size_t s = entry.begin; s < entry.end; ++s) {
          batch.indices.push_back(singles_[s].index);
          batch.attrs.push_back(singles_[s].attr);
        }
        cp.root_batches.push_back(std::move(batch));
      }
      return cp;
    }
    std::unordered_map<const ClassNode*, std::uint32_t> class_index;
    for (const FrontierEntry& entry : frontier_) {
      auto [it, inserted] = class_index.emplace(
          entry.cls.get(), static_cast<std::uint32_t>(cp.classes.size()));
      if (inserted) {
        EngineCheckpoint::PendingClass pc;
        pc.path = entry.path;
        for (const Node& node : entry.cls->siblings) {
          EngineCheckpoint::Member member;
          member.items = node.items;
          CoveredSetCache::Entry covered = cache_.Lookup(node.items);
          SCPM_CHECK(covered != nullptr)
              << "class member covered set missing at checkpoint";
          if (hot) {
            member.hot_covered = std::move(covered);
            member.hot_tidset = node.tidset;
          } else {
            member.covered = covered->ToVector();
          }
          pc.members.push_back(std::move(member));
        }
        cp.classes.push_back(std::move(pc));
      }
      EngineCheckpoint::PendingExpansion e;
      e.class_index = it->second;
      e.sibling = entry.sibling;
      cp.expansions.push_back(e);
    }
    return cp;
  }

  const AttributedGraph& graph_;
  const ScpmOptions& options_;
  const EngineBudget budget_;
  const std::size_t wave_;
  ExpectationModel* null_model_;
  PatternSink* sink_;
  const std::function<void(const EngineProgress&)>& progress_;
  const std::uint64_t checkpoint_interval_ms_;
  const std::function<void(const EngineCheckpoint&, const EngineProgress&)>&
      checkpoint_observer_;
  EvalMemo* memo_;
  const bool hot_checkpoints_;
  const bool uncounted_seeding_;

  // Shared by every worker's miner; must outlive owned_pool_ (declared
  // later, destroyed first) because draining tasks may still release
  // slots. intra_budget_ points here or at the caller's shared budget.
  ParallelismBudget own_intra_budget_;
  ParallelismBudget* intra_budget_;
  // The run's cancel latch: the caller's token when one was injected
  // (server-side cancellation), else this run-private one. Either way
  // the engine owns arming the deadline.
  CancelToken own_token_;
  CancelToken& token_;
  std::chrono::steady_clock::time_point deadline_{};

  std::vector<std::unique_ptr<WorkerState>> states_;
  CoveredSetCache cache_;

  bool phase_roots_ = false;
  std::vector<RootSlot> singles_;
  std::vector<FrontierEntry> frontier_;

  CounterBundle total_;
  std::uint64_t emitted_ = 0;
  std::uint64_t patterns_emitted_ = 0;
  bool exhausted_ = false;

  std::mutex error_mutex_;
  Status first_error_;
  std::atomic<bool> has_error_{false};

  // Declared last, destroyed first: joining the workers destroys every
  // outstanding task closure, whose captured ClassNode references erase
  // cache entries — all of which must still be alive at that point. With
  // a shared (caller-owned) pool owned_pool_ stays null; the wave
  // discipline guarantees no task of this runner is outstanding once
  // Drive() returns, so the runner may destruct under a live pool.
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_ = nullptr;
};

}  // namespace

std::uint64_t ScpmEngine::OptionsFingerprint(const ScpmOptions& options,
                                             bool has_null_model) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  auto mix_double = [&mix](double d) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    mix(bits);
  };
  mix_double(options.quasi_clique.gamma);
  mix(options.quasi_clique.min_size);
  mix(options.min_support);
  mix_double(options.min_epsilon);
  mix_double(options.min_delta);
  mix(options.top_k);
  mix(static_cast<std::uint64_t>(options.pattern_scope));
  mix(options.max_attribute_set_size);
  mix(options.min_report_size);
  mix(static_cast<std::uint64_t>(options.search_order));
  mix(options.use_vertex_pruning ? 1 : 0);
  mix(options.use_epsilon_pruning ? 1 : 0);
  mix(options.use_delta_pruning ? 1 : 0);
  mix(options.collect_patterns ? 1 : 0);
  mix(has_null_model ? 1 : 0);
  return h;
}

Result<MiningRun> ScpmEngine::Run(const AttributedGraph& graph,
                                  PatternSink* sink) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  EngineRunner runner(graph, options_, budget_, frontier_wave_, null_model_,
                      sink, progress_, checkpoint_interval_ms_,
                      checkpoint_observer_, shared_pool_, shared_intra_budget_,
                      memo_, cancel_, hot_checkpoints_, uncounted_seeding_);
  runner.SeedFresh();
  SCPM_RETURN_IF_ERROR(runner.Drive());
  return runner.TakeRun();
}

Result<MiningRun> ScpmEngine::Resume(const AttributedGraph& graph,
                                     const EngineCheckpoint& checkpoint,
                                     PatternSink* sink) {
  SCPM_RETURN_IF_ERROR(options_.Validate());
  if (sink == nullptr) {
    return Status::InvalidArgument("sink must not be null");
  }
  EngineRunner runner(graph, options_, budget_, frontier_wave_, null_model_,
                      sink, progress_, checkpoint_interval_ms_,
                      checkpoint_observer_, shared_pool_, shared_intra_budget_,
                      memo_, cancel_, hot_checkpoints_, uncounted_seeding_);
  SCPM_RETURN_IF_ERROR(runner.SeedFromCheckpoint(checkpoint));
  SCPM_RETURN_IF_ERROR(runner.Drive());
  return runner.TakeRun();
}

// Checkpoint codecs (text v1, binary v2) live in core/ckpt_codec.cc.

}  // namespace scpm
