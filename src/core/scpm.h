// SCPM: the paper's main contribution (Algorithms 2 and 3).
//
// Enumerates attribute sets Eclat-style, computes the structural
// correlation eps(S) of each via coverage quasi-clique mining on the
// induced subgraph G(S), and emits the top-k structural correlation
// patterns of every attribute set passing the eps / delta thresholds.
//
// Pruning (all individually toggleable for ablation):
//  * Theorem 3 — a vertex not covered in G(S_i) can never be covered in
//    G(S_j) for S_j ⊇ S_i, so the quasi-clique search universe of a child
//    attribute set is intersected with its parents' covered sets.
//  * Theorem 4 — S_i is extended only if
//    eps(S_i) * sigma(S_i) >= eps_min * sigma_min.
//  * Theorem 5 — with a monotone null model, S_i is extended only if
//    eps(S_i) * sigma(S_i) >= delta_min * exp(sigma_min) * sigma_min.

#ifndef SCPM_CORE_SCPM_H_
#define SCPM_CORE_SCPM_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/pattern.h"
#include "graph/attributed_graph.h"
#include "nullmodel/expectation.h"
#include "qclique/miner.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// Which patterns are reported per qualifying attribute set.
enum class PatternScope {
  kTopK,        // SCPM (§3.2.3): the k best by (size, density)
  kAllMaximal,  // SCORP [Silva et al., MLG'10]: the complete maximal set
};

/// All thresholds of the mining problem (paper Definition 4 plus delta_min
/// and k from §2.1.3 / §3.2.3).
struct ScpmOptions {
  QuasiCliqueParams quasi_clique;  // gamma_min, min_size

  /// sigma_min: minimum attribute-set support.
  std::size_t min_support = 1;
  /// eps_min: minimum structural correlation.
  double min_epsilon = 0.0;
  /// delta_min: minimum normalized structural correlation (needs a null
  /// model; ignored when mining without one).
  double min_delta = 0.0;
  /// k: number of top patterns reported per qualifying attribute set
  /// (ignored when pattern_scope is kAllMaximal).
  std::size_t top_k = 5;

  /// Top-k (SCPM) or complete maximal enumeration (SCORP).
  PatternScope pattern_scope = PatternScope::kTopK;

  /// Cap on |S| during enumeration.
  std::size_t max_attribute_set_size =
      std::numeric_limits<std::size_t>::max();
  /// Report only attribute sets with at least this many attributes (the
  /// case studies use 2); smaller sets are still evaluated and extended.
  std::size_t min_report_size = 1;

  /// BFS or DFS candidate order inside the coverage computation
  /// (paper §3.2.2; SCPM-BFS vs SCPM-DFS in §4.2).
  SearchOrder search_order = SearchOrder::kDfs;

  /// Theorem 3 / 4 / 5 switches (see file comment).
  bool use_vertex_pruning = true;
  bool use_epsilon_pruning = true;
  bool use_delta_pruning = true;

  /// When false only attribute-set statistics are computed (used by the
  /// parameter-sensitivity experiments, which ignore the pattern lists).
  bool collect_patterns = true;

  /// Worker threads for the enumeration. Attribute-set evaluations and
  /// subtree expansions at every lattice level become tasks on a
  /// work-stealing pool, so one heavy attribute subtree no longer
  /// serializes the run. Output (attribute sets, patterns, and counters)
  /// is byte-identical to the sequential order for any thread count.
  /// Requires a thread-safe null model (both bundled models are).
  std::size_t num_threads = 1;

  /// Adaptive task granularity, lattice side: consecutive child
  /// evaluations are packed into one task until their tidset sizes sum
  /// to this grain, so lattices with many small tidsets stop paying one
  /// task (and one steal) per child. 0 keeps one evaluation per task.
  std::size_t eval_batch_grain = 256;

  /// Adaptive task granularity, subgraph side: an evaluation whose
  /// search universe |G(S)| reaches this size decomposes its coverage
  /// quasi-clique search into intra-search branch tasks on the same pool
  /// (borrowing the shared parallelism budget from its sibling
  /// evaluations), so a small lattice with huge induced subgraphs still
  /// saturates the workers. 0 disables intra-search parallelism. The
  /// threshold compares against deterministic quantities only, so output
  /// and counters remain byte-identical for any num_threads.
  std::size_t intra_search_min_universe = 512;

  /// Decomposition depth forwarded to the quasi-clique miner when the
  /// intra-search path triggers (see QuasiCliqueMinerOptions::spawn_depth).
  /// Deep by default: the miner's min_spawn_ext bounds task granularity,
  /// so extra depth only decomposes branches still worth splitting.
  std::uint32_t intra_search_spawn_depth = 12;

  /// Store tidsets, search universes, and Theorem-3 covered sets as
  /// HybridVertexSet — dense 64-bit-word bitmaps once a set passes the
  /// density rule, sorted vectors otherwise — and dispatch intersections
  /// to the matching kernel. The representation is a pure function of
  /// (size, universe), so output and every counter above stay
  /// byte-identical with the flag on or off and for any num_threads; off
  /// reproduces the pure merge-based engine (and zeroes the set-kernel
  /// counters below).
  bool use_hybrid_sets = true;

  /// Forwarded to the quasi-clique miner.
  QuasiCliqueMinerOptions miner_options() const;

  Status Validate() const;
};

/// Mining-effort counters. All are exact and deterministic: the batching
/// and intra-search policies they track depend only on the input and the
/// options, never on thread count or timing.
struct ScpmCounters {
  std::uint64_t attribute_sets_evaluated = 0;
  std::uint64_t attribute_sets_reported = 0;
  std::uint64_t attribute_sets_extended = 0;
  std::uint64_t coverage_candidates = 0;  // summed miner candidates
  /// Evaluation tasks launched after batching (= evaluations when
  /// eval_batch_grain is 0).
  std::uint64_t evaluation_batches = 0;
  /// Evaluations whose universe met intra_search_min_universe.
  std::uint64_t intra_search_evaluations = 0;
  /// Branch tasks the intra-search decompositions produced in total.
  std::uint64_t intra_branch_tasks = 0;
  /// Set-kernel dispatches of the hybrid representation (zero when
  /// use_hybrid_sets is off): intersections that used a full-universe
  /// bitmap operand, vector/vector intersections that galloped,
  /// intersections with a chunked (roaring-style) operand, and the
  /// vector -> bitmap / vector -> chunked materializations. Together the
  /// two conversion counters form the set-representation histogram the
  /// CLI prints. See SetOpStats.
  std::uint64_t bitmap_intersections = 0;
  std::uint64_t galloping_intersections = 0;
  std::uint64_t chunked_intersections = 0;
  std::uint64_t dense_conversions = 0;
  std::uint64_t chunked_conversions = 0;

  /// Field-wise accumulation — used by sliced runs to sum per-segment
  /// counters into a cumulative total.
  void MergeFrom(const ScpmCounters& other) {
    attribute_sets_evaluated += other.attribute_sets_evaluated;
    attribute_sets_reported += other.attribute_sets_reported;
    attribute_sets_extended += other.attribute_sets_extended;
    coverage_candidates += other.coverage_candidates;
    evaluation_batches += other.evaluation_batches;
    intra_search_evaluations += other.intra_search_evaluations;
    intra_branch_tasks += other.intra_branch_tasks;
    bitmap_intersections += other.bitmap_intersections;
    galloping_intersections += other.galloping_intersections;
    chunked_intersections += other.chunked_intersections;
    dense_conversions += other.dense_conversions;
    chunked_conversions += other.chunked_conversions;
  }
};

/// Complete mining output.
struct ScpmResult {
  /// Statistics of every reported attribute set (support, eps, delta).
  std::vector<AttributeSetStats> attribute_sets;
  /// Top-k patterns of every reported attribute set, globally sorted.
  std::vector<StructuralCorrelationPattern> patterns;
  ScpmCounters counters;
};

/// The SCPM algorithm. The optional null model is borrowed (not owned) and
/// must outlive the miner; without one, expected_epsilon = 1 and
/// delta = eps.
///
/// Mine() is a thin wrapper over the frontier-driven ScpmEngine
/// (core/engine.h) with an AccumulatingSink: the whole lattice is walked
/// and the complete result materialized. Callers that want streaming
/// output, budgets/deadlines, or checkpoint/resume use the engine
/// directly.
struct MiningRequest;   // core/request.h
struct MiningResponse;  // core/request.h

class ScpmMiner {
 public:
  explicit ScpmMiner(ScpmOptions options,
                     ExpectationModel* null_model = nullptr)
      : options_(options), null_model_(null_model) {}

  const ScpmOptions& options() const { return options_; }

  /// Thin legacy entry point: accumulate everything, no budget. Prefer
  /// the MiningRequest overload, which is the one front door shared
  /// with the CLI and the wire protocol.
  Result<ScpmResult> Mine(const AttributedGraph& graph);

  /// Unified front door (core/request.h): the request's options,
  /// budget, and sink selection are authoritative; the null model bound
  /// at construction is passed through. Defined in request.cc.
  Result<MiningResponse> Mine(const AttributedGraph& graph,
                              const MiningRequest& request);

 private:
  ScpmOptions options_;
  ExpectationModel* null_model_;
};

}  // namespace scpm

#endif  // SCPM_CORE_SCPM_H_
