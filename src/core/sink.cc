#include "core/sink.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace scpm {

namespace {

/// Shortest round-trip rendering of a double (JSON-safe: finite inputs
/// only; the engine never emits NaN/inf).
void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  *out += buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

template <typename T>
void AppendIdArray(std::string* out, const std::vector<T>& ids) {
  *out += '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) *out += ',';
    *out += std::to_string(ids[i]);
  }
  *out += ']';
}

}  // namespace

Status AccumulatingSink::Emit(const SinkKey& key, AttributeSetOutput output) {
  std::lock_guard<std::mutex> lock(mutex_);
  shards_.push_back(Shard{key, std::move(output)});
  return Status::OK();
}

ScpmResult AccumulatingSink::TakeResult() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::sort(shards_.begin(), shards_.end(),
            [](const Shard& a, const Shard& b) { return a.key < b.key; });
  ScpmResult result;
  result.attribute_sets.reserve(shards_.size());
  for (Shard& shard : shards_) {
    result.attribute_sets.push_back(std::move(shard.output.stats));
    for (auto& p : shard.output.patterns) {
      result.patterns.push_back(std::move(p));
    }
  }
  shards_.clear();
  SortPatterns(&result.patterns);
  return result;
}

Result<std::unique_ptr<JsonlSink>> JsonlSink::Create(
    const std::string& path, const AttributedGraph* graph, bool append) {
  auto file = std::make_unique<std::ofstream>(
      path, append ? std::ios::app : std::ios::trunc);
  if (!file->is_open()) {
    return Status::IoError("cannot open JSONL output: " + path);
  }
  auto sink = std::make_unique<JsonlSink>(file.get(), graph);
  sink->owned_ = std::move(file);
  return sink;
}

Status JsonlSink::Emit(const SinkKey& key, AttributeSetOutput output) {
  (void)key;
  std::string line;
  line.reserve(128 + 32 * output.patterns.size());
  line += "{\"attributes\":";
  AppendIdArray(&line, output.stats.attributes);
  if (graph_ != nullptr) {
    line += ",\"names\":[";
    for (std::size_t i = 0; i < output.stats.attributes.size(); ++i) {
      if (i != 0) line += ',';
      AppendJsonString(&line,
                       graph_->AttributeName(output.stats.attributes[i]));
    }
    line += ']';
  }
  line += ",\"support\":" + std::to_string(output.stats.support);
  line += ",\"covered\":" + std::to_string(output.stats.covered);
  line += ",\"epsilon\":";
  AppendDouble(&line, output.stats.epsilon);
  line += ",\"expected_epsilon\":";
  AppendDouble(&line, output.stats.expected_epsilon);
  line += ",\"delta\":";
  AppendDouble(&line, output.stats.delta);
  line += ",\"patterns\":[";
  for (std::size_t i = 0; i < output.patterns.size(); ++i) {
    const StructuralCorrelationPattern& p = output.patterns[i];
    if (i != 0) line += ',';
    line += "{\"vertices\":";
    AppendIdArray(&line, p.vertices);
    line += ",\"gamma\":";
    AppendDouble(&line, p.min_degree_ratio);
    line += ",\"density\":";
    AppendDouble(&line, p.edge_density);
    line += '}';
  }
  line += "]}\n";

  std::lock_guard<std::mutex> lock(mutex_);
  os_->write(line.data(), static_cast<std::streamsize>(line.size()));
  os_->flush();
  if (!os_->good()) return Status::IoError("JSONL sink write failed");
  ++lines_;
  return Status::OK();
}

Status TopKPatternSink::Emit(const SinkKey& key, AttributeSetOutput output) {
  (void)key;
  std::lock_guard<std::mutex> lock(mutex_);
  ++sets_seen_;
  for (StructuralCorrelationPattern& p : output.patterns) {
    auto pos = std::lower_bound(best_.begin(), best_.end(), p,
                                PatternRankLess);
    if (pos == best_.end() && best_.size() >= k_) continue;
    best_.insert(pos, std::move(p));
    if (best_.size() > k_) best_.pop_back();
  }
  return Status::OK();
}

std::vector<StructuralCorrelationPattern> TopKPatternSink::best() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return best_;
}

std::uint64_t TopKPatternSink::sets_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sets_seen_;
}

Status CallbackSink::Emit(const SinkKey& key, AttributeSetOutput output) {
  std::lock_guard<std::mutex> lock(mutex_);
  return callback_(key, output);
}

}  // namespace scpm
