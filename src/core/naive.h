// The paper's naive baseline (§3.1): Eclat over all frequent attribute
// sets, then complete quasi-clique enumeration per induced subgraph —
// no Theorem 3/4/5 pruning, no coverage pruning, no top-k pruning.
//
// Output contract matches ScpmMiner (top-k patterns per reported
// attribute set, selected after the fact from the complete enumeration),
// which the equivalence tests rely on.

#ifndef SCPM_CORE_NAIVE_H_
#define SCPM_CORE_NAIVE_H_

#include "core/scpm.h"
#include "graph/attributed_graph.h"
#include "nullmodel/expectation.h"
#include "util/result.h"

namespace scpm {

/// Baseline miner; see file comment. The pruning/search flags in
/// ScpmOptions are ignored.
class NaiveMiner {
 public:
  explicit NaiveMiner(ScpmOptions options,
                      ExpectationModel* null_model = nullptr)
      : options_(options), null_model_(null_model) {}

  Result<ScpmResult> Mine(const AttributedGraph& graph);

 private:
  ScpmOptions options_;
  ExpectationModel* null_model_;
};

}  // namespace scpm

#endif  // SCPM_CORE_NAIVE_H_
