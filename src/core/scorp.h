// SCORP — the authors' earlier structural correlation pattern miner
// (Silva, Meira Jr., Zaki: "Structural correlation pattern mining for
// large graphs", MLG 2010; the paper's reference [16]).
//
// SCORP enumerates the COMPLETE set of structural correlation patterns of
// every qualifying attribute set, rather than SCPM's top-k, and predates
// the normalized structural correlation. It is exposed here as a thin
// configuration of the shared mining core: pattern_scope = kAllMaximal,
// no delta machinery.

#ifndef SCPM_CORE_SCORP_H_
#define SCPM_CORE_SCORP_H_

#include "core/scpm.h"

namespace scpm {

/// SCORP-flavored miner: complete maximal pattern sets per attribute set,
/// eps-only thresholds (delta_min and the null model are not used).
class ScorpMiner {
 public:
  explicit ScorpMiner(ScpmOptions options) : options_(options) {
    options_.pattern_scope = PatternScope::kAllMaximal;
    options_.min_delta = 0.0;
    options_.use_delta_pruning = false;
  }

  const ScpmOptions& options() const { return options_; }

  Result<ScpmResult> Mine(const AttributedGraph& graph) {
    ScpmMiner miner(options_, /*null_model=*/nullptr);
    return miner.Mine(graph);
  }

 private:
  ScpmOptions options_;
};

}  // namespace scpm

#endif  // SCPM_CORE_SCORP_H_
