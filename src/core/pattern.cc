#include "core/pattern.h"

#include <algorithm>
#include <sstream>

namespace scpm {

std::vector<AttributeSetStats> RankAttributeSets(
    const std::vector<AttributeSetStats>& stats, AttributeSetOrder order) {
  std::vector<AttributeSetStats> out = stats;
  auto key_less = [order](const AttributeSetStats& a,
                          const AttributeSetStats& b) {
    double ka = 0, kb = 0;
    switch (order) {
      case AttributeSetOrder::kBySupport:
        ka = static_cast<double>(a.support);
        kb = static_cast<double>(b.support);
        break;
      case AttributeSetOrder::kByEpsilon:
        ka = a.epsilon;
        kb = b.epsilon;
        break;
      case AttributeSetOrder::kByDelta:
        ka = a.delta;
        kb = b.delta;
        break;
    }
    if (ka != kb) return ka > kb;
    if (a.support != b.support) return a.support > b.support;
    return a.attributes < b.attributes;
  };
  std::sort(out.begin(), out.end(), key_less);
  return out;
}

bool PatternRankLess(const StructuralCorrelationPattern& a,
                     const StructuralCorrelationPattern& b) {
  if (a.size() != b.size()) return a.size() > b.size();
  if (a.min_degree_ratio != b.min_degree_ratio) {
    return a.min_degree_ratio > b.min_degree_ratio;
  }
  if (a.attributes != b.attributes) {
    return a.attributes < b.attributes;
  }
  return a.vertices < b.vertices;
}

void SortPatterns(std::vector<StructuralCorrelationPattern>* patterns) {
  std::sort(patterns->begin(), patterns->end(), PatternRankLess);
}

std::string FormatPattern(const AttributedGraph& graph,
                          const StructuralCorrelationPattern& pattern) {
  std::ostringstream os;
  os << "(" << graph.FormatAttributeSet(pattern.attributes) << ", {";
  for (std::size_t i = 0; i < pattern.vertices.size(); ++i) {
    if (i > 0) os << ",";
    os << pattern.vertices[i];
  }
  os << "}) size=" << pattern.size() << " gamma=" << pattern.min_degree_ratio;
  return os.str();
}

}  // namespace scpm
