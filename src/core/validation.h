// Post-hoc validation of mining results against the problem definition.
//
// ValidateResult re-derives, for every reported attribute set and
// pattern, the properties that Definition 4 promises: supports, the
// eps = covered/support identity, threshold compliance, and that every
// pattern is a quasi-clique of the correct induced subgraph. Used by the
// integration tests and handy when debugging custom configurations.

#ifndef SCPM_CORE_VALIDATION_H_
#define SCPM_CORE_VALIDATION_H_

#include "core/scpm.h"
#include "graph/attributed_graph.h"
#include "util/status.h"

namespace scpm {

/// Returns OK when `result` is internally consistent with `graph` and
/// `options`; otherwise an InvalidArgument/Internal status naming the
/// first violated property:
///  * reported support equals |V(S)| and respects sigma_min;
///  * eps == covered / support, within [0, 1], and >= eps_min;
///  * delta == eps / expected_epsilon (when a model was used);
///  * every pattern's attribute set is among the reported sets;
///  * every pattern's vertex set lies inside V(S), has >= min_size
///    vertices, and satisfies the gamma_min degree constraint in G(S);
///  * the recorded min_degree_ratio matches the actual one.
Status ValidateResult(const AttributedGraph& graph,
                      const ScpmOptions& options, const ScpmResult& result);

}  // namespace scpm

#endif  // SCPM_CORE_VALIDATION_H_
