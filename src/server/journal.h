// Durable server state: the query journal and checkpoint store.
//
// A StateStore owns one directory (the server's --state-dir) holding
// everything needed to survive a crash:
//
//   journal.jsonl   append-only, fsync-per-record JSON lines narrating
//                   the server's life: one "server" record per epoch
//                   (graph shape included), one "admit" per accepted
//                   query (the full spec, re-parseable by
//                   ParseQuerySpec), one "progress" per persisted
//                   snapshot (cumulative emission counters), one
//                   "terminal" when a query finishes.
//   q<id>.ckpt      the latest cold EngineCheckpoint of query <id>,
//                   replaced atomically (write temp + fsync + rename +
//                   directory fsync), so the file is always a complete
//                   snapshot — torn writes can only lose the *newest*
//                   snapshot, never corrupt the previous one.
//
// Recovery (Scan) replays the journal front to back. It is paranoid in
// exactly one direction: anything malformed — a torn trailing line from
// a crash mid-append, an unparseable record, a missing or corrupt
// checkpoint, a record from a foreign epoch — degrades to a typed
// warning plus the most conservative safe interpretation (usually
// "restart this query from scratch"), never an error that blocks
// startup. The journal is the source of truth for WHICH queries existed;
// checkpoints are an optimization for resuming them faster.
//
// All appenders inject faults at fault::kJournalWrite and
// fault::kCheckpointWrite (util/fault.h), which is how recovery_test
// aims an ENOSPC at any chosen write.

#ifndef SCPM_SERVER_JOURNAL_H_
#define SCPM_SERVER_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "server/json.h"
#include "util/result.h"
#include "util/status.h"

namespace scpm {

/// Journal I/O counters, surfaced in server stats.
struct JournalStats {
  std::uint64_t appends = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t io_errors = 0;
};

/// One interrupted query reconstructed from the journal: its identity,
/// the spec JSON exactly as admitted, and the latest snapshot (when one
/// survived).
struct RecoveredQuery {
  std::uint64_t id = 0;
  std::uint64_t epoch = 0;
  JsonValue query;  // admit-record spec, ParseQuerySpec-compatible
  /// Cumulative progress at the latest persisted snapshot, read from
  /// the checkpoint file's meta header (the header and the frontier
  /// snapshot are one atomic rename, so they can never disagree); all
  /// zero when the query never snapshotted.
  std::uint64_t emitted = 0;
  std::uint64_t patterns_emitted = 0;
  std::uint64_t jsonl_lines = 0;
  /// The snapshot itself; has_checkpoint == false (missing/corrupt/
  /// never written) means "re-run from scratch".
  EngineCheckpoint checkpoint;
  bool has_checkpoint = false;
  /// Raw bytes following the snapshot's "end" token, exactly as given
  /// to WriteCheckpoint's `trailer` — extension state riding the same
  /// atomic rename (the distributed coordinator stores its summed
  /// counters here). Empty when no trailer was written.
  std::string trailer;
};

/// Everything a restarting server learns from the state directory.
struct RecoveryScan {
  /// The last journaled serving epoch and its graph shape; epoch 0
  /// means the journal held no server record (nothing to recover).
  std::uint64_t epoch = 0;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  std::uint64_t attributes = 0;
  /// Highest query id ever journaled; the server resumes ids above it.
  std::uint64_t max_id = 0;
  /// Admitted, never-terminal queries of the last epoch, admit order.
  std::vector<RecoveredQuery> queries;
  /// Human-readable accounts of everything discarded or repaired.
  std::vector<std::string> warnings;
};

class StateStore {
 public:
  /// Opens (creating if needed) the state directory and its journal for
  /// appending. The journal is NOT scanned here — call Scan() first if
  /// recovery is wanted, then append away.
  static Result<std::unique_ptr<StateStore>> Open(const std::string& dir);

  ~StateStore();
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  const std::string& dir() const { return dir_; }

  /// Replays the journal into a RecoveryScan (see above; malformed
  /// state degrades to warnings). Reads checkpoint files for every
  /// interrupted query of the last epoch.
  RecoveryScan Scan() const;

  /// Journal appenders. Each writes one line and fsyncs; an I/O failure
  /// (real or injected) is returned typed and counted, and the server
  /// keeps running — durability degrades, queries do not fail.
  Status AppendServer(std::uint64_t epoch, std::uint64_t vertices,
                      std::uint64_t edges, std::uint64_t attributes);
  Status AppendAdmit(std::uint64_t id, std::uint64_t epoch,
                     const JsonValue& query);
  Status AppendProgress(std::uint64_t id, std::uint64_t emitted,
                        std::uint64_t jsonl_lines);
  Status AppendTerminal(std::uint64_t id, const char* state);

  /// Atomically replaces query `id`'s checkpoint file with `cp`'s cold
  /// serialization plus a meta header carrying the cumulative emission
  /// counters at the snapshot (the pair must be atomic: a journal line
  /// cannot be transactional with a separate file, a header in the
  /// renamed file is). On any failure the previous checkpoint file (if
  /// one exists) is untouched. `trailer` bytes, if any, are appended
  /// verbatim after the snapshot (EngineCheckpoint::Load consumes the
  /// checkpoint exactly — the text codec stops at its "end" token, the
  /// binary codec at its length prefix — so Scan() hands them back
  /// untouched in RecoveredQuery::trailer).
  Status WriteCheckpoint(std::uint64_t id, const EngineCheckpoint& cp,
                         std::uint64_t emitted, std::uint64_t patterns_emitted,
                         std::uint64_t jsonl_lines,
                         const std::string& trailer = std::string());

  /// Encoding for checkpoint files this store writes (default binary;
  /// Scan() auto-detects on read either way, so stores can change
  /// format across restarts and still recover old files).
  void set_checkpoint_format(CheckpointFormat format) {
    ckpt_format_ = format;
  }

  /// Best-effort cleanup once a query is terminal.
  void RemoveCheckpoint(std::uint64_t id);

  JournalStats stats() const;

 private:
  StateStore(std::string dir, int journal_fd);

  Status AppendLine(const std::string& line);
  std::string CheckpointPath(std::uint64_t id) const;

  const std::string dir_;
  mutable std::mutex mutex_;
  int journal_fd_ = -1;
  JournalStats stats_;
  CheckpointFormat ckpt_format_ = CheckpointFormat::kBinary;
};

}  // namespace scpm

#endif  // SCPM_SERVER_JOURNAL_H_
